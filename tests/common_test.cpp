#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/hex.hpp"
#include "common/histogram.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "protocol/config.hpp"

namespace copbft {
namespace {

// ---- hex ------------------------------------------------------------

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  auto back = from_hex("0001abff");
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, data);
}

TEST(Hex, RejectsInvalid) {
  EXPECT_FALSE(from_hex("abc"));   // odd length
  EXPECT_FALSE(from_hex("zz"));    // bad digit
  EXPECT_TRUE(from_hex("")->empty());
  EXPECT_TRUE(from_hex("AbCd"));   // mixed case accepted
}

// ---- rng ------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---- bounded queue ----------------------------------------------------

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(8);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_for(std::chrono::microseconds(20'000)), std::nullopt);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(15'000));
}

TEST(BoundedQueue, PopAllTakesEverything) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 4; ++i) q.push(i);
  auto all = q.pop_all();
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, ProducerConsumerStress) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 5000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    while (auto v = q.pop()) sum += *v;
  });
  std::thread p1([&] {
    for (int i = 0; i < kPerProducer; ++i) q.push(1);
  });
  std::thread p2([&] {
    for (int i = 0; i < kPerProducer; ++i) q.push(2);
  });
  p1.join();
  p2.join();
  q.close();
  consumer.join();
  EXPECT_EQ(sum.load(), kPerProducer * 3LL);
}

TEST(BoundedQueue, BlockedPushUnblocksOnPop) {
  BoundedQueue<int> q(1);
  q.push(0);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(1);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 0);
  t.join();
  EXPECT_TRUE(pushed.load());
}

// ---- histogram --------------------------------------------------------

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 5}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(1.0), 5u);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.record(v);
  // Geometric buckets guarantee ~3% relative error.
  std::uint64_t p50 = h.percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 50'000.0, 50'000.0 * 0.04);
  std::uint64_t p99 = h.percentile(0.99);
  EXPECT_NEAR(static_cast<double>(p99), 99'000.0, 99'000.0 * 0.04);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(10);
  b.record(20);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 20u);
  EXPECT_EQ(a.min(), 10u);
}

TEST(Histogram, EmptyIsSane) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.record(1ULL << 40);
  EXPECT_EQ(h.max(), 1ULL << 40);
  std::uint64_t p = h.percentile(1.0);
  EXPECT_NEAR(static_cast<double>(p), static_cast<double>(1ULL << 40),
              static_cast<double>(1ULL << 40) * 0.04);
}

// Regression: percentile() must report the *upper* edge of the bucket
// holding the q-th sample (HdrHistogram convention). Reporting the lower
// edge under-states every percentile by up to the ~3% bucket width, so
// estimates dropped below the exact sample — tail comparisons between
// systems flipped when the true tails straddled a bucket boundary.
TEST(Histogram, PercentileNeverBelowExactSample) {
  Histogram h;
  std::vector<std::uint64_t> samples;
  Rng rng(99);
  for (int i = 0; i < 20'000; ++i) {
    std::uint64_t v = 1 + rng.below(1'000'000);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::uint64_t exact = samples[static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1))];
    std::uint64_t estimate = h.percentile(q);
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(exact) * 1.04 + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, PercentileClampedToObservedMax) {
  Histogram h;
  h.record(1000);  // bucket [992, 1023]: upper edge exceeds the sample
  EXPECT_EQ(h.percentile(0.5), 1000u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
}

// ---- SeqSlice ----------------------------------------------------------

TEST(SeqSlice, TrivialSliceContainsAll) {
  protocol::SeqSlice s{0, 1};
  for (protocol::SeqNum v : {0, 1, 2, 100}) EXPECT_TRUE(s.contains(v));
  EXPECT_EQ(s.at(5), 5u);
}

TEST(SeqSlice, PartitionArithmetic) {
  protocol::SeqSlice s{2, 3};  // 2, 5, 8, 11, ...
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.at(0), 2u);
  EXPECT_EQ(s.at(3), 11u);
  EXPECT_EQ(s.next_at_or_after(0), 2u);
  EXPECT_EQ(s.next_at_or_after(2), 2u);
  EXPECT_EQ(s.next_at_or_after(3), 5u);
  EXPECT_EQ(s.next_at_or_after(6), 8u);
}

TEST(SeqSlice, SlicesPartitionTheSequenceSpace) {
  // Property: for any NP, every seq belongs to exactly one slice and
  // c(p, i) = p + i * NP enumerates it (paper §4.2.1).
  for (std::uint32_t np = 1; np <= 8; ++np) {
    for (protocol::SeqNum seq = 0; seq < 200; ++seq) {
      int owners = 0;
      for (std::uint32_t p = 0; p < np; ++p) {
        protocol::SeqSlice s{p, np};
        if (s.contains(seq)) {
          ++owners;
          protocol::SeqNum i = (seq - p) / np;
          EXPECT_EQ(s.at(i), seq);
        }
      }
      EXPECT_EQ(owners, 1) << "np=" << np << " seq=" << seq;
    }
  }
}

// ---- leader schemes -----------------------------------------------------

TEST(LeaderScheme, FixedIsViewModN) {
  protocol::ProtocolConfig cfg;
  cfg.leader_scheme = protocol::LeaderScheme::kFixed;
  for (protocol::SeqNum seq = 0; seq < 50; ++seq)
    EXPECT_EQ(cfg.leader_for(0, seq), 0u);
  EXPECT_EQ(cfg.leader_for(5, 17), 5u % 4);
}

TEST(LeaderScheme, RotatingCoversAllPillarsAllReplicas) {
  // Paper §4.3.2: with the block-wise scheme l(c) = (c / NP) mod N every
  // pillar of every replica leads infinitely often, even when NP == N.
  protocol::ProtocolConfig cfg;
  cfg.leader_scheme = protocol::LeaderScheme::kRotating;
  cfg.num_pillars = 4;
  cfg.num_replicas = 4;
  // pairs (pillar, leader) observed
  std::set<std::pair<std::uint32_t, protocol::ReplicaId>> seen;
  for (protocol::SeqNum seq = 0; seq < 64; ++seq) {
    std::uint32_t pillar = static_cast<std::uint32_t>(seq % cfg.num_pillars);
    seen.insert({pillar, cfg.leader_for(0, seq)});
  }
  EXPECT_EQ(seen.size(), 16u) << "all pillar x replica pairs lead";
}

TEST(LeaderScheme, NaiveRoundRobinWouldStarve) {
  // The counter-example from the paper: with l(c) = c mod N and NP == N,
  // pillar p of replica r only leads when p == r. Verified here to show
  // the block-wise scheme is actually necessary.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  const std::uint32_t np = 4, n = 4;
  for (protocol::SeqNum seq = 0; seq < 64; ++seq)
    seen.insert({static_cast<std::uint32_t>(seq % np),
                 static_cast<std::uint32_t>(seq % n)});
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace copbft
