#include <gtest/gtest.h>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

ProtocolConfig small_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  cfg.batching = false;
  cfg.view_change_timeout_us = 0;  // disabled unless a test enables it
  return cfg;
}

Bytes payload(int i) { return to_bytes("op-" + std::to_string(i)); }

// ---- normal case -------------------------------------------------------

TEST(PbftCore, SingleRequestCommitsEverywhere) {
  PillarGroupHarness h({small_config()});
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();

  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_EQ(h.delivered(r).size(), 1u) << "replica " << r;
    const auto& batch = h.delivered(r)[0];
    EXPECT_EQ(batch.seq, 1u);
    ASSERT_EQ(batch.requests.size(), 1u);
    EXPECT_EQ(batch.requests[0].client, 1001u);
    EXPECT_EQ(batch.requests[0].payload, payload(1));
  }
}

TEST(PbftCore, ManyRequestsSameOrderEverywhere) {
  PillarGroupHarness h({small_config()});
  for (int i = 1; i <= 30; ++i)
    h.client_request(1001 + static_cast<ClientId>(i % 3), i, payload(i));
  h.run_until_quiescent();

  auto reference = h.delivered_sorted(0);
  ASSERT_EQ(reference.size(), 30u);
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(reference[i].seq, i + 1) << "no gaps";
  for (ReplicaId r = 1; r < 4; ++r) {
    auto got = h.delivered_sorted(r);
    ASSERT_EQ(got.size(), reference.size()) << "replica " << r;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, reference[i].seq);
      ASSERT_EQ(got[i].requests.size(), reference[i].requests.size());
      for (std::size_t j = 0; j < got[i].requests.size(); ++j)
        EXPECT_EQ(got[i].requests[j].key(), reference[i].requests[j].key());
    }
  }
}

TEST(PbftCore, BatchingPacksPendingRequests) {
  auto cfg = small_config();
  cfg.batching = true;
  cfg.max_batch = 8;
  cfg.max_active_proposals = 1;  // makes batch formation deterministic
  PillarGroupHarness h({cfg});
  // Submit to the leader only, with no network steps in between: the first
  // request proposes immediately; the rest accumulate and batch.
  for (int i = 1; i <= 9; ++i)
    h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();

  auto batches = h.delivered_sorted(0);
  ASSERT_GE(batches.size(), 2u);
  std::size_t total = 0;
  std::size_t max_batch = 0;
  for (const auto& b : batches) {
    total += b.requests.size();
    max_batch = std::max(max_batch, b.requests.size());
  }
  EXPECT_EQ(total, 9u);
  EXPECT_GT(max_batch, 1u) << "later requests were batched";
  EXPECT_LE(max_batch, 8u) << "max_batch respected";
}

TEST(PbftCore, UnbatchedUsesOneInstancePerRequest) {
  PillarGroupHarness h({small_config()});
  for (int i = 1; i <= 5; ++i) h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered_sorted(0).size(), 5u);
  EXPECT_EQ(h.core(0).stats().proposals, 5u);
}

TEST(PbftCore, DuplicateRequestsDroppedBeforeOrdering) {
  PillarGroupHarness h({small_config()});
  h.client_request(1001, 1, payload(1));
  h.client_request(1001, 1, payload(1));  // duplicate
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered_sorted(0).size(), 1u);
  EXPECT_GT(h.core(0).stats().duplicates_dropped, 0u);
}

TEST(PbftCore, FollowerDropsConflictingSecondPrePrepare) {
  PillarGroupHarness h({small_config()});
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();

  // A (faulty) leader proposal for the same (view, seq) with a different
  // digest must be ignored without verification.
  auto& follower = h.core(1);
  auto before = follower.stats();
  PrePrepare evil;
  evil.view = 0;
  evil.seq = 1;
  evil.digest.bytes.fill(0xee);
  IncomingMessage im;
  im.msg = evil;
  follower.on_message(std::move(im), h.now());
  auto after = follower.stats();
  EXPECT_EQ(after.macs_verified, before.macs_verified);
  EXPECT_EQ(after.verifications_skipped, before.verifications_skipped + 1);
}

// ---- in-order verification efficiency (paper §3.2) ---------------------

TEST(PbftCore, RedundantVotesAreNotVerified) {
  PillarGroupHarness h({small_config()});
  for (int i = 1; i <= 20; ++i) h.client_request(1001, i, payload(i));
  h.run_until_quiescent();

  for (ReplicaId r = 0; r < 4; ++r) {
    const auto& s = h.core(r).stats();
    // With N=4, f=1: each instance generates 3 prepares (2f=2 needed by a
    // follower that counts its own) and 4 commits (2f+1=3 needed incl own).
    // At least the surplus commit per instance must be skipped.
    EXPECT_GT(s.verifications_skipped, 0u) << "replica " << r;
    EXPECT_GT(s.macs_verified, 0u);
  }
}

// ---- checkpointing -----------------------------------------------------

TEST(PbftCore, CheckpointsBecomeStableAndGarbageCollect) {
  auto cfg = small_config();
  PillarGroupHarness h({cfg});
  for (int i = 1; i <= 35; ++i) h.client_request(1001, i, payload(i));
  h.run_until_quiescent();

  for (ReplicaId r = 0; r < 4; ++r) {
    // 35 instances, interval 10 -> checkpoints at 10, 20, 30.
    EXPECT_EQ(h.stable_checkpoints(r),
              (std::vector<SeqNum>{10, 20, 30}))
        << "replica " << r;
    EXPECT_EQ(h.core(r).stable_seq(), 30u);
    // Instances <= 30 must be gone.
    EXPECT_LE(h.core(r).open_instances(), 5u);
  }
}

TEST(PbftCore, WindowBlocksRunahead) {
  auto cfg = small_config();
  cfg.checkpoint_interval = 10;
  cfg.window = 10;
  PillarGroupHarness h({cfg, SeqSlice{0, 1}, /*seed=*/1, /*shuffle=*/false,
                        0.0, nullptr, /*auto_checkpoint=*/false});
  // Without checkpoints the window [1, 10] caps proposals.
  for (int i = 1; i <= 25; ++i) h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered_sorted(0).size(), 10u);
  EXPECT_EQ(h.core(0).pending_requests(), 15u);
}

TEST(PbftCore, SiblingStabilityNoticeSlidesWindow) {
  auto cfg = small_config();
  cfg.window = 10;
  PillarGroupHarness h({cfg, SeqSlice{0, 1}, 1, false, 0.0, nullptr,
                        /*auto_checkpoint=*/false});
  for (int i = 1; i <= 25; ++i) h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered_sorted(0).size(), 10u);

  // Simulate a sibling pillar's stable checkpoint at 10 on every replica.
  crypto::Digest d;
  for (ReplicaId r = 0; r < 4; ++r)
    h.core(r).note_checkpoint_stable(10, d);
  h.tick_all();  // flush the proposals triggered by the slid window
  // The leader can now propose 11..20.
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered_sorted(0).size(), 20u);
}

TEST(PbftCore, OverWindowMessagesDeferUntilWindowSlides) {
  auto cfg = small_config();
  cfg.checkpoint_interval = 5;
  cfg.window = 10;
  PillarGroupHarness h({cfg, SeqSlice{0, 1}, 1, false, 0.0, nullptr,
                        /*auto_checkpoint=*/false});
  for (int i = 1; i <= 15; ++i) h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered_sorted(0).size(), 10u);

  // Only the leader learns of the stable checkpoint at 5: its window
  // slides to (5, 15] and it proposes 11..15, one checkpoint interval
  // above the followers' windows. The followers must park those
  // proposals instead of dropping them (a drop would stall the
  // instances until the retransmission timeout).
  crypto::Digest d;
  h.core(0).note_checkpoint_stable(5, d);
  h.tick_all();
  h.run_until_quiescent();
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(h.delivered_sorted(r).size(), 10u) << "replica " << r;
    EXPECT_GE(h.core(r).stats().over_window_deferred, 5u) << "replica " << r;
  }

  // The followers catch up on the checkpoint: the parked proposals
  // replay on the window slide and commit without any retransmission.
  for (ReplicaId r = 1; r < 4; ++r) h.core(r).note_checkpoint_stable(5, d);
  h.tick_all();
  h.run_until_quiescent();
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_EQ(h.delivered_sorted(r).size(), 15u) << "replica " << r;
}

// ---- gap filling (paper §4.2.1) -----------------------------------------

TEST(PbftCore, FillGapProposesNoops) {
  auto cfg = small_config();
  PillarGroupHarness h({cfg, SeqSlice{1, 3}});  // pillar 1 of 3: 1, 4, 7...
  // No client traffic at all; the execution stage demands seq up to 7.
  for (ReplicaId r = 0; r < 4; ++r) h.fill_gap(r, 7);
  h.run_until_quiescent();

  for (ReplicaId r = 0; r < 4; ++r) {
    auto batches = h.delivered_sorted(r);
    ASSERT_EQ(batches.size(), 3u) << "replica " << r;
    EXPECT_EQ(batches[0].seq, 1u);
    EXPECT_EQ(batches[1].seq, 4u);
    EXPECT_EQ(batches[2].seq, 7u);
    for (const auto& b : batches) EXPECT_TRUE(b.requests.empty());
  }
  EXPECT_EQ(h.core(0).stats().noop_proposals, 3u);
}

TEST(PbftCore, FillGapPrefersPendingRequests) {
  auto cfg = small_config();
  cfg.batching = true;
  PillarGroupHarness h({cfg, SeqSlice{0, 2}});
  // One pending request at the leader; gap fill should order it, not a
  // no-op, then fill the remainder with no-ops.
  h.client_request(1001, 1, payload(1), {0});
  h.run_until_quiescent();
  for (ReplicaId r = 0; r < 4; ++r) h.fill_gap(r, 6);
  h.run_until_quiescent();

  auto batches = h.delivered_sorted(0);
  ASSERT_EQ(batches.size(), 3u);  // seq 2, 4, 6
  EXPECT_EQ(batches[0].requests.size(), 1u);
  EXPECT_TRUE(batches[1].requests.empty());
  EXPECT_TRUE(batches[2].requests.empty());
}

// ---- sequence slices (COP partitioning) ----------------------------------

TEST(PbftCore, SliceIgnoresForeignSequences) {
  auto cfg = small_config();
  PillarGroupHarness h({cfg, SeqSlice{0, 2}});
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();

  // First instance of slice {0,2} is seq 2 (seq 0 is genesis).
  auto batches = h.delivered_sorted(1);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].seq, 2u);

  // A pre-prepare for a foreign sequence number is skipped unverified.
  auto before = h.core(1).stats();
  PrePrepare foreign;
  foreign.view = 0;
  foreign.seq = 3;  // not in slice {0,2}
  IncomingMessage im;
  im.msg = foreign;
  h.core(1).on_message(std::move(im), h.now());
  EXPECT_EQ(h.core(1).stats().macs_verified, before.macs_verified);
}

TEST(PbftCore, TwoSlicesFormGaplessTotalOrder) {
  // Two pillar groups (NP=2) running side by side; their merged outcome
  // must enumerate 2,3,4,... densely when both have traffic. (Seq 1 is
  // slice {1,2}'s first member; slice {0,2} starts at 2.)
  auto cfg = small_config();
  cfg.batching = false;
  PillarGroupHarness g0({cfg, SeqSlice{0, 2}, 1});
  PillarGroupHarness g1({cfg, SeqSlice{1, 2}, 2});
  for (int i = 1; i <= 10; ++i) {
    g0.client_request(1000 + static_cast<ClientId>(2 * i), 1, payload(i));
    g1.client_request(1001 + static_cast<ClientId>(2 * i), 1, payload(i));
  }
  g0.run_until_quiescent();
  g1.run_until_quiescent();

  std::vector<SeqNum> merged;
  for (const auto& b : g0.delivered_sorted(0)) merged.push_back(b.seq);
  for (const auto& b : g1.delivered_sorted(0)) merged.push_back(b.seq);
  std::sort(merged.begin(), merged.end());
  ASSERT_EQ(merged.size(), 20u);
  for (std::size_t i = 0; i < merged.size(); ++i)
    EXPECT_EQ(merged[i], i + 1) << "dense interleaving across slices";
}

// ---- single-instance mode (SMaRt baseline) ------------------------------

TEST(PbftCore, SingleInstanceModeSerializesProposals) {
  auto cfg = small_config();
  cfg.max_active_proposals = 1;
  cfg.batching = false;
  PillarGroupHarness h({cfg});
  for (int i = 1; i <= 6; ++i) h.client_request(1001, i, payload(i), {0});
  // Before any network step, only one proposal may be outstanding.
  EXPECT_EQ(h.core(0).stats().proposals, 1u);
  h.run_until_quiescent();
  EXPECT_EQ(h.core(0).stats().proposals, 6u);
  EXPECT_EQ(h.delivered_sorted(0).size(), 6u);
}

TEST(PbftCore, SingleInstanceWithBatchingScales) {
  auto cfg = small_config();
  cfg.max_active_proposals = 1;
  cfg.batching = true;
  cfg.max_batch = 100;
  PillarGroupHarness h({cfg});
  for (int i = 1; i <= 50; ++i) h.client_request(1001, i, payload(i), {0});
  h.run_until_quiescent();
  // One instance for the first request, one batch for the remaining 49.
  EXPECT_EQ(h.core(0).stats().proposals, 2u);
  EXPECT_EQ(h.core(0).stats().requests_delivered, 50u);
}

// ---- rotation (paper §4.3.2) ---------------------------------------------

TEST(PbftCore, RotatingLeadersAllPropose) {
  auto cfg = small_config();
  cfg.leader_scheme = LeaderScheme::kRotating;
  cfg.num_pillars = 1;  // trivial slice; rotation per instance
  PillarGroupHarness h({cfg});
  for (int i = 1; i <= 12; ++i) {
    h.client_request(1001, i, payload(i));
    h.run_until_quiescent();
  }
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_GT(h.core(r).stats().proposals, 0u) << "replica " << r;
    EXPECT_EQ(h.delivered_sorted(r).size(), 12u);
  }
}

TEST(PbftCore, RotationTotalOrderConsistent) {
  auto cfg = small_config();
  cfg.leader_scheme = LeaderScheme::kRotating;
  cfg.batching = true;
  PillarGroupHarness h({cfg, SeqSlice{0, 1}, 3, /*shuffle=*/true});
  for (int i = 1; i <= 40; ++i) h.client_request(1001, i, payload(i));
  h.run_until_quiescent();

  auto reference = h.delivered_sorted(0);
  for (ReplicaId r = 1; r < 4; ++r) {
    auto got = h.delivered_sorted(r);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, reference[i].seq);
      ASSERT_EQ(got[i].requests.size(), reference[i].requests.size());
      for (std::size_t j = 0; j < got[i].requests.size(); ++j)
        EXPECT_EQ(got[i].requests[j].key(), reference[i].requests[j].key());
    }
  }
}

}  // namespace
}  // namespace copbft::test
