#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "client/client.hpp"
#include "core/outbound.hpp"
#include "transport/inproc.hpp"

namespace copbft::test {
namespace {

using namespace copbft::protocol;

/// Harness impersonating the four replicas on an in-process network.
class ClientHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto_ = crypto::make_real_crypto(17);
    for (ReplicaId r = 0; r < 4; ++r) {
      inboxes_[r] = std::make_shared<transport::Inbox>();
      network_.endpoint(replica_node(r)).register_sink(0, inboxes_[r]);
      network_.endpoint(replica_node(r)).register_sink(1, inboxes_[r]);
    }
  }

  client::Client& make_client(std::uint32_t window = 8,
                              std::uint64_t retransmit_us = 100'000) {
    client::ClientConfig cfg;
    cfg.id = kClientIdBase;
    cfg.num_pillars = 2;
    cfg.window = window;
    cfg.retransmit_timeout_us = retransmit_us;
    client_ = std::make_unique<client::Client>(
        cfg, *crypto_, network_.endpoint(client_node(cfg.id)));
    client_->start();
    return *client_;
  }

  void TearDown() override {
    if (client_) client_->stop();
  }

  /// Waits for the request to arrive at replica `r` and returns it.
  std::optional<Request> recv_request(ReplicaId r) {
    auto frame = inboxes_[r]->queue().pop_for(std::chrono::microseconds(
        2'000'000));
    if (!frame) return std::nullopt;
    auto decoded = decode_message(frame->bytes);
    if (!decoded) return std::nullopt;
    return std::get<Request>(decoded->msg);
  }

  /// Sends a reply from replica `r`.
  void send_reply(ReplicaId r, RequestId id, Bytes result) {
    Message msg = Reply{0, kClientIdBase, id, r, std::move(result), {}};
    Bytes frame = core::seal_message(msg, *crypto_, replica_node(r),
                                     {client_node(kClientIdBase)});
    network_.endpoint(replica_node(r))
        .send(client_node(kClientIdBase), 0, std::move(frame));
  }

  std::unique_ptr<crypto::CryptoProvider> crypto_;
  transport::InprocNetwork network_;
  std::shared_ptr<transport::Inbox> inboxes_[4];
  std::unique_ptr<client::Client> client_;
};

TEST_F(ClientHarness, RequestBroadcastToAllReplicasWithValidMacs) {
  auto& client = make_client();
  std::atomic<bool> done{false};
  client.invoke_async(to_bytes("op"), kFlagReadOnly,
                      [&](Bytes, std::uint64_t) { done = true; });

  for (ReplicaId r = 0; r < 4; ++r) {
    auto req = recv_request(r);
    ASSERT_TRUE(req) << "replica " << r;
    EXPECT_EQ(req->client, kClientIdBase);
    EXPECT_EQ(req->id, 1u);
    EXPECT_EQ(req->flags, kFlagReadOnly);
    // Each replica can verify its MAC entry.
    Bytes body = request_authenticated_bytes(*req);
    EXPECT_TRUE(req->auth.verify(*crypto_, client_node(kClientIdBase),
                                 replica_node(r), body));
  }
  EXPECT_FALSE(done.load()) << "no replies yet";
}

TEST_F(ClientHarness, CompletesOnFPlusOneMatchingReplies) {
  auto& client = make_client();
  std::atomic<int> done{0};
  Bytes got;
  client.invoke_async(to_bytes("op"), 0, [&](Bytes result, std::uint64_t) {
    got = std::move(result);
    ++done;
  });
  ASSERT_TRUE(recv_request(0));

  send_reply(0, 1, to_bytes("R"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(done.load(), 0) << "one reply is not stable";
  send_reply(1, 1, to_bytes("R"));
  client.drain();
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(got, to_bytes("R"));
  EXPECT_EQ(client.completed(), 1u);
}

TEST_F(ClientHarness, MismatchedRepliesDoNotFormQuorum) {
  auto& client = make_client();
  std::atomic<int> done{0};
  client.invoke_async(to_bytes("op"), 0,
                      [&](Bytes, std::uint64_t) { ++done; });
  ASSERT_TRUE(recv_request(0));

  // f+1 = 2 needed, but the two replies disagree (one replica lies).
  send_reply(0, 1, to_bytes("A"));
  send_reply(1, 1, to_bytes("B"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(done.load(), 0);

  // A third reply matching one of them settles it.
  send_reply(2, 1, to_bytes("B"));
  client.drain();
  EXPECT_EQ(done.load(), 1);
}

TEST_F(ClientHarness, DuplicateVotesFromSameReplicaIgnored) {
  auto& client = make_client();
  std::atomic<int> done{0};
  client.invoke_async(to_bytes("op"), 0,
                      [&](Bytes, std::uint64_t) { ++done; });
  ASSERT_TRUE(recv_request(0));

  send_reply(0, 1, to_bytes("R"));
  send_reply(0, 1, to_bytes("R"));  // same replica again
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(done.load(), 0) << "one replica cannot vote twice";
  send_reply(2, 1, to_bytes("R"));
  client.drain();
  EXPECT_EQ(done.load(), 1);
}

TEST_F(ClientHarness, ForgedReplyMacRejected) {
  auto& client = make_client();
  std::atomic<int> done{0};
  client.invoke_async(to_bytes("op"), 0,
                      [&](Bytes, std::uint64_t) { ++done; });
  ASSERT_TRUE(recv_request(0));

  // Replica 3 forges a reply claiming to be replica 0: MAC check fails.
  Message msg = Reply{0, kClientIdBase, 1, /*replica=*/0, to_bytes("evil"), {}};
  Bytes frame = core::seal_message(msg, *crypto_, replica_node(3),
                                   {client_node(kClientIdBase)});
  network_.endpoint(replica_node(3))
      .send(client_node(kClientIdBase), 0, std::move(frame));
  send_reply(1, 1, to_bytes("good"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(done.load(), 0) << "forged vote must not count";

  send_reply(2, 1, to_bytes("good"));
  client.drain();
  EXPECT_EQ(done.load(), 1);
}

TEST_F(ClientHarness, RetransmitsUnansweredRequests) {
  auto& client = make_client(8, /*retransmit_us=*/50'000);
  client.invoke_async(to_bytes("op"), 0, [](Bytes, std::uint64_t) {});
  ASSERT_TRUE(recv_request(0));
  // No replies: the client must resend the identical request.
  auto again = recv_request(0);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->id, 1u);
  EXPECT_GT(client.retransmissions(), 0u);
}

TEST_F(ClientHarness, WindowBlocksWhenFull) {
  auto& client = make_client(/*window=*/2);
  std::atomic<int> issued{0};
  std::thread issuer([&] {
    for (int i = 0; i < 3; ++i) {
      client.invoke_async(to_bytes("op"), 0, [](Bytes, std::uint64_t) {});
      ++issued;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(issued.load(), 2) << "third invocation blocked by the window";

  // Complete request 1 -> window opens -> the third goes out.
  send_reply(0, 1, to_bytes("R"));
  send_reply(1, 1, to_bytes("R"));
  issuer.join();
  EXPECT_EQ(issued.load(), 3);
}

TEST_F(ClientHarness, StopFailsOutstandingInvocations) {
  auto& client = make_client();
  std::atomic<int> called{0};
  client.invoke_async(to_bytes("op"), 0,
                      [&](Bytes result, std::uint64_t) {
                        EXPECT_TRUE(result.empty());
                        ++called;
                      });
  client.stop();
  EXPECT_EQ(called.load(), 1) << "callback fired with empty result";
}

// ---- retransmission backoff -------------------------------------------

TEST(Backoff, DoublesUntilCapWithBoundedJitter) {
  Rng rng(42);
  const std::uint64_t base = 100'000, cap = 800'000;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t ideal = std::min(cap, base << attempt);
    for (int i = 0; i < 200; ++i) {
      std::uint64_t d = client::retransmit_backoff_us(base, cap, attempt, rng);
      EXPECT_GE(d, ideal - ideal / 8) << "attempt " << attempt;
      EXPECT_LE(d, ideal + ideal / 8) << "attempt " << attempt;
    }
  }
}

TEST(Backoff, JitterSpreadsDeadlines) {
  Rng rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i)
    seen.insert(client::retransmit_backoff_us(1'000'000, 8'000'000, 0, rng));
  EXPECT_GT(seen.size(), 32u) << "jitter must not collapse to a point";
}

TEST(Backoff, DegenerateInputsAreSafe) {
  Rng rng(3);
  EXPECT_GE(client::retransmit_backoff_us(0, 0, 0, rng), 1u);
  for (int i = 0; i < 10; ++i) {
    // cap below base: raised to base, never zero.
    std::uint64_t d = client::retransmit_backoff_us(500, 100, 7, rng);
    EXPECT_GE(d, 500 - 500 / 8);
    EXPECT_LE(d, 500 + 500 / 8);
  }
  // Shift that would overflow 64 bits saturates at the cap, and the
  // jitter band around a near-max cap must not wrap.
  std::uint64_t huge = client::retransmit_backoff_us(
      1, std::numeric_limits<std::uint64_t>::max(), 200, rng);
  EXPECT_GE(huge, 1u);
}

// Regression: retransmit_due used to rearm every due request with the
// fixed base timeout. The schedule must instead (a) jitter deadlines so
// concurrently-issued requests never fall due in lockstep, and (b) back
// off exponentially — bounded ABOVE by the doubling schedule, which a
// fixed rearm would exceed several-fold.
TEST_F(ClientHarness, RetransmitDeadlinesJitteredAndBackedOff) {
  auto& client = make_client(8, /*retransmit_us=*/30'000);
  for (int i = 0; i < 4; ++i)
    client.invoke_async(to_bytes("op"), 0, [](Bytes, std::uint64_t) {});

  auto deadlines = client.pending_deadlines();
  ASSERT_EQ(deadlines.size(), 4u);
  std::set<std::uint64_t> distinct(deadlines.begin(), deadlines.end());
  EXPECT_EQ(distinct.size(), deadlines.size())
      << "initial deadlines must already be de-synchronized";

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // Doubling from 30ms fits at most ~5 rearms per request into 600ms
  // (30+60+120+240+480 > 600 even before jitter); a fixed 30ms rearm
  // would fire ~20 times per request.
  EXPECT_GE(client.retransmissions(), 4u) << "every request retransmitted";
  EXPECT_LE(client.retransmissions(), 4u * 6)
      << "deadline schedule is not backing off";

  auto later = client.pending_deadlines();
  ASSERT_EQ(later.size(), 4u);
  EXPECT_GT(*std::min_element(later.begin(), later.end()),
            *std::max_element(deadlines.begin(), deadlines.end()))
      << "every deadline moved forward";
}

TEST_F(ClientHarness, LatencyRecorded) {
  auto& client = make_client();
  client.invoke_async(to_bytes("op"), 0, [](Bytes, std::uint64_t) {});
  send_reply(0, 1, to_bytes("R"));
  send_reply(1, 1, to_bytes("R"));
  client.drain();
  EXPECT_EQ(client.latencies().count(), 1u);
  EXPECT_GT(client.latencies().max(), 0u);
}

}  // namespace
}  // namespace copbft::test
