#include <gtest/gtest.h>

#include <cstring>

#include "sim/machine.hpp"
#include "sim/nic.hpp"
#include "sim/simulation.hpp"

namespace copbft::sim {
namespace {

// ---- event queue -------------------------------------------------------

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(100, [&] { order.push_back(2); });
  q.schedule(50, [&] { order.push_back(1); });
  q.schedule(100, [&] { order.push_back(3); });  // same time: insertion order
  q.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, ScheduleInPastClampsToNow) {
  EventQueue q;
  q.schedule(100, [&] {});
  q.run_until(100);
  bool ran = false;
  q.schedule(50, [&] { ran = true; });  // in the past
  q.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] {
    ++fired;
    q.schedule_in(10, [&] { ++fired; });
  });
  q.run_until(100);
  EXPECT_EQ(fired, 2);
}

// ---- machine / scheduler -------------------------------------------------

TEST(Machine, SingleThreadSerializesTasks) {
  EventQueue events;
  CostModel costs;
  Machine m(events, costs, /*cores=*/1, "m");
  SimThread& t = m.add_thread("t");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i)
    t.post([&events, &completions]() -> double {
      completions.push_back(events.now());
      return 1000.0;  // 1 us
    });
  events.run_until(1'000'000);
  ASSERT_EQ(completions.size(), 3u);
  // Tasks start when the previous one's cost elapsed.
  EXPECT_EQ(completions[0], 0u);
  EXPECT_EQ(completions[1], 1000u);
  EXPECT_EQ(completions[2], 2000u);
}

TEST(Machine, TwoThreadsUseTwoContexts) {
  EventQueue events;
  CostModel costs;
  costs.smt_speed = 0.5;
  Machine m(events, costs, /*cores=*/1, "m");
  SimThread& a = m.add_thread("a");
  SimThread& b = m.add_thread("b");
  int done = 0;
  // Both run concurrently on the two SMT contexts of the single core; the
  // second dispatched runs at half speed.
  a.post([&]() -> double {
    ++done;
    return 1000.0;
  });
  b.post([&]() -> double {
    ++done;
    return 1000.0;
  });
  events.run_until(500);
  EXPECT_EQ(done, 2) << "both started immediately";
}

TEST(Machine, MoreThreadsThanContextsQueue) {
  EventQueue events;
  CostModel costs;
  Machine m(events, costs, /*cores=*/1, "m");
  std::vector<SimThread*> threads;
  for (int i = 0; i < 4; ++i)
    threads.push_back(&m.add_thread("t" + std::to_string(i)));
  std::vector<SimTime> starts;
  for (auto* t : threads)
    t->post([&events, &starts]() -> double {
      starts.push_back(events.now());
      return 1000.0;
    });
  events.run_until(1'000'000);
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 0u) << "two contexts on one core";
  EXPECT_GT(starts[2], 0u) << "third thread had to wait";
  EXPECT_GT(starts[3], 0u);
}

TEST(Machine, SmtSlowsSharedCore) {
  EventQueue events;
  CostModel costs;
  costs.smt_speed = 0.5;
  Machine m(events, costs, /*cores=*/1, "m");
  SimThread& a = m.add_thread("a");
  SimThread& b = m.add_thread("b");
  SimTime a_done = 0, b_done = 0;
  a.post([&]() -> double { return 1000.0; });
  a.post([&a_done, &events]() -> double {
    a_done = events.now();
    return 0.0;
  });
  b.post([&]() -> double { return 1000.0; });
  b.post([&b_done, &events]() -> double {
    b_done = events.now();
    return 0.0;
  });
  events.run_until(1'000'000);
  // First dispatched ran at full speed (its start preceded the sibling's):
  // 1000 ns; the second at half speed: 2000 ns.
  EXPECT_EQ(std::min(a_done, b_done), 1000u);
  EXPECT_EQ(std::max(a_done, b_done), 2000u);
}

// ---- NIC ------------------------------------------------------------

TEST(Nic, SerializesAtBandwidth) {
  EventQueue events;
  NicPort port(events, /*bytes_per_ns=*/0.1);  // 100 MB/s
  SimTime t1 = port.transmit(1000);            // 10 us
  SimTime t2 = port.transmit(1000);            // queued behind
  EXPECT_EQ(t1, 10'000u);
  EXPECT_EQ(t2, 20'000u);
  EXPECT_EQ(port.bytes_total(), 2000u);
}

TEST(Nic, TransferIncludesPropagationAndBothPorts) {
  EventQueue events;
  CostModel costs;
  costs.nic_bytes_per_ns = 0.1;
  costs.propagation_ns = 5'000;
  Adapter a(events, costs.nic_bytes_per_ns);
  Adapter b(events, costs.nic_bytes_per_ns);
  SimTime delivered_at = 0;
  network_transfer(events, costs, a, b, 1000,
                   [&] { delivered_at = events.now(); });
  events.run_until(1'000'000);
  // 10 us tx + 5 us propagation + 10 us rx.
  EXPECT_EQ(delivered_at, 25'000u);
}

TEST(Nic, WindowCounters) {
  EventQueue events;
  NicPort port(events, 1.0);
  port.transmit(500);
  EXPECT_EQ(port.take_window_bytes(), 500u);
  port.transmit(300);
  EXPECT_EQ(port.take_window_bytes(), 300u);
  EXPECT_EQ(port.take_window_bytes(), 0u);
}

// ---- end-to-end simulation smoke tests --------------------------------

SimConfig smoke_config(SimArch arch) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.cores = 2;
  cfg.clients = 40;
  cfg.client_window = 4;
  cfg.warmup = 50 * 1'000'000ULL;    // 50 ms
  cfg.measure = 200 * 1'000'000ULL;  // 200 ms
  cfg.protocol.checkpoint_interval = 100;
  cfg.protocol.window = 400;
  cfg.protocol.view_change_timeout_us = 0;
  cfg.protocol.retransmit_interval_us = 0;
  cfg.protocol.max_active_proposals = (arch == SimArch::kSmart) ? 1 : 4;
  return cfg;
}

class SimArchSmoke : public ::testing::TestWithParam<SimArch> {};

TEST_P(SimArchSmoke, CompletesOperations) {
  SimResult result = run_simulation(smoke_config(GetParam()));
  EXPECT_GT(result.completed_ops, 100u);
  EXPECT_GT(result.throughput_ops, 1000.0);
  EXPECT_GT(result.latency_mean_us, 0.0);
  EXPECT_GT(result.leader_tx_mbps, 0.0);
  EXPECT_GT(result.instances, 0u);
}

TEST_P(SimArchSmoke, DeterministicAcrossRuns) {
  SimResult a = run_simulation(smoke_config(GetParam()));
  SimResult b = run_simulation(smoke_config(GetParam()));
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_DOUBLE_EQ(a.leader_tx_mbps, b.leader_tx_mbps);
}

// ---- bit-identical replay across the pillar-side admission path --------

/// FNV-1a over every behaviourally meaningful SimResult field, doubles
/// hashed by bit pattern: two runs agree on this digest only if they were
/// bit-identical in effect, not merely close.
std::uint64_t result_digest(const SimResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  auto mixd = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  mixd(r.throughput_ops);
  mixd(r.latency_mean_us);
  mix(r.latency_p50_us);
  mix(r.latency_p99_us);
  mixd(r.leader_tx_mbps);
  mix(r.completed_ops);
  mix(r.instances);
  mix(r.state_transfers);
  mix(r.laggard_next_seq);
  mix(r.cluster_next_seq);
  mix(r.fork_detections);
  for (std::uint64_t seq : r.replica_next_seq) mix(seq);
  for (std::uint64_t ops : r.ops_timeline) mix(ops);
  for (const auto& stage : r.leader_stages) {
    mix(stage.name.size());
    mixd(stage.busy_fraction);
    mix(stage.backlog);
  }
  mix(r.leader_reorder_peak);
  return h;
}

/// The pillars admit commits into the reorder ring themselves (§4.3.1):
/// the commit->execution path now runs on NP concurrently-modelled logic
/// threads instead of one exec inbox, and a replay must still be
/// bit-identical — including when a crash/recover cycle truncates the
/// ring via state transfer mid-run.
TEST(SimReplay, PillarAdmissionBitIdenticalAcrossReplays) {
  SimConfig cfg = smoke_config(SimArch::kCop);
  cfg.cores = 4;  // several pillars, so admission order is genuinely
                  // interleaved across logic threads
  cfg.clients = 80;
  cfg.seed = 20260808;
  cfg.protocol.retransmit_interval_us = 20'000;

  const std::uint64_t first = result_digest(run_simulation(cfg));
  for (int replay = 0; replay < 2; ++replay)
    EXPECT_EQ(result_digest(run_simulation(cfg)), first)
        << "replay " << replay << " diverged";

  // Same, composed with checkpoint install: a replica crashes, recovers,
  // and re-joins through state transfer while the others keep admitting.
  cfg.faults.push_back({60 * 1'000'000ULL, 2, SimConfig::FaultEvent::Kind::kCrash});
  cfg.faults.push_back({90 * 1'000'000ULL, 2, SimConfig::FaultEvent::Kind::kRecover});
  SimResult faulted = run_simulation(cfg);
  EXPECT_EQ(faulted.fork_detections, 0u);
  const std::uint64_t fault_digest = result_digest(faulted);
  EXPECT_NE(fault_digest, first) << "fault schedule must change the run";
  EXPECT_EQ(result_digest(run_simulation(cfg)), fault_digest)
      << "faulted replay diverged";
}

INSTANTIATE_TEST_SUITE_P(Architectures, SimArchSmoke,
                         ::testing::Values(SimArch::kCop, SimArch::kTop,
                                           SimArch::kSmart,
                                           SimArch::kSmartStar),
                         [](const auto& info) {
                           switch (info.param) {
                             case SimArch::kCop:
                               return "COP";
                             case SimArch::kTop:
                               return "TOP";
                             case SimArch::kSmart:
                               return "SMaRt";
                             default:
                               return "SMaRtStar";
                           }
                         });

TEST(SimCluster, InOrderVerificationSkipsInCop) {
  SimResult result = run_simulation(smoke_config(SimArch::kCop));
  EXPECT_GT(result.leader_core.verifications_skipped, 0u);
  EXPECT_EQ(result.leader_core.pre_verified, 0u);
}

TEST(SimCluster, SmartPreVerifiesEverything) {
  SimResult result = run_simulation(smoke_config(SimArch::kSmart));
  EXPECT_GT(result.leader_core.pre_verified, 0u);
  EXPECT_EQ(result.leader_core.macs_verified, 0u);
}

TEST(SimCluster, MoreCoresMoreThroughputForCop) {
  SimConfig small = smoke_config(SimArch::kCop);
  SimConfig big = smoke_config(SimArch::kCop);
  small.cores = 1;
  big.cores = 4;
  big.clients = 160;
  SimResult a = run_simulation(small);
  SimResult b = run_simulation(big);
  EXPECT_GT(b.throughput_ops, a.throughput_ops * 1.5)
      << "COP must scale with cores";
}

}  // namespace
}  // namespace copbft::sim
