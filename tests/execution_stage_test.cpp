#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <thread>

#include "app/null_service.hpp"
#include "common/invariant.hpp"
#include "core/execution_stage.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

/// Records PillarCommands the pillars pick up from the stage via
/// poll_pillar() (pre-execution offload: the stage no longer pushes them).
struct CommandLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<std::uint32_t, PillarCommand>> commands;

  void record(std::uint32_t pillar, PillarCommand cmd) {
    std::lock_guard lock(mutex);
    commands.emplace_back(pillar, std::move(cmd));
    cv.notify_all();
  }

  template <typename Pred>
  bool wait_for(Pred pred, int ms = 2000) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return pred(commands); });
  }
};

/// Captures offloaded ReplyTasks the way CopReplica's pillars would.
struct ReplyLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<ReplyTask> tasks;
  bool reject = false;

  bool on_task(ReplyTask& task) {
    std::lock_guard lock(mutex);
    if (reject) return false;
    tasks.push_back(std::move(task));
    cv.notify_all();
    return true;
  }

  bool wait_for(std::size_t count, int ms = 2000) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return tasks.size() >= count; });
  }
};

class ExecutionStageTest : public ::testing::Test {
 protected:
  void start(ReplyMode mode = ReplyMode::kAll, std::uint32_t pillars = 2,
             bool offload = false, std::uint32_t exec_workers = 0) {
    config_.num_pillars = pillars;
    config_.protocol.num_pillars = pillars;
    config_.protocol.checkpoint_interval = 10;
    config_.protocol.window = 40;
    config_.reply_mode = mode;
    config_.gap_timeout_us = 10'000;
    config_.exec_workers = exec_workers;
    crypto_ = crypto::make_real_crypto(3);
    if (!service_) service_ = std::make_unique<app::NullService>(4);
    stage_ = std::make_unique<ExecutionStage>(/*self=*/1, config_, *service_,
                                              *crypto_, transport_);
    if (offload)
      stage_->set_reply_fn(
          [this](ReplyTask& task) { return replies_.on_task(task); });
    stage_->start();
    // Stand-in for the pillars' run loops: each pillar polls the stage for
    // its own share of bookkeeping — checkpoint rounds it owns, gap fills
    // for its slice — and we record what it picked up.
    pump_ = std::thread([this, pillars] {
      std::vector<PillarCommand> out;
      while (!pump_stop_.load(std::memory_order_acquire)) {
        const auto now =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        for (std::uint32_t p = 0; p < pillars; ++p) {
          out.clear();
          stage_->poll_pillar(p, static_cast<std::uint64_t>(now), out);
          for (PillarCommand& cmd : out) log_.record(p, std::move(cmd));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  void TearDown() override {
    if (pump_.joinable()) {
      pump_stop_.store(true, std::memory_order_release);
      pump_.join();
    }
    if (stage_) stage_->stop();
  }

  CommittedBatch batch(SeqNum seq, std::initializer_list<RequestId> ids,
                       ClientId client = 1001) {
    auto requests = std::make_shared<std::vector<Request>>();
    for (RequestId id : ids) {
      Request req;
      req.client = client;
      req.id = id;
      req.payload = to_bytes("x");
      requests->push_back(std::move(req));
    }
    // Stability basis as a real pillar would stamp it: the commit is
    // always inside the window authorized by its checkpoint.
    const SeqNum basis =
        seq > config_.protocol.window ? seq - config_.protocol.window : 0;
    return CommittedBatch{seq, 0, requests, seq % config_.num_pillars, basis};
  }

  bool wait_stats(const std::function<bool(const ExecutionStats&)>& pred,
                  int ms = 2000) {
    for (int spin = 0; spin < ms / 10; ++spin) {
      if (pred(stage_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred(stage_->stats());
  }

  bool wait_replies(std::size_t count, int ms = 2000) {
    for (int spin = 0; spin < ms / 10; ++spin) {
      if (transport_.sent_count() >= count) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return transport_.sent_count() >= count;
  }

  ReplicaRuntimeConfig config_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  std::unique_ptr<app::Service> service_;
  FakeTransport transport_;
  CommandLog log_;
  ReplyLog replies_;
  std::unique_ptr<ExecutionStage> stage_;
  std::thread pump_;
  std::atomic<bool> pump_stop_{false};
};

TEST_F(ExecutionStageTest, ExecutesInSequenceOrderDespiteArrivalOrder) {
  start();
  // Arrive out of order: 3, 1, 2.
  stage_->submit(batch(3, {30}));
  stage_->submit(batch(1, {10}));
  stage_->submit(batch(2, {20}));
  ASSERT_TRUE(wait_replies(3));
  stage_->stop();

  // Replies are sent in execution order: request 10, 20, 30.
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 3u);
  std::vector<RequestId> order;
  for (const auto& s : sent) {
    auto decoded = decode_message(s.frame);
    ASSERT_TRUE(decoded);
    order.push_back(std::get<Reply>(decoded->msg).id);
  }
  EXPECT_EQ(order, (std::vector<RequestId>{10, 20, 30}));
  EXPECT_EQ(stage_->stats().requests_executed, 3u);
  EXPECT_EQ(stage_->stats().last_executed_seq, 3u);
}

TEST_F(ExecutionStageTest, HoldsBackUntilGapCloses) {
  start();
  stage_->submit(batch(2, {20}));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(stage_->stats().requests_executed, 0u) << "seq 1 missing";
  stage_->submit(batch(1, {10}));
  ASSERT_TRUE(wait_replies(2));
  EXPECT_EQ(stage_->stats().requests_executed, 2u);
}

TEST_F(ExecutionStageTest, DuplicateRequestSuppressedAndReplyResent) {
  start();
  stage_->submit(batch(1, {7}));
  ASSERT_TRUE(wait_replies(1));
  // The same request committed again at a later sequence number (client
  // retransmission raced the first instance).
  stage_->submit(batch(2, {7}));
  ASSERT_TRUE(wait_replies(2));
  stage_->stop();

  EXPECT_EQ(stage_->stats().requests_executed, 1u) << "executed once";
  EXPECT_EQ(stage_->stats().duplicates_suppressed, 1u);
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 2u) << "cached reply resent";
  auto a = decode_message(sent[0].frame);
  auto b = decode_message(sent[1].frame);
  EXPECT_EQ(std::get<Reply>(a->msg).result, std::get<Reply>(b->msg).result);
}

TEST_F(ExecutionStageTest, NoopBatchesAdvanceWithoutExecution) {
  start();
  // seq 1 belongs to pillar 1 of 2 under c(p,i) = p + i*NP.
  stage_->submit(CommittedBatch{
      1, 0, std::make_shared<std::vector<Request>>(), 1});
  stage_->submit(batch(2, {5}));
  ASSERT_TRUE(wait_replies(1));
  EXPECT_EQ(stage_->stats().noops_executed, 1u);
  EXPECT_EQ(stage_->stats().requests_executed, 1u);
}

TEST_F(ExecutionStageTest, CheckpointTriggeredAtIntervalWithRoundRobinOwner) {
  start(ReplyMode::kAll, /*pillars=*/2);
  for (SeqNum s = 1; s <= 20; ++s)
    stage_->submit(batch(s, {static_cast<RequestId>(s)}));
  ASSERT_TRUE(log_.wait_for([](const auto& commands) {
    int checkpoints = 0;
    for (const auto& [pillar, cmd] : commands)
      if (std::holds_alternative<StartCheckpoint>(cmd)) ++checkpoints;
    return checkpoints >= 2;
  }));
  stage_->stop();

  std::vector<std::pair<std::uint32_t, SeqNum>> checkpoints;
  for (const auto& [pillar, cmd] : log_.commands)
    if (const auto* cp = std::get_if<StartCheckpoint>(&cmd))
      checkpoints.emplace_back(pillar, cp->seq);
  ASSERT_GE(checkpoints.size(), 2u);
  // Both signals may land in the same poll round, so the pickup order
  // between pillars is arbitrary — order by sequence number.
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  // interval 10: checkpoint at 10 owned by pillar (10/10)%2=1, at 20 by
  // (20/10)%2=0 — the paper's round-robin checkpoint distribution. Each
  // signal is picked up only by the owning pillar's poll.
  EXPECT_EQ(checkpoints[0], (std::pair<std::uint32_t, SeqNum>{1u, 10u}));
  EXPECT_EQ(checkpoints[1], (std::pair<std::uint32_t, SeqNum>{0u, 20u}));
}

TEST_F(ExecutionStageTest, GapFillRequestedWhenStalled) {
  start();
  stage_->submit(batch(5, {50}));  // seqs 1-4 missing
  // Each pillar times its own stall against the shared frontier and
  // requests a fill for its own slice — wait until every pillar fired.
  ASSERT_TRUE(log_.wait_for([&](const auto& commands) {
    std::set<std::uint32_t> pillars;
    for (const auto& [pillar, cmd] : commands)
      if (std::holds_alternative<FillGap>(cmd)) pillars.insert(pillar);
    return pillars.size() >= config_.num_pillars;
  }));
  // Every pillar is asked to fill its slice up to the buffered frontier.
  std::set<std::uint32_t> asked;
  SeqNum target = 0;
  {
    std::lock_guard lock(log_.mutex);
    for (const auto& [pillar, cmd] : log_.commands)
      if (const auto* gap = std::get_if<FillGap>(&cmd)) {
        asked.insert(pillar);
        target = gap->seq;
      }
  }
  EXPECT_EQ(asked.size(), 2u);
  EXPECT_EQ(target, 5u);
}

TEST_F(ExecutionStageTest, OmitOneSkipsDeterministicReplica) {
  start(ReplyMode::kOmitOne);
  // Find a request id whose omitted replier is replica 1 (self), and one
  // whose is not.
  RequestId omitted_id = 0, replied_id = 0;
  for (RequestId id = 1; id < 50 && (!omitted_id || !replied_id); ++id) {
    if (config_.omitted_replier(request_key(1001, id)) == 1)
      omitted_id = omitted_id ? omitted_id : id;
    else
      replied_id = replied_id ? replied_id : id;
  }
  ASSERT_NE(omitted_id, 0u);
  ASSERT_NE(replied_id, 0u);

  stage_->submit(batch(1, {omitted_id}));
  stage_->submit(batch(2, {replied_id}));
  ASSERT_TRUE(wait_replies(1));
  stage_->stop();

  EXPECT_EQ(stage_->stats().replies_omitted, 1u);
  EXPECT_EQ(stage_->stats().replies_sent, 1u);
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(std::get<Reply>(decode_message(sent[0].frame)->msg).id,
            replied_id);
}

// ---- offloaded post-execution (paper §4.3.2) ----------------------------

TEST_F(ExecutionStageTest, RepliesOffloadToOriginatingPillar) {
  start(ReplyMode::kAll, /*pillars=*/2, /*offload=*/true);
  stage_->submit(batch(1, {11}));
  stage_->submit(batch(2, {12}));
  stage_->submit(batch(3, {13}));
  ASSERT_TRUE(replies_.wait_for(3));
  stage_->stop();

  std::lock_guard lock(replies_.mutex);
  ASSERT_EQ(replies_.tasks.size(), 3u);
  for (std::size_t i = 0; i < replies_.tasks.size(); ++i) {
    const ReplyTask& task = replies_.tasks[i];
    EXPECT_EQ(task.seq, i + 1) << "tasks emitted in execution order";
    EXPECT_EQ(task.pillar, task.seq % 2)
        << "reply must route to the pillar that ran the instance";
    ASSERT_TRUE(task.requests) << "fresh reply carries its batch";
    EXPECT_EQ((*task.requests)[task.index].id, task.request);
  }
  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.replies_sent, 3u);
  EXPECT_EQ(stats.replies_offloaded, 3u);
  EXPECT_EQ(transport_.sent_count(), 0u) << "nothing sealed inline";
}

TEST_F(ExecutionStageTest, OffloadedReplyCarriesCommitView) {
  start(ReplyMode::kAll, /*pillars=*/2, /*offload=*/true);
  // A commit delivered after a view change must stamp the new view into
  // the reply (clients match replies against the view they learn).
  CommittedBatch post_view_change = batch(1, {5});
  post_view_change.view = 3;
  stage_->submit(std::move(post_view_change));
  ASSERT_TRUE(replies_.wait_for(1));

  std::lock_guard lock(replies_.mutex);
  ASSERT_EQ(replies_.tasks.size(), 1u);
  EXPECT_EQ(replies_.tasks[0].view, 3u);
}

TEST_F(ExecutionStageTest, ReplyCacheEvictsOldestAndServesIndexedHits) {
  start(ReplyMode::kAll, /*pillars=*/2, /*offload=*/true);
  // Fill one client's reply cache past its 32-entry bound: ids 1..40, so
  // the 8 oldest (1..8) are evicted.
  for (SeqNum s = 1; s <= 40; ++s)
    stage_->submit(batch(s, {static_cast<RequestId>(s)}));
  ASSERT_TRUE(replies_.wait_for(40));
  // A retransmission of a still-cached id is answered from the index; a
  // retransmission of an evicted id is suppressed without a reply.
  stage_->submit(batch(41, {40}));
  stage_->submit(batch(42, {2}));
  ASSERT_TRUE(replies_.wait_for(41));
  ASSERT_TRUE(wait_stats(
      [](const ExecutionStats& s) { return s.duplicates_suppressed >= 2; }));
  stage_->stop();

  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.requests_executed, 40u) << "retransmissions not re-run";
  EXPECT_EQ(stats.duplicates_suppressed, 2u);
  EXPECT_EQ(stats.replies_sent, 41u) << "hit resent, evicted miss silent";

  std::lock_guard lock(replies_.mutex);
  const ReplyTask& resent = replies_.tasks.back();
  EXPECT_EQ(resent.request, 40u);
  EXPECT_EQ(resent.seq, 40u) << "stamped with the original instance";
  EXPECT_EQ(resent.pillar, 0u) << "routed via the original pillar";
  EXPECT_FALSE(resent.requests) << "cached retransmission skips post_process";
}

TEST_F(ExecutionStageTest, OmitOneUnderOffloadEmitsNoTaskForOmitted) {
  start(ReplyMode::kOmitOne, /*pillars=*/2, /*offload=*/true);
  RequestId omitted_id = 0, replied_id = 0;
  for (RequestId id = 1; id < 50 && (!omitted_id || !replied_id); ++id) {
    if (config_.omitted_replier(request_key(1001, id)) == 1)
      omitted_id = omitted_id ? omitted_id : id;
    else
      replied_id = replied_id ? replied_id : id;
  }
  ASSERT_NE(omitted_id, 0u);
  ASSERT_NE(replied_id, 0u);

  stage_->submit(batch(1, {omitted_id}));
  stage_->submit(batch(2, {replied_id}));
  ASSERT_TRUE(replies_.wait_for(1));
  ASSERT_TRUE(wait_stats(
      [](const ExecutionStats& s) { return s.requests_executed >= 2; }));
  {
    std::lock_guard lock(replies_.mutex);
    ASSERT_EQ(replies_.tasks.size(), 1u) << "omitted request emits no task";
    EXPECT_EQ(replies_.tasks[0].request, replied_id);
  }
  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.replies_omitted, 1u);
  EXPECT_EQ(stats.replies_sent, 1u);

  // A retransmission of the omitted request is still answered from the
  // cache: the reply cache is replicated state, independent of which
  // replica omitted the original reply.
  stage_->submit(batch(3, {omitted_id}));
  ASSERT_TRUE(replies_.wait_for(2));
  std::lock_guard lock(replies_.mutex);
  EXPECT_EQ(replies_.tasks[1].request, omitted_id);
  EXPECT_FALSE(replies_.tasks[1].requests);
}

TEST_F(ExecutionStageTest, FallsBackInlineWhenPillarRejects) {
  start(ReplyMode::kAll, /*pillars=*/2, /*offload=*/true);
  {
    std::lock_guard lock(replies_.mutex);
    replies_.reject = true;  // saturated / closing pillar
  }
  stage_->submit(batch(1, {9}));
  ASSERT_TRUE(wait_replies(1));
  stage_->stop();

  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.replies_sent, 1u);
  EXPECT_EQ(stats.replies_offloaded, 0u);
  // The inline fallback seals a full, verifiable reply frame itself.
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 1u);
  auto decoded = decode_message(sent[0].frame);
  ASSERT_TRUE(decoded);
  const auto& reply = std::get<Reply>(decoded->msg);
  EXPECT_EQ(reply.id, 9u);
  ByteSpan body{sent[0].frame.data(), decoded->body_size};
  EXPECT_TRUE(reply.auth.verify(*crypto_, replica_node(1),
                                client_node(1001), body));
}

// ---- reorder ring under adversarial sequence patterns -------------------
//
// window=40 sizes the ring at 128 slots (2·window+2 rounded up to a power
// of two), so seqs 2 and 130 share slot 2. A Byzantine pillar — or a
// stale stable_basis after state transfer — can legally present both.

std::atomic<std::uint64_t> g_invariant_fires{0};
void count_invariant(const InvariantViolation&) {
  g_invariant_fires.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(ExecutionStageTest, SlotCollisionDropsHigherSeqAndCounts) {
  start(ReplyMode::kAll, /*pillars=*/1);
  stage_->submit(batch(2, {20}));    // parked: seq 1 missing
  stage_->submit(batch(130, {13}));  // 130 & 127 == 2: collides
  ASSERT_TRUE(wait_stats(
      [](const ExecutionStats& s) { return s.reorder_slot_drops >= 1; }));

  // The lower seq executes first, so it is the one kept; 130 is dropped
  // and gap detection would re-fetch it later.
  stage_->submit(batch(1, {10}));
  ASSERT_TRUE(wait_replies(2));
  stage_->stop();
  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.reorder_slot_drops, 1u);
  EXPECT_EQ(stats.requests_executed, 2u) << "collided 130 must not execute";
  EXPECT_EQ(stats.last_executed_seq, 2u);
}

TEST_F(ExecutionStageTest, SlotCollisionEvictsHigherSeqOccupant) {
  start(ReplyMode::kAll, /*pillars=*/1);
  // Reverse arrival order: the higher seq occupies the slot first and must
  // be evicted in favour of the lower one.
  stage_->submit(batch(130, {13}));
  stage_->submit(batch(2, {20}));
  ASSERT_TRUE(wait_stats(
      [](const ExecutionStats& s) { return s.reorder_slot_drops >= 1; }));

  stage_->submit(batch(1, {10}));
  ASSERT_TRUE(wait_replies(2));
  stage_->stop();
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(std::get<Reply>(decode_message(sent[1].frame)->msg).id, 20u)
      << "seq 2 survived the eviction and executed";
  EXPECT_EQ(stage_->stats().requests_executed, 2u);
}

TEST_F(ExecutionStageTest, DriftAtBoundAdmittedOnePastBoundFires) {
  g_invariant_fires.store(0);
  InvariantHandler prev = set_invariant_handler(&count_invariant);
  start(ReplyMode::kAll, /*pillars=*/1);

  // Exactly at the drift bound: seq = stable_basis + window is legal.
  CommittedBatch at_bound = batch(41, {41});
  at_bound.stable_basis = 1;
  stage_->submit(std::move(at_bound));
  // One past the bound violates §3.4's checkpoint-window drift invariant.
  CommittedBatch past_bound = batch(42, {42});
  past_bound.stable_basis = 1;
  stage_->submit(std::move(past_bound));
  ASSERT_TRUE(wait_stats([](const ExecutionStats&) {
    return g_invariant_fires.load() >= 1;
  }));
  stage_->stop();
  set_invariant_handler(prev);
  EXPECT_EQ(g_invariant_fires.load(), 1u) << "at-bound batch must not fire";
}

TEST_F(ExecutionStageTest, SequentialWrapAroundExecutesEverything) {
  start(ReplyMode::kAll, /*pillars=*/1);
  // 300 seqs > 2 full ring revolutions (128 slots): steady in-order flow
  // must reuse slots without collisions or drops. Submit in chunks smaller
  // than the ring and let execution drain between them — a single burst
  // would outrun the frontier and make collisions legal.
  constexpr SeqNum kTotal = 300;
  constexpr SeqNum kChunk = 100;
  for (SeqNum s = 1; s <= kTotal; ++s) {
    stage_->submit(batch(s, {static_cast<RequestId>(s)}));
    if (s % kChunk == 0) ASSERT_TRUE(wait_replies(s, /*ms=*/10'000)) << s;
  }
  ASSERT_TRUE(wait_replies(kTotal, /*ms=*/10'000));
  stage_->stop();
  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.requests_executed, kTotal);
  EXPECT_EQ(stats.last_executed_seq, kTotal);
  EXPECT_EQ(stats.reorder_slot_drops, 0u);
}

// ---- parallel execution: the in-flight retransmission race --------------

/// Sharded service whose execute() blocks until released — holds a request
/// "in flight" on a worker so a retransmission can race it.
class GateService final : public app::Service {
 public:
  Bytes execute(const protocol::Request& request) override {
    {
      std::unique_lock lock(mutex_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return to_bytes("result-" + std::to_string(request.id));
  }
  app::AccessClass classify(const protocol::Request& request) const override {
    return app::AccessClass::sharded(
        static_cast<std::uint32_t>(request.id % 4), /*write=*/true);
  }
  crypto::Digest state_digest() const override { return {}; }

  bool wait_entered(int count, int ms = 2000) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, std::chrono::milliseconds(ms),
                        [&] { return entered_ >= count; });
  }
  void release() {
    std::lock_guard lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

TEST_F(ExecutionStageTest, RetransmissionWhileOriginalInFlightKeepsOneStamp) {
  auto gate = std::make_unique<GateService>();
  GateService* service = gate.get();
  service_ = std::move(gate);
  start(ReplyMode::kAll, /*pillars=*/2, /*offload=*/true, /*exec_workers=*/2);

  // Both instances must land in one ready streak — the stage drains the
  // pool before going idle, so the in-flight window only exists for a
  // retransmission processed back-to-back with its original. Admit the
  // retransmission (seq 2) first; it parks on the gap at seq 1.
  stage_->submit(batch(2, {7}));
  // Closing the gap makes the stage dispatch the original to a worker —
  // which blocks inside execute() — and then immediately hit the
  // retransmission while the cache entry's result is still pending. The
  // stage must not resend that pending (empty) entry, and it must not
  // re-execute: it retires the original first, then resends its reply.
  stage_->submit(batch(1, {7}));
  ASSERT_TRUE(service->wait_entered(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard lock(replies_.mutex);
    EXPECT_TRUE(replies_.tasks.empty()) << "nothing may be emitted while "
                                           "the original is still in flight";
  }
  service->release();
  ASSERT_TRUE(replies_.wait_for(2));
  stage_->stop();

  ExecutionStats stats = stage_->stats();
  EXPECT_EQ(stats.requests_executed, 1u) << "executed exactly once";
  EXPECT_EQ(stats.requests_parallel, 1u);
  EXPECT_EQ(stats.duplicates_suppressed, 1u);

  std::lock_guard lock(replies_.mutex);
  ASSERT_EQ(replies_.tasks.size(), 2u);
  const ReplyTask& original = replies_.tasks[0];
  const ReplyTask& resend = replies_.tasks[1];
  // Both replies carry the *original* instance's stamp — a client must
  // never see the same request answered under two (pillar, seq) pairs.
  EXPECT_EQ(original.seq, 1u);
  EXPECT_EQ(resend.seq, 1u);
  EXPECT_EQ(original.pillar, 1u);
  EXPECT_EQ(resend.pillar, 1u);
  EXPECT_EQ(original.result, to_bytes("result-7"));
  EXPECT_EQ(resend.result, to_bytes("result-7"))
      << "the resend must carry the executed result, not the pending entry";
  EXPECT_FALSE(resend.requests) << "cached retransmission skips post_process";
}

TEST_F(ExecutionStageTest, RepliesCarryVerifiableMac) {
  start();
  stage_->submit(batch(1, {9}));
  ASSERT_TRUE(wait_replies(1));
  stage_->stop();
  auto sent = transport_.take_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].to, client_node(1001));
  auto decoded = decode_message(sent[0].frame);
  ASSERT_TRUE(decoded);
  const auto& reply = std::get<Reply>(decoded->msg);
  ByteSpan body{sent[0].frame.data(), decoded->body_size};
  EXPECT_TRUE(reply.auth.verify(*crypto_, replica_node(1),
                                client_node(1001), body));
}

}  // namespace
}  // namespace copbft::test
