#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <thread>

#include "common/rng.hpp"
#include "transport/inproc.hpp"
#include "transport/tcp.hpp"

namespace copbft::test {
namespace {

using namespace copbft::transport;

// ---- in-process -------------------------------------------------------

TEST(Inproc, DeliversToRegisteredSink) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);

  EXPECT_TRUE(network.endpoint(1).send(2, 0, to_bytes("hello")));
  auto frame = inbox->queue().pop();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 1u);
  EXPECT_EQ(frame->lane, 0u);
  EXPECT_EQ(to_string(frame->bytes), "hello");
}

TEST(Inproc, UnknownDestinationFails) {
  InprocNetwork network;
  EXPECT_FALSE(network.endpoint(1).send(99, 0, to_bytes("x")));
}

TEST(Inproc, LanesAreIndependent) {
  InprocNetwork network;
  auto lane0 = std::make_shared<Inbox>();
  auto lane1 = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, lane0);
  network.endpoint(2).register_sink(1, lane1);

  network.endpoint(1).send(2, 1, to_bytes("one"));
  network.endpoint(1).send(2, 0, to_bytes("zero"));
  EXPECT_EQ(to_string(lane0->queue().pop()->bytes), "zero");
  EXPECT_EQ(to_string(lane1->queue().pop()->bytes), "one");
}

TEST(Inproc, FilterDropsFrames) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  network.set_filter([](crypto::KeyNodeId from, crypto::KeyNodeId, LaneId) {
    return from != 1;  // drop everything node 1 sends
  });

  EXPECT_TRUE(network.endpoint(1).send(2, 0, to_bytes("dropped")));
  EXPECT_TRUE(network.endpoint(3).send(2, 0, to_bytes("kept")));
  auto frame = inbox->queue().pop();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 3u);
  EXPECT_TRUE(inbox->queue().empty());
}

TEST(Inproc, ShutdownClosesSinks) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  network.endpoint(2).shutdown();
  EXPECT_EQ(inbox->queue().pop(), std::nullopt);
}

TEST(Inproc, PerSenderFifoOrder) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  for (int i = 0; i < 100; ++i)
    network.endpoint(1).send(2, 0, Bytes{static_cast<Byte>(i)});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(inbox->queue().pop()->bytes[0], static_cast<Byte>(i));
}

// ---- TCP --------------------------------------------------------------

std::uint16_t pick_port(std::uint16_t base) {
  // Spread across runs to dodge TIME_WAIT collisions.
  auto salt = static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() / 1000);
  return static_cast<std::uint16_t>(base + (salt % 400));
}

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_port_ = pick_port(45000);
    peers_[1] = {"127.0.0.1", base_port_};
    peers_[2] = {"127.0.0.1", static_cast<std::uint16_t>(base_port_ + 1)};
    a_ = std::make_unique<TcpTransport>(1, base_port_, peers_);
    b_ = std::make_unique<TcpTransport>(
        2, static_cast<std::uint16_t>(base_port_ + 1), peers_);
    a_inbox_ = std::make_shared<Inbox>();
    b_inbox_ = std::make_shared<Inbox>();
    a_->register_sink(0, a_inbox_);
    a_->register_sink(1, a_inbox_);
    b_->register_sink(0, b_inbox_);
    b_->register_sink(1, b_inbox_);
    ASSERT_TRUE(a_->start());
    ASSERT_TRUE(b_->start());
  }

  void TearDown() override {
    a_->shutdown();
    b_->shutdown();
  }

  std::uint16_t base_port_;
  std::map<crypto::KeyNodeId, TcpPeer> peers_;
  std::unique_ptr<TcpTransport> a_, b_;
  std::shared_ptr<Inbox> a_inbox_, b_inbox_;
};

TEST_F(TcpTest, FramesRoundTrip) {
  ASSERT_TRUE(a_->send(2, 0, to_bytes("ping")));
  auto frame = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 1u);
  EXPECT_EQ(to_string(frame->bytes), "ping");

  ASSERT_TRUE(b_->send(1, 0, to_bytes("pong")));
  frame = a_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 2u);
  EXPECT_EQ(to_string(frame->bytes), "pong");
}

TEST_F(TcpTest, EmptyAndLargeFrames) {
  ASSERT_TRUE(a_->send(2, 0, Bytes{}));
  Rng rng(5);
  Bytes big(256 * 1024);
  for (auto& byte : big) byte = static_cast<Byte>(rng.below(256));
  ASSERT_TRUE(a_->send(2, 0, big));

  auto empty = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(empty);
  EXPECT_TRUE(empty->bytes.empty());
  auto large = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(large);
  EXPECT_EQ(large->bytes, big);
}

TEST_F(TcpTest, LanesUseSeparateConnections) {
  ASSERT_TRUE(a_->send(2, 0, to_bytes("lane0")));
  ASSERT_TRUE(a_->send(2, 1, to_bytes("lane1")));
  std::set<std::string> got;
  for (int i = 0; i < 2; ++i) {
    auto frame =
        b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame);
    got.insert(to_string(frame->bytes));
  }
  EXPECT_EQ(got, (std::set<std::string>{"lane0", "lane1"}));
}

TEST_F(TcpTest, ManyFramesInOrderPerLane) {
  for (int i = 0; i < 500; ++i) {
    Bytes frame = {static_cast<Byte>(i & 0xff), static_cast<Byte>(i >> 8)};
    ASSERT_TRUE(a_->send(2, 0, std::move(frame)));
  }
  for (int i = 0; i < 500; ++i) {
    auto frame =
        b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame) << "frame " << i;
    int value = frame->bytes[0] | (frame->bytes[1] << 8);
    EXPECT_EQ(value, i);
  }
}

TEST_F(TcpTest, SendToUnknownPeerFails) {
  EXPECT_FALSE(a_->send(42, 0, to_bytes("x")));
}

TEST_F(TcpTest, SendAfterShutdownFails) {
  a_->shutdown();
  EXPECT_FALSE(a_->send(2, 0, to_bytes("x")));
}

// ---- connect retry ----------------------------------------------------

// Replicas boot in arbitrary order: the first sender often races the
// peer's listen(). The bounded backoff in connect_with_retry must bridge a
// listener that shows up tens of milliseconds late.
TEST(TcpConnectRetry, BridgesLateListener) {
  std::uint16_t port = pick_port(46000);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[2] = {"127.0.0.1", port};

  TcpTransport sender(1, /*listen_port=*/0, peers);
  sender.set_connect_retry(/*attempts=*/8, /*base_delay_ms=*/10);
  ASSERT_TRUE(sender.start());

  std::unique_ptr<TcpTransport> listener;
  auto inbox = std::make_shared<Inbox>();
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    listener = std::make_unique<TcpTransport>(2, port, peers);
    listener->register_sink(0, inbox);
    ASSERT_TRUE(listener->start());
  });

  // Issued while nothing is listening yet; must ride the retry schedule.
  bool sent = sender.send(2, 0, to_bytes("early"));
  late.join();
  EXPECT_TRUE(sent);
  auto frame = inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(to_string(frame->bytes), "early");

  sender.shutdown();
  if (listener) listener->shutdown();
}

// The retry is bounded: with no listener ever appearing, send() must give
// up after the configured attempts instead of spinning forever.
TEST(TcpConnectRetry, GivesUpAfterBoundedAttempts) {
  std::uint16_t port = pick_port(46500);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[2] = {"127.0.0.1", port};

  TcpTransport sender(1, /*listen_port=*/0, peers);
  sender.set_connect_retry(/*attempts=*/3, /*base_delay_ms=*/5);
  ASSERT_TRUE(sender.start());

  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(sender.send(2, 0, to_bytes("void")));
  auto elapsed = std::chrono::steady_clock::now() - start;
  // 3 attempts → 2 sleeps of ≤ ~7 ms + ~13 ms (base·1.25, 2·base·1.25);
  // anything near a second means the bound is broken.
  EXPECT_LT(elapsed, std::chrono::milliseconds(800));
  sender.shutdown();
}

// ---- EINTR robustness -------------------------------------------------

extern "C" void eintr_noop_handler(int) {}

// Regression: read_exact/write_all treated every negative return as a dead
// connection. A signal without SA_RESTART delivered mid-transfer makes
// recv/send fail with EINTR, which tore down perfectly healthy connections
// (and, worse, mid-frame, desynchronizing the length-prefixed stream).
// Pelt both ends of a socketpair with signals while a multi-megabyte
// transfer dribbles through deliberately tiny socket buffers.
TEST(TcpEintr, LargeTransferSurvivesSignalStorm) {
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = eintr_noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls must see EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;  // force many short reads/writes
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);

  constexpr std::size_t kLen = 8 * 1024 * 1024;
  Bytes payload(kLen);
  Rng rng(7);
  for (auto& byte : payload) byte = static_cast<Byte>(rng.below(256));
  Bytes received(kLen);

  // Threads park on `stop` after finishing so pthread_kill always targets
  // a live thread.
  std::atomic<bool> writer_done{false}, reader_done{false}, stop{false};
  bool write_ok = false, read_ok = false;
  std::thread writer([&] {
    write_ok = write_all_fd(fds[0], payload.data(), payload.size());
    writer_done.store(true);
    while (!stop.load()) std::this_thread::yield();
  });
  std::thread reader([&] {
    read_ok = read_exact(fds[1], received.data(), received.size());
    reader_done.store(true);
    while (!stop.load()) std::this_thread::yield();
  });

  while (!writer_done.load() || !reader_done.load()) {
    pthread_kill(writer.native_handle(), SIGUSR1);
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stop.store(true);
  writer.join();
  reader.join();
  close(fds[0]);
  close(fds[1]);
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_TRUE(write_ok);
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace copbft::test
