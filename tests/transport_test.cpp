#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <set>
#include <thread>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "transport/event_loop.hpp"
#include "transport/inproc.hpp"
#include "transport/tcp.hpp"

namespace copbft::test {
namespace {

using namespace copbft::transport;

// ---- in-process -------------------------------------------------------

TEST(Inproc, DeliversToRegisteredSink) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);

  EXPECT_TRUE(network.endpoint(1).send(2, 0, to_bytes("hello")));
  auto frame = inbox->queue().pop();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 1u);
  EXPECT_EQ(frame->lane, 0u);
  EXPECT_EQ(to_string(frame->bytes), "hello");
}

TEST(Inproc, UnknownDestinationFails) {
  InprocNetwork network;
  EXPECT_FALSE(network.endpoint(1).send(99, 0, to_bytes("x")));
}

TEST(Inproc, LanesAreIndependent) {
  InprocNetwork network;
  auto lane0 = std::make_shared<Inbox>();
  auto lane1 = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, lane0);
  network.endpoint(2).register_sink(1, lane1);

  network.endpoint(1).send(2, 1, to_bytes("one"));
  network.endpoint(1).send(2, 0, to_bytes("zero"));
  EXPECT_EQ(to_string(lane0->queue().pop()->bytes), "zero");
  EXPECT_EQ(to_string(lane1->queue().pop()->bytes), "one");
}

TEST(Inproc, FilterDropsFrames) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  network.set_filter([](crypto::KeyNodeId from, crypto::KeyNodeId, LaneId) {
    return from != 1;  // drop everything node 1 sends
  });

  EXPECT_TRUE(network.endpoint(1).send(2, 0, to_bytes("dropped")));
  EXPECT_TRUE(network.endpoint(3).send(2, 0, to_bytes("kept")));
  auto frame = inbox->queue().pop();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 3u);
  EXPECT_TRUE(inbox->queue().empty());
}

TEST(Inproc, ShutdownClosesSinks) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  network.endpoint(2).shutdown();
  EXPECT_EQ(inbox->queue().pop(), std::nullopt);
}

TEST(Inproc, PerSenderFifoOrder) {
  InprocNetwork network;
  auto inbox = std::make_shared<Inbox>();
  network.endpoint(2).register_sink(0, inbox);
  for (int i = 0; i < 100; ++i)
    network.endpoint(1).send(2, 0, Bytes{static_cast<Byte>(i)});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(inbox->queue().pop()->bytes[0], static_cast<Byte>(i));
}

// ---- TCP --------------------------------------------------------------

std::uint16_t pick_port(std::uint16_t base) {
  // Spread across runs to dodge TIME_WAIT collisions.
  auto salt = static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() / 1000);
  return static_cast<std::uint16_t>(base + (salt % 400));
}

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_port_ = pick_port(45000);
    peers_[1] = {"127.0.0.1", base_port_};
    peers_[2] = {"127.0.0.1", static_cast<std::uint16_t>(base_port_ + 1)};
    a_ = std::make_unique<TcpTransport>(1, base_port_, peers_);
    b_ = std::make_unique<TcpTransport>(
        2, static_cast<std::uint16_t>(base_port_ + 1), peers_);
    a_inbox_ = std::make_shared<Inbox>();
    b_inbox_ = std::make_shared<Inbox>();
    a_->register_sink(0, a_inbox_);
    a_->register_sink(1, a_inbox_);
    b_->register_sink(0, b_inbox_);
    b_->register_sink(1, b_inbox_);
    ASSERT_TRUE(a_->start());
    ASSERT_TRUE(b_->start());
  }

  void TearDown() override {
    a_->shutdown();
    b_->shutdown();
  }

  std::uint16_t base_port_;
  std::map<crypto::KeyNodeId, TcpPeer> peers_;
  std::unique_ptr<TcpTransport> a_, b_;
  std::shared_ptr<Inbox> a_inbox_, b_inbox_;
};

TEST_F(TcpTest, FramesRoundTrip) {
  ASSERT_TRUE(a_->send(2, 0, to_bytes("ping")));
  auto frame = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 1u);
  EXPECT_EQ(to_string(frame->bytes), "ping");

  ASSERT_TRUE(b_->send(1, 0, to_bytes("pong")));
  frame = a_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->from, 2u);
  EXPECT_EQ(to_string(frame->bytes), "pong");
}

TEST_F(TcpTest, EmptyAndLargeFrames) {
  ASSERT_TRUE(a_->send(2, 0, Bytes{}));
  Rng rng(5);
  Bytes big(256 * 1024);
  for (auto& byte : big) byte = static_cast<Byte>(rng.below(256));
  ASSERT_TRUE(a_->send(2, 0, big));

  auto empty = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(empty);
  EXPECT_TRUE(empty->bytes.empty());
  auto large = b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(large);
  EXPECT_EQ(large->bytes, big);
}

TEST_F(TcpTest, LanesUseSeparateConnections) {
  ASSERT_TRUE(a_->send(2, 0, to_bytes("lane0")));
  ASSERT_TRUE(a_->send(2, 1, to_bytes("lane1")));
  std::set<std::string> got;
  for (int i = 0; i < 2; ++i) {
    auto frame =
        b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame);
    got.insert(to_string(frame->bytes));
  }
  EXPECT_EQ(got, (std::set<std::string>{"lane0", "lane1"}));
}

TEST_F(TcpTest, ManyFramesInOrderPerLane) {
  for (int i = 0; i < 500; ++i) {
    Bytes frame = {static_cast<Byte>(i & 0xff), static_cast<Byte>(i >> 8)};
    ASSERT_TRUE(a_->send(2, 0, std::move(frame)));
  }
  for (int i = 0; i < 500; ++i) {
    auto frame =
        b_inbox_->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame) << "frame " << i;
    int value = frame->bytes[0] | (frame->bytes[1] << 8);
    EXPECT_EQ(value, i);
  }
}

TEST_F(TcpTest, SendToUnknownPeerFails) {
  EXPECT_FALSE(a_->send(42, 0, to_bytes("x")));
}

TEST_F(TcpTest, SendAfterShutdownFails) {
  a_->shutdown();
  EXPECT_FALSE(a_->send(2, 0, to_bytes("x")));
}

// ---- connect retry ----------------------------------------------------

// Replicas boot in arbitrary order: the first sender often races the
// peer's listen(). The bounded backoff in connect_with_retry must bridge a
// listener that shows up tens of milliseconds late.
TEST(TcpConnectRetry, BridgesLateListener) {
  std::uint16_t port = pick_port(46000);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[2] = {"127.0.0.1", port};

  TcpTransport sender(1, /*listen_port=*/0, peers);
  sender.set_connect_retry(/*attempts=*/8, /*base_delay_ms=*/10);
  ASSERT_TRUE(sender.start());

  std::unique_ptr<TcpTransport> listener;
  auto inbox = std::make_shared<Inbox>();
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    listener = std::make_unique<TcpTransport>(2, port, peers);
    listener->register_sink(0, inbox);
    ASSERT_TRUE(listener->start());
  });

  // Issued while nothing is listening yet; must ride the retry schedule.
  bool sent = sender.send(2, 0, to_bytes("early"));
  late.join();
  EXPECT_TRUE(sent);
  auto frame = inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(frame);
  EXPECT_EQ(to_string(frame->bytes), "early");

  sender.shutdown();
  if (listener) listener->shutdown();
}

// The retry is bounded: with no listener ever appearing, send() must give
// up after the configured attempts instead of spinning forever.
TEST(TcpConnectRetry, GivesUpAfterBoundedAttempts) {
  std::uint16_t port = pick_port(46500);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[2] = {"127.0.0.1", port};

  TcpTransport sender(1, /*listen_port=*/0, peers);
  sender.set_connect_retry(/*attempts=*/3, /*base_delay_ms=*/5);
  ASSERT_TRUE(sender.start());

  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(sender.send(2, 0, to_bytes("void")));
  auto elapsed = std::chrono::steady_clock::now() - start;
  // 3 attempts → 2 sleeps of ≤ ~7 ms + ~13 ms (base·1.25, 2·base·1.25);
  // anything near a second means the bound is broken.
  EXPECT_LT(elapsed, std::chrono::milliseconds(800));
  sender.shutdown();
}

// ---- EINTR robustness -------------------------------------------------

extern "C" void eintr_noop_handler(int) {}

// Regression: read_exact/write_all treated every negative return as a dead
// connection. A signal without SA_RESTART delivered mid-transfer makes
// recv/send fail with EINTR, which tore down perfectly healthy connections
// (and, worse, mid-frame, desynchronizing the length-prefixed stream).
// Pelt both ends of a socketpair with signals while a multi-megabyte
// transfer dribbles through deliberately tiny socket buffers.
TEST(TcpEintr, LargeTransferSurvivesSignalStorm) {
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = eintr_noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls must see EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;  // force many short reads/writes
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof small);

  constexpr std::size_t kLen = 8 * 1024 * 1024;
  Bytes payload(kLen);
  Rng rng(7);
  for (auto& byte : payload) byte = static_cast<Byte>(rng.below(256));
  Bytes received(kLen);

  // Threads park on `stop` after finishing so pthread_kill always targets
  // a live thread.
  std::atomic<bool> writer_done{false}, reader_done{false}, stop{false};
  bool write_ok = false, read_ok = false;
  std::thread writer([&] {
    write_ok = write_all_fd(fds[0], payload.data(), payload.size());
    writer_done.store(true);
    while (!stop.load()) std::this_thread::yield();
  });
  std::thread reader([&] {
    read_ok = read_exact(fds[1], received.data(), received.size());
    reader_done.store(true);
    while (!stop.load()) std::this_thread::yield();
  });

  while (!writer_done.load() || !reader_done.load()) {
    pthread_kill(writer.native_handle(), SIGUSR1);
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stop.store(true);
  writer.join();
  reader.join();
  close(fds[0]);
  close(fds[1]);
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_TRUE(write_ok);
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(received, payload);
}

// ---- frame decoder ----------------------------------------------------

Bytes encode_wire(const std::vector<Bytes>& frames) {
  Bytes wire;
  for (const Bytes& frame : frames) {
    std::uint32_t len = static_cast<std::uint32_t>(frame.size());
    const auto* p = reinterpret_cast<const Byte*>(&len);
    wire.insert(wire.end(), p, p + sizeof len);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

// The decoder must reassemble frames whose bytes arrive one at a time —
// every header and payload boundary torn — exactly as if they arrived in
// one read.
TEST(FrameDecoder, ByteAtATimeReassemblesFrames) {
  Rng rng(11);
  std::vector<Bytes> frames;
  frames.push_back({});  // empty frame: header only
  frames.push_back({Byte{0x42}});
  Bytes big(300);
  for (auto& byte : big) byte = static_cast<Byte>(rng.below(256));
  frames.push_back(big);
  frames.push_back({});
  Bytes wire = encode_wire(frames);

  FrameDecoder decoder(/*max_frame=*/1024);
  std::vector<Bytes> out;
  for (Byte byte : wire) ASSERT_TRUE(decoder.feed(&byte, 1, out));
  EXPECT_EQ(out, frames);
}

// Satellite hardening: the 4-byte length header is validated against the
// bound BEFORE the payload buffer is allocated — a hostile client cannot
// make the replica reserve gigabytes with 4 bytes of traffic.
TEST(FrameDecoder, RejectsOversizedHeaderWithoutAllocating) {
  FrameDecoder decoder(/*max_frame=*/1024);
  std::uint32_t hostile = 0x7fffffffu;
  std::vector<Bytes> out;
  EXPECT_FALSE(decoder.feed(reinterpret_cast<const Byte*>(&hostile),
                            sizeof hostile, out));
  EXPECT_TRUE(out.empty());
}

TEST(FrameDecoder, AcceptsFrameExactlyAtTheBound) {
  FrameDecoder decoder(/*max_frame=*/64);
  std::vector<Bytes> frames{Bytes(64, Byte{0xab})};
  Bytes wire = encode_wire(frames);
  std::vector<Bytes> out;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size(), out));
  EXPECT_EQ(out, frames);

  FrameDecoder strict(/*max_frame=*/63);
  out.clear();
  EXPECT_FALSE(strict.feed(wire.data(), wire.size(), out));
}

// ---- writev flush cursor ----------------------------------------------

// Drain the outbound queue one byte per "write": every resume point —
// mid-header, mid-payload, at each frame boundary — must produce the same
// byte stream a single write would, verified by decoding it back.
TEST(FlushCursor, ByteAtATimeDrainMatchesTheWire) {
  Rng rng(13);
  std::vector<Bytes> payloads;
  payloads.push_back({});
  payloads.push_back({Byte{0x01}});
  Bytes mid(5);
  for (auto& byte : mid) byte = static_cast<Byte>(rng.below(256));
  payloads.push_back(mid);
  Bytes big(300);
  for (auto& byte : big) byte = static_cast<Byte>(rng.below(256));
  payloads.push_back(big);

  std::deque<OutFrame> queue;
  for (const Bytes& payload : payloads)
    queue.push_back(
        OutFrame{static_cast<std::uint32_t>(payload.size()), payload});

  Bytes wire;
  std::size_t front_offset = 0;
  struct iovec iov[4];
  while (!queue.empty()) {
    std::size_t count = build_flush_iovecs(queue, front_offset, iov, 4);
    ASSERT_GT(count, 0u);
    wire.push_back(*static_cast<const Byte*>(iov[0].iov_base));
    std::size_t frames_done = 0, bytes_released = 0;
    front_offset =
        consume_flushed(queue, front_offset, 1, frames_done, bytes_released);
  }
  EXPECT_EQ(wire, encode_wire(payloads));

  FrameDecoder decoder(1024);
  std::vector<Bytes> out;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size(), out));
  EXPECT_EQ(out, payloads);
}

// Same drain at every chunk size: partial writev returns of any length
// leave a cursor the next flush resumes from without duplicating or
// dropping a byte.
TEST(FlushCursor, ArbitraryChunkDrainsMatchTheWire) {
  std::vector<Bytes> payloads{Bytes{}, Bytes(3, Byte{0x7f}),
                              Bytes(100, Byte{0x55})};
  const Bytes expected = encode_wire(payloads);
  for (std::size_t chunk = 1; chunk <= expected.size(); ++chunk) {
    std::deque<OutFrame> queue;
    for (const Bytes& payload : payloads)
      queue.push_back(
          OutFrame{static_cast<std::uint32_t>(payload.size()), payload});
    Bytes wire;
    std::size_t front_offset = 0;
    struct iovec iov[8];
    while (!queue.empty()) {
      std::size_t count = build_flush_iovecs(queue, front_offset, iov, 8);
      ASSERT_GT(count, 0u);
      std::size_t take = chunk;
      for (std::size_t i = 0; i < count && take > 0; ++i) {
        std::size_t n = std::min(take, iov[i].iov_len);
        const auto* base = static_cast<const Byte*>(iov[i].iov_base);
        wire.insert(wire.end(), base, base + n);
        take -= n;
      }
      std::size_t frames_done = 0, bytes_released = 0;
      front_offset = consume_flushed(queue, front_offset, chunk - take,
                                     frames_done, bytes_released);
    }
    ASSERT_EQ(wire, expected) << "chunk size " << chunk;
  }
}

// ---- fd hygiene -------------------------------------------------------

int count_open_fds() {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++count;
  return count;
}

// The Conn destructor is the RAII backstop: any error path that abandons a
// connection — a failed hello write, a lost publication race — still
// closes the socket.
TEST(TcpFdHygiene, ConnDestructorClosesTheSocket) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  { Conn conn(fds[0], Conn::Kind::kDialed, 2, 0, 1024, 16, 1 << 20); }
  EXPECT_EQ(fcntl(fds[0], F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);
  close(fds[1]);
}

// Regression for the fd leak in the thread-per-connection transport:
// dialed sockets were shutdown() but never close()d. Full lifecycles —
// traffic both ways, failed dials, shutdown — must return the process to
// its baseline descriptor count.
TEST(TcpFdHygiene, LifecyclesLeakNoDescriptors) {
  const std::uint16_t port = pick_port(47000);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[1] = {"127.0.0.1", port};
  peers[2] = {"127.0.0.1", static_cast<std::uint16_t>(port + 1)};

  const int baseline = count_open_fds();
  for (int round = 0; round < 3; ++round) {
    TcpTransport a(1, port, peers);
    TcpTransport b(2, static_cast<std::uint16_t>(port + 1), peers);
    auto a_inbox = std::make_shared<Inbox>();
    auto b_inbox = std::make_shared<Inbox>();
    a.register_sink(0, a_inbox);
    b.register_sink(0, b_inbox);
    ASSERT_TRUE(a.start());
    ASSERT_TRUE(b.start());
    ASSERT_TRUE(a.send(2, 0, to_bytes("there")));
    ASSERT_TRUE(b.send(1, 0, to_bytes("back")));
    ASSERT_TRUE(b_inbox->queue().pop_for(std::chrono::microseconds(2'000'000)));
    ASSERT_TRUE(a_inbox->queue().pop_for(std::chrono::microseconds(2'000'000)));
    // A dial that never connects must not leave a socket behind either.
    std::map<crypto::KeyNodeId, TcpPeer> dead;
    dead[9] = {"127.0.0.1", static_cast<std::uint16_t>(port + 7)};
    TcpTransport c(3, 0, dead);
    c.set_connect_retry(2, 1);
    ASSERT_TRUE(c.start());
    EXPECT_FALSE(c.send(9, 0, to_bytes("void")));
    a.shutdown();
    b.shutdown();
    c.shutdown();
  }
  EXPECT_EQ(count_open_fds(), baseline);
}

// ---- client routing ---------------------------------------------------

// Replies to a client must ride back over the connection the client
// dialed: the replica has no peer entry for the client (clients have no
// listen port), so the accepted-connection route is the only way home.
TEST(TcpClientRoute, RepliesRideTheAcceptedConnection) {
  const std::uint16_t port = pick_port(47500);
  std::map<crypto::KeyNodeId, TcpPeer> replica_peers;  // knows nobody
  TcpTransport replica(1, port, replica_peers);
  auto replica_inbox = std::make_shared<Inbox>();
  replica.register_sink(0, replica_inbox);
  ASSERT_TRUE(replica.start());

  std::map<crypto::KeyNodeId, TcpPeer> client_peers;
  client_peers[1] = {"127.0.0.1", port};
  TcpTransport client(5001, /*listen_port=*/0, client_peers);
  auto client_inbox = std::make_shared<Inbox>();
  client.register_sink(0, client_inbox);
  ASSERT_TRUE(client.start());

  ASSERT_TRUE(client.send(1, 0, to_bytes("request")));
  auto request =
      replica_inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(request);
  EXPECT_EQ(request->from, 5001u);

  ASSERT_TRUE(replica.send(5001, 0, to_bytes("reply")));
  auto reply =
      client_inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->from, 1u);
  EXPECT_EQ(to_string(reply->bytes), "reply");

  client.shutdown();
  replica.shutdown();
}

// Multiplexed client endpoints: many client identities share one
// transport's sockets and loops, each dialing with its own node id and
// receiving its own replies on its own sink.
TEST(TcpClientRoute, EndpointsKeepTheirIdentities) {
  const std::uint16_t port = pick_port(48000);
  std::map<crypto::KeyNodeId, TcpPeer> none;
  TcpTransport replica(1, port, none);
  auto replica_inbox = std::make_shared<Inbox>();
  replica.register_sink(0, replica_inbox);
  ASSERT_TRUE(replica.start());

  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[1] = {"127.0.0.1", port};
  TcpTransport mux(6000, /*listen_port=*/0, peers);
  ASSERT_TRUE(mux.start());
  auto first = mux.client_endpoint(6001);
  auto second = mux.client_endpoint(6002);
  ASSERT_TRUE(first);
  ASSERT_TRUE(second);
  auto first_inbox = std::make_shared<Inbox>();
  auto second_inbox = std::make_shared<Inbox>();
  first->register_sink(0, first_inbox);
  second->register_sink(0, second_inbox);

  ASSERT_TRUE(first->send(1, 0, to_bytes("from-6001")));
  ASSERT_TRUE(second->send(1, 0, to_bytes("from-6002")));
  std::set<crypto::KeyNodeId> senders;
  for (int i = 0; i < 2; ++i) {
    auto frame =
        replica_inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame);
    senders.insert(frame->from);
  }
  EXPECT_EQ(senders, (std::set<crypto::KeyNodeId>{6001, 6002}));

  ASSERT_TRUE(replica.send(6001, 0, to_bytes("to-6001")));
  ASSERT_TRUE(replica.send(6002, 0, to_bytes("to-6002")));
  auto to_first =
      first_inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(to_first);
  EXPECT_EQ(to_string(to_first->bytes), "to-6001");
  auto to_second =
      second_inbox->queue().pop_for(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(to_second);
  EXPECT_EQ(to_string(to_second->bytes), "to-6002");

  mux.shutdown();
  replica.shutdown();
}

// ---- admission control ------------------------------------------------

std::uint64_t counter_value(const std::string& name) {
  return metrics::MetricsRegistry::global().counter(name).value();
}

// A client blasting a replica whose sink is saturated must be shed at
// ingress (bounded retry queue, then drop) — never block the loop thread,
// never grow memory without bound.
TEST(TcpAdmission, OverloadShedsClientFramesAtIngress) {
  const std::uint16_t port = pick_port(48500);
  TcpOptions opts;
  opts.loop.ingress_retry_budget = 4;
  opts.loop.ingress_retry_deadline_us = 2'000;
  std::map<crypto::KeyNodeId, TcpPeer> none;
  TcpTransport replica(1, port, none, opts);
  auto tiny = std::make_shared<Inbox>(/*capacity=*/1);
  replica.register_sink(0, tiny);
  ASSERT_TRUE(replica.start());

  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[1] = {"127.0.0.1", port};
  TcpTransport client(5002, /*listen_port=*/0, peers);
  ASSERT_TRUE(client.start());

  const std::uint64_t shed_before =
      counter_value("tcp.node1.lane0.ingress_shed");
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(client.send(1, 0, Bytes(64, Byte{0x5a})));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (counter_value("tcp.node1.lane0.ingress_shed") == shed_before &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(counter_value("tcp.node1.lane0.ingress_shed"), shed_before);
  EXPECT_GT(counter_value("tcp.node1.lane0.ingress_accepted"), 0u);

  client.shutdown();
  replica.shutdown();
}

// Replica-to-replica traffic is lossless: when the sink is busy the loop
// parks decoded frames and disarms EPOLLIN (TCP flow control pushes back);
// every frame arrives, in order, with zero sheds.
TEST(TcpAdmission, ReplicaPeersAreLosslessUnderBackpressure) {
  const std::uint16_t port = pick_port(49000);
  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[1] = {"127.0.0.1", port};
  peers[2] = {"127.0.0.1", static_cast<std::uint16_t>(port + 1)};
  TcpTransport a(1, port, peers);
  TcpTransport b(2, static_cast<std::uint16_t>(port + 1), peers);
  auto slow = std::make_shared<Inbox>(/*capacity=*/2);
  b.register_sink(0, slow);
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());

  const std::uint64_t shed_before =
      counter_value("tcp.node2.lane0.ingress_shed");
  const std::uint64_t drop_before =
      counter_value("tcp.node2.lane0.ingress_deadline_drops");
  for (int i = 0; i < 50; ++i) {
    Bytes frame = {static_cast<Byte>(i), Byte{0}};
    ASSERT_TRUE(a.send(2, 0, std::move(frame)));
  }
  for (int i = 0; i < 50; ++i) {
    // Drain slowly so the parked/pause/resume machinery cycles.
    auto frame = slow->queue().pop_for(std::chrono::microseconds(2'000'000));
    ASSERT_TRUE(frame) << "frame " << i;
    EXPECT_EQ(frame->bytes[0], static_cast<Byte>(i));
    if (i % 10 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(counter_value("tcp.node2.lane0.ingress_shed"), shed_before);
  EXPECT_EQ(counter_value("tcp.node2.lane0.ingress_deadline_drops"),
            drop_before);

  a.shutdown();
  b.shutdown();
}

// ---- many-client soak -------------------------------------------------

/// Echoes every frame back to its sender over the accepted connection —
/// the reply path of a replica, minus the consensus in the middle.
class EchoSink final : public FrameSink {
 public:
  explicit EchoSink(TcpTransport& transport) : transport_(transport) {}
  bool deliver(ReceivedFrame frame) override {
    transport_.send(frame.from, frame.lane, std::move(frame.bytes));
    return true;
  }
  void close() override {}

 private:
  TcpTransport& transport_;
};

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kSoakClients = 256;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int kSoakClients = 256;
#else
constexpr int kSoakClients = 2000;
#endif
#else
constexpr int kSoakClients = 2000;
#endif

// Thousands of concurrent client connections multiplex onto the replica's
// two lane threads; under nominal load every request is admitted (zero
// sheds) and every client gets its reply.
TEST(TcpSoak, ThousandsOfClientsRoundTrip) {
  const std::uint16_t port = pick_port(49500);
  std::map<crypto::KeyNodeId, TcpPeer> none;
  TcpTransport replica(1, port, none);
  auto echo = std::make_shared<EchoSink>(replica);
  replica.register_sink(0, echo);
  ASSERT_TRUE(replica.start());

  std::map<crypto::KeyNodeId, TcpPeer> peers;
  peers[1] = {"127.0.0.1", port};
  TcpTransport mux(9000, /*listen_port=*/0, peers);
  ASSERT_TRUE(mux.start());
  auto shared_inbox = std::make_shared<Inbox>(kSoakClients + 64);

  const std::uint64_t shed_before =
      counter_value("tcp.node1.lane0.ingress_shed");
  const crypto::KeyNodeId base = 10'000;
  std::vector<std::shared_ptr<Transport>> endpoints;
  endpoints.reserve(kSoakClients);
  for (int i = 0; i < kSoakClients; ++i) {
    auto endpoint = mux.client_endpoint(base + static_cast<std::uint32_t>(i));
    ASSERT_TRUE(endpoint);
    endpoint->register_sink(0, shared_inbox);
    std::uint32_t id = base + static_cast<std::uint32_t>(i);
    Bytes payload(sizeof id);
    std::memcpy(payload.data(), &id, sizeof id);
    ASSERT_TRUE(endpoint->send(1, 0, std::move(payload))) << "client " << i;
    endpoints.push_back(std::move(endpoint));
  }

  std::set<std::uint32_t> replied;
  for (int i = 0; i < kSoakClients; ++i) {
    auto frame =
        shared_inbox->queue().pop_for(std::chrono::microseconds(10'000'000));
    ASSERT_TRUE(frame) << "reply " << i << " of " << kSoakClients;
    ASSERT_EQ(frame->bytes.size(), sizeof(std::uint32_t));
    std::uint32_t id = 0;
    std::memcpy(&id, frame->bytes.data(), sizeof id);
    replied.insert(id);
  }
  EXPECT_EQ(replied.size(), static_cast<std::size_t>(kSoakClients));
  // Nominal load: admission never shed a single request.
  EXPECT_EQ(counter_value("tcp.node1.lane0.ingress_shed"), shed_before);
  // The accepted-connection watermark proves the concurrency was real.
  EXPECT_GE(metrics::MetricsRegistry::global()
                .gauge("tcp.node1.accepted_conns")
                .max(),
            static_cast<std::int64_t>(kSoakClients));

  mux.shutdown();
  replica.shutdown();
}

}  // namespace
}  // namespace copbft::test
