#include <gtest/gtest.h>

#include "core/outbound.hpp"
#include "core/outbound_sink.hpp"
#include "protocol/verifier.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

TEST(Outbound, OtherReplicasExcludesSelf) {
  auto peers = other_replicas(4, 2);
  EXPECT_EQ(peers, (std::vector<crypto::KeyNodeId>{0, 1, 3}));
}

TEST(Outbound, SealedMessageVerifiesAtEveryRecipient) {
  auto crypto = crypto::make_real_crypto(21);
  Message msg = Prepare{1, 5, {}, /*replica=*/0, {}};
  Bytes frame = seal_message(msg, *crypto, replica_node(0),
                             other_replicas(4, 0));

  auto decoded = decode_message(frame);
  ASSERT_TRUE(decoded);
  const auto& prepare = std::get<Prepare>(decoded->msg);
  EXPECT_EQ(prepare.auth.entries.size(), 3u);
  for (ReplicaId r = 1; r < 4; ++r) {
    IncomingMessage im;
    im.msg = decoded->msg;
    im.raw = frame;
    im.body_size = decoded->body_size;
    CryptoVerifier verifier(*crypto, replica_node(r));
    EXPECT_TRUE(verifier.verify(im, replica_node(0))) << "replica " << r;
    EXPECT_FALSE(verifier.verify(im, replica_node(2)))
        << "wrong claimed sender";
  }
}

TEST(Outbound, TamperedFrameFailsVerification) {
  auto crypto = crypto::make_real_crypto(21);
  Message msg = Commit{1, 5, {}, 0, {}};
  Bytes frame = seal_message(msg, *crypto, replica_node(0), {replica_node(1)});
  frame[3] ^= 0x01;  // flip a body bit
  auto decoded = decode_message(frame);
  ASSERT_TRUE(decoded);
  IncomingMessage im;
  im.msg = decoded->msg;
  im.raw = std::move(frame);
  im.body_size = decoded->body_size;
  CryptoVerifier verifier(*crypto, replica_node(1));
  EXPECT_FALSE(verifier.verify(im, replica_node(0)));
}

TEST(Outbound, VerifierWorksWithoutRawFrame) {
  // Sim/tests hand parsed messages without wire bytes; the verifier
  // re-encodes the authenticated part.
  auto crypto = crypto::make_real_crypto(21);
  Message msg = Prepare{2, 9, {}, 3, {}};
  seal_message(msg, *crypto, replica_node(3), {replica_node(0)});
  IncomingMessage im;
  im.msg = msg;  // no raw bytes
  CryptoVerifier verifier(*crypto, replica_node(0));
  EXPECT_TRUE(verifier.verify(im, replica_node(3)));
}

TEST(Outbound, InPlaceBroadcastSendsToAllPeersOnLane) {
  auto crypto = crypto::make_real_crypto(21);
  FakeTransport transport;
  InPlaceOutbound outbound(/*self=*/1, 4, *crypto, transport);
  outbound.broadcast(Prepare{0, 3, {}, 1, {}}, /*lane=*/2);

  auto sent = transport.take_sent();
  ASSERT_EQ(sent.size(), 3u);
  std::set<crypto::KeyNodeId> recipients;
  for (const auto& s : sent) {
    recipients.insert(s.to);
    EXPECT_EQ(s.lane, 2u);
    EXPECT_TRUE(decode_message(s.frame).has_value());
  }
  EXPECT_EQ(recipients, (std::set<crypto::KeyNodeId>{0, 2, 3}));
}

TEST(Outbound, AuthPoolSealsAsynchronously) {
  auto crypto = crypto::make_real_crypto(21);
  FakeTransport transport;
  AuthPoolOutbound outbound(/*self=*/0, 4, *crypto, transport, 2, 128);
  for (int i = 0; i < 10; ++i)
    outbound.broadcast(Commit{0, static_cast<SeqNum>(i + 1), {}, 0, {}}, 0);
  outbound.send_to(2, Prepare{0, 1, {}, 0, {}}, 0);
  outbound.stop();  // drains the queue, joins workers

  auto sent = transport.take_sent();
  EXPECT_EQ(sent.size(), 10u * 3 + 1);
  for (const auto& s : sent) {
    auto decoded = decode_message(s.frame);
    ASSERT_TRUE(decoded);
    // Every frame verifiable by its addressee.
    CryptoVerifier verifier(*crypto, s.to);
    IncomingMessage im;
    im.msg = decoded->msg;
    im.raw = s.frame;
    im.body_size = decoded->body_size;
    EXPECT_TRUE(verifier.verify(im, replica_node(0)));
  }
}

TEST(Outbound, RequestVerifierChecksClientMac) {
  auto crypto = crypto::make_real_crypto(21);
  Request req;
  req.client = 1001;
  req.id = 4;
  req.payload = to_bytes("op");
  Bytes body = request_authenticated_bytes(req);
  req.auth = crypto::Authenticator::build(
      *crypto, client_node(1001), {replica_node(0), replica_node(1)}, body);

  CryptoVerifier v0(*crypto, replica_node(0));
  EXPECT_TRUE(v0.verify_request(req));
  CryptoVerifier v2(*crypto, replica_node(2));
  EXPECT_FALSE(v2.verify_request(req)) << "not addressed to replica 2";

  req.payload.push_back('!');
  EXPECT_FALSE(v0.verify_request(req)) << "payload tampered";
}

}  // namespace
}  // namespace copbft::test
