// End-to-end integration tests: four threaded replicas, in-process
// transport, real SHA-256/HMAC crypto, real clients — for all three
// architectures, including fault injection.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/coordination.hpp"
#include "app/kv_store.hpp"
#include "support/cluster_fixture.hpp"

namespace copbft::test {
namespace {

using core::CopReplica;

// Quorum progress only needs 2f+1 replicas, so the fourth may legally lag
// behind the client's view of completion — especially on one core. Poll
// until every replica satisfies `done` before reading its counters.
template <typename Pred>
bool wait_for_all_replicas(Cluster& cluster, Pred done,
                           std::chrono::seconds budget =
                               std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (true) {
    bool all = true;
    for (protocol::ReplicaId r = 0; r < 4; ++r)
      all = all && done(cluster.replica(r).stats());
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ---- basic request/reply across architectures ---------------------------

class ArchEcho : public ::testing::TestWithParam<Arch> {};

TEST_P(ArchEcho, SyncInvocationsComplete) {
  ClusterOptions options;
  options.arch = GetParam();
  options.num_pillars = 2;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  for (int i = 0; i < 30; ++i) {
    auto reply = client.invoke(to_bytes("ping-" + std::to_string(i)));
    ASSERT_TRUE(reply.has_value()) << "request " << i;
    EXPECT_EQ(reply->size(), 8u) << "NullService reply size";
  }
  EXPECT_EQ(client.completed(), 30u);
}

TEST_P(ArchEcho, AsyncWindowCompletesEverything) {
  ClusterOptions options;
  options.arch = GetParam();
  options.num_pillars = 3;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client(0, /*window=*/32);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.invoke_async(
        to_bytes("a"), 0, [&done](Bytes, std::uint64_t) { ++done; }));
  }
  client.drain();
  EXPECT_EQ(done.load(), 200);
  EXPECT_EQ(client.latencies().count(), 200u);
  EXPECT_GT(client.latencies().mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Architectures, ArchEcho,
                         ::testing::Values(Arch::kCop, Arch::kTop,
                                           Arch::kSmart),
                         [](const auto& info) {
                           switch (info.param) {
                             case Arch::kCop:
                               return "COP";
                             case Arch::kTop:
                               return "TOP";
                             default:
                               return "SMaRt";
                           }
                         });

// ---- multiple clients across pillars --------------------------------------

TEST(CopCluster, MultipleClientsAcrossPillars) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 3;
  Cluster cluster(std::move(options));
  cluster.start();

  std::vector<client::Client*> clients;
  for (std::uint32_t p = 0; p < 3; ++p)
    clients.push_back(&cluster.add_client_on_pillar(p, 8));

  std::atomic<int> done{0};
  for (int round = 0; round < 40; ++round)
    for (auto* c : clients)
      ASSERT_TRUE(c->invoke_async(to_bytes("x"), 0,
                                  [&done](Bytes, std::uint64_t) { ++done; }));
  for (auto* c : clients) c->drain();
  EXPECT_EQ(done.load(), 120);

  // All pillars carried instances (the partitioned sequencer worked).
  auto& cop = dynamic_cast<CopReplica&>(cluster.replica(0));
  for (std::uint32_t p = 0; p < 3; ++p)
    EXPECT_GT(cop.pillar(p).core_stats().instances_delivered, 0u)
        << "pillar " << p;
}

// ---- replicated state consistency -----------------------------------------

TEST(CopCluster, KvStoreStatesConvergeAcrossReplicas) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.make_service = [](const crypto::CryptoProvider& crypto) {
    return std::make_unique<app::KvStore>(crypto);
  };
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  for (int i = 0; i < 40; ++i) {
    app::KvOp op{app::KvOpCode::kPut, "key-" + std::to_string(i % 7),
                 to_bytes("value-" + std::to_string(i))};
    auto reply = client.invoke(op.encode());
    ASSERT_TRUE(reply);
    auto result = app::KvResult::decode(*reply);
    ASSERT_TRUE(result);
    EXPECT_EQ(result->status, app::KvStatus::kOk);
  }
  // Read back through the cluster (strongly consistent reads).
  auto reply = client.invoke(
      app::KvOp{app::KvOpCode::kGet, "key-0", {}}.encode());
  ASSERT_TRUE(reply);
  EXPECT_EQ(app::KvResult::decode(*reply)->value, to_bytes("value-35"));

  // 40 puts + 1 get must reach every replica's service before digests
  // can match. A replica that fell behind the 2f+1 quorum past its peers'
  // log truncation catches up via checkpoint-based state transfer, so
  // "done" means having either executed everything or installed a peer
  // checkpoint and executed the remainder after it.
  ASSERT_TRUE(wait_for_all_replicas(cluster, [](const auto& stats) {
    return stats.exec.requests_executed >= 41 ||
           stats.exec.state_installs > 0;
  })) << "a replica neither executed everything nor transferred state";
  // Whatever the path, every replica must reach the same frontier.
  protocol::SeqNum target = 0;
  for (protocol::ReplicaId r = 0; r < 4; ++r)
    target = std::max(target,
                      cluster.replica(r).stats().exec.last_executed_seq);
  ASSERT_TRUE(wait_for_all_replicas(cluster, [target](const auto& stats) {
    return stats.exec.last_executed_seq >= target;
  })) << "a replica did not converge to the cluster frontier";

  cluster.stop();  // join all threads, then inspect service state
  crypto::Digest reference;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    auto& cop = dynamic_cast<CopReplica&>(cluster.replica(r));
    crypto::Digest d = cop.service().state_digest();
    if (r == 0)
      reference = d;
    else
      EXPECT_EQ(d, reference) << "replica " << r << " diverged";
  }
}

TEST(CopCluster, CoordinationServiceEndToEnd) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.make_service = [](const crypto::CryptoProvider& crypto) {
    return std::make_unique<app::CoordinationService>(crypto);
  };
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  auto call = [&](app::CoordOpCode op, const std::string& path,
                  Bytes data = {}) {
    auto reply = client.invoke(app::CoordOp{op, path, data}.encode());
    EXPECT_TRUE(reply);
    return *app::CoordResult::decode(*reply);
  };

  EXPECT_EQ(call(app::CoordOpCode::kCreate, "/svc").status,
            app::CoordStatus::kOk);
  EXPECT_EQ(call(app::CoordOpCode::kCreate, "/svc/worker-1").status,
            app::CoordStatus::kOk);
  EXPECT_EQ(call(app::CoordOpCode::kCreate, "/svc/worker-2").status,
            app::CoordStatus::kOk);
  auto children = call(app::CoordOpCode::kChildren, "/svc");
  EXPECT_EQ(to_string(children.payload), "worker-1\nworker-2");
  EXPECT_EQ(call(app::CoordOpCode::kSetData, "/svc/worker-1",
                 to_bytes("busy"))
                .status,
            app::CoordStatus::kOk);
  auto got = call(app::CoordOpCode::kGetData, "/svc/worker-1");
  EXPECT_EQ(got.payload, to_bytes("busy"));
}

// ---- COP specifics ---------------------------------------------------------

TEST(CopCluster, StarvedPillarsAreFilledWithNoops) {
  // All clients on pillar 0: pillars 1 and 2 have nothing to order, yet
  // the total order must advance — the execution stage requests no-op
  // fills (paper §4.2.1).
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 3;
  options.runtime.gap_timeout_us = 1'000;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client_on_pillar(0);
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(client.invoke(to_bytes("only-pillar-0")).has_value());

  std::uint64_t noops = 0;
  for (protocol::ReplicaId r = 0; r < 4; ++r)
    noops += cluster.replica(r).stats().core.noop_proposals;
  EXPECT_GT(noops, 0u) << "starved pillars were not filled";
}

TEST(CopCluster, CheckpointsStabilizeInRuntime) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.runtime.protocol.checkpoint_interval = 20;
  options.runtime.protocol.window = 80;
  options.runtime.gap_timeout_us = 1'000;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client(0, 16);
  std::atomic<int> done{0};
  for (int i = 0; i < 150; ++i)
    ASSERT_TRUE(client.invoke_async(to_bytes("c"), 0,
                                    [&done](Bytes, std::uint64_t) { ++done; }));
  client.drain();
  ASSERT_EQ(done.load(), 150);

  // A laggard that was stranded past the truncated log reaches a stable
  // checkpoint by installing one via state transfer instead of agreeing
  // on it; both paths prove checkpoints work end to end.
  ASSERT_TRUE(wait_for_all_replicas(cluster, [](const auto& stats) {
    return (stats.core.checkpoints_stable > 0 &&
            stats.exec.checkpoints_triggered > 0) ||
           stats.exec.state_installs > 0;
  })) << "a replica neither stabilized nor installed a checkpoint";
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    auto stats = cluster.replica(r).stats();
    EXPECT_TRUE(stats.core.checkpoints_stable > 0 ||
                stats.exec.state_installs > 0)
        << "replica " << r;
    EXPECT_TRUE(stats.exec.checkpoints_triggered > 0 ||
                stats.exec.state_installs > 0)
        << "replica " << r;
  }
}

// ---- fault tolerance --------------------------------------------------------

TEST(FaultTolerance, SurvivesCrashedFollower) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  ASSERT_TRUE(client.invoke(to_bytes("before")).has_value());

  cluster.crash(3);  // one follower of f=1 may fail

  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(client.invoke(to_bytes("after")).has_value()) << i;
}

TEST(FaultTolerance, SurvivesLossyNetwork) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.runtime.gap_timeout_us = 1'000;
  Cluster cluster(std::move(options));

  // Drop 2% of all frames; client retransmission and protocol redundancy
  // must still complete every request.
  auto rng = std::make_shared<std::atomic<std::uint64_t>>(0x9e3779b9);
  cluster.network().set_filter(
      [rng](crypto::KeyNodeId, crypto::KeyNodeId, transport::LaneId) {
        std::uint64_t x = rng->fetch_add(0x9e3779b97f4a7c15ULL);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return (x % 100) >= 2;  // keep 98%
      });
  cluster.start();

  auto& client = cluster.add_client();
  for (int i = 0; i < 25; ++i)
    ASSERT_TRUE(client.invoke(to_bytes("lossy")).has_value()) << i;
}

TEST(FaultTolerance, LeaderCrashTriggersViewChangeInRuntime) {
  ClusterOptions options;
  options.arch = Arch::kTop;  // single pillar keeps the scenario focused
  options.runtime.protocol.view_change_timeout_us = 300'000;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  ASSERT_TRUE(client.invoke(to_bytes("v0")).has_value());

  cluster.crash(0);  // the leader of view 0

  // The next requests stall until followers change the view, then complete.
  for (int i = 0; i < 5; ++i) {
    auto reply = client.invoke(to_bytes("v1-" + std::to_string(i)));
    ASSERT_TRUE(reply.has_value()) << i;
  }
  bool view_advanced = false;
  for (protocol::ReplicaId r = 1; r < 4; ++r)
    view_advanced |=
        cluster.replica(r).stats().core.view_changes_completed > 0;
  EXPECT_TRUE(view_advanced);
}

// ---- reply modes ------------------------------------------------------------

TEST(ReplyModes, OmitOneStillReachesQuorum) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.runtime.reply_mode = core::ReplyMode::kOmitOne;
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(client.invoke(to_bytes("three-replies")).has_value()) << i;

  // The client only needs f+1 replies; give the remaining replica time to
  // finish executing before reading its counters. A stranded replica
  // rejoins via state transfer, skipping the executions (and omissions)
  // the installed checkpoint covers.
  ASSERT_TRUE(wait_for_all_replicas(cluster, [](const auto& stats) {
    return stats.exec.requests_executed >= 20 ||
           stats.exec.state_installs > 0;
  })) << "a replica neither executed everything nor transferred state";

  std::uint64_t omitted = 0, installs = 0;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    omitted += cluster.replica(r).stats().exec.replies_omitted;
    installs += cluster.replica(r).stats().exec.state_installs;
  }
  if (installs == 0) {
    EXPECT_EQ(omitted, 20u) << "exactly one replica per request stays silent";
  } else {
    // The transferred prefix was never executed locally, so its omission
    // counters are legitimately missing — but never over-counted.
    EXPECT_GT(omitted, 0u);
    EXPECT_LE(omitted, 20u);
  }
}

// ---- offloaded reply pipeline (paper §4.3.2) ----------------------------

TEST(CopCluster, ReplyOffloadAcrossPillarCounts) {
  for (std::uint32_t pillars : {1u, 2u, 4u}) {
    SCOPED_TRACE("pillars=" + std::to_string(pillars));
    ClusterOptions options;
    options.arch = Arch::kCop;
    options.num_pillars = pillars;
    Cluster cluster(std::move(options));
    cluster.start();

    auto& client = cluster.add_client();
    for (int i = 0; i < 30; ++i)
      ASSERT_TRUE(
          client.invoke(to_bytes("off-" + std::to_string(i))).has_value())
          << i;

    ASSERT_TRUE(wait_for_all_replicas(cluster, [](const auto& stats) {
      return stats.exec.requests_executed >= 30 ||
             stats.exec.state_installs > 0;
    })) << "a replica neither executed everything nor transferred state";

    // Every reply left through a pillar (the §4.3.2 offload); the inline
    // fallback stays an overload/shutdown escape hatch, unused here.
    for (protocol::ReplicaId r = 0; r < 4; ++r) {
      const auto stats = cluster.replica(r).stats().exec;
      if (stats.state_installs > 0) continue;  // transferred the prefix
      EXPECT_GT(stats.replies_offloaded, 0u) << "replica " << r;
      EXPECT_EQ(stats.replies_offloaded, stats.replies_sent)
          << "replica " << r;
    }
  }
}

// ---- verification policies ---------------------------------------------------

TEST(VerificationPolicies, SmartVerifiesOutOfOrderCopInOrder) {
  // The SMaRt pool verifies everything; COP cores skip redundant votes.
  ClusterOptions smart_options;
  smart_options.arch = Arch::kSmart;
  Cluster smart(std::move(smart_options));
  smart.start();
  auto& smart_client = smart.add_client();
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(smart_client.invoke(to_bytes("s")).has_value());
  auto& smart_replica =
      dynamic_cast<core::SmartReplica&>(smart.replica(1));
  EXPECT_GT(smart_replica.pool_verifications(), 0u);
  EXPECT_GT(smart.replica(1).stats().core.pre_verified, 0u);
  smart.stop();

  ClusterOptions cop_options;
  cop_options.arch = Arch::kCop;
  cop_options.num_pillars = 2;
  Cluster cop(std::move(cop_options));
  cop.start();
  auto& cop_client = cop.add_client();
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(cop_client.invoke(to_bytes("c")).has_value());
  auto stats = cop.replica(1).stats().core;
  EXPECT_GT(stats.verifications_skipped, 0u)
      << "in-order verification skipped redundant messages";
  EXPECT_EQ(stats.pre_verified, 0u) << "nothing is pre-verified in COP";
}

}  // namespace
}  // namespace copbft::test
