// Adversarial scenario engine: determinism of the BENCH artifact,
// correctness of the fault-clear computation, and the safety/liveness
// gates on representative built-in campaigns.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/scenario.hpp"
#include "support/json_check.hpp"

namespace copbft::test {
namespace {

using namespace copbft::sim;

// A deliberately small campaign touching all three fault axes so the
// determinism test covers every serializer branch without the cost of a
// full built-in run.
ScenarioSpec small_spec() {
  ScenarioSpec s;
  s.name = "test_mixed";
  s.description = "small mixed-axis campaign for engine tests";
  s.axes = {"byzantine", "churn", "wan"};
  s.config.arch = SimArch::kCop;
  s.config.cores = 2;
  s.config.clients = 40;
  s.config.client_window = 4;
  s.config.warmup = 50 * 1'000'000ULL;
  s.config.measure = 200 * 1'000'000ULL;
  s.config.protocol.checkpoint_interval = 100;
  s.config.protocol.window = 400;
  s.config.protocol.max_active_proposals = 4;
  s.config.protocol.view_change_timeout_us = 0;
  s.config.protocol.retransmit_interval_us = 20'000;
  s.config.protocol.adversary.replica = 1;
  s.config.protocol.adversary.omit_votes_to = {2};
  s.config.faults.push_back(
      {80 * 1'000'000ULL, 3, SimConfig::FaultEvent::Kind::kCrash});
  s.config.faults.push_back(
      {140 * 1'000'000ULL, 3, SimConfig::FaultEvent::Kind::kRecover});
  s.config.wan.enabled = true;
  s.config.wan.default_latency_ns = 500'000;  // 0.5 ms
  s.config.wan.jitter_ns = 100'000;
  s.config.wan.client_latency_ns = 500'000;
  return s;
}

// Acceptance criterion: the same spec + seed must produce bit-identical
// artifact bytes across two independent runs. Any hidden nondeterminism
// (wall-clock reads, unseeded randomness, iteration over hashed
// containers) shows up here as a byte diff.
TEST(ScenarioEngine, ArtifactIsBitIdenticalAcrossRuns) {
  ScenarioSpec spec = small_spec();
  ScenarioResult first = run_scenario(spec);
  ScenarioResult second = run_scenario(spec);
  std::string a = scenario_json(spec, first);
  std::string b = scenario_json(spec, second);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "scenario artifact must be deterministic";
  EXPECT_TRUE(copbft::bench::JsonCheck(a).valid());
}

TEST(ScenarioEngine, LastFaultClearSpansAllFaultSources) {
  ScenarioSpec spec = small_spec();
  // Recover at 140 ms dominates the schedule above.
  EXPECT_EQ(last_fault_clear_ns(spec), 140 * 1'000'000ULL);

  // A partition outlasting it moves the clear point.
  spec.config.wan.partitions.push_back(
      {120 * 1'000'000ULL, 180 * 1'000'000ULL, {3}, {0, 1, 2}});
  EXPECT_EQ(last_fault_clear_ns(spec), 180 * 1'000'000ULL);

  // A bounded adversary window later still wins (until_us is microseconds).
  spec.config.protocol.adversary.until_us = 190'000;
  EXPECT_EQ(last_fault_clear_ns(spec), 190 * 1'000'000ULL);

  // Unbounded faults (omission with until_us=0) contribute nothing.
  ScenarioSpec unbounded;
  unbounded.config.protocol.adversary.replica = 1;
  unbounded.config.protocol.adversary.omit_votes_to = {2};
  EXPECT_EQ(last_fault_clear_ns(unbounded), 0u);
}

TEST(ScenarioEngine, BuiltinsCoverAllThreeAxes) {
  auto specs = builtin_scenarios();
  EXPECT_GE(specs.size(), 6u);
  std::set<std::string> names, axes;
  for (const ScenarioSpec& s : specs) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    for (const std::string& axis : s.axes) axes.insert(axis);
  }
  EXPECT_TRUE(axes.count("byzantine"));
  EXPECT_TRUE(axes.count("churn"));
  EXPECT_TRUE(axes.count("wan"));
}

// The regression gate itself, on the crash-recover campaign: a crashed
// replica must rejoin via state transfer and the cluster must keep
// committing after the fault clears.
TEST(ScenarioEngine, CrashRecoverPassesSafetyAndLivenessGates) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name != "churn_crash_recover") continue;
    ScenarioResult r = run_scenario(spec);
    EXPECT_TRUE(r.safe());
    EXPECT_EQ(r.sim.fork_detections, 0u);
    EXPECT_EQ(r.invariant_firings, 0u);
    EXPECT_GT(r.post_fault_completed_ops, 0u) << "no liveness after recover";
    EXPECT_TRUE(r.recoveries_complete) << "replica 3 stranded";
    EXPECT_GE(r.sim.state_transfers, 1u) << "recovery must use state transfer";
    return;
  }
  FAIL() << "churn_crash_recover scenario missing from builtins";
}

// Equivocation by the view-0 leader: the adversary hook must actually
// fire (conflicting pre-prepares sent), and the oracle must confirm no
// correct replica forked while the view change restored progress.
TEST(ScenarioEngine, LeaderEquivocationIsObservedAndHarmless) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name != "byz_equivocate_leader") continue;
    ScenarioResult r = run_scenario(spec);
    EXPECT_GT(r.sim.adversary_equivocations, 0u) << "adversary never acted";
    EXPECT_TRUE(r.safe());
    EXPECT_GT(r.post_fault_completed_ops, 0u)
        << "no progress after the equivocation window closed";
    return;
  }
  FAIL() << "byz_equivocate_leader scenario missing from builtins";
}

}  // namespace
}  // namespace copbft::test
