// Byzantine-behavior tests: actively malicious inputs must never cause
// disagreement, double delivery, or unverified acceptance.
#include <gtest/gtest.h>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

ProtocolConfig byz_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  cfg.batching = false;
  cfg.view_change_timeout_us = 0;
  cfg.retransmit_interval_us = 0;
  return cfg;
}

Request make_request(ClientId client, RequestId id, const char* body) {
  Request req;
  req.client = client;
  req.id = id;
  req.payload = to_bytes(body);
  return req;
}

/// An equivocating leader sends different proposals for the same sequence
/// number to different followers: at most one value may commit, and the
/// committed value must be identical wherever it commits.
TEST(Byzantine, EquivocatingLeaderCannotCauseDisagreement) {
  PillarGroupHarness h({byz_config()});
  auto crypto = crypto::make_null_crypto();

  PrePrepare good;
  good.view = 0;
  good.seq = 1;
  good.requests = {make_request(1001, 1, "good")};
  good.digest = batch_digest(*crypto, good.requests);

  PrePrepare evil = good;
  evil.requests = {make_request(1001, 1, "evil")};
  evil.digest = batch_digest(*crypto, evil.requests);

  // Leader 0 equivocates: replica 1 gets "good", replicas 2/3 get "evil".
  IncomingMessage im1;
  im1.msg = good;
  h.core(1).on_message(std::move(im1), 0);
  for (ReplicaId r : {2u, 3u}) {
    IncomingMessage im;
    im.msg = evil;
    h.core(r).on_message(std::move(im), 0);
  }
  h.run_until_quiescent();

  // "evil" has two followers prepared; "good" only one. Neither can reach
  // a full commit quorum without the (silent) leader, and no two replicas
  // may disagree on a committed value.
  std::map<SeqNum, std::string> committed;
  for (ReplicaId r = 1; r < 4; ++r) {
    for (const auto& batch : h.delivered(r)) {
      std::string value = to_string(batch.requests.at(0).payload);
      auto [it, inserted] = committed.try_emplace(batch.seq, value);
      if (!inserted) EXPECT_EQ(it->second, value) << "disagreement!";
    }
  }
}

/// Votes with a digest that does not match the accepted proposal must not
/// count toward quorums.
TEST(Byzantine, MismatchedVoteDigestRejected) {
  PillarGroupHarness h({byz_config()});
  h.client_request(1001, 1, to_bytes("x"), {0});
  // Deliver exactly one pool message: the leader's PRE-PREPARE to
  // replica 1 (the pool is FIFO).
  ASSERT_TRUE(h.step());

  auto& follower = h.core(1);
  ASSERT_EQ(follower.open_instances(), 1u);

  // Two forged prepares with a wrong digest: would be a prepare quorum if
  // counted.
  for (ReplicaId from : {2u, 3u}) {
    Prepare forged;
    forged.view = 0;
    forged.seq = 1;
    forged.digest.bytes.fill(0xEE);
    forged.replica = from;
    IncomingMessage im;
    im.msg = forged;
    follower.on_message(std::move(im), 0);
  }
  auto effects = follower.take_effects();
  for (const auto& effect : effects) {
    if (const auto* bc = std::get_if<Broadcast>(&effect))
      EXPECT_FALSE(std::holds_alternative<Commit>(bc->msg))
          << "prepared with forged digests!";
  }
  EXPECT_GE(follower.stats().invalid_dropped, 2u);
}

/// Vote stuffing: a single replica repeating its vote many times counts
/// once (quorums are sets of distinct replicas).
TEST(Byzantine, DuplicateVotesCountOnce) {
  PillarGroupHarness h({byz_config()});
  h.client_request(1001, 1, to_bytes("x"), {0});
  ASSERT_TRUE(h.step());  // PRE-PREPARE reaches replica 1 only
  auto& follower = h.core(1);
  // Recover the accepted digest via the follower's own prepare broadcast.
  // (The harness consumed effects already; reconstruct from the core's
  // state: replay a correct prepare from replica 2, many times.)
  auto crypto = crypto::make_null_crypto();
  Request req = make_request(1001, 1, "x");
  crypto::Digest digest = batch_digest(*crypto, {req});

  for (int i = 0; i < 10; ++i) {
    Prepare vote{0, 1, digest, 2, {}};
    IncomingMessage im;
    im.msg = vote;
    follower.on_message(std::move(im), 0);
  }
  // One counted, nine skipped without verification.
  EXPECT_GE(follower.stats().verifications_skipped, 9u);
  // Not committed: prepares are {self, replica2} = 2f, commit quorum needs
  // commits which never came.
  EXPECT_TRUE(h.delivered(1).empty());
}

/// Messages claiming impossible replica ids are dropped unverified.
TEST(Byzantine, OutOfRangeReplicaIdsDropped) {
  PillarGroupHarness h({byz_config()});
  auto before = h.core(0).stats();
  Prepare vote{0, 1, {}, /*replica=*/99, {}};
  IncomingMessage im;
  im.msg = vote;
  h.core(0).on_message(std::move(im), 0);
  CheckpointMsg cp{10, {}, /*replica=*/99, {}};
  IncomingMessage im2;
  im2.msg = cp;
  h.core(0).on_message(std::move(im2), 0);
  EXPECT_EQ(h.core(0).stats().macs_verified, before.macs_verified);
}

/// A forged checkpoint digest cannot become stable: stability needs 2f+1
/// *matching* digests.
TEST(Byzantine, CheckpointNeedsMatchingQuorum) {
  PillarGroupHarness h({byz_config()});
  for (int i = 1; i <= 10; ++i)
    h.client_request(1001, i, to_bytes("c" + std::to_string(i)));
  // Deliver everything but intercept checkpoint stability: harness runs
  // the full protocol, so instead test the vote tally directly on a fresh
  // core via forged votes.
  h.run_until_quiescent();

  auto& core = h.core(0);
  SeqNum target = 20;  // no local checkpoint started for this seq
  crypto::Digest lie;
  lie.bytes.fill(0xBA);
  for (ReplicaId from : {1u, 2u}) {
    IncomingMessage im;
    im.msg = CheckpointMsg{target, lie, from, {}};
    core.on_message(std::move(im), h.now());
  }
  // Only 2 matching votes (< 2f+1): not stable.
  EXPECT_LT(core.stable_seq(), target);

  IncomingMessage im;
  im.msg = CheckpointMsg{target, lie, 3, {}};
  core.on_message(std::move(im), h.now());
  // Now 3 forged votes claim stability — the core accepts the quorum
  // (any 2f+1 matching set includes >= f+1 correct replicas in a real
  // deployment, so three matching votes can only exist if the state is
  // genuine; with NullCrypto the test just documents the rule).
  EXPECT_EQ(core.stable_seq(), target);
}

// ---- built-in adversary shim (scenario engine) --------------------------
//
// The AdversaryConfig hooks in PbftCore drive the Byzantine scenario
// campaigns; these tests pin their mechanics at the core level.

/// Equivocation splits the peers into disjoint halves with conflicting
/// pre-prepares. With the commit quorum unreachable for either variant,
/// nothing may deliver — and the counter must record the attack.
TEST(Byzantine, ConfiguredEquivocationSplitsPeersAndCannotCommit) {
  ProtocolConfig cfg = byz_config();
  cfg.adversary.replica = 0;
  cfg.adversary.equivocate = true;
  PillarGroupHarness h({cfg});

  h.client_request(1001, 1, to_bytes("x"), {0});
  h.run_until_quiescent();

  EXPECT_EQ(h.core(0).stats().adversary_equivocations, 1u);
  // Peer 1 prepared the real batch, peers 2/3 the no-op decoy: neither
  // side reaches 2f+1 commits, so no replica may deliver anything.
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_TRUE(h.delivered(r).empty()) << "replica " << r;
}

/// Selective omission towards a minority: the withheld votes must be
/// counted, and the remaining quorums must still commit everywhere.
TEST(Byzantine, ConfiguredOmissionPreservesLiveness) {
  ProtocolConfig cfg = byz_config();
  cfg.adversary.replica = 1;
  cfg.adversary.omit_votes_to = {2, 3};
  PillarGroupHarness h({cfg});

  h.client_request(1001, 1, to_bytes("x"));
  h.run_until_quiescent();

  // One prepare + one commit suppressed towards each of the two targets.
  EXPECT_GE(h.core(1).stats().adversary_omissions, 4u);
  // 2f prepares / 2f+1 commits stay reachable without replica 1's votes.
  for (ReplicaId r : {0u, 2u, 3u}) {
    ASSERT_EQ(h.delivered(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(to_string(h.delivered(r)[0].requests.at(0).payload), "x");
  }
}

/// A time-bounded adversary is honest outside its window.
TEST(Byzantine, AdversaryWindowExpires) {
  ProtocolConfig cfg = byz_config();
  cfg.adversary.replica = 0;
  cfg.adversary.equivocate = true;
  cfg.adversary.until_us = 50;
  PillarGroupHarness h({cfg});

  h.advance_time(100);  // past the window
  h.client_request(1001, 1, to_bytes("x"), {0});
  h.run_until_quiescent();

  EXPECT_EQ(h.core(0).stats().adversary_equivocations, 0u);
  for (ReplicaId r = 0; r < 4; ++r)
    ASSERT_EQ(h.delivered(r).size(), 1u) << "replica " << r;
}

/// Requests with broken client MACs never enter the pipeline.
TEST(Byzantine, ForgedClientRequestsRejected) {
  // Use a real-crypto core for this one.
  auto crypto = crypto::make_real_crypto(5);
  ProtocolConfig cfg = byz_config();
  CryptoVerifier verifier(*crypto, replica_node(0));
  PbftCore core(cfg, 0, SeqSlice{0, 1}, verifier, *crypto);

  Request req = make_request(1001, 1, "forged");
  // Authenticator built by the WRONG client identity.
  Bytes body = request_authenticated_bytes(req);
  req.auth = crypto::Authenticator::build(*crypto, client_node(1002),
                                          {replica_node(0)}, body);
  core.on_request(req, 0, /*verified=*/false);
  EXPECT_EQ(core.pending_requests(), 0u);
  EXPECT_EQ(core.stats().invalid_dropped, 1u);

  // The genuine client's authenticator is accepted.
  req.auth = crypto::Authenticator::build(*crypto, client_node(1001),
                                          {replica_node(0)}, body);
  core.on_request(req, 0, /*verified=*/false);
  EXPECT_EQ(core.stats().proposals, 1u) << "leader proposed it";
}

}  // namespace
}  // namespace copbft::test
