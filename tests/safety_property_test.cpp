// Property-based safety tests: under arbitrary message reordering,
// duplication and (bounded) loss, non-faulty replicas never disagree on
// the batch committed at any sequence number, and committed prefixes stay
// gap-free after gap filling.
#include <gtest/gtest.h>

#include <map>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

ProtocolConfig prop_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 20;
  cfg.window = 80;
  cfg.batching = true;
  cfg.max_batch = 8;
  cfg.max_active_proposals = 4;
  cfg.view_change_timeout_us = 0;
  return cfg;
}

/// Every (seq -> batch digest of request keys) pair must agree across
/// replicas; this is PBFT's agreement property.
void expect_agreement(const PillarGroupHarness& h) {
  std::map<SeqNum, std::vector<std::uint64_t>> committed;
  for (ReplicaId r = 0; r < h.num_replicas(); ++r) {
    for (const auto& batch : h.delivered(r)) {
      std::vector<std::uint64_t> keys;
      keys.reserve(batch.requests.size());
      for (const auto& req : batch.requests) keys.push_back(req.key());
      auto [it, inserted] = committed.try_emplace(batch.seq, keys);
      if (!inserted) {
        EXPECT_EQ(it->second, keys)
            << "replicas disagree at seq " << batch.seq;
      }
    }
  }
}

class SafetyUnderReordering : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SafetyUnderReordering, RandomInterleavings) {
  auto options = PillarGroupHarness::Options{prop_config()};
  options.seed = GetParam();
  options.shuffle = true;
  options.duplicate_p = 0.15;
  PillarGroupHarness h(std::move(options));

  Rng rng(GetParam() * 7919 + 13);
  int next_id = 1;
  for (int round = 0; round < 20; ++round) {
    int burst = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < burst; ++i) {
      ClientId client = 1001 + static_cast<ClientId>(rng.below(5));
      h.client_request(client, next_id++, to_bytes("p"));
    }
    // Interleave partial delivery with submission.
    std::size_t deliveries = rng.below(40);
    for (std::size_t i = 0; i < deliveries && h.step(); ++i) {
    }
  }
  h.run_until_quiescent();

  expect_agreement(h);
  // Liveness under no loss: everything committed everywhere.
  for (ReplicaId r = 0; r < 4; ++r) {
    std::size_t total = 0;
    for (const auto& b : h.delivered(r)) total += b.requests.size();
    EXPECT_EQ(total, static_cast<std::size_t>(next_id - 1))
        << "replica " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyUnderReordering,
                         ::testing::Range<std::uint64_t>(1, 13));

class SafetyUnderLoss : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetyUnderLoss, DropsNeverCauseDisagreement) {
  auto options = PillarGroupHarness::Options{prop_config()};
  options.seed = GetParam();
  options.shuffle = true;
  // Random 10% message loss (votes and proposals alike). Liveness may
  // suffer (no retransmission in the harness); agreement must not.
  auto rng = std::make_shared<Rng>(GetParam() * 104729 + 7);
  options.drop = [rng](ReplicaId, ReplicaId, const Message&) {
    return rng->chance(0.10);
  };
  PillarGroupHarness h(std::move(options));

  Rng traffic(GetParam());
  int next_id = 1;
  for (int round = 0; round < 15; ++round) {
    for (std::uint64_t i = 0; i < 1 + traffic.below(4); ++i)
      h.client_request(1001 + static_cast<ClientId>(traffic.below(3)),
                       next_id++, to_bytes("q"));
    std::size_t deliveries = traffic.below(30);
    for (std::size_t i = 0; i < deliveries && h.step(); ++i) {
    }
  }
  h.run_until_quiescent();
  expect_agreement(h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyUnderLoss,
                         ::testing::Range<std::uint64_t>(1, 13));

class SafetyAcrossSlices : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SafetyAcrossSlices, EverySliceAgreesIndependently) {
  // One harness per pillar group, all with the same NP = GetParam();
  // verifies the COP partitioning argument: slices are independent
  // consensus sequences, each individually safe, and their union is the
  // full sequence space.
  const std::uint32_t np = GetParam();
  std::vector<std::unique_ptr<PillarGroupHarness>> groups;
  for (std::uint32_t p = 0; p < np; ++p) {
    auto options = PillarGroupHarness::Options{prop_config()};
    options.slice = SeqSlice{p, np};
    options.seed = 1000 + p;
    options.shuffle = true;
    options.duplicate_p = 0.1;
    groups.push_back(std::make_unique<PillarGroupHarness>(std::move(options)));
  }
  int next_id = 1;
  for (std::uint32_t p = 0; p < np; ++p) {
    for (int i = 0; i < 12; ++i)
      groups[p]->client_request(1001 + p, next_id++, to_bytes("s"));
    groups[p]->run_until_quiescent();
    expect_agreement(*groups[p]);
  }

  // Union of slices is gap-free up to the smallest per-slice frontier.
  std::vector<SeqNum> seqs;
  for (auto& g : groups)
    for (const auto& b : g->delivered_sorted(0)) seqs.push_back(b.seq);
  std::sort(seqs.begin(), seqs.end());
  SeqNum horizon = 0;
  for (std::uint32_t p = 0; p < np; ++p) {
    SeqNum top = groups[p]->delivered_sorted(0).back().seq;
    horizon = (p == 0) ? top : std::min(horizon, top);
  }
  SeqNum expected = 1;
  for (SeqNum seq : seqs) {
    if (seq > horizon) break;
    EXPECT_EQ(seq, expected++);
  }
}

INSTANTIATE_TEST_SUITE_P(PillarCounts, SafetyAcrossSlices,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

class CheckpointGcSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(CheckpointGcSweep, MemoryStaysBoundedOverLongRuns) {
  auto [seed, shuffle] = GetParam();
  auto cfg = prop_config();
  cfg.checkpoint_interval = 10;
  cfg.window = 30;
  auto options = PillarGroupHarness::Options{cfg};
  options.seed = seed;
  options.shuffle = shuffle;
  PillarGroupHarness h(std::move(options));

  int next_id = 1;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 10; ++i)
      h.client_request(1001, next_id++, to_bytes("gc"));
    h.run_until_quiescent();
    for (ReplicaId r = 0; r < 4; ++r) {
      EXPECT_LE(h.core(r).open_instances(), cfg.window)
          << "instance log leaked";
    }
  }
  expect_agreement(h);
  // At quiescence the stable checkpoint must track the execution frontier
  // within one interval — otherwise GC lags and logs grow.
  for (ReplicaId r = 0; r < 4; ++r) {
    SeqNum frontier = h.delivered_sorted(r).back().seq;
    EXPECT_GE(h.core(r).stable_seq() + cfg.checkpoint_interval, frontier)
        << "replica " << r;
    EXPECT_GT(h.core(r).stable_seq(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, CheckpointGcSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Bool()));

}  // namespace
}  // namespace copbft::test
