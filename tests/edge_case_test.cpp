#include <gtest/gtest.h>

#include "app/null_service.hpp"
#include "core/cop_replica.hpp"
#include "core/smart_replica.hpp"
#include "core/top_replica.hpp"
#include "support/core_harness.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

ProtocolConfig edge_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  cfg.batching = false;
  cfg.view_change_timeout_us = 0;
  cfg.retransmit_interval_us = 0;
  return cfg;
}

// ---- configuration validation ----------------------------------------

TEST(ConfigValidation, RejectsTooFewReplicas) {
  ProtocolConfig cfg = edge_config();
  cfg.num_replicas = 3;  // < 3f + 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsWindowSmallerThanCheckpointInterval) {
  ProtocolConfig cfg = edge_config();
  cfg.window = cfg.checkpoint_interval - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsZeroBatchAndPillars) {
  ProtocolConfig cfg = edge_config();
  cfg.max_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = edge_config();
  cfg.num_pillars = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, LargerGroupsQuorums) {
  ProtocolConfig cfg = edge_config();
  cfg.num_replicas = 7;
  cfg.max_faulty = 2;
  cfg.validate();
  EXPECT_EQ(cfg.quorum(), 5u);
  EXPECT_EQ(cfg.weak_quorum(), 3u);
}

TEST(ReplicaConstruction, ArchitectureInvariantsEnforced) {
  auto crypto = crypto::make_real_crypto(1);
  FakeTransport transport;
  core::ReplicaRuntimeConfig cfg;
  cfg.num_pillars = 2;  // invalid for TOP/SMaRt
  cfg.protocol.num_pillars = 2;
  EXPECT_THROW(core::TopReplica(0, cfg,
                                std::make_unique<app::NullService>(), *crypto,
                                transport),
               std::invalid_argument);
  cfg.num_pillars = 1;
  cfg.protocol.num_pillars = 1;
  cfg.protocol.max_active_proposals = 0;  // SMaRt must be single-instance
  EXPECT_THROW(core::SmartReplica(0, cfg,
                                  std::make_unique<app::NullService>(),
                                  *crypto, transport),
               std::invalid_argument);
}

// ---- protocol core edges -------------------------------------------------

TEST(CoreEdges, RepliesAndRequestsViaOnMessageAreRejected) {
  PillarGroupHarness h({edge_config()});
  IncomingMessage reply;
  reply.msg = Reply{0, 1001, 1, 2, to_bytes("r"), {}};
  h.core(0).on_message(std::move(reply), 0);
  EXPECT_EQ(h.core(0).stats().invalid_dropped, 1u);
}

TEST(CoreEdges, FollowerNeverProposesUnderFixedLeadership) {
  PillarGroupHarness h({edge_config()});
  for (int i = 1; i <= 10; ++i)
    h.client_request(1001, i, to_bytes("f"), {1, 2, 3});  // leader 0 excluded
  // Followers hold the requests but must not propose.
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(h.core(r).stats().proposals, 0u);
    EXPECT_EQ(h.core(r).pending_requests(), 10u);
  }
  EXPECT_EQ(h.in_flight(), 0u);
}

TEST(CoreEdges, ProposalAtWindowBoundary) {
  auto cfg = edge_config();
  cfg.window = 10;
  PillarGroupHarness h({cfg, SeqSlice{0, 1}, 1, false, 0.0, nullptr,
                        /*auto_checkpoint=*/false});
  for (int i = 1; i <= 12; ++i) h.client_request(1001, i, to_bytes("w"), {0});
  h.run_until_quiescent();
  // Exactly seqs 1..10 (the window) committed; 11 and 12 held back.
  auto batches = h.delivered_sorted(0);
  ASSERT_EQ(batches.size(), 10u);
  EXPECT_EQ(batches.back().seq, 10u);
  EXPECT_EQ(h.core(0).pending_requests(), 2u);
}

TEST(CoreEdges, EmptyPayloadRequestsAreOrdered) {
  PillarGroupHarness h({edge_config()});
  h.client_request(1001, 1, Bytes{});
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered_sorted(0).size(), 1u);
  EXPECT_TRUE(h.delivered_sorted(0)[0].requests.at(0).payload.empty());
}

TEST(CoreEdges, ManyClientsInterleavedIdsStayDistinct) {
  auto cfg = edge_config();
  cfg.batching = true;
  cfg.max_batch = 16;
  PillarGroupHarness h({cfg});
  // Two clients using the *same* request ids: keys must not collide.
  for (int i = 1; i <= 10; ++i) {
    h.client_request(1001, i, to_bytes("a"));
    h.client_request(1002, i, to_bytes("b"));
  }
  h.run_until_quiescent();
  std::size_t total = 0;
  for (const auto& b : h.delivered_sorted(0)) total += b.requests.size();
  EXPECT_EQ(total, 20u);
}

TEST(CoreEdges, CheckpointVoteForGarbageCollectedSeqIgnored) {
  PillarGroupHarness h({edge_config()});
  for (int i = 1; i <= 12; ++i) h.client_request(1001, i, to_bytes("g"));
  h.run_until_quiescent();
  ASSERT_GE(h.core(0).stable_seq(), 10u);

  auto before = h.core(0).stats();
  IncomingMessage im;
  im.msg = CheckpointMsg{10, {}, 1, {}};  // at or below stable
  h.core(0).on_message(std::move(im), h.now());
  EXPECT_EQ(h.core(0).stats().macs_verified, before.macs_verified);
}

TEST(CoreEdges, StableDigestMismatchDoesNotStabilizeEarly) {
  PillarGroupHarness h({edge_config()});
  auto& core = h.core(0);
  crypto::Digest a, b;
  a.bytes.fill(0x0a);
  b.bytes.fill(0x0b);
  // Votes split 2 vs 1 across digests: no 2f+1 matching set.
  IncomingMessage v1;
  v1.msg = CheckpointMsg{10, a, 1, {}};
  core.on_message(std::move(v1), 0);
  IncomingMessage v2;
  v2.msg = CheckpointMsg{10, a, 2, {}};
  core.on_message(std::move(v2), 0);
  IncomingMessage v3;
  v3.msg = CheckpointMsg{10, b, 3, {}};
  core.on_message(std::move(v3), 0);
  EXPECT_EQ(core.stable_seq(), 0u);
  // The leader's own (matching) vote completes the quorum.
  core.start_checkpoint(10, a, 0);
  EXPECT_EQ(core.stable_seq(), 10u);
}

TEST(CoreEdges, SliceAtOffsetZeroSkipsGenesis) {
  PillarGroupHarness h({edge_config(), SeqSlice{0, 3}});
  EXPECT_EQ(h.core(0).next_proposal_seq(), 3u) << "seq 0 is genesis";
  PillarGroupHarness h2({edge_config(), SeqSlice{2, 3}});
  EXPECT_EQ(h2.core(0).next_proposal_seq(), 2u);
}

// ---- histograms of verification policy over load ------------------------

TEST(CoreEdges, VerificationSavingsScaleWithGroupSize) {
  // Each instance carries ~f redundant prepares and ~f redundant commits;
  // in-order verification skips them. The skipped *fraction* hovers near
  // 1/3 of vote traffic, and the absolute savings grow with the group.
  auto run_group = [](std::uint32_t n, std::uint32_t f) {
    ProtocolConfig cfg = edge_config();
    cfg.num_replicas = n;
    cfg.max_faulty = f;
    PillarGroupHarness h({cfg});
    for (int i = 1; i <= 20; ++i) h.client_request(1001, i, to_bytes("v"));
    h.run_until_quiescent();
    return h.core(1).stats();
  };
  auto s4 = run_group(4, 1);
  auto s7 = run_group(7, 2);
  auto fraction = [](const CoreStats& s) {
    return static_cast<double>(s.verifications_skipped) /
           static_cast<double>(s.macs_verified + s.verifications_skipped);
  };
  EXPECT_NEAR(fraction(s4), 1.0 / 3.0, 0.1);
  EXPECT_NEAR(fraction(s7), 1.0 / 3.0, 0.1);
  EXPECT_GT(s7.verifications_skipped, s4.verifications_skipped)
      << "absolute savings grow with the group";
}

}  // namespace
}  // namespace copbft::test
