#include <gtest/gtest.h>

#include <atomic>

#include "app/coordination.hpp"
#include "app/kv_store.hpp"
#include "app/null_service.hpp"
#include "common/invariant.hpp"

namespace copbft::app {
namespace {

protocol::Request make_request(Bytes payload, protocol::RequestId id = 1) {
  protocol::Request req;
  req.client = 1001;
  req.id = id;
  req.payload = std::move(payload);
  return req;
}

// ---- NullService --------------------------------------------------------

TEST(NullService, ReplySizeConfigurable) {
  NullService svc(128);
  Bytes reply = svc.execute(make_request({}));
  EXPECT_EQ(reply.size(), 128u);
  EXPECT_EQ(svc.executed(), 1u);
}

TEST(NullService, DigestTracksExecutionCount) {
  NullService a, b;
  EXPECT_EQ(a.state_digest(), b.state_digest());
  a.execute(make_request({}));
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.execute(make_request({}));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

// ---- KvStore ------------------------------------------------------------

class KvStoreTest : public ::testing::Test {
 protected:
  std::unique_ptr<crypto::CryptoProvider> crypto_ =
      crypto::make_null_crypto();
  KvStore store_{*crypto_};

  KvResult run(KvOpCode op, const std::string& key, Bytes value = {}) {
    Bytes reply = store_.execute(make_request(KvOp{op, key, value}.encode()));
    auto result = KvResult::decode(reply);
    EXPECT_TRUE(result);
    return *result;
  }
};

TEST_F(KvStoreTest, PutGetDelete) {
  EXPECT_EQ(run(KvOpCode::kGet, "a").status, KvStatus::kNotFound);
  EXPECT_EQ(run(KvOpCode::kPut, "a", to_bytes("1")).status, KvStatus::kOk);
  auto got = run(KvOpCode::kGet, "a");
  EXPECT_EQ(got.status, KvStatus::kOk);
  EXPECT_EQ(got.value, to_bytes("1"));
  EXPECT_EQ(run(KvOpCode::kDelete, "a").status, KvStatus::kOk);
  EXPECT_EQ(run(KvOpCode::kGet, "a").status, KvStatus::kNotFound);
  EXPECT_EQ(run(KvOpCode::kDelete, "a").status, KvStatus::kNotFound);
}

TEST_F(KvStoreTest, OverwriteChangesValue) {
  run(KvOpCode::kPut, "k", to_bytes("v1"));
  run(KvOpCode::kPut, "k", to_bytes("v2"));
  EXPECT_EQ(run(KvOpCode::kGet, "k").value, to_bytes("v2"));
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(KvStoreTest, MalformedPayloadRejected) {
  Bytes reply = store_.execute(make_request(to_bytes("garbage")));
  auto result = KvResult::decode(reply);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->status, KvStatus::kBadRequest);
  EXPECT_FALSE(store_.pre_validate(make_request(to_bytes("garbage"))));
}

TEST_F(KvStoreTest, StateDigestOrderIndependentAcrossKeys) {
  KvStore other(*crypto_);
  // Same final state reached in different key orders -> same digest.
  store_.execute(make_request(KvOp{KvOpCode::kPut, "a", to_bytes("1")}.encode()));
  store_.execute(make_request(KvOp{KvOpCode::kPut, "b", to_bytes("2")}.encode()));
  other.execute(make_request(KvOp{KvOpCode::kPut, "b", to_bytes("2")}.encode()));
  other.execute(make_request(KvOp{KvOpCode::kPut, "a", to_bytes("1")}.encode()));
  EXPECT_EQ(store_.state_digest().hex(), other.state_digest().hex());
}

TEST_F(KvStoreTest, StateDigestReturnsAfterUndo) {
  crypto::Digest empty = store_.state_digest();
  run(KvOpCode::kPut, "x", to_bytes("v"));
  EXPECT_NE(store_.state_digest(), empty);
  run(KvOpCode::kDelete, "x");
  EXPECT_EQ(store_.state_digest(), empty) << "incremental digest reverts";
}

TEST_F(KvStoreTest, DigestDistinguishesValues) {
  KvStore other(*crypto_);
  run(KvOpCode::kPut, "k", to_bytes("1"));
  other.execute(make_request(KvOp{KvOpCode::kPut, "k", to_bytes("2")}.encode()));
  EXPECT_NE(store_.state_digest(), other.state_digest());
}

TEST_F(KvStoreTest, ClassifyRoutesKeysToShardsAndGarbageToGlobal) {
  // Same key -> same shard, read/write bit from the opcode.
  AccessClass get = store_.classify(
      make_request(KvOp{KvOpCode::kGet, "some/key", {}}.encode()));
  AccessClass put = store_.classify(
      make_request(KvOp{KvOpCode::kPut, "some/key", to_bytes("v")}.encode()));
  EXPECT_EQ(get.scope, AccessClass::Scope::kShard);
  EXPECT_EQ(put.scope, AccessClass::Scope::kShard);
  EXPECT_EQ(get.shard, put.shard);
  EXPECT_LT(get.shard, store_.num_shards());
  EXPECT_FALSE(get.write);
  EXPECT_TRUE(put.write);
  // Undecodable payload: conservative kGlobal (it still executes — to a
  // kBadRequest reply — and must never be claimed independent).
  EXPECT_EQ(store_.classify(make_request(to_bytes("garbage"))).scope,
            AccessClass::Scope::kGlobal);
}

TEST_F(KvStoreTest, ShardCountIsNotReplicatedState) {
  // Replicas configured with different shard counts must agree on digest
  // and snapshot byte-for-byte: sharding is scheduling, not state.
  KvStore one(*crypto_, 1);
  KvStore five(*crypto_, 5);
  for (int i = 0; i < 32; ++i) {
    const Bytes payload =
        KvOp{KvOpCode::kPut, "key-" + std::to_string(i),
             to_bytes("value-" + std::to_string(i))}
            .encode();
    store_.execute(make_request(payload));
    one.execute(make_request(payload));
    five.execute(make_request(payload));
  }
  EXPECT_EQ(store_.state_digest(), one.state_digest());
  EXPECT_EQ(store_.state_digest(), five.state_digest());
  EXPECT_EQ(store_.snapshot(), one.snapshot());
  EXPECT_EQ(store_.snapshot(), five.snapshot());

  // And a snapshot restores across shard counts.
  KvStore restored(*crypto_, 3);
  ASSERT_TRUE(restored.restore(store_.snapshot(), store_.state_digest()));
  EXPECT_EQ(restored.state_digest(), store_.state_digest());
  ASSERT_NE(restored.lookup("key-7"), nullptr);
  EXPECT_EQ(*restored.lookup("key-7"), to_bytes("value-7"));
}

#if COP_INVARIANTS_ENABLED
std::atomic<int> g_quiescence_fires{0};
void count_quiescence_violation(const InvariantViolation&) {
  g_quiescence_fires.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(KvStoreTest, SnapshotDuringInFlightExecutionFiresInvariant) {
  run(KvOpCode::kPut, "k", to_bytes("v"));
  g_quiescence_fires.store(0);
  InvariantHandler prev = set_invariant_handler(&count_quiescence_violation);
  {
    // An open ExecutionScope is exactly what a worker still inside
    // execute() looks like: hashing or snapshotting now would read state
    // mid-mutation. The invariant makes that loud instead of latent.
    KvStore::ExecutionScope in_flight(store_);
    (void)store_.snapshot();
    EXPECT_EQ(g_quiescence_fires.load(), 1);
    (void)store_.state_digest();
    EXPECT_EQ(g_quiescence_fires.load(), 2);
  }
  // Quiescent again: clean.
  (void)store_.snapshot();
  (void)store_.state_digest();
  set_invariant_handler(prev);
  EXPECT_EQ(g_quiescence_fires.load(), 2);
}
#endif  // COP_INVARIANTS_ENABLED

TEST(KvOp, EncodingRoundTrip) {
  KvOp op{KvOpCode::kPut, "some/key", to_bytes("value")};
  auto back = KvOp::decode(op.encode());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->op, op.op);
  EXPECT_EQ(back->key, op.key);
  EXPECT_EQ(back->value, op.value);
  EXPECT_FALSE(KvOp::decode(to_bytes("x")));
}

// ---- CoordinationService -------------------------------------------------

class CoordinationTest : public ::testing::Test {
 protected:
  std::unique_ptr<crypto::CryptoProvider> crypto_ =
      crypto::make_null_crypto();
  CoordinationService svc_{*crypto_};

  CoordResult run(CoordOpCode op, const std::string& path, Bytes data = {}) {
    Bytes reply =
        svc_.execute(make_request(CoordOp{op, path, data}.encode()));
    auto result = CoordResult::decode(reply);
    EXPECT_TRUE(result);
    return *result;
  }
};

TEST_F(CoordinationTest, CreateGetSetDelete) {
  EXPECT_EQ(run(CoordOpCode::kCreate, "/a", to_bytes("d1")).status,
            CoordStatus::kOk);
  auto got = run(CoordOpCode::kGetData, "/a");
  EXPECT_EQ(got.status, CoordStatus::kOk);
  EXPECT_EQ(got.payload, to_bytes("d1"));
  EXPECT_EQ(got.version, 0u);

  EXPECT_EQ(run(CoordOpCode::kSetData, "/a", to_bytes("d2")).status,
            CoordStatus::kOk);
  got = run(CoordOpCode::kGetData, "/a");
  EXPECT_EQ(got.payload, to_bytes("d2"));
  EXPECT_EQ(got.version, 1u);

  EXPECT_EQ(run(CoordOpCode::kDelete, "/a").status, CoordStatus::kOk);
  EXPECT_EQ(run(CoordOpCode::kGetData, "/a").status, CoordStatus::kNoNode);
}

TEST_F(CoordinationTest, HierarchyRules) {
  EXPECT_EQ(run(CoordOpCode::kCreate, "/a/b").status, CoordStatus::kNoParent);
  EXPECT_EQ(run(CoordOpCode::kCreate, "/a").status, CoordStatus::kOk);
  EXPECT_EQ(run(CoordOpCode::kCreate, "/a").status, CoordStatus::kNodeExists);
  EXPECT_EQ(run(CoordOpCode::kCreate, "/a/b").status, CoordStatus::kOk);
  EXPECT_EQ(run(CoordOpCode::kDelete, "/a").status, CoordStatus::kNotEmpty);
  EXPECT_EQ(run(CoordOpCode::kDelete, "/a/b").status, CoordStatus::kOk);
  EXPECT_EQ(run(CoordOpCode::kDelete, "/a").status, CoordStatus::kOk);
}

TEST_F(CoordinationTest, ChildrenListing) {
  run(CoordOpCode::kCreate, "/a");
  run(CoordOpCode::kCreate, "/a/x");
  run(CoordOpCode::kCreate, "/a/y");
  auto children = run(CoordOpCode::kChildren, "/a");
  EXPECT_EQ(to_string(children.payload), "x\ny");
  auto root_children = run(CoordOpCode::kChildren, "/");
  EXPECT_EQ(to_string(root_children.payload), "a");
}

TEST_F(CoordinationTest, ExistsAndVersions) {
  EXPECT_EQ(run(CoordOpCode::kExists, "/n").status, CoordStatus::kNoNode);
  run(CoordOpCode::kCreate, "/n");
  EXPECT_EQ(run(CoordOpCode::kExists, "/n").status, CoordStatus::kOk);
  run(CoordOpCode::kSetData, "/n", to_bytes("1"));
  run(CoordOpCode::kSetData, "/n", to_bytes("2"));
  EXPECT_EQ(run(CoordOpCode::kExists, "/n").version, 2u);
}

TEST_F(CoordinationTest, PathValidation) {
  EXPECT_EQ(run(CoordOpCode::kCreate, "no-slash").status,
            CoordStatus::kBadRequest);
  EXPECT_EQ(run(CoordOpCode::kCreate, "/trailing/").status,
            CoordStatus::kBadRequest);
  EXPECT_EQ(run(CoordOpCode::kCreate, "//double").status,
            CoordStatus::kBadRequest);
  EXPECT_EQ(run(CoordOpCode::kDelete, "/").status, CoordStatus::kBadRequest);
}

TEST_F(CoordinationTest, DigestMatchesForEqualStatesOnly) {
  CoordinationService other(*crypto_);
  EXPECT_EQ(svc_.state_digest(), other.state_digest());
  run(CoordOpCode::kCreate, "/z", to_bytes("d"));
  EXPECT_NE(svc_.state_digest(), other.state_digest());
  other.execute(
      make_request(CoordOp{CoordOpCode::kCreate, "/z", to_bytes("d")}.encode()));
  EXPECT_EQ(svc_.state_digest(), other.state_digest());
  // Reads leave the digest untouched.
  crypto::Digest before = svc_.state_digest();
  run(CoordOpCode::kGetData, "/z");
  run(CoordOpCode::kChildren, "/");
  EXPECT_EQ(svc_.state_digest(), before);
}

TEST_F(CoordinationTest, DeterministicReplayYieldsSameDigest) {
  // Replaying the same operation sequence on a second instance reproduces
  // the digest — the property state-machine replication relies on.
  std::vector<CoordOp> ops = {
      {CoordOpCode::kCreate, "/app", to_bytes("root")},
      {CoordOpCode::kCreate, "/app/cfg", to_bytes("v0")},
      {CoordOpCode::kSetData, "/app/cfg", to_bytes("v1")},
      {CoordOpCode::kCreate, "/app/lock", {}},
      {CoordOpCode::kDelete, "/app/lock", {}},
  };
  CoordinationService replay(*crypto_);
  for (const auto& op : ops) {
    svc_.execute(make_request(op.encode()));
    replay.execute(make_request(op.encode()));
  }
  EXPECT_EQ(svc_.state_digest().hex(), replay.state_digest().hex());
  EXPECT_EQ(svc_.node_count(), 3u);  // "/", "/app", "/app/cfg"
}

TEST(CoordOp, EncodingRoundTrip) {
  CoordOp op{CoordOpCode::kSetData, "/a/b", to_bytes("data")};
  auto back = CoordOp::decode(op.encode());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->op, op.op);
  EXPECT_EQ(back->path, op.path);
  EXPECT_EQ(back->data, op.data);
  EXPECT_TRUE(back->is_read() == false);
  EXPECT_FALSE(CoordOp::decode(to_bytes("")));
}

}  // namespace
}  // namespace copbft::app
