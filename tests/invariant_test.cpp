// Proves every COP_INVARIANT site fires on a violating input.
//
// A capturing handler replaces the default abort so the firing thread
// (test, execution-stage or pillar thread) records the violation and
// continues; each test then asserts on the captured context. This is the
// debug-hook flavour of a death test and runs unchanged under ASan/TSan.
#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "app/null_service.hpp"
#include "common/invariant.hpp"
#include "core/checkpoint_artifact.hpp"
#include "core/execution_stage.hpp"
#include "core/pillar.hpp"
#include "protocol/wire.hpp"
#include "support/core_harness.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

struct Captured {
  std::string expression;
  std::string message;
  int line = 0;
};

std::mutex g_mutex;
std::condition_variable g_cv;
std::vector<Captured> g_fired;

void capture_violation(const InvariantViolation& v) {
  std::lock_guard lock(g_mutex);
  g_fired.push_back(Captured{v.expression, v.message, v.line});
  g_cv.notify_all();
}

class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !COP_INVARIANTS_ENABLED
    GTEST_SKIP() << "invariants compiled out (COP_ENABLE_INVARIANTS=OFF)";
#endif
    {
      std::lock_guard lock(g_mutex);
      g_fired.clear();
    }
    previous_ = set_invariant_handler(&capture_violation);
  }

  void TearDown() override {
    if (stage_) stage_->stop();
    set_invariant_handler(previous_);
  }

  /// Waits until at least `count` invariants fired (they fire on other
  /// threads) and returns a snapshot.
  std::vector<Captured> wait_fired(std::size_t count, int ms = 2000) {
    std::unique_lock lock(g_mutex);
    g_cv.wait_for(lock, std::chrono::milliseconds(ms),
                  [&] { return g_fired.size() >= count; });
    return g_fired;
  }

  void start_stage(std::uint32_t pillars) {
    config_.num_pillars = pillars;
    config_.protocol.num_pillars = pillars;
    config_.protocol.checkpoint_interval = 10;
    config_.protocol.window = 40;
    crypto_ = crypto::make_real_crypto(3);
    service_ = std::make_unique<app::NullService>(4);
    stage_ = std::make_unique<ExecutionStage>(
        /*self=*/1, config_, *service_, *crypto_, transport_);
    stage_->start();
  }

  CommittedBatch batch(SeqNum seq, std::uint32_t pillar, RequestId id) {
    auto requests = std::make_shared<std::vector<Request>>();
    Request req;
    req.client = 1001;
    req.id = id;
    req.payload = to_bytes("x");
    requests->push_back(std::move(req));
    return CommittedBatch{seq, 0, requests, pillar};
  }

  ReplicaRuntimeConfig config_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  std::unique_ptr<app::NullService> service_;
  FakeTransport transport_;
  std::unique_ptr<ExecutionStage> stage_;
  InvariantHandler previous_ = nullptr;
};

TEST_F(InvariantTest, GenesisSequenceNumberTrips) {
  start_stage(/*pillars=*/1);
  stage_->submit(batch(/*seq=*/0, /*pillar=*/0, /*id=*/1));
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].expression.find("batch.seq != 0"), std::string::npos);
}

TEST_F(InvariantTest, PillarOwnershipPartitionTrips) {
  start_stage(/*pillars=*/2);
  // Sequence number 1 belongs to pillar 1 under c(p,i) = p + i*NP; a batch
  // claiming pillar 0 breaks the partition.
  stage_->submit(batch(/*seq=*/1, /*pillar=*/0, /*id=*/1));
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("c(p,i)=p+i*NP"), std::string::npos);
}

TEST_F(InvariantTest, CheckpointWindowDriftBoundTrips) {
  start_stage(/*pillars=*/2);
  // window = 40 and the frontier is at 1: seq 45 is beyond the drift any
  // correct pillar could reach before the next checkpoint stabilized.
  stage_->submit(batch(/*seq=*/45, /*pillar=*/1, /*id=*/1));
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("drift bound"), std::string::npos);
}

TEST_F(InvariantTest, ConflictingCommitForSameSeqTrips) {
  start_stage(/*pillars=*/2);
  // Both batches buffer behind the missing seq 1; the second commit for
  // seq 2 carries a different request, which would fork the total order.
  stage_->submit(batch(/*seq=*/2, /*pillar=*/0, /*id=*/20));
  stage_->submit(batch(/*seq=*/2, /*pillar=*/0, /*id=*/21));
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("fork"), std::string::npos);
}

TEST_F(InvariantTest, MisalignedStartCheckpointTrips) {
  ProtocolConfig cfg;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  PillarGroupHarness h({cfg});
  crypto::Digest digest;
  h.core(0).start_checkpoint(/*seq=*/7, digest, /*now_us=*/0);
  auto fired = wait_fired(1, /*ms=*/0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("checkpoint interval"), std::string::npos);
}

TEST_F(InvariantTest, MisalignedStabilityNoticeTrips) {
  ProtocolConfig cfg;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  PillarGroupHarness h({cfg});
  crypto::Digest digest;
  h.core(0).note_checkpoint_stable(/*seq=*/7, digest);
  auto fired = wait_fired(1, /*ms=*/0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("stability notice"), std::string::npos);
}

TEST_F(InvariantTest, MisalignedStateInstallTrips) {
  start_stage(/*pillars=*/1);
  // Checkpoints only exist at interval boundaries (interval = 10); an
  // install at seq 7 cannot correspond to any agreed checkpoint.
  stage_->submit_install(InstallState{/*seq=*/7, crypto::Digest{}, {},
                                      [](bool) {}});
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("checkpoint interval"), std::string::npos);
}

TEST_F(InvariantTest, RegressingStateInstallTrips) {
  start_stage(/*pillars=*/1);
  // A genuine install at seq 20 first: empty client table plus a fresh
  // NullService snapshot, with the matching composite digest.
  app::NullService donor(4);
  CheckpointArtifact artifact;
  {
    WireWriter w(artifact.client_table);
    w.u32(0);  // no clients
  }
  artifact.service_digest = donor.state_digest();
  artifact.service_snapshot = donor.snapshot();
  crypto::Digest digest = artifact.composite_digest(*crypto_);
  std::promise<bool> first;
  auto first_ok = first.get_future();
  stage_->submit_install(InstallState{
      /*seq=*/20, digest, artifact.encode(),
      [&first](bool ok) { first.set_value(ok); }});
  ASSERT_EQ(first_ok.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  ASSERT_TRUE(first_ok.get());

  // Rewinding below the installed checkpoint would fork the state.
  stage_->submit_install(InstallState{/*seq=*/10, digest, artifact.encode(),
                                      [](bool) {}});
  auto fired = wait_fired(1);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("regresses"), std::string::npos);
}

TEST_F(InvariantTest, MisroutedCheckpointCommandTrips) {
  // A full pillar: seq 10 with interval 10 and NP=2 is owned by pillar
  // (10/10) % 2 = 1; routing the command to pillar 0 must trip.
  config_.num_pillars = 2;
  config_.protocol.num_pillars = 2;
  config_.protocol.checkpoint_interval = 10;
  config_.protocol.window = 40;
  crypto_ = crypto::make_real_crypto(3);
  service_ = std::make_unique<app::NullService>(4);
  stage_ = std::make_unique<ExecutionStage>(
      /*self=*/0, config_, *service_, *crypto_, transport_);
  InPlaceOutbound outbound(/*self=*/0, config_.protocol.num_replicas,
                           *crypto_, transport_);
  Pillar pillar(/*self=*/0, /*index=*/0, config_, *crypto_, transport_,
                *stage_, outbound, service_.get(), nullptr);
  pillar.start();
  crypto::Digest digest;
  pillar.post_command(StartCheckpoint{/*seq=*/10, digest});
  auto fired = wait_fired(1);
  pillar.stop();
  ASSERT_GE(fired.size(), 1u);
  EXPECT_NE(fired[0].message.find("owner"), std::string::npos);
}

}  // namespace
}  // namespace copbft::test
