#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/messages.hpp"
#include "protocol/wire.hpp"

namespace copbft::protocol {
namespace {

crypto::Authenticator fake_auth(std::uint32_t entries) {
  crypto::Authenticator auth;
  for (std::uint32_t i = 0; i < entries; ++i) {
    crypto::AuthenticatorEntry e;
    e.recipient = i;
    e.mac.bytes.fill(static_cast<Byte>(i + 1));
    auth.entries.push_back(e);
  }
  return auth;
}

Request sample_request(ClientId client, RequestId id, std::size_t payload) {
  Request req;
  req.client = client;
  req.id = id;
  req.flags = kFlagReadOnly;
  req.payload = Bytes(payload, Byte{0x7e});
  req.auth = fake_auth(4);
  return req;
}

template <typename T>
void expect_round_trip(const Message& msg) {
  Bytes encoded = encode_message(msg);
  EXPECT_EQ(encoded.size(), encoded_size(msg));

  auto decoded = decode_message(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->body_size, authenticated_size(msg));
  ASSERT_TRUE(std::holds_alternative<T>(decoded->msg));
  // Canonical encoding: re-encoding reproduces identical bytes.
  EXPECT_EQ(encode_message(decoded->msg), encoded);
}

TEST(Wire, PrimitivesRoundTrip) {
  Bytes buf;
  WireWriter w(buf);
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.bytes(to_bytes("hello"));

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(to_string(r.bytes()), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, ReaderBoundsChecked) {
  Bytes buf = {1, 2, 3};
  WireReader r(buf);
  r.u16();
  EXPECT_TRUE(r.ok());
  r.u32();  // only 1 byte left
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u) << "reads after failure return zero";
}

TEST(Wire, ByteStringLengthOverrun) {
  Bytes buf;
  WireWriter w(buf);
  w.u32(1000);  // claims 1000 bytes, provides none
  WireReader r(buf);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Messages, RequestRoundTrip) {
  expect_round_trip<Request>(sample_request(1001, 7, 128));
}

TEST(Messages, PrePrepareRoundTrip) {
  PrePrepare pp;
  pp.view = 3;
  pp.seq = 42;
  pp.digest.bytes.fill(0x11);
  pp.requests.push_back(sample_request(1001, 1, 16));
  pp.requests.push_back(sample_request(1002, 9, 0));
  pp.auth = fake_auth(3);
  expect_round_trip<PrePrepare>(pp);
}

TEST(Messages, EmptyBatchPrePrepareRoundTrip) {
  PrePrepare pp;
  pp.view = 0;
  pp.seq = 9;
  pp.auth = fake_auth(3);
  expect_round_trip<PrePrepare>(pp);
}

TEST(Messages, PrepareCommitRoundTrip) {
  Prepare p;
  p.view = 1;
  p.seq = 2;
  p.digest.bytes.fill(0x22);
  p.replica = 3;
  p.auth = fake_auth(3);
  expect_round_trip<Prepare>(p);

  Commit c;
  c.view = 1;
  c.seq = 2;
  c.digest.bytes.fill(0x33);
  c.replica = 0;
  c.auth = fake_auth(3);
  expect_round_trip<Commit>(c);
}

TEST(Messages, CheckpointRoundTrip) {
  CheckpointMsg cp;
  cp.seq = 1000;
  cp.digest.bytes.fill(0x44);
  cp.replica = 2;
  cp.auth = fake_auth(3);
  expect_round_trip<CheckpointMsg>(cp);
}

TEST(Messages, ReplyRoundTrip) {
  Reply reply;
  reply.view = 5;
  reply.client = 1003;
  reply.id = 77;
  reply.replica = 1;
  reply.result = to_bytes("result bytes");
  reply.auth = fake_auth(1);
  expect_round_trip<Reply>(reply);
}

TEST(Messages, ViewChangeRoundTrip) {
  ViewChange vc;
  vc.new_view = 2;
  vc.stable_seq = 1000;
  vc.stable_digest.bytes.fill(0x55);
  vc.replica = 3;
  PreparedProof proof;
  proof.view = 1;
  proof.seq = 1001;
  proof.digest.bytes.fill(0x66);
  proof.requests.push_back(sample_request(1001, 3, 64));
  vc.prepared.push_back(proof);
  vc.auth = fake_auth(3);
  expect_round_trip<ViewChange>(vc);
}

TEST(Messages, NewViewRoundTrip) {
  NewView nv;
  nv.view = 2;
  nv.replica = 2;
  PrePrepare pp;
  pp.view = 2;
  pp.seq = 1001;
  pp.digest.bytes.fill(0x77);
  pp.requests.push_back(sample_request(1001, 3, 8));
  nv.pre_prepares.push_back(pp);
  nv.auth = fake_auth(3);
  expect_round_trip<NewView>(nv);
}

TEST(Messages, DecodeRejectsUnknownTag) {
  Bytes buf = {99, 0, 0, 0};
  EXPECT_FALSE(decode_message(buf).has_value());
}

TEST(Messages, DecodeRejectsTrailingGarbage) {
  Bytes encoded = encode_message(sample_request(1001, 1, 4));
  encoded.push_back(0);
  EXPECT_FALSE(decode_message(encoded).has_value());
}

TEST(Messages, DecodeRejectsAllTruncations) {
  PrePrepare pp;
  pp.view = 1;
  pp.seq = 2;
  pp.digest.bytes.fill(0x42);
  pp.requests.push_back(sample_request(1001, 1, 32));
  pp.auth = fake_auth(3);
  Bytes encoded = encode_message(Message{pp});
  // Any strict prefix must be rejected, never crash or over-read.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = decode_message(ByteSpan{encoded.data(), len});
    EXPECT_FALSE(decoded.has_value()) << "truncated to " << len;
  }
}

TEST(Messages, DecodeSurvivesRandomCorruption) {
  Rng rng(2024);
  Bytes original = encode_message(sample_request(1001, 5, 64));
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes corrupted = original;
    std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i)
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<Byte>(1 + rng.below(255));
    // Must not crash; may decode to a different but well-formed message.
    auto decoded = decode_message(corrupted);
    if (decoded) {
      Bytes re = encode_message(decoded->msg);
      EXPECT_EQ(re.size(), corrupted.size());
    }
  }
}

TEST(Messages, DecodeSurvivesRandomNoise) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes noise(rng.below(256));
    for (auto& b : noise) b = static_cast<Byte>(rng.below(256));
    (void)decode_message(noise);  // must not crash / over-read
  }
}

TEST(Messages, BatchDigestIgnoresAuthenticators) {
  auto crypto = crypto::make_null_crypto();
  Request a = sample_request(1001, 1, 16);
  Request b = a;
  b.auth = fake_auth(1);  // different authenticator, same content
  EXPECT_EQ(batch_digest(*crypto, {a}), batch_digest(*crypto, {b}));
  b.payload[0] ^= 1;
  EXPECT_NE(batch_digest(*crypto, {a}), batch_digest(*crypto, {b}));
}

TEST(Messages, BatchDigestOrderSensitive) {
  auto crypto = crypto::make_null_crypto();
  Request a = sample_request(1001, 1, 4);
  Request b = sample_request(1002, 2, 4);
  EXPECT_NE(batch_digest(*crypto, {a, b}), batch_digest(*crypto, {b, a}));
}

TEST(Messages, AuthenticatedPartExcludesAuthenticator) {
  Message msg{sample_request(1001, 1, 8)};
  Bytes full = encode_message(msg);
  Bytes part = encode_authenticated_part(msg);
  ASSERT_LT(part.size(), full.size());
  EXPECT_TRUE(std::equal(part.begin(), part.end(), full.begin()));
  EXPECT_EQ(part.size(), authenticated_size(msg));
}

TEST(Messages, TypeNames) {
  EXPECT_STREQ(type_name(MsgType::kPrePrepare), "PRE-PREPARE");
  EXPECT_STREQ(type_name(type_of(Message{Prepare{}})), "PREPARE");
  EXPECT_STREQ(type_name(type_of(Message{CheckpointMsg{}})), "CHECKPOINT");
}

TEST(Messages, SenderNode) {
  EXPECT_EQ(sender_node(Message{sample_request(1001, 1, 0)}), 1001u);
  Prepare p;
  p.replica = 2;
  EXPECT_EQ(sender_node(Message{p}), 2u);
  EXPECT_EQ(sender_node(Message{PrePrepare{}}), kUnknownNode);
}

}  // namespace
}  // namespace copbft::protocol
