// Observability subsystem: metrics registry (counters/gauges/histogram
// timers), queue instrumentation, JSON snapshots and the request-lifecycle
// trace — including an end-to-end check that a threaded COP cluster
// produces non-zero pillar/execution/transport series and a trace from
// which one request's full path is reconstructible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/trace.hpp"
#include "support/cluster_fixture.hpp"
#include "support/json_check.hpp"

namespace copbft::test {
namespace {

// The JSON mini-validator used throughout this file is the shared one from
// bench/support/json_check.hpp — the same definition of "well-formed" the
// validate_bench_json CLI enforces on BENCH_*.json artifacts in CI.
using copbft::bench::JsonCheck;

TEST(JsonCheckSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonCheck(R"({"a":[1,2.5,-3e4],"b":{"c":"x\"y"},"d":null})").valid());
  EXPECT_TRUE(JsonCheck("[]").valid());
  EXPECT_FALSE(JsonCheck(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonCheck(R"({"a":inf})").valid());
  EXPECT_FALSE(JsonCheck(R"({"a":1)").valid());
  EXPECT_FALSE(JsonCheck(R"(["unterminated)").valid());
}

#if COP_METRICS_ENABLED

// ---- counters / gauges / histograms -----------------------------------

TEST(Metrics, CounterAggregatesAcrossThreads) {
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, GaugeTracksValueAndWatermark) {
  metrics::Gauge g;
  g.set(5);
  g.set(42);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.max(), 42);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max(), 42);
}

TEST(Metrics, HistogramMetricMatchesPlainHistogram) {
  metrics::HistogramMetric m;
  Histogram plain;
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    std::uint64_t v = rng.below(500'000);
    m.record(v);
    plain.record(v);
  }
  Histogram snap = m.snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.min(), plain.min());
  EXPECT_EQ(snap.max(), plain.max());
  EXPECT_DOUBLE_EQ(snap.mean(), plain.mean());
  for (double q : {0.5, 0.9, 0.99})
    EXPECT_EQ(snap.percentile(q), plain.percentile(q)) << "q=" << q;
}

TEST(Metrics, RegistryReturnsStableHandles) {
  auto& reg = metrics::MetricsRegistry::global();
  EXPECT_EQ(&reg.counter("test.stable.c"), &reg.counter("test.stable.c"));
  EXPECT_EQ(&reg.gauge("test.stable.g"), &reg.gauge("test.stable.g"));
  EXPECT_EQ(&reg.histogram("test.stable.h"), &reg.histogram("test.stable.h"));
}

// Scrapes must be able to run concurrently with recording threads (this is
// the TSan-facing test: sanitizer presets run the whole suite).
TEST(Metrics, SnapshotDuringUpdateIsSafe) {
  auto& reg = metrics::MetricsRegistry::global();
  auto& c = reg.counter("test.race.counter");
  auto& h = reg.histogram("test.race.hist");
  auto& g = reg.gauge("test.race.gauge");
  const std::uint64_t before = c.value();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        g.set(static_cast<std::int64_t>(i));
        h.record(i);
      }
    });

  std::uint64_t scrapes = 0;
  std::uint64_t last = before;
  while (scrapes < 50) {
    std::string json = reg.snapshot_json();
    ASSERT_TRUE(JsonCheck(json).valid()) << json.substr(0, 200);
    std::uint64_t now = c.value();
    EXPECT_GE(now, last) << "counter went backwards";
    last = now;
    ++scrapes;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(c.value(), before + kWriters * kPerThread);
  EXPECT_EQ(h.snapshot().max(), kPerThread - 1);
}

TEST(Metrics, SnapshotJsonValidWithSortedStableKeys) {
  auto& reg = metrics::MetricsRegistry::global();
  // Register out of order; the snapshot must sort them.
  reg.counter("test.order.zz").add();
  reg.counter("test.order.aa").add();
  reg.counter("test.order.mm").add();
  std::string json = reg.snapshot_json();
  ASSERT_TRUE(JsonCheck(json).valid()) << json.substr(0, 200);
  auto a = json.find("\"test.order.aa\"");
  auto m = json.find("\"test.order.mm\"");
  auto z = json.find("\"test.order.zz\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  // Two consecutive snapshots emit identical key sets in identical order.
  std::string again = reg.snapshot_json();
  EXPECT_EQ(json, again);
}

// ---- queue instrumentation --------------------------------------------

TEST(MetricsQueue, DepthGaugeAndBlockedPushCounter) {
  BoundedQueue<int> q(2);
  metrics::Gauge depth;
  metrics::Counter blocked;
  q.instrument(depth, blocked);

  q.push(1);
  EXPECT_EQ(depth.value(), 1);
  q.push(2);
  EXPECT_EQ(depth.value(), 2);

  std::thread blocked_pusher([&q] { q.push(3); });
  while (blocked.value() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(q.pop(), 1);
  blocked_pusher.join();
  EXPECT_EQ(blocked.value(), 1u);
  EXPECT_EQ(depth.value(), 2);
  EXPECT_EQ(depth.max(), 2);

  q.pop();
  q.pop();
  EXPECT_EQ(depth.value(), 0);
  EXPECT_EQ(depth.max(), 2) << "watermark survives the drain";
}

TEST(MetricsQueue, TryPushCountsBlockedLikePush) {
  BoundedQueue<int> q(1);
  metrics::Gauge depth;
  metrics::Counter blocked;
  q.instrument(depth, blocked);

  ASSERT_TRUE(q.try_push(1));
  EXPECT_EQ(blocked.value(), 0u) << "successful pushes are not backpressure";

  // A full queue rejects — and must count, exactly like push counts its
  // full-queue waits, or dashboards undercount backpressure wherever the
  // caller uses the non-blocking fallback (reply offload, gap polls).
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(blocked.value(), 1u);

  int kept = 3;
  EXPECT_FALSE(q.try_push_ref(kept));
  EXPECT_EQ(kept, 3) << "try_push_ref leaves the value intact on failure";
  EXPECT_EQ(blocked.value(), 2u);

  // Closed-queue rejection is shutdown, not backpressure: no count.
  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_FALSE(q.try_push_ref(kept));
  EXPECT_EQ(blocked.value(), 2u);
}

#endif  // COP_METRICS_ENABLED

// ---- request-lifecycle trace ------------------------------------------

TEST(Trace, DisabledCostsNothingAndRecordsNothing) {
  auto& log = trace::TraceLog::instance();
  log.disable();
  trace::point(trace::Point::kExecute, 1, 2, 3, 4, 5, 6);
  EXPECT_TRUE(log.snapshot().empty() || !log.enabled());
}

TEST(Trace, RingKeepsNewestOldestFirst) {
  auto& log = trace::TraceLog::instance();
  log.enable(/*capacity=*/8);
  for (std::uint64_t i = 1; i <= 20; ++i)
    trace::point(trace::Point::kExecute, 0, 0, i, 0, 0, i);
  auto events = log.snapshot();
  log.disable();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, 13 + i) << "oldest-first, newest kept";
}

TEST(Trace, SnapshotJsonIsValid) {
  auto& log = trace::TraceLog::instance();
  log.enable(16);
  trace::point(trace::Point::kClientSend, 1, 0, 0, 0, 1001, 1);
  trace::point(trace::Point::kCommit, 0, 1, 42, 0, 0, 0);
  std::string json = log.snapshot_json();
  log.disable();
  EXPECT_TRUE(JsonCheck(json).valid()) << json;
  EXPECT_NE(json.find("\"point\":\"client_send\""), std::string::npos);
  EXPECT_NE(json.find("\"point\":\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos);
}

// ---- end to end: threaded COP cluster ---------------------------------

#if COP_METRICS_ENABLED

TEST(MetricsCluster, ClusterRunProducesSeriesAndReconstructibleTrace) {
  auto& reg = metrics::MetricsRegistry::global();
  auto& pillar_frames = reg.counter("replica0.pillar0.frames_in");
  auto& pillar_reqs = reg.counter("replica0.pillar0.requests_in");
  auto& exec_reqs = reg.counter("replica0.exec.requests_executed");
  auto& replies = reg.counter("replica0.exec.replies_sent");
  auto& transport_frames = reg.counter("inproc.lane0.frames");
  auto& client_sent = reg.counter("client.requests_sent");
  const std::uint64_t p0 = pillar_frames.value();
  const std::uint64_t r0 = pillar_reqs.value();
  const std::uint64_t e0 = exec_reqs.value();
  const std::uint64_t y0 = replies.value();
  const std::uint64_t t0 = transport_frames.value();
  const std::uint64_t c0 = client_sent.value();

  trace::TraceLog::instance().enable();
  std::uint64_t cid = 0;
  {
    ClusterOptions options;
    options.arch = Arch::kCop;
    options.num_pillars = 2;
    Cluster cluster(options);
    cluster.start();
    auto& client = cluster.add_client_on_pillar(0);
    cid = client.id();
    for (int i = 0; i < 20; ++i)
      ASSERT_TRUE(client.invoke(to_bytes("m" + std::to_string(i))))
          << "request " << i;
  }
  trace::TraceLog::instance().disable();

  EXPECT_GT(pillar_frames.value(), p0) << "pillar saw protocol frames";
  EXPECT_GE(pillar_reqs.value(), r0 + 20) << "pillar ingested the requests";
  EXPECT_GE(exec_reqs.value(), e0 + 20) << "execution stage ran them";
  EXPECT_GE(replies.value(), y0 + 20) << "replies went out";
  EXPECT_GT(transport_frames.value(), t0) << "transport moved frames";
  EXPECT_GE(client_sent.value(), c0 + 20);

  std::string json = reg.snapshot_json();
  ASSERT_TRUE(JsonCheck(json).valid());
  for (const char* key :
       {"\"replica0.pillar0.frames_in\"", "\"replica0.exec.execute_us\"",
        "\"replica0.pillar0.queue_depth\"", "\"client.latency_us\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  // Reconstruct one request's path from the trace: the stable result names
  // (client, request); the execute event links them to a sequence number;
  // the commit event confirms that instance finished consensus.
  auto events = trace::TraceLog::instance().snapshot();
  const trace::Event* stable = nullptr;
  for (const auto& e : events)
    if (e.point == trace::Point::kStableResult && e.client == cid) stable = &e;
  ASSERT_NE(stable, nullptr) << "no stable result traced for client " << cid;

  const trace::Event* execute = nullptr;
  bool sent = false, ingress = false;
  for (const auto& e : events) {
    if (e.client != cid || e.request != stable->request) continue;
    if (e.point == trace::Point::kClientSend) sent = true;
    if (e.point == trace::Point::kPillarIngress) ingress = true;
    if (e.point == trace::Point::kExecute) execute = &e;
  }
  EXPECT_TRUE(sent) << "client send missing from trace";
  EXPECT_TRUE(ingress) << "pillar ingress missing from trace";
  ASSERT_NE(execute, nullptr) << "execute event missing from trace";

  bool committed = false;
  for (const auto& e : events)
    if (e.point == trace::Point::kCommit && e.seq == execute->seq &&
        e.pillar == execute->pillar)
      committed = true;
  EXPECT_TRUE(committed) << "no commit for seq " << execute->seq;

  // Offloaded replies (paper §4.3.2): the egress event is stamped by the
  // originating pillar with the real (pillar, seq) join key — it used to
  // emit pillar=0, seq=0 for every reply, breaking trace joins.
  bool egress = false;
  for (const auto& e : events) {
    if (e.point != trace::Point::kReplyEgress || e.client != cid ||
        e.request != stable->request)
      continue;
    EXPECT_NE(e.seq, 0u) << "reply egress lost its sequence number";
    EXPECT_EQ(e.pillar, e.seq % 2) << "egress pillar must be seq % NP";
    egress = true;
  }
  EXPECT_TRUE(egress) << "no reply egress traced for the stable request";
}

#endif  // COP_METRICS_ENABLED

}  // namespace
}  // namespace copbft::test
