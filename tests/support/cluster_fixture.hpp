// In-process cluster fixture: four threaded replicas of a chosen
// architecture over the in-process transport, with real SHA-256/HMAC
// cryptography and real clients — the full runtime stack.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "app/null_service.hpp"
#include "client/client.hpp"
#include "core/cop_replica.hpp"
#include "core/smart_replica.hpp"
#include "core/top_replica.hpp"
#include "transport/inproc.hpp"

namespace copbft::test {

enum class Arch { kCop, kTop, kSmart };

struct ClusterOptions {
  Arch arch = Arch::kCop;
  std::uint32_t num_pillars = 2;  ///< COP only
  core::ReplicaRuntimeConfig runtime;
  /// Builds the replicated service for one replica.
  std::function<std::unique_ptr<app::Service>(const crypto::CryptoProvider&)>
      make_service;

  ClusterOptions() {
    runtime.protocol.checkpoint_interval = 50;
    runtime.protocol.window = 200;
    runtime.protocol.view_change_timeout_us = 5'000'000;
    runtime.protocol.max_active_proposals = 8;
    make_service = [](const crypto::CryptoProvider&) {
      return std::make_unique<app::NullService>(8);
    };
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options)
      : options_(std::move(options)), crypto_(crypto::make_real_crypto(11)) {
    auto& runtime = options_.runtime;
    switch (options_.arch) {
      case Arch::kCop:
        runtime.num_pillars = options_.num_pillars;
        runtime.protocol.num_pillars = options_.num_pillars;
        break;
      case Arch::kTop:
        runtime.num_pillars = 1;
        runtime.protocol.num_pillars = 1;
        break;
      case Arch::kSmart:
        runtime.num_pillars = 1;
        runtime.protocol.num_pillars = 1;
        runtime.protocol.max_active_proposals = 1;
        runtime.protocol.batching = true;
        break;
    }

    for (protocol::ReplicaId r = 0; r < runtime.protocol.num_replicas; ++r) {
      auto& endpoint = network_.endpoint(protocol::replica_node(r));
      auto service = options_.make_service(*crypto_);
      switch (options_.arch) {
        case Arch::kCop:
          replicas_.push_back(std::make_unique<core::CopReplica>(
              r, runtime, std::move(service), *crypto_, endpoint));
          break;
        case Arch::kTop:
          replicas_.push_back(std::make_unique<core::TopReplica>(
              r, runtime, std::move(service), *crypto_, endpoint));
          break;
        case Arch::kSmart:
          replicas_.push_back(std::make_unique<core::SmartReplica>(
              r, runtime, std::move(service), *crypto_, endpoint));
          break;
      }
    }
  }

  ~Cluster() { stop(); }

  void start() {
    for (auto& replica : replicas_) replica->start();
  }

  void stop() {
    for (auto& client : clients_) client->stop();
    for (auto& replica : replicas_) replica->stop();
  }

  /// Crash-stops one replica (fault injection).
  void crash(protocol::ReplicaId r) { replicas_[r]->stop(); }

  client::Client& add_client(std::uint32_t offset = 0,
                             std::uint32_t window = 16) {
    client::ClientConfig cfg;
    cfg.id = protocol::kClientIdBase + next_client_++ + offset;
    cfg.num_replicas = options_.runtime.protocol.num_replicas;
    cfg.max_faulty = options_.runtime.protocol.max_faulty;
    cfg.num_pillars = options_.runtime.num_pillars;
    cfg.window = window;
    cfg.retransmit_timeout_us = 400'000;
    auto& endpoint = network_.endpoint(protocol::client_node(cfg.id));
    clients_.push_back(
        std::make_unique<client::Client>(cfg, *crypto_, endpoint));
    clients_.back()->start();
    return *clients_.back();
  }

  /// Creates a client whose id maps to the given pillar (id % NP == p).
  client::Client& add_client_on_pillar(std::uint32_t pillar,
                                       std::uint32_t window = 16) {
    std::uint32_t np = options_.runtime.num_pillars;
    while ((protocol::kClientIdBase + next_client_) % np != pillar)
      ++next_client_;
    return add_client(0, window);
  }

  core::Replica& replica(protocol::ReplicaId r) { return *replicas_[r]; }
  transport::InprocNetwork& network() { return network_; }
  const crypto::CryptoProvider& crypto() const { return *crypto_; }
  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  transport::InprocNetwork network_;
  std::vector<std::unique_ptr<core::Replica>> replicas_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::uint32_t next_client_ = 0;
};

}  // namespace copbft::test
