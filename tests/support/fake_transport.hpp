// Test double for transport::Transport: records every sent frame.
#pragma once

#include <mutex>
#include <vector>

#include "transport/transport.hpp"

namespace copbft::test {

class FakeTransport final : public transport::Transport {
 public:
  struct Sent {
    crypto::KeyNodeId to;
    transport::LaneId lane;
    Bytes frame;
  };

  void register_sink(transport::LaneId lane,
                     std::shared_ptr<transport::FrameSink> sink) override {
    std::lock_guard lock(mutex_);
    sinks_.emplace_back(lane, std::move(sink));
  }

  bool send(crypto::KeyNodeId to, transport::LaneId lane,
            Bytes frame) override {
    std::lock_guard lock(mutex_);
    sent_.push_back({to, lane, std::move(frame)});
    return true;
  }

  void shutdown() override {}

  std::vector<Sent> take_sent() {
    std::lock_guard lock(mutex_);
    std::vector<Sent> out;
    out.swap(sent_);
    return out;
  }

  std::size_t sent_count() const {
    std::lock_guard lock(mutex_);
    return sent_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Sent> sent_;
  std::vector<std::pair<transport::LaneId,
                        std::shared_ptr<transport::FrameSink>>>
      sinks_;
};

}  // namespace copbft::test
