// Deterministic in-memory harness for a group of PbftCores.
//
// Plays the role of network + hosts for one pillar group (one sequence
// slice across all replicas): effects are routed through an in-memory
// message pool that tests can reorder, duplicate, drop or delay; delivery
// and checkpoint events are recorded per replica. Time is virtual.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "crypto/provider.hpp"
#include "protocol/pbft_core.hpp"

namespace copbft::test {

using namespace copbft::protocol;

struct DeliveredBatch {
  SeqNum seq;
  ViewId view;
  std::vector<Request> requests;
};

class PillarGroupHarness {
 public:
  struct Options {
    ProtocolConfig config;
    SeqSlice slice{0, 1};
    std::uint64_t seed = 1;
    bool shuffle = false;      ///< random interleaving of in-flight messages
    double duplicate_p = 0.0;  ///< probability of duplicating a message
    /// drop filter: return true to drop (from, to, msg)
    std::function<bool(ReplicaId, ReplicaId, const Message&)> drop;
    /// act as execution stage: trigger checkpoints at interval boundaries
    bool auto_checkpoint = true;
  };

  explicit PillarGroupHarness(Options options)
      : options_(std::move(options)),
        crypto_(crypto::make_null_crypto()),
        rng_(options_.seed) {
    options_.config.validate();
    for (ReplicaId r = 0; r < options_.config.num_replicas; ++r) {
      verifiers_.push_back(std::make_unique<AcceptAllVerifier>());
      cores_.push_back(std::make_unique<PbftCore>(
          options_.config, r, options_.slice, *verifiers_.back(), *crypto_));
      delivered_.emplace_back();
      stable_.emplace_back();
      exec_next_.push_back(options_.slice.offset == 0
                               ? options_.slice.at(1)
                               : options_.slice.at(0));
    }
  }

  PbftCore& core(ReplicaId r) { return *cores_[r]; }
  std::uint64_t now() const { return now_us_; }
  void advance_time(std::uint64_t us) { now_us_ += us; }

  /// Submits a client request to a subset of replicas (default: all, as
  /// clients broadcast their requests).
  void client_request(ClientId client, RequestId id, Bytes payload,
                      std::vector<ReplicaId> to = {}) {
    Request req{client, id, 0, std::move(payload), {}};
    if (to.empty())
      for (ReplicaId r = 0; r < num_replicas(); ++r) to.push_back(r);
    for (ReplicaId r : to) {
      cores_[r]->on_request(req, now_us_, /*verified=*/true);
      pump(r);
    }
  }

  /// Delivers one in-flight message; false when the pool is empty.
  bool step() {
    if (pool_.empty()) return false;
    std::size_t pick =
        options_.shuffle ? static_cast<std::size_t>(rng_.below(pool_.size()))
                         : 0;
    Envelope env = std::move(pool_[pick]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(pick));

    IncomingMessage im;
    im.msg = env.msg;
    cores_[env.to]->on_message(std::move(im), now_us_);
    pump(env.to);
    return true;
  }

  /// Runs until no messages are in flight (or the step budget is hit).
  void run_until_quiescent(std::size_t max_steps = 2'000'000) {
    std::size_t steps = 0;
    while (step()) {
      if (++steps > max_steps) throw std::runtime_error("harness stuck");
    }
  }

  /// Ticks every core's timeout logic at the current virtual time.
  void tick_all() {
    for (ReplicaId r = 0; r < num_replicas(); ++r) {
      cores_[r]->tick(now_us_);
      pump(r);
    }
  }

  void fill_gap(ReplicaId r, SeqNum upto) {
    cores_[r]->fill_gap_upto(upto, now_us_);
    pump(r);
  }

  /// Committed instances per replica, in arrival (not sequence) order.
  const std::vector<DeliveredBatch>& delivered(ReplicaId r) const {
    return delivered_[r];
  }

  /// Delivered batches of replica r sorted by sequence number.
  std::vector<DeliveredBatch> delivered_sorted(ReplicaId r) const {
    auto out = delivered_[r];
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.seq < b.seq; });
    return out;
  }

  const std::vector<SeqNum>& stable_checkpoints(ReplicaId r) const {
    return stable_[r];
  }

  std::uint32_t num_replicas() const { return options_.config.num_replicas; }
  std::size_t in_flight() const { return pool_.size(); }

  const crypto::CryptoProvider& crypto() const { return *crypto_; }

 private:
  struct Envelope {
    ReplicaId to;
    Message msg;
  };

  void enqueue(ReplicaId from, ReplicaId to, const Message& msg) {
    if (options_.drop && options_.drop(from, to, msg)) return;
    pool_.push_back(Envelope{to, msg});
    if (options_.duplicate_p > 0 && rng_.chance(options_.duplicate_p))
      pool_.push_back(Envelope{to, msg});
  }

  // Drains effects of core r, acting as network and execution stage.
  void pump(ReplicaId r) {
    for (Effect& effect : cores_[r]->take_effects()) {
      if (auto* bc = std::get_if<Broadcast>(&effect)) {
        for (ReplicaId to = 0; to < num_replicas(); ++to)
          if (to != r) enqueue(r, to, bc->msg);
      } else if (auto* st = std::get_if<SendTo>(&effect)) {
        enqueue(r, st->to, st->msg);
      } else if (auto* del = std::get_if<Deliver>(&effect)) {
        delivered_[r].push_back(
            DeliveredBatch{del->seq, del->view, *del->requests});
        on_executed(r);
      } else if (auto* cs = std::get_if<CheckpointStable>(&effect)) {
        stable_[r].push_back(cs->seq);
      }
    }
  }

  // Minimal execution stage: advance the per-replica contiguous frontier
  // and trigger checkpoints at interval boundaries.
  void on_executed(ReplicaId r) {
    if (!options_.auto_checkpoint) return;
    bool advanced = true;
    while (advanced) {
      advanced = false;
      for (const auto& batch : delivered_[r]) {
        if (batch.seq == exec_next_[r]) {
          SeqNum seq = batch.seq;
          exec_next_[r] = seq + options_.slice.stride;
          advanced = true;
          if (seq % options_.config.checkpoint_interval == 0) {
            crypto::Digest digest;
            digest.bytes[0] = static_cast<Byte>(seq);
            digest.bytes[1] = static_cast<Byte>(seq >> 8);
            digest.bytes[2] = static_cast<Byte>(seq >> 16);
            cores_[r]->start_checkpoint(seq, digest, now_us_);
            pump(r);
          }
        }
      }
    }
  }

  Options options_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  Rng rng_;
  std::vector<std::unique_ptr<AcceptAllVerifier>> verifiers_;
  std::vector<std::unique_ptr<PbftCore>> cores_;
  std::deque<Envelope> pool_;
  std::vector<std::vector<DeliveredBatch>> delivered_;
  std::vector<std::vector<SeqNum>> stable_;
  std::vector<SeqNum> exec_next_;
  std::uint64_t now_us_ = 0;
};

}  // namespace copbft::test
