// Property test for pillar-side commit admission (pre-execution offload,
// paper §4.3.1): any interleaving of the pillars' per-slice admission
// streams must be observationally identical to sequential admission —
// same execution order, same reply stream, same checkpoint triggers (and
// state digests), same gap-fill requests, same counters.
//
// The interleavings are seeded through common/rng.hpp so every failure
// reproduces from the printed seed. Gap-timeout behaviour is driven by a
// virtual clock handed to poll_pillar, so the gap-fill comparison is
// exact, not timing-dependent.
#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "app/null_service.hpp"
#include "common/rng.hpp"
#include "core/execution_stage.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

constexpr std::uint32_t kPillars = 3;
constexpr SeqNum kSeqs = 120;  // 12 checkpoint intervals, < ring capacity

/// Everything observable about one run, in a directly comparable shape.
struct RunRecord {
  /// (seq, client, request id) per emitted reply, in emission order —
  /// fresh executions and cached retransmissions alike.
  std::vector<std::tuple<SeqNum, ClientId, RequestId>> replies;
  /// Commands each pillar picked up from its polls, in pickup order:
  /// (pillar, kind, seq, frontier) with kind 0 = StartCheckpoint
  /// (frontier field reused for the digest's first word) and 1 = FillGap.
  std::vector<std::tuple<std::uint32_t, int, SeqNum, std::uint64_t>> commands;
  ExecutionStats stats;

  bool operator==(const RunRecord& other) const {
    return replies == other.replies && commands == other.commands &&
           stats.batches_executed == other.stats.batches_executed &&
           stats.requests_executed == other.stats.requests_executed &&
           stats.noops_executed == other.stats.noops_executed &&
           stats.duplicates_suppressed == other.stats.duplicates_suppressed &&
           stats.replies_sent == other.stats.replies_sent &&
           stats.checkpoints_triggered == other.stats.checkpoints_triggered &&
           stats.gap_fills_requested == other.stats.gap_fills_requested &&
           stats.reorder_slot_drops == other.stats.reorder_slot_drops &&
           stats.last_executed_seq == other.stats.last_executed_seq;
  }
};

/// Batch contents depend only on the content seed and the sequence
/// number — identical across interleavings by construction. Mixes noops,
/// multi-request batches, and client/request-id reuse so duplicate
/// suppression and the reply cache are part of the compared behaviour.
CommittedBatch make_batch(std::uint64_t content_seed, SeqNum seq) {
  SplitMix64 sm(content_seed ^ (seq * 0x9e3779b97f4a7c15ULL));
  auto requests = std::make_shared<std::vector<Request>>();
  if (sm.next() % 7 != 0) {  // 1 in 7 batches is a no-op fill
    const std::size_t count = 1 + sm.next() % 3;
    for (std::size_t i = 0; i < count; ++i) {
      Request req;
      req.client = static_cast<ClientId>(1001 + sm.next() % 4);
      req.id = static_cast<RequestId>(1 + sm.next() % 64);
      req.payload = to_bytes("x");
      requests->push_back(std::move(req));
    }
  }
  const SeqNum window = 40;
  const SeqNum basis = seq > window ? seq - window : 0;
  return CommittedBatch{seq, 0, std::move(requests), seq % kPillars, basis};
}

class AdmissionRun {
 public:
  explicit AdmissionRun(std::uint64_t content_seed)
      : content_seed_(content_seed) {
    config_.num_pillars = kPillars;
    config_.protocol.num_pillars = kPillars;
    config_.protocol.checkpoint_interval = 10;
    config_.protocol.window = 40;
    config_.gap_timeout_us = 10'000;
    crypto_ = crypto::make_real_crypto(3);
    service_ = std::make_unique<app::NullService>(4);
    stage_ = std::make_unique<ExecutionStage>(/*self=*/1, config_, *service_,
                                              *crypto_, transport_);
    stage_->set_reply_fn([this](ReplyTask& task) {
      std::lock_guard lock(mutex_);
      record_.replies.emplace_back(task.seq, task.client, task.request);
      return true;
    });
    stage_->start();
  }

  ~AdmissionRun() { stage_->stop(); }

  void submit(SeqNum seq) { stage_->submit(make_batch(content_seed_, seq)); }

  /// One poll round at virtual time `now_us`, all pillars in index order,
  /// appending what each picked up to the record.
  void poll_all(std::uint64_t now_us) {
    std::vector<PillarCommand> out;
    for (std::uint32_t p = 0; p < kPillars; ++p) {
      out.clear();
      stage_->poll_pillar(p, now_us, out);
      for (const PillarCommand& cmd : out) {
        if (const auto* cp = std::get_if<StartCheckpoint>(&cmd)) {
          std::uint64_t word = 0;
          for (std::size_t i = 0; i < 8; ++i)
            word = word << 8 | static_cast<std::uint64_t>(cp->digest.bytes[i]);
          record_.commands.emplace_back(p, 0, cp->seq, word);
        } else if (const auto* gap = std::get_if<FillGap>(&cmd)) {
          record_.commands.emplace_back(p, 1, gap->seq, gap->frontier);
        }
      }
    }
  }

  /// Spins (real time) until the execution frontier reaches `seq`.
  bool wait_frontier(SeqNum seq, int ms = 5000) {
    for (int spin = 0; spin < ms; ++spin) {
      if (stage_->next_seq() >= seq) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return stage_->next_seq() >= seq;
  }

  RunRecord finish() {
    std::lock_guard lock(mutex_);
    record_.stats = stage_->stats();
    return std::move(record_);
  }

 private:
  std::uint64_t content_seed_;
  ReplicaRuntimeConfig config_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  std::unique_ptr<app::NullService> service_;
  FakeTransport transport_;
  std::unique_ptr<ExecutionStage> stage_;
  std::mutex mutex_;
  RunRecord record_;
};

/// Runs one full scenario: admit every batch except a withheld frontier
/// seq, let the pillars detect the stall and request their own fills,
/// close the gap, drain, and collect the observable record.
///
/// `order_seed` = 0 submits in sequence order (the baseline, equivalent
/// to the old exec-side sequential admission); otherwise each pillar's
/// slice stays in slice order but the pillars interleave randomly.
RunRecord run_scenario(std::uint64_t content_seed, std::uint64_t order_seed,
                       SeqNum withheld) {
  std::vector<std::deque<SeqNum>> slices(kPillars);
  for (SeqNum s = 1; s <= kSeqs; ++s)
    if (s != withheld) slices[s % kPillars].push_back(s);

  AdmissionRun run(content_seed);
  if (order_seed == 0) {
    for (SeqNum s = 1; s <= kSeqs; ++s)
      if (s != withheld) run.submit(s);
  } else {
    Rng rng(order_seed);
    std::vector<std::uint32_t> nonempty;
    for (;;) {
      nonempty.clear();
      for (std::uint32_t p = 0; p < kPillars; ++p)
        if (!slices[p].empty()) nonempty.push_back(p);
      if (nonempty.empty()) break;
      auto& slice = slices[nonempty[rng.below(nonempty.size())]];
      run.submit(slice.front());
      slice.pop_front();
    }
  }

  // Execution drains up to the withheld seq and stalls there.
  EXPECT_TRUE(run.wait_frontier(withheld));
  // Virtual-clock polls: observe the new frontier, arm the stall timer,
  // then cross gap_timeout_us — every pillar must request a fill for its
  // own slice, targeting the highest watermark any pillar admitted.
  run.poll_all(1'000);
  run.poll_all(2'000);
  run.poll_all(2'000 + 10'000);

  run.submit(withheld);
  EXPECT_TRUE(run.wait_frontier(kSeqs + 1));
  // Final poll drains the checkpoint signals mailed during the full
  // drain; the frontier moved, so no further fills fire.
  run.poll_all(20'000);
  return run.finish();
}

TEST(ReorderAdmission, RandomInterleavingsMatchSequentialAdmission) {
  for (std::uint64_t content_seed : {11ULL, 22ULL, 33ULL}) {
    SplitMix64 sm(content_seed);
    const SeqNum withheld = static_cast<SeqNum>(2 + sm.next() % (kSeqs - 2));
    const RunRecord baseline = run_scenario(content_seed, 0, withheld);

    // The baseline itself must be internally coherent before it is worth
    // comparing against: everything executed, every pillar asked to fill
    // its own slice exactly once, checkpoints on every interval boundary.
    EXPECT_EQ(baseline.stats.last_executed_seq, kSeqs);
    EXPECT_EQ(baseline.stats.batches_executed, kSeqs);
    EXPECT_EQ(baseline.stats.reorder_slot_drops, 0u);
    EXPECT_EQ(baseline.stats.gap_fills_requested, kPillars);
    EXPECT_EQ(baseline.stats.checkpoints_triggered, kSeqs / 10);
    std::uint64_t fills = 0;
    for (const auto& [pillar, kind, seq, frontier] : baseline.commands) {
      if (kind != 1) continue;
      ++fills;
      EXPECT_EQ(seq, kSeqs) << "fill targets the highest admitted seq";
      EXPECT_EQ(frontier, withheld) << "fill reports the stalled frontier";
    }
    EXPECT_EQ(fills, kPillars) << "one self-addressed fill per pillar";

    for (std::uint64_t variant = 1; variant <= 4; ++variant) {
      const std::uint64_t order_seed = content_seed * 1000 + variant;
      const RunRecord shuffled =
          run_scenario(content_seed, order_seed, withheld);
      EXPECT_TRUE(shuffled == baseline)
          << "interleaving diverged from sequential admission "
          << "(content_seed=" << content_seed
          << ", order_seed=" << order_seed << ", withheld=" << withheld
          << "): replies " << shuffled.replies.size() << " vs "
          << baseline.replies.size() << ", commands "
          << shuffled.commands.size() << " vs " << baseline.commands.size()
          << ", executed " << shuffled.stats.last_executed_seq << " vs "
          << baseline.stats.last_executed_seq;
    }
  }
}

}  // namespace
}  // namespace copbft::test
