#include <gtest/gtest.h>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

ProtocolConfig vc_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  cfg.batching = false;
  cfg.view_change_timeout_us = 1'000'000;
  return cfg;
}

Bytes payload(int i) { return to_bytes("vc-op-" + std::to_string(i)); }

/// Drop filter: silences every message sent *by* the given replica.
auto crash(ReplicaId dead) {
  return [dead](ReplicaId from, ReplicaId, const Message&) {
    return from == dead;
  };
}

TEST(ViewChange, LeaderCrashTriggersNewView) {
  auto options = PillarGroupHarness::Options{vc_config()};
  options.drop = crash(0);  // leader of view 0 is silent
  PillarGroupHarness h(std::move(options));

  // Followers receive a request but the leader never proposes.
  h.client_request(1001, 1, payload(1), {1, 2, 3});
  h.run_until_quiescent();
  for (ReplicaId r = 1; r < 4; ++r) EXPECT_TRUE(h.delivered(r).empty());

  // Time passes; followers suspect the leader and change to view 1.
  h.advance_time(1'500'000);
  h.tick_all();
  h.run_until_quiescent();

  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(h.core(r).view(), 1u) << "replica " << r;
    EXPECT_FALSE(h.core(r).in_view_change());
  }
  // The new leader (replica 1) re-proposes the pending request.
  h.tick_all();
  h.run_until_quiescent();
  for (ReplicaId r = 1; r < 4; ++r) {
    auto batches = h.delivered_sorted(r);
    ASSERT_EQ(batches.size(), 1u) << "replica " << r;
    EXPECT_EQ(batches[0].requests.at(0).key(), request_key(1001, 1));
    EXPECT_EQ(batches[0].view, 1u);
  }
}

TEST(ViewChange, PreparedRequestSurvivesViewChange) {
  // The instance reaches the prepared state group-wide but no commit ever
  // spreads (embargoed); then the leader crashes. PBFT's view change must
  // re-propose the *same* batch in view 1 and commit it exactly once.
  auto options = PillarGroupHarness::Options{vc_config()};
  int phase = 0;  // 0: drop commits; 1: drop everything from the old leader
  options.drop = [&phase](ReplicaId from, ReplicaId, const Message& m) {
    if (phase == 0) return std::holds_alternative<Commit>(m);
    return from == 0;
  };
  PillarGroupHarness h(std::move(options));

  h.client_request(1001, 7, payload(7));
  h.run_until_quiescent();
  for (ReplicaId r = 0; r < 4; ++r)
    ASSERT_TRUE(h.delivered(r).empty()) << "commits were embargoed";

  phase = 1;
  h.advance_time(1'500'000);
  h.tick_all();
  h.run_until_quiescent();
  h.tick_all();
  h.run_until_quiescent();

  // All live replicas end in view 1 with the request committed exactly
  // once (the prepared certificate traveled in the view-change messages).
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(h.core(r).view(), 1u);
    std::size_t with_req = 0;
    for (const auto& b : h.delivered_sorted(r))
      for (const auto& req : b.requests)
        if (req.key() == request_key(1001, 7)) ++with_req;
    EXPECT_EQ(with_req, 1u) << "replica " << r;
  }
}

TEST(ViewChange, FaultyCoordinatorEscalatesToNextView) {
  // Replica 0 (leader of view 0) is crashed and replica 1, coordinator of
  // view 1, never sends its NEW-VIEW (faulty coordinator): the group must
  // escalate and complete the change at view 2, coordinated by replica 2.
  auto options = PillarGroupHarness::Options{vc_config()};
  options.drop = [](ReplicaId from, ReplicaId, const Message& m) {
    if (from == 0) return true;
    return from == 1 && std::holds_alternative<NewView>(m);
  };
  PillarGroupHarness h(std::move(options));

  h.client_request(1001, 1, payload(1), {1, 2, 3});
  h.run_until_quiescent();

  for (int round = 0; round < 6; ++round) {
    h.advance_time(2'500'000);
    h.tick_all();
    h.run_until_quiescent();
    if (h.core(2).view() >= 2 && !h.core(2).in_view_change()) break;
  }

  EXPECT_EQ(h.core(2).view(), 2u);
  EXPECT_FALSE(h.core(2).in_view_change());
  EXPECT_EQ(h.core(2).view(), h.core(3).view());

  // Liveness restored: the request commits in view 2 (replicas 1..3 are
  // enough for the 2f+1 quorum).
  h.tick_all();
  h.run_until_quiescent();
  for (ReplicaId r = 2; r < 4; ++r) {
    std::size_t total = 0;
    for (const auto& b : h.delivered(r)) total += b.requests.size();
    EXPECT_EQ(total, 1u) << "replica " << r;
  }
}

TEST(ViewChange, JoinOnWeakQuorum) {
  // A replica that saw no timeout joins a view change once f+1 = 2 others
  // demand it.
  auto cfg = vc_config();
  PillarGroupHarness h({cfg});

  ViewChange vc1;
  vc1.new_view = 1;
  vc1.replica = 1;
  ViewChange vc2 = vc1;
  vc2.replica = 2;

  IncomingMessage im1;
  im1.msg = vc1;
  h.core(3).on_message(std::move(im1), 0);
  EXPECT_FALSE(h.core(3).in_view_change()) << "one vote is not enough";

  IncomingMessage im2;
  im2.msg = vc2;
  h.core(3).on_message(std::move(im2), 0);
  EXPECT_TRUE(h.core(3).in_view_change()) << "f+1 votes force the join";
  EXPECT_GT(h.core(3).stats().view_changes_started, 0u);
}

TEST(ViewChange, StaleViewChangeIgnored) {
  PillarGroupHarness h({vc_config()});
  ViewChange stale;
  stale.new_view = 0;  // not higher than the current view
  stale.replica = 1;
  auto before = h.core(2).stats();
  IncomingMessage im;
  im.msg = stale;
  h.core(2).on_message(std::move(im), 0);
  EXPECT_FALSE(h.core(2).in_view_change());
  EXPECT_EQ(h.core(2).stats().macs_verified, before.macs_verified);
}

TEST(ViewChange, NormalOperationResumesInNewView) {
  auto options = PillarGroupHarness::Options{vc_config()};
  bool dead = false;
  options.drop = [&dead](ReplicaId from, ReplicaId, const Message&) {
    return dead && from == 0;
  };
  PillarGroupHarness h(std::move(options));

  // Commit a few instances in view 0 first.
  for (int i = 1; i <= 5; ++i) h.client_request(1001, i, payload(i));
  h.run_until_quiescent();
  ASSERT_EQ(h.delivered_sorted(1).size(), 5u);

  // Kill the leader, force a view change, then resume traffic.
  dead = true;
  h.client_request(1001, 6, payload(6), {1, 2, 3});
  h.run_until_quiescent();
  h.advance_time(1'500'000);
  h.tick_all();
  h.run_until_quiescent();

  for (int i = 7; i <= 10; ++i) {
    h.client_request(1001, i, payload(i), {1, 2, 3});
    h.run_until_quiescent();
  }

  // Replicas 1..3 agree on a gap-free order containing all ten requests.
  auto reference = h.delivered_sorted(1);
  std::size_t total = 0;
  for (const auto& b : reference) total += b.requests.size();
  EXPECT_EQ(total, 10u);
  for (ReplicaId r = 2; r < 4; ++r) {
    auto got = h.delivered_sorted(r);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, reference[i].seq);
      ASSERT_EQ(got[i].requests.size(), reference[i].requests.size());
      for (std::size_t j = 0; j < got[i].requests.size(); ++j)
        EXPECT_EQ(got[i].requests[j].key(), reference[i].requests[j].key());
    }
  }
}

}  // namespace
}  // namespace copbft::test
