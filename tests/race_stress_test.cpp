// Concurrency stress for the hot handoff paths, aimed at ThreadSanitizer.
//
// Functional assertions are deliberately coarse (counts, ordering); the
// point is to generate real contention on BoundedQueue and on the
// pillar -> execution stage -> outbound path so a TSan build (preset
// `tsan`) can observe every lock acquisition pattern under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "app/null_service.hpp"
#include "common/queue.hpp"
#include "core/execution_stage.hpp"
#include "core/outbound.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

TEST(RaceStress, BoundedQueueManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 10'000;

  BoundedQueue<int> queue(64);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::jthread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        // Alternate blocking and timed pops so both wait paths run hot.
        auto item = (consumed_count.load(std::memory_order_relaxed) % 2 == 0)
                        ? queue.pop()
                        : queue.pop_for(std::chrono::milliseconds(5));
        if (item) {
          consumed_sum.fetch_add(*item, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (queue.closed() && queue.empty()) {
          return;
        }
      }
    });
  }

  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        // Mix try_push and blocking push: try_push exercises the
        // full-queue bailout, push the not-full wait.
        if (!queue.try_push(value)) ASSERT_TRUE(queue.push(value));
      }
    });
  }

  producers.clear();  // join producers
  queue.close();
  consumers.clear();  // join consumers

  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

TEST(RaceStress, BoundedQueueCloseRacesWithWaiters) {
  // close() must wake every blocked producer and consumer exactly once,
  // with no lost wakeups and no touch-after-close.
  for (int round = 0; round < 50; ++round) {
    BoundedQueue<int> queue(2);
    std::vector<std::jthread> waiters;
    for (int t = 0; t < 2; ++t)
      waiters.emplace_back([&] {
        while (queue.pop()) {
        }
      });
    for (int t = 0; t < 2; ++t)
      waiters.emplace_back([&] {
        int v = 0;
        while (queue.push(v++)) {
        }
      });
    std::this_thread::yield();
    queue.close();
    waiters.clear();
    EXPECT_TRUE(queue.closed());
  }
}

// Four threads play the pillars of one replica: each commits its own
// sequence slice c(p,i) = p + i*NP out of order-of-arrival, the execution
// stage re-serializes, executes, and offloads each reply back to the
// originating pillar's reply lane, where a consumer thread seals and
// sends it (the exec -> pillar reply path of paper §4.3.2). The lanes are
// deliberately small so the stage's inline fallback interleaves with the
// offloaded path under contention. A bystander thread polls the
// stats/next_seq accessors the whole time, the way tests and monitoring
// do.
TEST(RaceStress, PillarsToExecutionStageToOutbound) {
  constexpr std::uint32_t kPillars = 4;
  constexpr SeqNum kPerPillar = 1'000;

  ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  auto crypto = crypto::make_real_crypto(7);
  app::NullService service(4);
  FakeTransport transport;
  ExecutionStage stage(/*self=*/0, config, service, *crypto, transport);

  // Checkpoint signals are mailed to the owning pillar and picked up by
  // its poll (pre-execution offload); this pump plays all four pillars'
  // poll loops, racing the watermark/mailbox reads against admission.
  std::atomic<std::uint64_t> checkpoint_commands{0};
  std::atomic<bool> pump_stop{false};
  std::jthread pump([&] {
    std::vector<PillarCommand> out;
    while (!pump_stop.load(std::memory_order_acquire)) {
      const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
      for (std::uint32_t p = 0; p < kPillars; ++p) {
        out.clear();
        stage.poll_pillar(p, static_cast<std::uint64_t>(now), out);
        for (const PillarCommand& cmd : out)
          if (std::holds_alternative<StartCheckpoint>(cmd))
            checkpoint_commands.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Reply lanes: one small queue + consumer thread per pillar, the way
  // CopReplica routes ReplyTasks into the pillars' event queues.
  std::vector<std::unique_ptr<BoundedQueue<ReplyTask>>> reply_lanes;
  for (std::uint32_t p = 0; p < kPillars; ++p)
    reply_lanes.push_back(std::make_unique<BoundedQueue<ReplyTask>>(64));
  std::atomic<std::uint64_t> offloaded{0};
  stage.set_reply_fn([&](ReplyTask& task) {
    return reply_lanes[task.pillar]->try_push_ref(task);
  });
  std::vector<std::jthread> repliers;
  for (std::uint32_t p = 0; p < kPillars; ++p) {
    repliers.emplace_back([&, p] {
      while (auto task = reply_lanes[p]->pop()) {
        EXPECT_EQ(task->pillar, p);
        EXPECT_EQ(task->seq % kPillars, p) << "originating-pillar routing";
        protocol::Message msg =
            protocol::Reply{task->view,    task->client, task->request,
                            /*replica=*/0, std::move(task->result), {}};
        Bytes frame = seal_message(msg, *crypto, replica_node(0),
                                   {client_node(task->client)});
        transport.send(client_node(task->client), /*lane=*/0,
                       std::move(frame));
        offloaded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  stage.start();

  std::atomic<bool> done{false};
  std::jthread observer([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_relaxed)) {
      ExecutionStats stats = stage.stats();
      EXPECT_GE(stats.last_executed_seq, last);
      last = stats.last_executed_seq;
      (void)stage.next_seq();
      std::this_thread::yield();
    }
  });

  {
    std::vector<std::jthread> pillars;
    for (std::uint32_t p = 0; p < kPillars; ++p) {
      pillars.emplace_back([&, p] {
        for (SeqNum i = 0; i < kPerPillar; ++i) {
          const SeqNum seq = p + i * kPillars;
          if (seq == 0) continue;  // genesis; pillar 0 starts at NP
          // Stay inside the watermark window, as a real pillar would:
          // checkpoint stability bounds how far commits may run ahead.
          while (seq >= stage.next_seq() + config.protocol.window)
            std::this_thread::yield();
          auto requests = std::make_shared<std::vector<Request>>();
          Request req;
          req.client = 1001 + p;
          req.id = static_cast<RequestId>(i + 1);
          req.payload = to_bytes("x");
          requests->push_back(std::move(req));
          // Stability basis as a real pillar would stamp it: the commit
          // is always inside the window authorized by its checkpoint.
          const SeqNum basis =
              seq > config.protocol.window ? seq - config.protocol.window : 0;
          stage.submit(CommittedBatch{seq, 0, requests, p, basis});
        }
      });
    }
  }  // join pillars

  const SeqNum last_seq = kPillars * kPerPillar - 1;
  for (int spin = 0; spin < 2'000; ++spin) {
    if (stage.stats().last_executed_seq >= last_seq) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Give the polls time to drain the checkpoint mailboxes of the signals
  // execution just mailed.
  const std::uint64_t expected_checkpoints =
      last_seq / config.protocol.checkpoint_interval;
  for (int spin = 0; spin < 2'000; ++spin) {
    if (checkpoint_commands.load(std::memory_order_relaxed) >=
        expected_checkpoints)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pump_stop.store(true, std::memory_order_release);
  pump.join();
  done.store(true, std::memory_order_relaxed);
  stage.stop();
  // Drain the reply lanes before counting: offloaded tasks may still be
  // in flight after the stage thread exits.
  for (auto& lane : reply_lanes) lane->close();
  repliers.clear();  // join repliers

  ExecutionStats stats = stage.stats();
  EXPECT_EQ(stats.last_executed_seq, last_seq);
  EXPECT_EQ(stats.requests_executed, last_seq);
  EXPECT_EQ(checkpoint_commands.load(), expected_checkpoints);
  EXPECT_EQ(transport.sent_count(), last_seq)
      << "one reply per request, offloaded or inline";
  EXPECT_EQ(stats.replies_sent, last_seq);
  EXPECT_EQ(stats.replies_offloaded, offloaded.load());
  EXPECT_GT(offloaded.load(), 0u) << "offload path never exercised";
}

// Checkpoint install truncating the reorder ring while every pillar is
// mid-publish and the exec drain is consuming: the worst-case composition
// of pre-execution offload (lock-free single-writer slots) with state
// transfer (frontier jump + discard of the admitted prefix). The pillars
// keep publishing stale sequence numbers after the install lands; those
// must self-heal (be dropped or reclaimed) without a torn slot, and
// everything past the installed checkpoint must still execute exactly
// once, in order.
TEST(RaceStress, InstallTruncationRacesPillarPublishAndDrain) {
  constexpr std::uint32_t kPillars = 2;
  constexpr SeqNum kInstallSeq = 200;
  constexpr SeqNum kLastSeq = 600;

  ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;

  auto crypto = crypto::make_real_crypto(7);

  // A donor stage produces the checkpoint artifact the laggard installs.
  Bytes artifact;
  crypto::Digest digest;
  {
    ReplicaRuntimeConfig donor_config = config;
    donor_config.num_pillars = 1;
    donor_config.protocol.num_pillars = 1;
    app::NullService donor_service(4);
    FakeTransport donor_transport;
    ExecutionStage donor(/*self=*/1, donor_config, donor_service, *crypto,
                         donor_transport);
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<std::pair<crypto::Digest, Bytes>> snap;
    donor.set_snapshot_fn(
        [&](SeqNum seq, const crypto::Digest& d, Bytes a) {
          if (seq != kInstallSeq) return;
          std::lock_guard lock(mutex);
          snap.emplace(d, std::move(a));
          cv.notify_all();
        });
    donor.start();
    for (SeqNum s = 1; s <= kInstallSeq; ++s) {
      auto requests = std::make_shared<std::vector<Request>>();
      Request req;
      req.client = 1001;
      req.id = static_cast<RequestId>(s);
      req.payload = to_bytes("x");
      requests->push_back(std::move(req));
      donor.submit(CommittedBatch{s, 0, requests, 0});
    }
    {
      std::unique_lock lock(mutex);
      ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                              [&] { return snap.has_value(); }));
      digest = snap->first;
      artifact = std::move(snap->second);
    }
    donor.stop();
  }

  app::NullService service(4);
  FakeTransport transport;
  ExecutionStage stage(/*self=*/0, config, service, *crypto, transport);
  stage.start();

  // Pillar poll pump: watermark and checkpoint-mailbox reads racing the
  // truncation and the publishes.
  std::atomic<bool> pump_stop{false};
  std::jthread pump([&] {
    std::vector<PillarCommand> out;
    while (!pump_stop.load(std::memory_order_acquire)) {
      const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
      for (std::uint32_t p = 0; p < kPillars; ++p) {
        out.clear();
        stage.poll_pillar(p, static_cast<std::uint64_t>(now), out);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Seq 1 is never committed, so the frontier stays parked at 1 and the
  // ring fills with out-of-order publishes — exactly the state a real
  // laggard is in when state transfer completes.
  std::promise<bool> installed;
  auto install_result = installed.get_future();
  {
    std::vector<std::jthread> pillars;
    for (std::uint32_t p = 0; p < kPillars; ++p) {
      pillars.emplace_back([&, p] {
        for (SeqNum seq = p; seq <= kLastSeq; seq += kPillars) {
          if (seq <= 1) continue;  // genesis + the withheld frontier
          while (seq >= stage.next_seq() + config.protocol.window)
            std::this_thread::yield();
          auto requests = std::make_shared<std::vector<Request>>();
          Request req;
          req.client = 2001 + p;
          req.id = static_cast<RequestId>(seq);
          req.payload = to_bytes("x");
          requests->push_back(std::move(req));
          const SeqNum basis =
              seq > config.protocol.window ? seq - config.protocol.window : 0;
          stage.submit(CommittedBatch{seq, 0, requests, p, basis});
        }
      });
    }
    // Land the install while the pillars are mid-flight.
    stage.submit_install(InstallState{
        kInstallSeq, digest, std::move(artifact),
        [&installed](bool ok) { installed.set_value(ok); }});
  }  // join pillars

  ASSERT_EQ(install_result.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_TRUE(install_result.get());
  for (int spin = 0; spin < 2'000; ++spin) {
    if (stage.stats().last_executed_seq >= kLastSeq) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pump_stop.store(true, std::memory_order_release);
  pump.join();
  stage.stop();

  ExecutionStats stats = stage.stats();
  EXPECT_EQ(stats.state_installs, 1u);
  EXPECT_EQ(stats.installed_seq, kInstallSeq);
  EXPECT_EQ(stats.last_executed_seq, kLastSeq);
  // Everything before the checkpoint was truncated unexecuted; everything
  // after it ran exactly once.
  EXPECT_EQ(stats.requests_executed, kLastSeq - kInstallSeq);
  EXPECT_EQ(stats.replies_sent, kLastSeq - kInstallSeq);
}

}  // namespace
}  // namespace copbft::test
