#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/authenticator.hpp"
#include "crypto/hmac.hpp"
#include "crypto/key_store.hpp"
#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"

namespace copbft::crypto {
namespace {

// ---- SHA-256 (FIPS 180-4 / NIST CAVS vectors) -----------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(to_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash(to_bytes(
                       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  Bytes chunk(1000, Byte{'a'});
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(ctx.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-second-block path.
  Bytes input(64, Byte{'x'});
  Digest once = Sha256::hash(input);
  Sha256 ctx;
  ctx.update(ByteSpan{input.data(), 31});
  ctx.update(ByteSpan{input.data() + 31, 33});
  EXPECT_EQ(ctx.finish(), once);
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<Byte>(i * 7));
  for (std::size_t split : {0UL, 1UL, 63UL, 64UL, 65UL, 999UL}) {
    Sha256 ctx;
    ctx.update(ByteSpan{data.data(), split});
    ctx.update(ByteSpan{data.data() + split, data.size() - split});
    EXPECT_EQ(ctx.finish(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, LengthExtension55To57) {
  // Lengths around the 56-byte padding threshold.
  for (std::size_t len = 50; len <= 70; ++len) {
    Bytes a(len, Byte{0x41});
    Bytes b(len, Byte{0x41});
    EXPECT_EQ(Sha256::hash(a), Sha256::hash(b));
    b.back() = 0x42;
    EXPECT_NE(Sha256::hash(a), Sha256::hash(b));
  }
}

// ---- HMAC-SHA256 (RFC 4231 vectors) ----------------------------------

SymmetricKey key_of(const Bytes& raw) {
  SymmetricKey key{};
  std::copy_n(raw.begin(), std::min(raw.size(), key.bytes.size()),
              key.bytes.begin());
  return key;
}

TEST(Hmac, Rfc4231Case1Truncated) {
  // Key = 20 x 0x0b (zero-padded to 32 bytes differs from RFC's exact key
  // handling only if key > block size, which does not apply), data "Hi
  // There". We verify against a reference computed for the padded key via
  // the definition itself (inner/outer), i.e. self-consistency plus the
  // independent property tests below.
  SymmetricKey key = key_of(Bytes(20, Byte{0x0b}));
  Digest mac = hmac_sha256(key, to_bytes("Hi There"));
  // HMAC with the 32-byte zero-padded key equals HMAC with the 20-byte key
  // because HMAC zero-pads keys shorter than the block size.
  EXPECT_EQ(mac.hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  SymmetricKey key = key_of(to_bytes("Jefe"));
  Digest mac = hmac_sha256(key, to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(mac.hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  SymmetricKey key = key_of(Bytes(20, Byte{0xaa}));
  Digest mac = hmac_sha256(key, Bytes(50, Byte{0xdd}));
  EXPECT_EQ(mac.hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, KeySensitivity) {
  SymmetricKey k1 = key_of(to_bytes("one"));
  SymmetricKey k2 = key_of(to_bytes("two"));
  Bytes data = to_bytes("payload");
  EXPECT_NE(hmac_sha256(k1, data), hmac_sha256(k2, data));
}

TEST(Hmac, TruncatedMacEquality) {
  SymmetricKey key = key_of(to_bytes("k"));
  Mac a = hmac_mac(key, to_bytes("m"));
  Mac b = hmac_mac(key, to_bytes("m"));
  EXPECT_TRUE(mac_equal(a, b));
  Mac c = hmac_mac(key, to_bytes("n"));
  EXPECT_FALSE(mac_equal(a, c));
}

// ---- key store -------------------------------------------------------

TEST(KeyStore, PairwiseSymmetry) {
  KeyStore ks(master_key_from_seed(42));
  EXPECT_EQ(ks.key_for(1, 2), ks.key_for(2, 1));
  EXPECT_EQ(ks.key_for(0, 1000), ks.key_for(1000, 0));
}

TEST(KeyStore, DistinctPairsDistinctKeys) {
  KeyStore ks(master_key_from_seed(42));
  EXPECT_NE(ks.key_for(1, 2), ks.key_for(1, 3));
  EXPECT_NE(ks.key_for(1, 2), ks.key_for(2, 3));
}

TEST(KeyStore, DifferentMastersDiffer) {
  KeyStore a(master_key_from_seed(1));
  KeyStore b(master_key_from_seed(2));
  EXPECT_NE(a.key_for(0, 1), b.key_for(0, 1));
}

// ---- providers -------------------------------------------------------

TEST(Providers, RealCryptoMacRoundTrip) {
  auto crypto = make_real_crypto(7);
  Bytes data = to_bytes("hello world");
  Mac mac = crypto->mac(0, 1, data);
  EXPECT_TRUE(crypto->verify_mac(0, 1, data, mac));
  EXPECT_TRUE(crypto->verify_mac(1, 0, data, mac)) << "pairwise symmetric";
  EXPECT_FALSE(crypto->verify_mac(0, 2, data, mac));
  data.push_back('!');
  EXPECT_FALSE(crypto->verify_mac(0, 1, data, mac));
}

TEST(Providers, NullCryptoSemantics) {
  auto crypto = make_null_crypto();
  EXPECT_EQ(crypto->digest(to_bytes("a")), crypto->digest(to_bytes("a")));
  EXPECT_NE(crypto->digest(to_bytes("a")), crypto->digest(to_bytes("b")));
  Mac mac = crypto->mac(3, 4, to_bytes("x"));
  EXPECT_TRUE(crypto->verify_mac(3, 4, to_bytes("x"), mac));
  EXPECT_FALSE(crypto->verify_mac(3, 5, to_bytes("x"), mac));
  EXPECT_FALSE(crypto->verify_mac(3, 4, to_bytes("y"), mac));
}

// ---- authenticators ----------------------------------------------------

TEST(Authenticator, BuildAndVerifyPerRecipient) {
  auto crypto = make_real_crypto(9);
  Bytes data = to_bytes("message body");
  auto auth = Authenticator::build(*crypto, 0, {1, 2, 3}, data);
  ASSERT_EQ(auth.entries.size(), 3u);
  for (KeyNodeId r : {1u, 2u, 3u})
    EXPECT_TRUE(auth.verify(*crypto, 0, r, data));
  EXPECT_FALSE(auth.verify(*crypto, 0, 4, data)) << "not addressed";
  EXPECT_FALSE(auth.verify(*crypto, 1, 2, data)) << "wrong claimed sender";
}

TEST(Authenticator, TamperedBodyFails) {
  auto crypto = make_real_crypto(9);
  Bytes data = to_bytes("message body");
  auto auth = Authenticator::build(*crypto, 0, {1}, data);
  data[0] ^= 1;
  EXPECT_FALSE(auth.verify(*crypto, 0, 1, data));
}

TEST(Authenticator, WireSizeFormula) {
  auto crypto = make_null_crypto();
  auto auth = Authenticator::build(*crypto, 0, {1, 2, 3}, to_bytes("x"));
  EXPECT_EQ(auth.wire_size(), 2 + 3 * (4 + 16));
}

}  // namespace
}  // namespace copbft::crypto
