// Parameterized sweeps over protocol configuration space: for every
// combination, the protocol must deliver every request exactly once per
// replica, gap-free and in agreement.
#include <gtest/gtest.h>

#include <map>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

struct SweepParam {
  std::uint32_t max_batch;
  std::uint32_t max_active;
  SeqNum checkpoint_interval;
  LeaderScheme scheme;
  bool shuffle;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return "batch" + std::to_string(p.max_batch) + "_active" +
         std::to_string(p.max_active) + "_ckpt" +
         std::to_string(p.checkpoint_interval) +
         (p.scheme == LeaderScheme::kRotating ? "_rot" : "_fix") +
         (p.shuffle ? "_shuf" : "_fifo");
}

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, AllRequestsDeliveredOnceGapFree) {
  const SweepParam& param = GetParam();
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = param.checkpoint_interval;
  cfg.window = 4 * param.checkpoint_interval;
  cfg.batching = param.max_batch > 1;
  cfg.max_batch = param.max_batch;
  cfg.max_active_proposals = param.max_active;
  cfg.leader_scheme = param.scheme;
  cfg.view_change_timeout_us = 0;
  // An adversarially scheduled replica can drop proposals that are
  // momentarily outside its watermark window; retransmission heals this
  // (it is what the paper-grade runtime runs with, too).
  cfg.retransmit_interval_us = 50'000;

  PillarGroupHarness::Options options{cfg};
  options.shuffle = param.shuffle;
  options.seed = 99;
  PillarGroupHarness h(std::move(options));

  constexpr int kRequests = 60;
  Rng rng(7);
  int sent = 0;
  while (sent < kRequests) {
    int burst = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < burst && sent < kRequests; ++i) {
      ++sent;
      h.client_request(1001 + static_cast<ClientId>(sent % 4), sent,
                       to_bytes("s" + std::to_string(sent)));
    }
    std::size_t steps = rng.below(25);
    for (std::size_t i = 0; i < steps && h.step(); ++i) {
    }
  }
  h.run_until_quiescent();
  // Healing rounds: let retransmission timers fire until no replica makes
  // further progress.
  for (int round = 0; round < 20; ++round) {
    std::size_t before = 0;
    for (ReplicaId r = 0; r < 4; ++r) before += h.delivered(r).size();
    h.advance_time(60'000);
    h.tick_all();
    h.run_until_quiescent();
    std::size_t after = 0;
    for (ReplicaId r = 0; r < 4; ++r) after += h.delivered(r).size();
    if (after == before) break;
  }

  // Per-replica: strictly increasing sequence numbers (no double
  // delivery), batch bound respected, no request ordered twice. A replica
  // starved by the adversarial scheduler may skip instances that fell
  // behind a stable checkpoint (log truncation; state transfer would heal
  // its service state), so per-replica gaps are legal — but the *union*
  // must be dense and complete, and overlapping deliveries must agree.
  std::map<SeqNum, std::vector<std::uint64_t>> by_seq;
  for (ReplicaId r = 0; r < 4; ++r) {
    auto batches = h.delivered_sorted(r);
    SeqNum previous = 0;
    std::map<std::uint64_t, int> seen;
    for (const auto& b : batches) {
      EXPECT_GT(b.seq, previous) << "replica " << r;
      previous = b.seq;
      EXPECT_LE(b.requests.size(), param.max_batch);
      std::vector<std::uint64_t> keys;
      for (const auto& req : b.requests) {
        ++seen[req.key()];
        keys.push_back(req.key());
      }
      auto [it, inserted] = by_seq.try_emplace(b.seq, keys);
      if (!inserted)
        EXPECT_EQ(it->second, keys) << "disagreement at seq " << b.seq;
    }
    for (const auto& [key, count] : seen)
      EXPECT_EQ(count, 1) << "request ordered twice at replica " << r;
  }

  // Union across replicas: dense 1..N and every request exactly once.
  SeqNum expect = 1;
  std::map<std::uint64_t, int> union_seen;
  for (const auto& [seq, keys] : by_seq) {
    EXPECT_EQ(seq, expect++) << "hole in the union of delivered instances";
    for (std::uint64_t key : keys) ++union_seen[key];
  }
  EXPECT_EQ(union_seen.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [key, count] : union_seen) EXPECT_EQ(count, 1);

  // Liveness: at least a quorum of replicas stayed fully current.
  int complete = 0;
  for (ReplicaId r = 0; r < 4; ++r)
    if (h.delivered_sorted(r).size() == by_seq.size()) ++complete;
  EXPECT_GE(complete, 3) << "too many replicas lagged";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolSweep,
    ::testing::Values(
        SweepParam{1, 0, 10, LeaderScheme::kFixed, false},
        SweepParam{1, 0, 10, LeaderScheme::kFixed, true},
        SweepParam{1, 1, 10, LeaderScheme::kFixed, true},
        SweepParam{8, 0, 10, LeaderScheme::kFixed, true},
        SweepParam{8, 2, 20, LeaderScheme::kFixed, true},
        SweepParam{64, 1, 10, LeaderScheme::kFixed, true},
        SweepParam{1, 0, 10, LeaderScheme::kRotating, false},
        SweepParam{1, 0, 10, LeaderScheme::kRotating, true},
        SweepParam{8, 2, 10, LeaderScheme::kRotating, true},
        SweepParam{64, 4, 20, LeaderScheme::kRotating, true},
        SweepParam{8, 2, 100, LeaderScheme::kFixed, true},
        SweepParam{8, 2, 100, LeaderScheme::kRotating, true}),
    param_name);

// ---- pillar-count sweep over full multi-slice groups ---------------------

class MultiSliceSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiSliceSweep, InterleavedSlicesStayDenseWithGapFilling) {
  // NP independent pillar groups; traffic only on pillar 0 — the others
  // must be filled with no-ops on demand, keeping the union dense.
  const std::uint32_t np = GetParam();
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 12;
  cfg.window = 48;
  cfg.batching = true;
  cfg.max_batch = 4;
  cfg.view_change_timeout_us = 0;

  std::vector<std::unique_ptr<PillarGroupHarness>> groups;
  for (std::uint32_t p = 0; p < np; ++p) {
    PillarGroupHarness::Options options{cfg};
    options.slice = SeqSlice{p, np};
    options.seed = p + 1;
    options.auto_checkpoint = false;
    groups.push_back(std::make_unique<PillarGroupHarness>(std::move(options)));
  }

  // 12 requests into pillar 0 only.
  for (int i = 1; i <= 12; ++i)
    groups[0]->client_request(1001, i, to_bytes("x"));
  groups[0]->run_until_quiescent();
  SeqNum top = groups[0]->delivered_sorted(0).back().seq;

  // The execution stage would demand every seq up to `top`.
  for (std::uint32_t p = 1; p < np; ++p) {
    for (ReplicaId r = 0; r < 4; ++r) groups[p]->fill_gap(r, top);
    groups[p]->run_until_quiescent();
  }

  // Union of all slices is dense 1..top.
  std::vector<SeqNum> seqs;
  for (auto& g : groups)
    for (const auto& b : g->delivered_sorted(0)) seqs.push_back(b.seq);
  std::sort(seqs.begin(), seqs.end());
  ASSERT_GE(seqs.size(), static_cast<std::size_t>(top));
  for (SeqNum expect = 1; expect <= top; ++expect)
    EXPECT_EQ(seqs[expect - 1], expect);
}

INSTANTIATE_TEST_SUITE_P(PillarCounts, MultiSliceSweep,
                         ::testing::Values(2u, 3u, 5u, 8u));

}  // namespace
}  // namespace copbft::test
