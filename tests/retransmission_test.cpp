// Liveness under message loss: the protocol core's retransmission and
// FETCH/resend recovery paths (see protocol/pbft_core.cpp,
// retransmit_stalled / handle_fetch).
#include <gtest/gtest.h>

#include "support/core_harness.hpp"

namespace copbft::test {
namespace {

ProtocolConfig rt_config() {
  ProtocolConfig cfg;
  cfg.num_replicas = 4;
  cfg.max_faulty = 1;
  cfg.checkpoint_interval = 10;
  cfg.window = 40;
  cfg.batching = false;
  cfg.view_change_timeout_us = 0;  // isolate retransmission from VC
  cfg.retransmit_interval_us = 100'000;
  return cfg;
}

Bytes payload(int i) { return to_bytes("rt-" + std::to_string(i)); }

TEST(Retransmission, DroppedCommitsRecoveredByRebroadcast) {
  // All COMMIT messages to replica 3 are lost once; replica 3 must still
  // deliver after the others rebroadcast on their retransmission timers.
  auto options = PillarGroupHarness::Options{rt_config()};
  bool lossy = true;
  options.drop = [&lossy](ReplicaId, ReplicaId to, const Message& m) {
    return lossy && to == 3 && std::holds_alternative<Commit>(m);
  };
  PillarGroupHarness h(std::move(options));

  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered(3).size(), 0u) << "replica 3 missed the commits";
  for (ReplicaId r = 0; r < 3; ++r)
    EXPECT_EQ(h.delivered(r).size(), 1u);

  lossy = false;
  h.advance_time(150'000);
  h.tick_all();
  h.run_until_quiescent();
  EXPECT_EQ(h.delivered(3).size(), 1u) << "rebroadcast healed the gap";
}

TEST(Retransmission, DroppedPreprepareRecoveredByFetch) {
  // Replica 2 misses the proposal entirely; it holds deferred votes and
  // must FETCH the pre-prepare from the leader.
  auto options = PillarGroupHarness::Options{rt_config()};
  bool lossy = true;
  options.drop = [&lossy](ReplicaId, ReplicaId to, const Message& m) {
    return lossy && to == 2 && std::holds_alternative<PrePrepare>(m);
  };
  PillarGroupHarness h(std::move(options));

  h.client_request(1001, 7, payload(7), {0, 1, 3});
  h.run_until_quiescent();
  EXPECT_TRUE(h.delivered(2).empty());
  EXPECT_EQ(h.delivered(0).size(), 1u) << "quorum progressed without 2";

  lossy = false;
  h.advance_time(150'000);
  h.tick_all();  // replica 2 sends FETCH; leader answers
  h.run_until_quiescent();
  h.advance_time(150'000);
  h.tick_all();  // replica 2's own votes rebroadcast as needed
  h.run_until_quiescent();

  ASSERT_EQ(h.delivered(2).size(), 1u);
  EXPECT_EQ(h.delivered(2)[0].requests.at(0).key(), request_key(1001, 7));
}

TEST(Retransmission, DroppedCheckpointVotesRecovered) {
  auto options = PillarGroupHarness::Options{rt_config()};
  bool lossy = true;
  options.drop = [&lossy](ReplicaId, ReplicaId, const Message& m) {
    return lossy && std::holds_alternative<CheckpointMsg>(m);
  };
  PillarGroupHarness h(std::move(options));

  for (int i = 1; i <= 12; ++i) h.client_request(1001, i, payload(i));
  h.run_until_quiescent();
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_TRUE(h.stable_checkpoints(r).empty());

  lossy = false;
  h.advance_time(150'000);
  h.tick_all();
  h.run_until_quiescent();
  for (ReplicaId r = 0; r < 4; ++r)
    EXPECT_EQ(h.stable_checkpoints(r), std::vector<SeqNum>{10})
        << "replica " << r;
}

TEST(Retransmission, FetchFromNonProposerIsIgnored) {
  PillarGroupHarness h({rt_config()});
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();

  // Replica 2 asks replica 1 (a follower) for seq 1: replica 1 is not the
  // proposer and must not answer with someone else's proposal.
  auto before = h.core(1).stats();
  IncomingMessage im;
  im.msg = Fetch{0, 1, 2, {}};
  h.core(1).on_message(std::move(im), h.now());
  auto effects = h.core(1).take_effects();
  EXPECT_TRUE(effects.empty());
  EXPECT_EQ(h.core(1).stats().macs_verified, before.macs_verified)
      << "not even verified: never needed";
}

TEST(Retransmission, QuietWhenNothingIsStalled) {
  PillarGroupHarness h({rt_config()});
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();

  // Everything delivered; ticking must not spray retransmissions.
  h.advance_time(1'000'000);
  h.tick_all();
  EXPECT_EQ(h.in_flight(), 0u);
}

TEST(Retransmission, DisabledWhenIntervalZero) {
  auto cfg = rt_config();
  cfg.retransmit_interval_us = 0;
  auto options = PillarGroupHarness::Options{cfg};
  options.drop = [](ReplicaId, ReplicaId to, const Message& m) {
    return to == 3 && std::holds_alternative<Commit>(m);
  };
  PillarGroupHarness h(std::move(options));
  h.client_request(1001, 1, payload(1));
  h.run_until_quiescent();
  h.advance_time(1'000'000);
  h.tick_all();
  h.run_until_quiescent();
  EXPECT_TRUE(h.delivered(3).empty()) << "no recovery when disabled";
}

}  // namespace
}  // namespace copbft::test
