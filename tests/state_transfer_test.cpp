// Checkpoint-based state transfer: service snapshot/restore, execution-
// stage install, the transfer manager's wire protocol (including a
// Byzantine donor serving a corrupt snapshot), a threaded-cluster
// fault-injection run, and the deterministic simulator reproduction.
#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>

#include "app/kv_store.hpp"
#include "app/null_service.hpp"
#include "core/checkpoint_artifact.hpp"
#include "core/execution_stage.hpp"
#include "core/outbound.hpp"
#include "core/state_transfer.hpp"
#include "sim/simulation.hpp"
#include "support/cluster_fixture.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

Request kv_put(ClientId client, RequestId id, const std::string& key,
               const std::string& value) {
  Request req;
  req.client = client;
  req.id = id;
  req.payload = app::KvOp{app::KvOpCode::kPut, key, to_bytes(value)}.encode();
  return req;
}

// ---- service snapshot / restore -------------------------------------------

TEST(ServiceSnapshot, KvStoreRoundTrip) {
  auto crypto = crypto::make_real_crypto(5);
  app::KvStore donor(*crypto);
  for (int i = 0; i < 12; ++i)
    donor.execute(kv_put(1001, static_cast<RequestId>(i + 1),
                         "key-" + std::to_string(i % 5),
                         "value-" + std::to_string(i)));

  app::KvStore fresh(*crypto);
  ASSERT_TRUE(fresh.restore(donor.snapshot(), donor.state_digest()));
  EXPECT_EQ(fresh.state_digest(), donor.state_digest());
  EXPECT_EQ(fresh.size(), donor.size());
  const Bytes* value = fresh.lookup("key-2");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, to_bytes("value-7"));
}

TEST(ServiceSnapshot, KvStoreRejectsTamperedSnapshotAtomically) {
  auto crypto = crypto::make_real_crypto(5);
  app::KvStore donor(*crypto);
  donor.execute(kv_put(1001, 1, "alpha", "one"));
  donor.execute(kv_put(1001, 2, "beta", "two"));

  Bytes tampered = donor.snapshot();
  tampered.back() ^= Byte{0x01};

  app::KvStore target(*crypto);
  target.execute(kv_put(1001, 3, "existing", "kept"));
  const crypto::Digest before = target.state_digest();
  EXPECT_FALSE(target.restore(tampered, donor.state_digest()));
  // Failed restores must not touch the live state.
  EXPECT_EQ(target.state_digest(), before);
  ASSERT_NE(target.lookup("existing"), nullptr);
  EXPECT_EQ(target.lookup("alpha"), nullptr);
}

TEST(ServiceSnapshot, NullServiceRoundTrip) {
  app::NullService donor(8);
  Request req;
  req.client = 1001;
  req.payload = to_bytes("x");
  for (RequestId id = 1; id <= 5; ++id) {
    req.id = id;
    donor.execute(req);
  }
  app::NullService fresh(8);
  ASSERT_TRUE(fresh.restore(donor.snapshot(), donor.state_digest()));
  EXPECT_EQ(fresh.state_digest(), donor.state_digest());
  EXPECT_FALSE(fresh.restore(donor.snapshot(), crypto::Digest{}));
}

// ---- execution-stage install ----------------------------------------------

/// Captures the (seq, digest, artifact) triples the stage hands off on
/// checkpoint boundaries.
struct SnapshotLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::tuple<SeqNum, crypto::Digest, Bytes>> taken;

  void record(SeqNum seq, const crypto::Digest& digest, Bytes artifact) {
    std::lock_guard lock(mutex);
    taken.emplace_back(seq, digest, std::move(artifact));
    cv.notify_all();
  }
  bool wait_count(std::size_t count, int ms = 5000) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return taken.size() >= count; });
  }
};

class InstallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_pillars = 1;
    config_.protocol.num_pillars = 1;
    config_.protocol.checkpoint_interval = 10;
    config_.protocol.window = 40;
    crypto_ = crypto::make_real_crypto(7);
  }

  void TearDown() override {
    if (laggard_) laggard_->stop();
    if (donor_) donor_->stop();
  }

  /// Runs a donor stage over `upto` single-put batches and returns the
  /// captured checkpoint artifact at seq `upto`.
  std::tuple<SeqNum, crypto::Digest, Bytes> donor_checkpoint(SeqNum upto) {
    donor_service_ = std::make_unique<app::KvStore>(*crypto_);
    donor_ = std::make_unique<ExecutionStage>(
        /*self=*/0, config_, *donor_service_, *crypto_, donor_transport_);
    donor_->set_snapshot_fn(
        [this](SeqNum seq, const crypto::Digest& digest, Bytes artifact) {
          snapshots_.record(seq, digest, std::move(artifact));
        });
    donor_->start();
    for (SeqNum s = 1; s <= upto; ++s) donor_->submit(put_batch(s));
    EXPECT_TRUE(snapshots_.wait_count(upto / 10));
    std::lock_guard lock(snapshots_.mutex);
    return snapshots_.taken.back();
  }

  void start_laggard() {
    laggard_service_ = std::make_unique<app::KvStore>(*crypto_);
    laggard_ = std::make_unique<ExecutionStage>(
        /*self=*/3, config_, *laggard_service_, *crypto_, laggard_transport_);
    laggard_->start();
  }

  CommittedBatch put_batch(SeqNum seq) {
    auto requests = std::make_shared<std::vector<Request>>();
    requests->push_back(kv_put(1001, seq, "key-" + std::to_string(seq % 3),
                               "value-" + std::to_string(seq)));
    return CommittedBatch{seq, 0, requests, 0};
  }

  /// Submits an install and waits for its completion callback.
  bool install(ExecutionStage& stage, SeqNum seq, const crypto::Digest& digest,
               Bytes artifact) {
    std::promise<bool> done;
    auto result = done.get_future();
    stage.submit_install(InstallState{
        seq, digest, std::move(artifact),
        [&done](bool ok) { done.set_value(ok); }});
    EXPECT_EQ(result.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    return result.get();
  }

  ReplicaRuntimeConfig config_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  FakeTransport donor_transport_;
  FakeTransport laggard_transport_;
  SnapshotLog snapshots_;
  std::unique_ptr<app::KvStore> donor_service_;
  std::unique_ptr<app::KvStore> laggard_service_;
  std::unique_ptr<ExecutionStage> donor_;
  std::unique_ptr<ExecutionStage> laggard_;
};

TEST_F(InstallTest, InstallAdvancesFrontierAndResumesExecution) {
  auto [seq, digest, artifact] = donor_checkpoint(10);
  ASSERT_EQ(seq, 10u);
  start_laggard();

  // The laggard buffered a batch beyond its frontier; nothing executes.
  laggard_->submit(put_batch(12));
  ASSERT_TRUE(install(*laggard_, seq, digest, std::move(artifact)));
  EXPECT_EQ(laggard_->next_seq(), 11u);
  EXPECT_EQ(laggard_->stats().state_installs, 1u);
  EXPECT_EQ(laggard_->stats().installed_seq, 10u);
  EXPECT_EQ(laggard_->stats().last_executed_seq, 10u);
  EXPECT_EQ(laggard_service_->state_digest(), donor_service_->state_digest());

  // Execution resumes: seq 11 closes the gap to the buffered seq 12.
  laggard_->submit(put_batch(11));
  for (int spin = 0; spin < 200 && laggard_->next_seq() < 13; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(laggard_->next_seq(), 13u);
  EXPECT_EQ(laggard_->stats().requests_executed, 2u);
}

TEST_F(InstallTest, InstalledClientTableSuppressesReExecution) {
  auto [seq, digest, artifact] = donor_checkpoint(10);
  start_laggard();
  ASSERT_TRUE(install(*laggard_, seq, digest, std::move(artifact)));

  // Request (1001, 7) executed at seq 7 on the donor; its dedup entry
  // rode the transferred client table, so a retransmitted commit is
  // suppressed instead of double-executed.
  auto requests = std::make_shared<std::vector<Request>>();
  requests->push_back(kv_put(1001, 7, "key-1", "value-7"));
  laggard_->submit(CommittedBatch{11, 0, requests, 0});
  for (int spin = 0; spin < 200 && laggard_->next_seq() < 12; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(laggard_->stats().duplicates_suppressed, 1u);
  EXPECT_EQ(laggard_->stats().requests_executed, 0u);
}

TEST_F(InstallTest, InstallRejectsCorruptArtifact) {
  auto [seq, digest, artifact] = donor_checkpoint(10);
  start_laggard();
  Bytes corrupt = artifact;
  corrupt[corrupt.size() / 2] ^= Byte{0x40};
  EXPECT_FALSE(install(*laggard_, seq, digest, std::move(corrupt)));
  EXPECT_EQ(laggard_->stats().installs_rejected, 1u);
  EXPECT_EQ(laggard_->next_seq(), 1u) << "rejected install must not move";

  // The intact artifact still installs afterwards.
  EXPECT_TRUE(install(*laggard_, seq, digest, std::move(artifact)));
  EXPECT_EQ(laggard_->next_seq(), 11u);
}

TEST_F(InstallTest, StaleInstallIsANoOp) {
  auto [seq, digest, artifact] = donor_checkpoint(10);
  // The donor itself is already past seq 10: installing its own
  // checkpoint must succeed without rewinding anything.
  EXPECT_TRUE(install(*donor_, seq, digest, std::move(artifact)));
  EXPECT_EQ(donor_->next_seq(), 11u);
  EXPECT_EQ(donor_->stats().state_installs, 0u);
}

// ---- transfer manager (wire protocol, Byzantine donor) ---------------------

class ManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_pillars = 2;
    config_.protocol.num_pillars = 2;
    config_.protocol.checkpoint_interval = 10;
    config_.protocol.window = 40;
    config_.state_transfer_timeout_us = 100'000;
    crypto_ = crypto::make_real_crypto(7);
  }

  void TearDown() override {
    if (manager_) manager_->stop();
    if (exec_) exec_->stop();
  }

  void start_manager(ReplicaId self) {
    service_ = std::make_unique<app::KvStore>(*crypto_);
    exec_ = std::make_unique<ExecutionStage>(
        self, config_, *service_, *crypto_, transport_);
    manager_ = std::make_unique<StateTransferManager>(
        self, config_, *crypto_, transport_, *exec_,
        [this](SeqNum seq, const crypto::Digest& digest, SeqNum upto) {
          std::lock_guard lock(mutex_);
          installed_ = std::tuple{seq, digest, upto};
          cv_.notify_all();
        });
    exec_->start();
    manager_->start();
  }

  bool wait_installed(int ms = 5000) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, std::chrono::milliseconds(ms),
                        [&] { return installed_.has_value(); });
  }

  /// Seals `msg` as coming from replica `from`, addressed to this manager.
  void deliver_from(ReplicaId from, Message msg) {
    Bytes frame = seal_message(msg, *crypto_, replica_node(from),
                               {replica_node(manager_self_)});
    manager_->deliver(transport::ReceivedFrame{replica_node(from),
                                               manager_->lane(),
                                               std::move(frame)});
  }

  std::vector<FakeTransport::Sent> wait_sent(std::size_t count,
                                             int ms = 5000) {
    for (int spin = 0; spin < ms / 10; ++spin) {
      if (transport_.sent_count() >= count) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return transport_.take_sent();
  }

  /// Builds a real checkpoint artifact by running a donor stage.
  std::tuple<SeqNum, crypto::Digest, Bytes, crypto::Digest> donor_artifact() {
    app::KvStore donor_service(*crypto_);
    FakeTransport donor_transport;
    ExecutionStage donor(/*self=*/0, config_, donor_service, *crypto_,
                         donor_transport);
    SnapshotLog snapshots;
    donor.set_snapshot_fn(
        [&snapshots](SeqNum seq, const crypto::Digest& digest, Bytes a) {
          snapshots.record(seq, digest, std::move(a));
        });
    donor.start();
    for (SeqNum s = 1; s <= 10; ++s) {
      auto requests = std::make_shared<std::vector<Request>>();
      requests->push_back(kv_put(1001, s, "key-" + std::to_string(s),
                                 "value-" + std::to_string(s)));
      donor.submit(CommittedBatch{s, 0, requests,
                                  static_cast<std::uint32_t>(s % 2)});
    }
    EXPECT_TRUE(snapshots.wait_count(1));
    donor.stop();
    std::lock_guard lock(snapshots.mutex);
    auto [seq, digest, artifact] = snapshots.taken.back();
    return {seq, digest, artifact, donor_service.state_digest()};
  }

  protocol::StateReply reply_from(ReplicaId peer, SeqNum seq,
                                  const crypto::Digest& digest, Bytes data) {
    protocol::StateReply reply;
    reply.seq = seq;
    reply.digest = digest;
    reply.certificate = {0, 1, 2};
    reply.chunk = 0;
    reply.chunk_count = 1;
    reply.data = std::move(data);
    reply.replica = peer;
    return reply;
  }

  ReplicaId manager_self_ = 3;
  ReplicaRuntimeConfig config_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  FakeTransport transport_;
  std::unique_ptr<app::KvStore> service_;
  std::unique_ptr<ExecutionStage> exec_;
  std::unique_ptr<StateTransferManager> manager_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<std::tuple<SeqNum, crypto::Digest, SeqNum>> installed_;
};

TEST_F(ManagerTest, ServesStableCheckpointInChunks) {
  config_.state_chunk_bytes = 16;  // force multi-chunk delivery
  manager_self_ = 0;
  start_manager(0);
  auto [seq, digest, artifact, service_digest] = donor_artifact();
  ASSERT_GT(artifact.size(), 16u);
  manager_->store_checkpoint(seq, digest, artifact);
  manager_->note_stable(seq, digest, {0, 1, 2});
  deliver_from(3, protocol::StateRequest{1, 3, {}});

  const std::size_t chunks = (artifact.size() + 15) / 16;
  auto sent = wait_sent(chunks);
  ASSERT_EQ(sent.size(), chunks);
  Bytes reassembled;
  for (const auto& s : sent) {
    EXPECT_EQ(s.to, replica_node(3));
    EXPECT_EQ(s.lane, manager_->lane());
    auto decoded = decode_message(s.frame);
    ASSERT_TRUE(decoded);
    const auto& reply = std::get<protocol::StateReply>(decoded->msg);
    EXPECT_EQ(reply.seq, seq);
    EXPECT_EQ(reply.digest, digest);
    EXPECT_EQ(reply.chunk_count, chunks);
    EXPECT_EQ(reply.certificate.size(), 3u);
    append(reassembled, reply.data);
  }
  EXPECT_EQ(reassembled, artifact);
  EXPECT_EQ(manager_->stats().snapshots_served, 1u);
}

TEST_F(ManagerTest, UnstableOrStaleCheckpointsAreNotServed) {
  manager_self_ = 0;
  start_manager(0);
  auto [seq, digest, artifact, service_digest] = donor_artifact();
  // Held but never agreed stable: must not be served.
  manager_->store_checkpoint(seq, digest, artifact);
  deliver_from(3, protocol::StateRequest{1, 3, {}});
  // Stable but below the requester's frontier: useless, must not be served.
  manager_->note_stable(seq, digest, {0, 1, 2});
  deliver_from(2, protocol::StateRequest{seq + 1, 2, {}});
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(transport_.sent_count(), 0u);
  EXPECT_EQ(manager_->stats().snapshots_served, 0u);
}

TEST_F(ManagerTest, ByzantineSnapshotRejectedThenNextPeerSucceeds) {
  start_manager(3);
  auto [seq, digest, artifact, service_digest] = donor_artifact();

  manager_->note_peer_ahead(55);
  auto requests = wait_sent(3);
  ASSERT_EQ(requests.size(), 3u) << "StateRequest broadcast to every peer";
  for (const auto& s : requests) {
    auto decoded = decode_message(s.frame);
    ASSERT_TRUE(decoded);
    const auto& request = std::get<protocol::StateRequest>(decoded->msg);
    EXPECT_EQ(request.min_seq, 1u);
    EXPECT_EQ(request.replica, 3u);
  }
  EXPECT_EQ(manager_->stats().transfers_started, 1u);

  // Peer 0 is Byzantine: it attests the agreed (seq, digest) but serves a
  // corrupted snapshot. Peer 1 is honest. The f+1 = 2 matching
  // attestations admit the candidate; the digest check at install catches
  // the corruption and the manager falls over to peer 1.
  Bytes corrupt = artifact;
  corrupt[corrupt.size() / 2] ^= Byte{0x01};
  deliver_from(0, reply_from(0, seq, digest, std::move(corrupt)));
  deliver_from(1, reply_from(1, seq, digest, artifact));

  ASSERT_TRUE(wait_installed());
  auto [installed_seq, installed_digest, fetch_upto] = *installed_;
  EXPECT_EQ(installed_seq, seq);
  EXPECT_EQ(installed_digest, digest);
  EXPECT_EQ(fetch_upto, 55u) << "observed frontier drives the re-fetch";

  auto stats = manager_->stats();
  EXPECT_EQ(stats.snapshots_rejected, 1u) << "Byzantine snapshot detected";
  EXPECT_EQ(stats.transfers_completed, 1u);
  EXPECT_EQ(stats.installed_seq, seq);
  EXPECT_EQ(exec_->stats().installs_rejected, 1u);
  EXPECT_EQ(exec_->stats().state_installs, 1u);
  EXPECT_EQ(exec_->next_seq(), seq + 1);
  EXPECT_EQ(service_->state_digest(), service_digest)
      << "installed state matches the donor";
}

TEST_F(ManagerTest, SingleAttestationIsNotTrusted) {
  start_manager(3);
  auto [seq, digest, artifact, service_digest] = donor_artifact();
  manager_->note_peer_ahead(55);
  (void)wait_sent(3);

  // One peer alone — even with a complete, correct snapshot — is below
  // the f+1 attestation bar and must not be installed.
  deliver_from(1, reply_from(1, seq, digest, artifact));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(exec_->stats().state_installs, 0u);
  {
    std::lock_guard lock(mutex_);
    EXPECT_FALSE(installed_.has_value());
  }

  // A second, matching attestation crosses it.
  deliver_from(2, reply_from(2, seq, digest, artifact));
  ASSERT_TRUE(wait_installed());
  EXPECT_EQ(manager_->stats().transfers_completed, 1u);
}

// ---- threaded cluster: pause, truncate, rejoin -----------------------------

TEST(ClusterStateTransfer, StrandedReplicaRejoinsViaStateTransfer) {
  ClusterOptions options;
  options.arch = Arch::kCop;
  options.num_pillars = 2;
  options.runtime.protocol.checkpoint_interval = 10;
  options.runtime.protocol.window = 40;
  options.runtime.gap_timeout_us = 1'000;
  options.runtime.state_transfer_timeout_us = 100'000;
  options.make_service = [](const crypto::CryptoProvider& crypto) {
    return std::make_unique<app::KvStore>(crypto);
  };
  Cluster cluster(std::move(options));
  cluster.start();

  auto& client = cluster.add_client();
  auto put = [&](int i) {
    app::KvOp op{app::KvOpCode::kPut, "key-" + std::to_string(i % 9),
                 to_bytes("value-" + std::to_string(i))};
    auto reply = client.invoke(op.encode());
    ASSERT_TRUE(reply) << "put " << i;
  };
  for (int i = 0; i < 5; ++i) put(i);

  // Cut replica 3 off the network entirely, then push the cluster far
  // enough that its peers truncate their logs past replica 3's window:
  // retransmission alone can never catch it up again.
  cluster.network().set_filter(
      [](crypto::KeyNodeId from, crypto::KeyNodeId to, transport::LaneId) {
        return from != protocol::replica_node(3) &&
               to != protocol::replica_node(3);
      });
  for (int i = 5; i < 75; ++i) put(i);

  // Reconnect. Fresh traffic beyond the stranded window makes a pillar
  // report StateTransferNeeded; the manager fetches a peer checkpoint.
  cluster.network().set_filter({});
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  int extra = 75;
  while (cluster.replica(3).stats().exec.state_installs == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica 3 never installed a transferred checkpoint";
    put(extra++);
  }

  // The rejoined replica executes new requests past the installed
  // checkpoint and converges with the cluster.
  const SeqNum installed = cluster.replica(3).stats().exec.installed_seq;
  EXPECT_GT(installed, 40u) << "stranded past the initial window";
  for (int i = 0; i < 10; ++i) put(extra++);
  auto caught_up = [&] {
    SeqNum target = cluster.replica(0).stats().exec.last_executed_seq;
    for (ReplicaId r = 0; r < 4; ++r)
      if (cluster.replica(r).stats().exec.last_executed_seq < target)
        return false;
    return true;
  };
  while (!caught_up()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica 3 did not catch up past the installed checkpoint";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(cluster.replica(3).stats().exec.last_executed_seq, installed)
      << "execution resumed after the install";

  cluster.stop();
  crypto::Digest reference =
      dynamic_cast<core::CopReplica&>(cluster.replica(0))
          .service().state_digest();
  for (ReplicaId r = 1; r < 4; ++r)
    EXPECT_EQ(dynamic_cast<core::CopReplica&>(cluster.replica(r))
                  .service().state_digest(),
              reference)
        << "replica " << r << " diverged";
}

// ---- deterministic simulator reproduction ----------------------------------

TEST(SimStateTransfer, PausedReplicaRejoinsDeterministically) {
  sim::SimConfig config;
  config.arch = sim::SimArch::kCop;
  config.cores = 1;
  config.clients = 40;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;
  // Fast retransmission so the post-install re-fetch of the in-window
  // tail completes within the simulated run, not in 200 ms quanta.
  config.protocol.retransmit_interval_us = 20'000;
  config.warmup = 300 * 1'000'000ULL;   // 300 ms
  config.measure = 300 * 1'000'000ULL;  // 300 ms
  config.pause_replica = 3;
  config.pause_at = 100 * 1'000'000ULL;   // cut at 100 ms...
  config.resume_at = 400 * 1'000'000ULL;  // ...reconnect at 400 ms

  sim::SimResult result = run_simulation(config);
  EXPECT_GT(result.state_transfers, 0u)
      << "the paused replica must recover via state transfer, "
         "not retransmission";
  EXPECT_GT(result.cluster_next_seq, 500u)
      << "the 2f+1 quorum kept committing through the fault";
  // The run is cut off mid-flight, so the laggard may trail by up to the
  // in-flight window on top of the protocol's own drift bound. Without
  // state transfer it would be stuck near its pause-time frontier, tens
  // of windows behind.
  EXPECT_GE(result.laggard_next_seq + 2 * config.protocol.window,
            result.cluster_next_seq)
      << "the laggard rejoined to within the drift bound";

  // Virtual time is deterministic: the same configuration replays to the
  // same trajectory bit for bit.
  sim::SimResult replay = run_simulation(config);
  EXPECT_EQ(replay.state_transfers, result.state_transfers);
  EXPECT_EQ(replay.laggard_next_seq, result.laggard_next_seq);
  EXPECT_EQ(replay.cluster_next_seq, result.cluster_next_seq);
  EXPECT_EQ(replay.completed_ops, result.completed_ops);
}

}  // namespace
}  // namespace copbft::test
