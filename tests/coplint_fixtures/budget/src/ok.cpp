// coplint fixture: exactly two justified suppressions. baseline_ok.json
// budgets both; baseline_tight.json budgets one, so the same tree must
// fail the gate. Scanned by the coplint tests, never compiled.
#include <unordered_map>

class Budget {
 private:
  // COPLINT(allow:det-unordered-member: lookup-only table, fixture)
  std::unordered_map<int, int> a_;
  // COPLINT(allow:det-unordered-member: lookup-only table, fixture)
  std::unordered_map<int, int> b_;
};
