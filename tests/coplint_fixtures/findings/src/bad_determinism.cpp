// coplint fixture: one seeded violation per determinism rule, plus the
// suppression mechanics (valid, missing-reason, unknown-rule, unused).
// This file is scanned by the coplint tests, never compiled.
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Widget;

class BadDeterminism {
 public:
  long stamp() {
    // det-clock
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }

  int roll() {
    return std::rand();  // det-rng
  }

  long total() const {
    long sum = 0;
    for (const auto& [id, count] : tallies_) sum += count;  // det-unordered-iter
    return sum;
  }

 private:
  std::unordered_map<int, long> tallies_;  // det-unordered-member
  std::map<Widget*, int> by_widget_;       // det-pointer-key

  // A valid suppression: rule and reason, anchored to the next code line.
  // COPLINT(allow:det-unordered-member: lookup-only cache, fixture)
  std::unordered_map<int, int> cache_;

  // Missing reason: the suppression is rejected AND the finding stays.
  // COPLINT(allow:det-unordered-member)
  std::unordered_map<int, int> no_reason_;

  // Unknown rule: rejected, and the real finding stays unsuppressed.
  // COPLINT(allow:not-a-rule: reasons do not rescue unknown rules)
  std::unordered_map<int, int> unknown_rule_;

  // Nothing on the next line trips det-clock: the suppression is stale.
  // COPLINT(allow:det-clock: the clock this excused is long gone)
  long counter_ = 0;
};
