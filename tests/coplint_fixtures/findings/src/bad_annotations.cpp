// coplint fixture: annotation-coverage rules. The covered_ mutex shows
// what passing looks like. Scanned by the coplint tests, never compiled.
#include <condition_variable>
#include <mutex>

class BadAnnotations {
 private:
  std::mutex raw_;                  // ann-raw-mutex
  std::condition_variable raw_cv_;  // ann-raw-cv
  Mutex naked_;                     // ann-unguarded-mutex: guards nothing
  Mutex covered_;                   // fine: guarded_value_ names it
  int guarded_value_ COP_GUARDED_BY(covered_) = 0;
};
