// coplint fixture: a file with nothing to report — ordered containers,
// no clocks, no raw primitives. Keeps the expected file honest about
// what does NOT fire. Scanned by the coplint tests, never compiled.
#include <map>
#include <vector>

class Clean {
 public:
  int sum() const {
    int total = 0;
    for (const auto& [k, v] : ordered_) total += v;  // ordered: fine
    return total;
  }

 private:
  std::map<int, int> ordered_;
  std::vector<int> values_;
};
