// coplint fixture: hot-path hygiene rules. COP_HOT is the scanner's
// marker; the identical-looking cold function proves region scoping.
// This file is scanned by the coplint tests, never compiled.
#include <iostream>  // hot-iostream: banned include in a hot-path file
#include <map>

class Ring {
 public:
  COP_HOT int drain() {
    std::map<int, int> staging;              // hot-container
    MutexLock lock(mu_);                     // hot-lock
    cv_.wait(lock);                          // hot-block
    std::cout << staging.size() << "\n";     // hot-iostream
    return queue_depth_;
  }

  int cold() {
    std::map<int, int> fine;  // no finding: not inside a COP_HOT body
    return static_cast<int>(fine.size());
  }

 private:
  Mutex mu_;
  int queue_depth_ COP_GUARDED_BY(mu_) = 0;
  Cv cv_;
};
