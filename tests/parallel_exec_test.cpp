// Property test for conflict-aware parallel execution: for any seeded
// workload, running the execution stage with a worker pool (any size)
// must be observationally identical to sequential execution — the same
// reply stream in the same order with the same results, the same state
// digest at every checkpoint boundary, and the same final service state.
//
// The workload mixes KvStore operations across shards (puts, gets,
// deletes, key reuse), garbage payloads (classified kGlobal — the barrier
// path), noop batches, and client request-id reuse (retransmissions,
// including ones that race in-flight originals). Seeds print on failure
// so every run reproduces.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "app/kv_store.hpp"
#include "common/rng.hpp"
#include "core/execution_stage.hpp"
#include "support/fake_transport.hpp"

namespace copbft::test {
namespace {

using namespace copbft::core;
using namespace copbft::protocol;

constexpr std::uint32_t kPillars = 2;
constexpr SeqNum kSeqs = 120;  // 12 checkpoint intervals, < ring capacity

/// Everything observable about one run, in a directly comparable shape.
struct RunRecord {
  /// (seq, client, request id, result bytes) per emitted reply, in
  /// emission order — fresh executions and cached retransmissions alike.
  std::vector<std::tuple<SeqNum, ClientId, RequestId, Bytes>> replies;
  /// (seq, composite checkpoint digest) per checkpoint, in order.
  std::vector<std::pair<SeqNum, std::string>> checkpoints;
  Bytes final_snapshot;
  std::string final_digest;
  ExecutionStats stats;
};

/// Batch contents depend only on the content seed and the sequence
/// number — identical across worker counts by construction.
CommittedBatch make_batch(std::uint64_t content_seed, SeqNum seq) {
  SplitMix64 sm(content_seed ^ (seq * 0x9e3779b97f4a7c15ULL));
  auto requests = std::make_shared<std::vector<Request>>();
  if (sm.next() % 8 != 0) {  // 1 in 8 batches is a no-op fill
    const std::size_t count = 1 + sm.next() % 3;
    for (std::size_t i = 0; i < count; ++i) {
      Request req;
      req.client = static_cast<ClientId>(1001 + sm.next() % 4);
      req.id = static_cast<RequestId>(1 + sm.next() % 64);
      if (sm.next() % 16 == 0) {
        // Undecodable payload: KvStore classifies it kGlobal, so this
        // request is a pool barrier (and executes to kBadRequest).
        req.payload = to_bytes("garbage");
      } else {
        const std::string key = "k" + std::to_string(sm.next() % 24);
        const std::uint64_t roll = sm.next() % 10;
        app::KvOp op;
        if (roll < 5) {
          op = {app::KvOpCode::kPut, key,
                to_bytes("v" + std::to_string(sm.next() % 100))};
        } else if (roll < 8) {
          op = {app::KvOpCode::kGet, key, {}};
        } else {
          op = {app::KvOpCode::kDelete, key, {}};
        }
        req.payload = op.encode();
      }
      requests->push_back(std::move(req));
    }
  }
  const SeqNum window = 40;
  const SeqNum basis = seq > window ? seq - window : 0;
  return CommittedBatch{seq, 0, std::move(requests), seq % kPillars, basis};
}

RunRecord run_workload(std::uint64_t content_seed, std::uint32_t exec_workers,
                       std::uint32_t kv_shards) {
  ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 10;
  config.protocol.window = 40;
  config.gap_timeout_us = 1'000'000;  // no fills: the stream has no gaps
  config.exec_workers = exec_workers;
  auto crypto = crypto::make_real_crypto(3);
  app::KvStore service(*crypto, kv_shards);
  FakeTransport transport;
  ExecutionStage stage(/*self=*/1, config, service, *crypto, transport);

  RunRecord record;
  std::mutex mutex;
  stage.set_reply_fn([&](ReplyTask& task) {
    std::lock_guard lock(mutex);
    record.replies.emplace_back(task.seq, task.client, task.request,
                                task.result);
    return true;
  });
  stage.set_snapshot_fn(
      [&](SeqNum seq, const crypto::Digest& digest, Bytes) {
        std::lock_guard lock(mutex);
        record.checkpoints.emplace_back(seq, digest.hex());
      });
  stage.start();

  for (SeqNum s = 1; s <= kSeqs; ++s)
    stage.submit(make_batch(content_seed, s));
  for (int spin = 0; spin < 5000 && stage.next_seq() <= kSeqs; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(stage.next_seq(), kSeqs) << "stage drained the whole stream";
  stage.stop();

  record.stats = stage.stats();
  record.final_snapshot = service.snapshot();
  record.final_digest = service.state_digest().hex();
  return record;
}

void expect_equivalent(const RunRecord& base, const RunRecord& run,
                       const std::string& label) {
  EXPECT_EQ(base.replies, run.replies)
      << label << ": reply stream must match sequential order and content";
  EXPECT_EQ(base.checkpoints, run.checkpoints)
      << label << ": every checkpoint digest must match";
  EXPECT_EQ(base.final_snapshot, run.final_snapshot) << label;
  EXPECT_EQ(base.final_digest, run.final_digest) << label;
  EXPECT_EQ(base.stats.requests_executed, run.stats.requests_executed)
      << label;
  EXPECT_EQ(base.stats.duplicates_suppressed, run.stats.duplicates_suppressed)
      << label;
  EXPECT_EQ(base.stats.replies_sent, run.stats.replies_sent) << label;
  EXPECT_EQ(base.stats.noops_executed, run.stats.noops_executed) << label;
  EXPECT_EQ(base.stats.checkpoints_triggered, run.stats.checkpoints_triggered)
      << label;
  EXPECT_EQ(base.stats.last_executed_seq, run.stats.last_executed_seq)
      << label;
}

TEST(ParallelExec, AnyWorkerCountMatchesSequentialExecution) {
  for (std::uint64_t content_seed : {101ULL, 202ULL, 303ULL}) {
    SCOPED_TRACE("content_seed=" + std::to_string(content_seed));
    const RunRecord baseline =
        run_workload(content_seed, /*exec_workers=*/0, /*kv_shards=*/16);

    // The baseline must be worth comparing against: the workload really
    // contains checkpoints, duplicates and meaningful replies.
    ASSERT_EQ(baseline.stats.last_executed_seq, kSeqs);
    EXPECT_EQ(baseline.stats.checkpoints_triggered, kSeqs / 10);
    EXPECT_GT(baseline.stats.duplicates_suppressed, 0u);
    EXPECT_EQ(baseline.stats.requests_parallel, 0u);
    EXPECT_EQ(baseline.stats.exec_barriers, 0u) << "no pool, no barriers";

    for (std::uint32_t workers : {1u, 2u, 4u}) {
      const RunRecord run =
          run_workload(content_seed, workers, /*kv_shards=*/16);
      expect_equivalent(baseline, run,
                        "workers=" + std::to_string(workers));
      // The pool must actually be exercised, including the barrier path.
      EXPECT_GT(run.stats.requests_parallel, 0u);
      EXPECT_GT(run.stats.exec_barriers, 0u)
          << "the workload's garbage payloads must hit the barrier path";
    }
  }
}

TEST(ParallelExec, ShardCountIsExecutionDetailNotState) {
  // Same workload, different KvStore shard counts (and so different
  // dispatch patterns): identical observable behaviour.
  const RunRecord base = run_workload(404, /*exec_workers=*/2, 16);
  const RunRecord one_shard = run_workload(404, /*exec_workers=*/2, 1);
  const RunRecord odd_shards = run_workload(404, /*exec_workers=*/3, 5);
  expect_equivalent(base, one_shard, "kv_shards=1");
  expect_equivalent(base, odd_shards, "kv_shards=5/workers=3");
  // One shard serializes everything through one worker — still correct.
  EXPECT_GT(one_shard.stats.requests_parallel, 0u);
}

}  // namespace
}  // namespace copbft::test
