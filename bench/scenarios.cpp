// Adversarial scenario campaigns: runs every built-in ScenarioSpec
// (Byzantine equivocation/omission/lane stall, crash-recover and flap
// churn, WAN geo-replication and partition) on the deterministic simulator
// and emits one BENCH_scenario_<name>.json artifact each.
//
// The exit status is the regression gate CI relies on: nonzero if any
// scenario observed an execution fork or a COP_INVARIANT firing (safety),
// failed to commit operations after its last fault cleared (liveness), or
// left a faulted replica stranded behind the cluster (recovery).
//
// Unlike the figure benches this binary ignores COPBFT_BENCH_MEASURE_MS:
// fault schedules are absolute points on the virtual timeline, so
// shrinking the run would move injections past the end of the measurement.
//
// Usage: scenarios [name...]  — run only the named scenarios (default all).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace copbft::sim;

  std::vector<std::string> only(argv + 1, argv + argc);
  auto selected = [&only](const std::string& name) {
    if (only.empty()) return true;
    for (const std::string& n : only)
      if (n == name) return true;
    return false;
  };

  std::printf("Adversarial scenario campaigns\n");
  std::printf(
      "%-24s %10s %10s %6s %5s %6s %9s %8s\n", "scenario", "kops_per_s",
      "p50_us", "forks", "invs", "xfers", "postfault", "recover");

  int failures = 0;
  bool ran_any = false;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (!selected(spec.name)) continue;
    ran_any = true;
    ScenarioResult r = run_scenario(spec);

    bool safe = r.safe();
    bool live = r.post_fault_completed_ops > 0;
    bool ok = safe && live && r.recoveries_complete;
    if (!ok) ++failures;

    std::printf("%-24s %10.1f %10llu %6llu %5llu %6llu %9llu %8s%s\n",
                spec.name.c_str(), r.sim.throughput_ops / 1000.0,
                static_cast<unsigned long long>(r.sim.latency_p50_us),
                static_cast<unsigned long long>(r.sim.fork_detections),
                static_cast<unsigned long long>(r.invariant_firings),
                static_cast<unsigned long long>(r.sim.state_transfers),
                static_cast<unsigned long long>(r.post_fault_completed_ops),
                r.recoveries_complete ? "yes" : "NO",
                ok ? "" : "  <-- FAILED");
    std::fflush(stdout);

    std::string path = "BENCH_scenario_" + spec.name + ".json";
    std::string doc = scenario_json(spec, r);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f || std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }

  if (!ran_any) {
    std::fprintf(stderr, "no scenario matched the given names\n");
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d scenario(s) failed their safety/liveness gate\n",
                 failures);
    return 1;
  }
  return 0;
}
