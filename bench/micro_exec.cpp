// Microbenchmark of execution-stage request throughput, isolating the
// §4.3 post-execution offload and the stats de-locking from the rest of
// the replica.
//
// Four producer threads play the pillars (sequence slices c(p,i) =
// p + i*NP, submitted slightly out of order), a bystander thread polls
// stats() continuously the way monitoring does, and the stage runs with
// real HMAC sealing. Two modes per run:
//
//   inline    — no ReplyFn installed: the stage post-processes, seals and
//               sends every reply on its own thread (the pre-offload
//               behaviour, and still the TOP/SMaRt baseline path).
//   offloaded — ReplyFn routes each ReplyTask to the originating
//               pillar's reply lane, where a consumer thread seals +
//               sends (paper §4.3.2); the exec thread only orders and
//               executes.
//
// Rebuild with -DCOP_ENABLE_METRICS=OFF for the "without metrics"
// comparison the de-locking work cares about: the stage counters are
// plain single-writer atomics either way, but the metrics registry's
// counters compile out entirely.
//
// COPBFT_MICRO_EXEC_OPS sets the per-mode request count (default
// 200000; CI bench-smoke uses a small value).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "app/null_service.hpp"
#include "common/queue.hpp"
#include "common/time.hpp"
#include "core/execution_stage.hpp"
#include "core/outbound.hpp"

namespace {

using namespace copbft;
using namespace copbft::core;
using namespace copbft::protocol;

/// Counts and discards outbound frames; the egress cost we want in the
/// measurement is sealing, not socket I/O.
class CountingTransport final : public transport::Transport {
 public:
  void register_sink(transport::LaneId,
                     std::shared_ptr<transport::FrameSink>) override {}
  bool send(crypto::KeyNodeId, transport::LaneId, Bytes frame) override {
    bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
    sent_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  void shutdown() override {}

  std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

constexpr std::uint32_t kPillars = 4;

double run_mode(bool offload, SeqNum per_pillar) {
  ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 200;
  config.protocol.window = 800;

  auto crypto = crypto::make_real_crypto(11);
  app::NullService service(4);
  CountingTransport transport;
  ExecutionStage stage(/*self=*/0, config, service, *crypto, transport);

  std::vector<std::unique_ptr<BoundedQueue<ReplyTask>>> lanes;
  std::vector<std::jthread> repliers;
  if (offload) {
    for (std::uint32_t p = 0; p < kPillars; ++p)
      lanes.push_back(std::make_unique<BoundedQueue<ReplyTask>>(1024));
    stage.set_reply_fn(
        [&](ReplyTask& task) { return lanes[task.pillar]->try_push_ref(task); });
    for (std::uint32_t p = 0; p < kPillars; ++p) {
      repliers.emplace_back([&, p] {
        while (auto task = lanes[p]->pop()) {
          Bytes result = service.post_process((*task->requests)[task->index],
                                              std::move(task->result));
          protocol::Message msg =
              protocol::Reply{task->view,    task->client, task->request,
                              /*replica=*/0, std::move(result), {}};
          transport.send(client_node(task->client), /*lane=*/0,
                         seal_message(msg, *crypto, replica_node(0),
                                      {client_node(task->client)}));
        }
      });
    }
  }
  stage.start();

  // Monitoring bystander: hammers the de-locked stats() snapshot.
  std::atomic<bool> done{false};
  std::jthread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)stage.stats();
      (void)stage.next_seq();
      std::this_thread::yield();
    }
  });

  const std::uint64_t start = now_us();
  {
    std::vector<std::jthread> pillars;
    for (std::uint32_t p = 0; p < kPillars; ++p) {
      pillars.emplace_back([&, p] {
        for (SeqNum i = 0; i < per_pillar; ++i) {
          const SeqNum seq = p + i * kPillars;
          if (seq == 0) continue;  // genesis
          while (seq >= stage.next_seq() + config.protocol.window)
            std::this_thread::yield();
          auto requests = std::make_shared<std::vector<Request>>();
          Request req;
          req.client = 1001 + p;
          req.id = static_cast<RequestId>(i + 1);
          req.payload = to_bytes("micro");
          requests->push_back(std::move(req));
          const SeqNum basis =
              seq > config.protocol.window ? seq - config.protocol.window : 0;
          stage.submit(CommittedBatch{seq, 0, requests, p, basis});
        }
      });
    }
  }  // join producers

  const SeqNum last_seq = kPillars * per_pillar - 1;
  while (stage.stats().last_executed_seq < last_seq)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Wall time through last execution; offloaded replies may still drain.
  const std::uint64_t exec_elapsed = now_us() - start;

  stage.stop();
  for (auto& lane : lanes) lane->close();
  repliers.clear();
  while (transport.sent() < last_seq)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  done.store(true, std::memory_order_relaxed);

  ExecutionStats stats = stage.stats();
  const double ops = static_cast<double>(stats.requests_executed) * 1e6 /
                     static_cast<double>(exec_elapsed);
  std::printf(
      "%-9s %9.0f ops/s  (%llu reqs in %.3fs, %llu/%llu replies offloaded)\n",
      offload ? "offloaded" : "inline", ops,
      static_cast<unsigned long long>(stats.requests_executed),
      static_cast<double>(exec_elapsed) / 1e6,
      static_cast<unsigned long long>(stats.replies_offloaded),
      static_cast<unsigned long long>(stats.replies_sent));
  std::fflush(stdout);
  return ops;
}

}  // namespace

int main() {
  SeqNum per_pillar = 50'000;  // 200k requests per mode
  if (const char* env = std::getenv("COPBFT_MICRO_EXEC_OPS")) {
    const long long total = std::atoll(env);
    if (total > 0)
      per_pillar = static_cast<SeqNum>(total) / kPillars + 1;
  }
  std::printf("# micro_exec — execution-stage throughput, %u producer "
              "pillars, real HMAC reply sealing\n",
              kPillars);
  std::printf("# on a 1-core host the offloaded mode pays hand-off cost "
              "without gaining parallelism;\n"
              "# the multi-core win is the simulator's to show (fig5a, "
              "docs/performance.md)\n");
  std::printf("# metrics registry: %s (rebuild with -DCOP_ENABLE_METRICS=OFF "
              "to compare)\n",
              COP_METRICS_ENABLED ? "ON" : "OFF");
  const double inline_ops = run_mode(/*offload=*/false, per_pillar);
  const double offload_ops = run_mode(/*offload=*/true, per_pillar);
  std::printf("offload speedup: %.2fx\n",
              inline_ops > 0 ? offload_ops / inline_ops : 0.0);
  return 0;
}
