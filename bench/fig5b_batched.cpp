// Figure 5b: maximum throughput with increasing number of cores,
// batching ENABLED (paper §5.1).
//
// Expected shape: every system scales, ordered BFT-SMaRt < BFT-SMaRt* <
// TOP << COP; COP alone becomes network-bound near 12 cores (~97% of the
// four adapters' combined bandwidth at the leader).
#include <cstdio>

#include "support/bench_json.hpp"
#include "support/paper_setup.hpp"

int main() {
  using namespace copbft::bench;
  print_header("Figure 5b — batched throughput vs. cores",
               "# cores  system  kops_per_s  leader_MB_per_s  instances");

  const std::uint32_t kCores[] = {1, 2, 4, 6, 8, 10, 12};
  const SimArch kSystems[] = {SimArch::kSmart, SimArch::kSmartStar,
                              SimArch::kTop, SimArch::kCop};

  BenchJsonWriter json("fig5b", /*batching=*/true, measure_ns());
  for (SimArch arch : kSystems) {
    for (std::uint32_t cores : kCores) {
      SimConfig cfg = paper_config(arch, cores, /*batching=*/true);
      SimResult r = run_simulation(cfg);
      std::printf("%6u  %-11s %10.1f %12.1f %10llu\n", cores,
                  copbft::sim::arch_name(arch), r.throughput_ops / 1000.0,
                  r.leader_tx_mbps,
                  static_cast<unsigned long long>(r.instances));
      std::fflush(stdout);
      json.add(copbft::sim::arch_name(arch), cores, cfg.clients,
               cfg.request_payload, r);
    }
    std::printf("\n");
  }
  if (!json.write("BENCH_fig5b.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig5b.json\n");
    return 1;
  }
  return 0;
}
