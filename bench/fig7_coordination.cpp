// Figure 7: coordination service — maximum throughput with a varying
// proportion of read requests (paper §5.3).
//
// The replicated service is the ZooKeeper-like coordination service with
// strongly consistent reads (reads are totally ordered like writes and
// executed in the single service thread). Namespace prepared with 10,000
// nodes of 128 B; reads have small requests and large replies, writes the
// opposite. 12 cores, batching on.
//
// Expected shape: throughput grows with the read share (large replies
// spread over all replicas, large write requests burden the leader's
// proposals); COP stays 2.5-4x above TOP and is network-bound.
#include <cstdio>

#include "support/paper_setup.hpp"

int main() {
  using namespace copbft::bench;
  print_header("Figure 7 — coordination service, read/write mix",
               "# read_pct  system  kops_per_s  leader_MB_per_s");

  const double kReadRatios[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const SimArch kSystems[] = {SimArch::kSmart, SimArch::kSmartStar,
                              SimArch::kTop, SimArch::kCop};

  for (SimArch arch : kSystems) {
    for (double ratio : kReadRatios) {
      SimConfig cfg = paper_config(arch, 12, /*batching=*/true);
      cfg.service = copbft::sim::SimService::kCoordination;
      cfg.read_ratio = ratio;
      cfg.coord_data_size = 128;   // 10,000 nodes x 128 B prepared state
      cfg.coord_path_size = 12;    // "/node-NNNN"
      SimResult r = run_simulation(cfg);
      std::printf("%9.0f  %-11s %10.1f %12.1f\n", ratio * 100.0,
                  copbft::sim::arch_name(arch), r.throughput_ops / 1000.0,
                  r.leader_tx_mbps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
