// Figure 8: exploring the limits — fixed vs. rotating leadership with
// three replying replicas, batched throughput vs. cores (paper §5.4).
//
// Rotation uses the block-wise scheme l(c) = (c / NP) mod N that is
// coordinated with the pillar partitioning (§4.3.2); additionally one
// deterministically chosen replica per request omits its reply.
//
// Expected shape: TOP barely moves (it is compute-bound); COP, freed from
// the leader's network bottleneck, scales almost perfectly and roughly
// doubles its 12-core throughput (the paper's 2.4 M ops/s headline).
#include <cstdio>

#include "support/paper_setup.hpp"

int main() {
  using namespace copbft::bench;
  print_header(
      "Figure 8 — fixed vs. rotating roles with three replying replicas",
      "# cores  system            kops_per_s  leader_MB_per_s");

  const std::uint32_t kCores[] = {1, 2, 4, 6, 8, 10, 12};

  struct Variant {
    SimArch arch;
    bool rotate;
    const char* name;
  };
  const Variant kVariants[] = {
      {SimArch::kTop, false, "TOP"},
      {SimArch::kTop, true, "TOP(rot,3rep)"},
      {SimArch::kCop, false, "COP"},
      {SimArch::kCop, true, "COP(rot,3rep)"},
  };

  for (const Variant& variant : kVariants) {
    for (std::uint32_t cores : kCores) {
      SimConfig cfg = paper_config(variant.arch, cores, /*batching=*/true);
      if (variant.rotate) {
        cfg.protocol.leader_scheme = copbft::protocol::LeaderScheme::kRotating;
        cfg.reply_mode = copbft::core::ReplyMode::kOmitOne;
        // Rotation needs the tightest drift bound (§4.2.2): exactly one
        // checkpoint interval. bench/ablation_cop quantifies the cliff.
        cfg.protocol.window = cfg.protocol.checkpoint_interval;
      }
      SimResult r = run_simulation(cfg);
      std::printf("%6u  %-17s %10.1f %12.1f\n", cores, variant.name,
                  r.throughput_ops / 1000.0, r.leader_tx_mbps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
