// Figure 5a: maximum throughput with increasing number of cores,
// batching DISABLED — every request is ordered by its own consensus
// instance (paper §5.1).
//
// Expected shape: BFT-SMaRt/BFT-SMaRt* flat at a few thousand ops/s
// (single-instance, latency-bound); TOP scales to ~6 cores, then is
// confined by its slowest stage; COP starts ~3x above TOP and keeps
// scaling through 12 cores.
#include <cstdio>

#include "support/bench_json.hpp"
#include "support/paper_setup.hpp"

int main() {
  using namespace copbft::bench;
  print_header("Figure 5a — unbatched throughput vs. cores",
               "# cores  system  kops_per_s  leader_MB_per_s  instances");

  const std::uint32_t kCores[] = {1, 2, 4, 6, 8, 10, 12};
  const SimArch kSystems[] = {SimArch::kSmart, SimArch::kSmartStar,
                              SimArch::kTop, SimArch::kCop};

  BenchJsonWriter json("fig5a", /*batching=*/false, measure_ns());
  for (SimArch arch : kSystems) {
    for (std::uint32_t cores : kCores) {
      SimConfig cfg = paper_config(arch, cores, /*batching=*/false);
      SimResult r = run_simulation(cfg);
      std::printf("%6u  %-11s %10.1f %12.1f %10llu\n", cores,
                  copbft::sim::arch_name(arch), r.throughput_ops / 1000.0,
                  r.leader_tx_mbps,
                  static_cast<unsigned long long>(r.instances));
      std::fflush(stdout);
      json.add(copbft::sim::arch_name(arch), cores, cfg.clients,
               cfg.request_payload, r);
    }
    std::printf("\n");
  }
  if (!json.write("BENCH_fig5a.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig5a.json\n");
    return 1;
  }
  return 0;
}
