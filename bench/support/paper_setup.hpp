// Shared benchmark setup mirroring the paper's evaluation environment
// (§5 "The Setup"): four replicas, f=1, checkpoint interval 1000,
// BFT-SMaRt-style MAC authentication, machines with up to 12 cores
// (2 hardware threads each) and four 1 GbE adapters; five client machines.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.hpp"
#include "sim/simulation.hpp"

namespace copbft::bench {

using sim::SimArch;
using sim::SimConfig;
using sim::SimResult;

/// Measurement duration: default 400 ms simulated (plus 200 ms warmup);
/// override with COPBFT_BENCH_MEASURE_MS for longer, steadier runs.
inline sim::SimTime measure_ns() {
  if (const char* env = std::getenv("COPBFT_BENCH_MEASURE_MS"))
    return static_cast<sim::SimTime>(std::atoll(env)) * 1'000'000ULL;
  return 400 * 1'000'000ULL;
}

/// Baseline configuration for one system at a core count (paper §5).
inline SimConfig paper_config(SimArch arch, std::uint32_t cores,
                              bool batching) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.cores = cores;
  cfg.adapters = 4;
  cfg.client_machines = 5;
  cfg.client_cores = 12;

  cfg.protocol.num_replicas = 4;
  cfg.protocol.max_faulty = 1;
  cfg.protocol.checkpoint_interval = 1000;
  // Drift bound (§4.2.2): batched runs keep pillars within ~1 checkpoint
  // interval of the execution frontier; unbatched runs need deep instance
  // pipelining and use a wider window.
  cfg.protocol.window = batching ? 2400 : 4000;
  cfg.protocol.batching = batching;
  cfg.protocol.max_batch = 400;
  cfg.protocol.view_change_timeout_us = 0;   // fault-free runs
  cfg.protocol.retransmit_interval_us = 150'000;  // heals window-drift drops
  cfg.protocol.num_pillars = cfg.pillars();

  // Single-instance logic for the BFT-SMaRt baseline (§3.2); COP/TOP use
  // multi-instance logic: adaptive batching pipelines two batches per
  // logic unit, unbatched runs are window-limited.
  bool single_instance =
      (arch == SimArch::kSmart || arch == SimArch::kSmartStar);
  cfg.protocol.max_active_proposals = single_instance ? 1 : (batching ? 4 : 0);

  cfg.warmup = 200 * 1'000'000ULL;
  cfg.measure = measure_ns();

  // Saturating closed-loop load (paper: "the generated workload is chosen
  // such that it completely saturates the measured system").
  if (batching) {
    cfg.clients = 2400;
    cfg.client_window = 8;
  } else {
    cfg.clients = 800;
    cfg.client_window = 4;
  }
  return cfg;
}

inline void print_header(const char* bench, const char* columns) {
  // Opt-in periodic metrics dump (COPBFT_METRICS_DUMP=<path>); a no-op for
  // the pure-simulator figures, populated by threaded-runtime benches.
  metrics::MetricsDumper::maybe_start_from_env();
  std::printf("# %s\n", bench);
  std::printf("# paper: Behl, Distler, Kapitza — Consensus-Oriented "
              "Parallelization (Middleware '15)\n");
  std::printf("%s\n", columns);
}

}  // namespace copbft::bench
