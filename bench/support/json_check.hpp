// Minimal JSON validator shared by the bench artifact pipeline.
//
// Enough of RFC 8259 to reject anything structurally broken that our
// hand-rolled serializers could emit (unbalanced braces, bad escapes,
// trailing commas, bare inf/nan). Used by tests/metrics_test.cpp,
// tests/scenario_test.cpp and the bench/validate_bench_json CLI that CI's
// bench-smoke and scenario-smoke jobs run over every BENCH_*.json — one
// validator, one definition of "well-formed".
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace copbft::bench {

class JsonCheck {
 public:
  explicit JsonCheck(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    bool ok = value();
    skip_ws();
    return ok && pos_ == s_.size();
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    for (; *word; ++word, ++pos_)
      if (peek() != *word) return false;
    return true;
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_)
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }
  bool members(char close, bool with_keys) {
    ++pos_;  // consume opener
    skip_ws();
    if (peek() == close) {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (with_keys) {
        if (!string()) return false;
        skip_ws();
        if (peek() != ':') return false;
        ++pos_;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool value() {
    switch (peek()) {
      case '{':
        return members('}', /*with_keys=*/true);
      case '[':
        return members(']', /*with_keys=*/false);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace copbft::bench
