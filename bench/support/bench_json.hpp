// Machine-readable benchmark output: each figure bench emits, next to its
// human-readable table, a BENCH_<figure>.json document with one record per
// (system, cores/clients/payload) cell — headline throughput/latency plus
// the per-stage queue and load series from the simulated leader. CI's
// bench-smoke job parses these files; plotting scripts consume them.
//
// Hand-rolled serialization (no external JSON dependency); keys are
// emitted in a fixed order so diffs between runs stay readable.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace copbft::bench {

class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string figure, bool batching, std::uint64_t measure_ns)
      : figure_(std::move(figure)),
        batching_(batching),
        measure_ns_(measure_ns) {}

  /// Records one measured cell. `clients`/`payload` are part of the key
  /// for fig6-style sweeps; core-sweep figures pass their fixed values.
  void add(const char* system, std::uint32_t cores, std::uint32_t clients,
           std::size_t payload, const sim::SimResult& r) {
    std::string e = "    {";
    field(e, "system", system);
    e += ',';
    field(e, "cores", static_cast<std::uint64_t>(cores));
    e += ',';
    field(e, "clients", static_cast<std::uint64_t>(clients));
    e += ',';
    field(e, "payload_b", static_cast<std::uint64_t>(payload));
    e += ',';
    field(e, "throughput_ops", r.throughput_ops);
    e += ',';
    field(e, "completed_ops", r.completed_ops);
    e += ',';
    field(e, "latency_mean_us", r.latency_mean_us);
    e += ',';
    field(e, "latency_p50_us", r.latency_p50_us);
    e += ',';
    field(e, "latency_p99_us", r.latency_p99_us);
    e += ',';
    field(e, "leader_tx_mbps", r.leader_tx_mbps);
    e += ',';
    field(e, "leader_cpu", r.leader_cpu_utilization);
    e += ',';
    field(e, "follower_cpu", r.follower_cpu_utilization);
    e += ',';
    field(e, "instances", r.instances);
    e += ',';
    field(e, "reorder_peak", r.leader_reorder_peak);
    e += ",\"stages\":[";
    bool first = true;
    for (const auto& stage : r.leader_stages) {
      if (!first) e += ',';
      first = false;
      e += '{';
      field(e, "name", stage.name.c_str());
      e += ',';
      field(e, "busy", stage.busy_fraction);
      e += ',';
      field(e, "backlog", stage.backlog);
      e += '}';
    }
    e += "]}";
    entries_.push_back(std::move(e));
  }

  /// Writes the accumulated document; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::string out = "{\n";
    out += "  \"figure\":";
    append_escaped(out, figure_);
    out += ",\n  \"batching\":";
    out += batching_ ? "true" : "false";
    out += ",\n  \"measure_ns\":";
    append_number(out, measure_ns_);
    out += ",\n  \"results\":[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += entries_[i];
      if (i + 1 < entries_.size()) out += ',';
      out += '\n';
    }
    out += "  ]\n}\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  static void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
  }
  static void append_number(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
  }
  static void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    // %g can produce "inf"/"nan" which are not JSON; clamp to null.
    if (buf[0] == 'i' || buf[0] == 'n' || buf[1] == 'i') {
      out += "null";
      return;
    }
    out += buf;
  }
  static void field(std::string& out, const char* key, const char* value) {
    append_escaped(out, key);
    out += ':';
    append_escaped(out, value);
  }
  static void field(std::string& out, const char* key, std::uint64_t value) {
    append_escaped(out, key);
    out += ':';
    append_number(out, value);
  }
  static void field(std::string& out, const char* key, double value) {
    append_escaped(out, key);
    out += ':';
    append_number(out, value);
  }

  const std::string figure_;
  const bool batching_;
  const std::uint64_t measure_ns_;
  std::vector<std::string> entries_;
};

}  // namespace copbft::bench
