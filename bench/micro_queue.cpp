// Microbenchmarks of the inter-thread plumbing and the wire codec —
// the hand-off costs the paper's §3.1 blames pipelined designs for.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/histogram.hpp"
#include "common/queue.hpp"
#include "protocol/messages.hpp"

namespace {

using namespace copbft;

void BM_QueueSameThread(benchmark::State& state) {
  BoundedQueue<int> queue(1024);
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_QueueSameThread);

void BM_QueueCrossThreadHandoff(benchmark::State& state) {
  // Ping-pong between two threads: measures a full enqueue + wakeup +
  // dequeue round trip (two hand-offs).
  BoundedQueue<int> ping(64);
  BoundedQueue<int> pong(64);
  std::thread echo([&] {
    while (auto v = ping.pop()) pong.push(*v);
    pong.close();
  });
  for (auto _ : state) {
    ping.push(1);
    benchmark::DoNotOptimize(pong.pop());
  }
  ping.close();
  echo.join();
}
BENCHMARK(BM_QueueCrossThreadHandoff);

protocol::Request sample_request(std::size_t payload) {
  protocol::Request req;
  req.client = 1001;
  req.id = 42;
  req.payload = Bytes(payload, Byte{0x5a});
  req.auth.entries.resize(4);
  return req;
}

void BM_EncodeRequest(benchmark::State& state) {
  protocol::Message msg{sample_request(static_cast<std::size_t>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::encode_message(msg));
  }
}
BENCHMARK(BM_EncodeRequest)->Arg(0)->Arg(128)->Arg(1024);

void BM_DecodePrePrepare(benchmark::State& state) {
  protocol::PrePrepare pp;
  pp.view = 1;
  pp.seq = 7;
  for (int i = 0; i < state.range(0); ++i)
    pp.requests.push_back(sample_request(64));
  pp.auth.entries.resize(3);
  Bytes encoded = protocol::encode_message(protocol::Message{pp});
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::decode_message(encoded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecodePrePrepare)->Arg(1)->Arg(20)->Arg(200);

void BM_EncodedSizeMatchesEncode(benchmark::State& state) {
  protocol::Message msg{sample_request(256)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::encoded_size(msg));
  }
}
BENCHMARK(BM_EncodedSizeMatchesEncode);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.record(v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32);
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
