// Event-loop ingress soak: thousands of concurrent TCP clients against a
// four-replica COP cluster, measured as three cells at equal offered load:
//
//   few_clients   4 clients with deep windows — the classic benchmark
//                 shape (one connection per client, high in-flight).
//   many_clients  SOAK_CLIENTS thin clients, window 4 — the production
//                 shape the event-loop ingress exists for: each client
//                 dials every replica, so a replica carries SOAK_CLIENTS
//                 accepted sockets on its NP lane threads.
//   overload      offered load deliberately past the cluster's execution
//                 capacity with tiny pillar queues and a tight ingress
//                 retry budget — admission must shed at ingress
//                 (ingress_shed > 0) while pillar queues never see a
//                 blocking push (queue_blocked_pushes delta stays 0).
//
// Two processes: the fork happens before any thread exists. The child
// hosts the replica cluster (its transports, pillars, exec stages); the
// parent hosts the client fleet — thread-less mini-clients multiplexed as
// endpoints over one TcpTransport, driven entirely by the transport's
// lane threads (replies complete on the loop thread that read them, which
// immediately seals and sends the next request). With the default
// SOAK_CLIENTS=2500 the many_clients cell holds 10,000 concurrent client
// connections (2500 per replica accepted, 10,000 dialed in the parent),
// inside the 20,000-fd rlimit on each side.
//
// Emits BENCH_ingress.json (validated with the shared JsonCheck before
// writing). Environment knobs, reduced in CI's bench-smoke job:
//   COP_SOAK_CLIENTS      fleet size of many_clients (default 2500)
//   COP_SOAK_MEASURE_MS   measurement window per cell (default 5000)
//   COP_SOAK_WARMUP_MS    warm-up before measuring   (default 1500)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/null_service.hpp"
#include "common/metrics.hpp"
#include "common/threading.hpp"
#include "common/time.hpp"
#include "core/cop_replica.hpp"
#include "crypto/authenticator.hpp"
#include "crypto/provider.hpp"
#include "protocol/messages.hpp"
#include "protocol/types.hpp"
#include "protocol/wire.hpp"
#include "support/json_check.hpp"
#include "transport/tcp.hpp"

using namespace copbft;

namespace {

constexpr std::uint64_t kSeed = 5;
constexpr std::uint32_t kReplicas = 4;
constexpr std::uint32_t kPillars = 2;
constexpr std::uint32_t kMaxFaulty = 1;
constexpr std::uint16_t kBasePort = 43200;
/// The parent transport's own identity; endpoints dial with their own.
constexpr crypto::KeyNodeId kMuxNode = 2'000'000;

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  return std::strtoull(v, nullptr, 10);
}

/// NullService plus a deterministic per-request busy-wait: the overload
/// cell needs execution to be the bottleneck so offered load provably
/// exceeds capacity and admission control has something to shed.
class SpinService final : public app::Service {
 public:
  SpinService(std::uint64_t spin_us, std::size_t reply_size)
      : spin_us_(spin_us), inner_(reply_size) {}

  Bytes execute(const protocol::Request& request) override {
    if (spin_us_ > 0) {
      const std::uint64_t until = now_us() + spin_us_;
      while (now_us() < until) {
      }
    }
    return inner_.execute(request);
  }
  crypto::Digest state_digest() const override { return inner_.state_digest(); }
  Bytes snapshot() const override { return inner_.snapshot(); }
  bool restore(ByteSpan snapshot, const crypto::Digest& expect) override {
    return inner_.restore(snapshot, expect);
  }

 private:
  const std::uint64_t spin_us_;
  app::NullService inner_;
};

struct Cell {
  const char* name;
  std::uint32_t clients;
  std::uint32_t window;
  // Replica-side knobs the cell forces.
  std::size_t queue_capacity;
  std::size_t ingress_retry_budget;
  std::uint64_t ingress_retry_deadline_us;
  std::uint64_t exec_spin_us;
  /// Client resend timer. Nominal cells never lose a request (admission
  /// does not shed, TCP does not drop), so their timer is set far past
  /// the run length — retransmits there would only measure the storm,
  /// not the ingress. The overload cell sheds by design and needs
  /// resends to make progress.
  std::uint64_t resend_us;
  /// Offered rate in ops/s; 0 = unconstrained closed loop. The nominal
  /// cells compare the two fleet shapes at the same offered rate, chosen
  /// below this single-core host's saturation point — uncapped, the
  /// comparison measures loopback syscall cost (10,000 thin sockets vs
  /// 16 deep ones), not the ingress. The overload cell stays uncapped:
  /// it exists to exceed capacity.
  std::uint64_t rate_ops;
  bool expect_sheds;
};

struct ChildStats {
  std::uint64_t ingress_accepted = 0;
  std::uint64_t ingress_shed = 0;
  std::uint64_t ingress_deadline_drops = 0;
  std::uint64_t blocked_delta = 0;
  long long peak_conns = 0;
};

struct CellResult {
  Cell cell;
  std::uint64_t completed = 0;
  std::uint64_t retransmissions = 0;
  double measure_s = 0;
  double throughput = 0;
  ChildStats child;
};

void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

// ---------------------------------------------------------------------------
// Child: the replica cluster. Runs until the parent writes a byte on the
// control pipe, then reports transport/pillar counters over the status
// pipe and exits without returning (a forked child must not unwind the
// parent's atexit state).
// ---------------------------------------------------------------------------

std::uint64_t sum_counters(const char* fmt_suffix) {
  auto& reg = metrics::MetricsRegistry::global();
  std::uint64_t sum = 0;
  for (std::uint32_t n = 0; n < kReplicas; ++n)
    for (std::uint32_t lane = 0; lane <= kPillars; ++lane)
      sum += reg.counter("tcp.node" + std::to_string(n) + ".lane" +
                         std::to_string(lane) + "." + fmt_suffix)
                 .value();
  return sum;
}

std::uint64_t sum_blocked_pushes() {
  auto& reg = metrics::MetricsRegistry::global();
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < kReplicas; ++r)
    for (std::uint32_t p = 0; p < kPillars; ++p)
      sum += reg.counter("replica" + std::to_string(r) + ".pillar" +
                         std::to_string(p) + ".queue_blocked_pushes")
                 .value();
  return sum;
}

[[noreturn]] void run_cluster(const Cell& cell, std::uint16_t base_port,
                              int ctl_fd, int status_fd) {
  auto crypto = crypto::make_real_crypto(kSeed);

  std::map<crypto::KeyNodeId, transport::TcpPeer> peers;
  for (protocol::ReplicaId r = 0; r < kReplicas; ++r)
    peers[protocol::replica_node(r)] = {
        "127.0.0.1", static_cast<std::uint16_t>(base_port + r)};

  transport::TcpOptions topt;
  topt.lane_threads = kPillars;
  topt.loop.ingress_retry_budget = cell.ingress_retry_budget;
  topt.loop.ingress_retry_deadline_us = cell.ingress_retry_deadline_us;

  std::vector<std::unique_ptr<transport::TcpTransport>> transports;
  for (protocol::ReplicaId r = 0; r < kReplicas; ++r) {
    transports.push_back(std::make_unique<transport::TcpTransport>(
        protocol::replica_node(r), static_cast<std::uint16_t>(base_port + r),
        peers, topt));
    if (!transports.back()->start()) {
      dprintf(status_fd, "ERROR listen %u\n", base_port + r);
      _exit(1);
    }
  }

  core::ReplicaRuntimeConfig config;
  config.num_pillars = kPillars;
  config.protocol.num_pillars = kPillars;
  config.protocol.checkpoint_interval = 100;
  config.protocol.window = 400;
  config.queue_capacity = cell.queue_capacity;

  std::vector<std::unique_ptr<core::CopReplica>> replicas;
  for (protocol::ReplicaId r = 0; r < kReplicas; ++r) {
    replicas.push_back(std::make_unique<core::CopReplica>(
        r, config,
        std::make_unique<SpinService>(cell.exec_spin_us, /*reply_size=*/32),
        *crypto, *transports[r]));
    replicas.back()->start();
  }

  const std::uint64_t blocked_before = sum_blocked_pushes();
  dprintf(status_fd, "READY\n");

  char byte;
  while (read(ctl_fd, &byte, 1) < 0 && errno == EINTR) {
  }

  // Snapshot while everything is still connected so the accepted-conns
  // gauge reflects the sustained plateau, not teardown.
  auto& reg = metrics::MetricsRegistry::global();
  long long peak = 0;
  for (std::uint32_t n = 0; n < kReplicas; ++n)
    peak += reg.gauge("tcp.node" + std::to_string(n) + ".accepted_conns").max();
  dprintf(status_fd,
          "STATS accepted=%" PRIu64 " shed=%" PRIu64 " ddrops=%" PRIu64
          " blocked=%" PRIu64 " conns=%lld\n",
          sum_counters("ingress_accepted"), sum_counters("ingress_shed"),
          sum_counters("ingress_deadline_drops"),
          sum_blocked_pushes() - blocked_before, peak);

  for (auto& replica : replicas) replica->stop();
  for (auto& transport : transports) transport->shutdown();
  _exit(0);
}

// ---------------------------------------------------------------------------
// Parent: the client fleet. No per-client thread — each mini-client is a
// multiplexed endpoint whose replies arrive on the shared transport's
// lane threads; the reply handler seals and sends the next request
// inline, so the closed loop runs entirely on the event loops.
// ---------------------------------------------------------------------------

struct MiniClient {
  protocol::ClientId id = 0;
  transport::LaneId lane = 0;
  std::shared_ptr<transport::Transport> endpoint;

  struct Pend {
    Bytes frame;
    std::uint32_t voters_seen = 0;
    std::uint32_t votes = 0;
    crypto::Digest digest;
    bool has_digest = false;
    std::uint64_t sent_at_us = 0;
  };
  Mutex mutex;
  std::unordered_map<protocol::RequestId, Pend> inflight COP_GUARDED_BY(mutex);
  protocol::RequestId next_id COP_GUARDED_BY(mutex) = 1;
};

struct Fleet {
  std::deque<MiniClient> clients;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> retransmissions{0};
  std::atomic<bool> stopped{false};
  const crypto::CryptoProvider* crypto = nullptr;
  std::vector<crypto::KeyNodeId> recipients;
  /// Rate pacing (rate_ops > 0): completions park their client here and
  /// the main thread re-issues at the offered rate.
  bool paced = false;
  Mutex ready_mutex;
  std::deque<std::size_t> ready COP_GUARDED_BY(ready_mutex);

  Bytes seal(protocol::ClientId client, protocol::RequestId rid) const {
    protocol::Request req{client, rid, /*flags=*/0,
                          Bytes(16, static_cast<Byte>(client & 0xff)),
                          {}};
    Bytes body = protocol::request_authenticated_bytes(req);
    req.auth = crypto::Authenticator::build(
        *crypto, protocol::client_node(client), recipients, ByteSpan{body});
    protocol::WireWriter w(body);
    w.authenticator(req.auth);
    return body;
  }

  void send_to_all(MiniClient& mc, const Bytes& frame) {
    for (std::uint32_t r = 0; r < kReplicas; ++r)
      mc.endpoint->send(protocol::replica_node(r), mc.lane, frame);
  }

  /// Issues the next request of `mc`'s closed loop (caller must NOT hold
  /// the client mutex; sends happen outside it).
  void issue_next(MiniClient& mc, std::uint64_t now) {
    Bytes frame;
    {
      MutexLock lock(mc.mutex);
      protocol::RequestId rid = mc.next_id++;
      frame = seal(mc.id, rid);
      MiniClient::Pend& p = mc.inflight[rid];
      p.frame = frame;
      p.sent_at_us = now;
    }
    send_to_all(mc, frame);
  }

  /// A Reply frame for client index `idx`; counts f+1 matching votes.
  void on_reply(std::size_t idx, const protocol::Reply& reply) {
    MiniClient& mc = clients[idx];
    bool stable = false;
    {
      MutexLock lock(mc.mutex);
      auto it = mc.inflight.find(reply.id);
      if (it == mc.inflight.end()) return;
      MiniClient::Pend& p = it->second;
      const std::uint32_t bit = 1u << reply.replica;
      if (p.voters_seen & bit) return;
      p.voters_seen |= bit;
      crypto::Digest d = crypto->digest(reply.result);
      if (!p.has_digest) {
        p.digest = d;
        p.has_digest = true;
      }
      if (!(d == p.digest)) return;  // divergent result; Byzantine-free here
      if (++p.votes < kMaxFaulty + 1) return;
      mc.inflight.erase(it);
      stable = true;
    }
    if (!stable) return;
    completed.fetch_add(1, std::memory_order_relaxed);
    if (stopped.load(std::memory_order_relaxed)) return;
    if (!paced) {
      issue_next(mc, now_us());
      return;
    }
    MutexLock lock(ready_mutex);
    ready.push_back(idx);
  }

  /// Paced mode: issues up to `tokens` parked clients (main thread).
  std::uint64_t issue_ready(std::uint64_t tokens, std::uint64_t now) {
    std::uint64_t issued = 0;
    while (issued < tokens) {
      std::size_t idx;
      {
        MutexLock lock(ready_mutex);
        if (ready.empty()) break;
        idx = ready.front();
        ready.pop_front();
      }
      issue_next(clients[idx], now);
      ++issued;
    }
    return issued;
  }

  /// Resends requests outstanding longer than `resend_us` (main thread).
  void retransmit_sweep(std::uint64_t now, std::uint64_t resend_us) {
    for (MiniClient& mc : clients) {
      std::vector<Bytes> frames;
      {
        MutexLock lock(mc.mutex);
        for (auto& [rid, p] : mc.inflight) {
          // sent_at may postdate `now`: loop threads issue concurrently
          // with this sweep, and an unsigned underflow here would resend
          // a request that is microseconds old.
          if (p.sent_at_us >= now || now - p.sent_at_us < resend_us) continue;
          p.sent_at_us = now;
          frames.push_back(p.frame);
        }
      }
      if (frames.empty()) continue;
      retransmissions.fetch_add(frames.size(), std::memory_order_relaxed);
      for (const Bytes& frame : frames) send_to_all(mc, frame);
    }
  }
};

/// One sink shared by every endpoint: replies are dispatched by the
/// client id inside the Reply message, on the loop thread that read them.
class FleetSink final : public transport::FrameSink {
 public:
  explicit FleetSink(Fleet& fleet) : fleet_(fleet) {}

  bool deliver(transport::ReceivedFrame frame) override {
    handle(frame);
    return true;
  }
  transport::Admit try_deliver(transport::ReceivedFrame& frame) override {
    handle(frame);
    return transport::Admit::kAdmitted;
  }
  void close() override {}  // shared across endpoints; fleet owns lifetime

 private:
  void handle(transport::ReceivedFrame& frame) {
    auto decoded = protocol::decode_message(frame.bytes);
    if (!decoded) return;
    auto* reply = std::get_if<protocol::Reply>(&decoded->msg);
    if (!reply || reply->replica >= kReplicas) return;
    if (reply->client < protocol::kClientIdBase) return;
    const std::size_t idx = reply->client - protocol::kClientIdBase;
    if (idx >= fleet_.clients.size()) return;
    // The harness trusts the loopback cluster and skips MAC verification:
    // the bench measures ingress, not client-side crypto throughput.
    fleet_.on_reply(idx, *reply);
  }

  Fleet& fleet_;
};

CellResult run_cell(const Cell& cell, std::uint16_t base_port,
                    std::uint64_t warmup_ms, std::uint64_t measure_ms) {
  CellResult result;
  result.cell = cell;

  int ctl[2], status[2];
  if (pipe(ctl) != 0 || pipe(status) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    std::exit(1);
  }

  // Fork before any thread exists in this process (each previous cell
  // joined all its transport threads in shutdown()).
  pid_t child = fork();
  if (child < 0) {
    std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
    std::exit(1);
  }
  if (child == 0) {
    close(ctl[1]);
    close(status[0]);
    run_cluster(cell, base_port, ctl[0], status[1]);
  }
  close(ctl[0]);
  close(status[1]);

  FILE* status_in = fdopen(status[0], "r");
  char line[256];
  if (!fgets(line, sizeof line, status_in) ||
      std::strncmp(line, "READY", 5) != 0) {
    std::fprintf(stderr, "cell %s: cluster failed to start: %s\n", cell.name,
                 line);
    std::exit(1);
  }

  auto crypto = crypto::make_real_crypto(kSeed);
  Fleet fleet;
  fleet.crypto = crypto.get();
  for (std::uint32_t r = 0; r < kReplicas; ++r)
    fleet.recipients.push_back(protocol::replica_node(r));

  std::map<crypto::KeyNodeId, transport::TcpPeer> peers;
  for (protocol::ReplicaId r = 0; r < kReplicas; ++r)
    peers[protocol::replica_node(r)] = {
        "127.0.0.1", static_cast<std::uint16_t>(base_port + r)};

  transport::TcpOptions topt;
  topt.lane_threads = kPillars;
  auto mux = std::make_unique<transport::TcpTransport>(kMuxNode,
                                                       /*listen_port=*/0,
                                                       peers, topt);
  if (!mux->start()) {
    std::fprintf(stderr, "cell %s: client transport failed to start\n",
                 cell.name);
    std::exit(1);
  }

  auto sink = std::make_shared<FleetSink>(fleet);
  for (std::uint32_t i = 0; i < cell.clients; ++i) {
    MiniClient& mc = fleet.clients.emplace_back();
    mc.id = protocol::kClientIdBase + i;
    mc.lane = mc.id % kPillars;
    mc.endpoint = mux->client_endpoint(protocol::client_node(mc.id));
    mc.endpoint->register_sink(/*lane=*/0, sink);
  }

  // Prime every client's window. Unpaced cells burst it out and let the
  // loop threads keep it full; paced cells park the slots in the ready
  // queue so the offered rate governs from the very first request (a
  // 10,000-request burst would take seconds to drain to steady state and
  // eat the warmup).
  fleet.paced = cell.rate_ops > 0;
  if (fleet.paced) {
    MutexLock lock(fleet.ready_mutex);
    for (std::uint32_t w = 0; w < cell.window; ++w)
      for (std::size_t i = 0; i < fleet.clients.size(); ++i)
        fleet.ready.push_back(i);
  } else {
    for (MiniClient& mc : fleet.clients)
      for (std::uint32_t w = 0; w < cell.window; ++w)
        fleet.issue_next(mc, now_us());
  }

  auto run_for = [&](std::uint64_t ms) {
    const std::uint64_t until = now_us() + ms * 1000;
    double tokens = 0;
    std::uint64_t last = now_us();
    std::uint64_t last_sweep = last;
    while (now_us() < until) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fleet.paced ? 10 : 100));
      std::uint64_t now = now_us();
      if (fleet.paced) {
        tokens += static_cast<double>(cell.rate_ops) *
                  static_cast<double>(now - last) / 1e6;
        last = now;
        // Never bank more than one second of tokens: a stall must not
        // turn into a burst that the rate cap exists to prevent.
        tokens = std::min(tokens, static_cast<double>(cell.rate_ops));
        tokens -= static_cast<double>(
            fleet.issue_ready(static_cast<std::uint64_t>(tokens), now));
      }
      if (now - last_sweep >= 100'000) {
        fleet.retransmit_sweep(now, cell.resend_us);
        last_sweep = now;
      }
    }
  };

  run_for(warmup_ms);
  const std::uint64_t t0 = now_us();
  const std::uint64_t c0 = fleet.completed.load();
  run_for(measure_ms);
  const std::uint64_t t1 = now_us();
  const std::uint64_t c1 = fleet.completed.load();
  fleet.stopped.store(true);

  result.completed = c1 - c0;
  result.measure_s = static_cast<double>(t1 - t0) / 1e6;
  result.throughput = static_cast<double>(result.completed) / result.measure_s;
  result.retransmissions = fleet.retransmissions.load();

  // Ask the cluster for its counters while all connections are still up.
  (void)!write(ctl[1], "S", 1);
  if (fgets(line, sizeof line, status_in) &&
      std::strncmp(line, "STATS ", 6) == 0) {
    std::sscanf(line,
                "STATS accepted=%" SCNu64 " shed=%" SCNu64 " ddrops=%" SCNu64
                " blocked=%" SCNu64 " conns=%lld",
                &result.child.ingress_accepted, &result.child.ingress_shed,
                &result.child.ingress_deadline_drops,
                &result.child.blocked_delta, &result.child.peak_conns);
  } else {
    std::fprintf(stderr, "cell %s: no STATS from cluster\n", cell.name);
    std::exit(1);
  }
  fclose(status_in);
  close(ctl[1]);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);

  for (MiniClient& mc : fleet.clients) mc.endpoint->shutdown();
  mux->shutdown();

  std::printf(
      "%-12s clients=%-6u window=%-5u inflight=%-6u -> %8.0f ops/s "
      "(completed=%" PRIu64 ", retrans=%" PRIu64 ", shed=%" PRIu64
      ", ddrops=%" PRIu64 ", blocked_delta=%" PRIu64 ", peak_conns=%lld)\n",
      cell.name, cell.clients, cell.window, cell.clients * cell.window,
      result.throughput, result.completed, result.retransmissions,
      result.child.ingress_shed, result.child.ingress_deadline_drops,
      result.child.blocked_delta, result.child.peak_conns);
  return result;
}

std::string to_json(const std::vector<CellResult>& results,
                    std::uint64_t soak_clients, std::uint64_t warmup_ms,
                    std::uint64_t measure_ms) {
  std::ostringstream out;
  out << "{\n"
      << "  \"figure\":\"ingress_soak\",\n"
      << "  \"replicas\":" << kReplicas << ",\n"
      << "  \"pillars\":" << kPillars << ",\n"
      << "  \"soak_clients\":" << soak_clients << ",\n"
      << "  \"warmup_ms\":" << warmup_ms << ",\n"
      << "  \"measure_ms\":" << measure_ms << ",\n"
      << "  \"cells\":[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    out << "    {\"cell\":\"" << r.cell.name << "\""
        << ",\"clients\":" << r.cell.clients
        << ",\"window\":" << r.cell.window
        << ",\"inflight\":" << r.cell.clients * r.cell.window
        << ",\"connections\":" << r.cell.clients * kReplicas
        << ",\"offered_rate_ops\":" << r.cell.rate_ops
        << ",\"queue_capacity\":" << r.cell.queue_capacity
        << ",\"ingress_retry_budget\":" << r.cell.ingress_retry_budget
        << ",\"exec_spin_us\":" << r.cell.exec_spin_us
        << ",\"throughput_ops\":" << r.throughput
        << ",\"completed_ops\":" << r.completed
        << ",\"retransmissions\":" << r.retransmissions
        << ",\"ingress_accepted\":" << r.child.ingress_accepted
        << ",\"ingress_shed\":" << r.child.ingress_shed
        << ",\"ingress_deadline_drops\":" << r.child.ingress_deadline_drops
        << ",\"pillar_blocked_pushes_delta\":" << r.child.blocked_delta
        << ",\"peak_accepted_conns\":" << r.child.peak_conns << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main() {
  raise_fd_limit();

  const std::uint64_t soak_clients = env_u64("COP_SOAK_CLIENTS", 2500);
  const std::uint64_t warmup_ms = env_u64("COP_SOAK_WARMUP_MS", 1500);
  const std::uint64_t measure_ms = env_u64("COP_SOAK_MEASURE_MS", 5000);
  const std::uint64_t rate_ops = env_u64("COP_SOAK_RATE", 2500);

  // Equal offered load across the nominal cells: clients * window is the
  // same; only the connection count changes.
  const std::uint32_t many = static_cast<std::uint32_t>(soak_clients);
  const std::uint32_t inflight = many * 4;
  const std::uint32_t overload_clients =
      std::min<std::uint32_t>(256, std::max<std::uint32_t>(8, many));

  const Cell cells[] = {
      {"few_clients", 4, inflight / 4, /*queue_capacity=*/1u << 15,
       /*retry_budget=*/1u << 15, /*retry_deadline_us=*/100'000,
       /*spin_us=*/0, /*resend_us=*/600'000'000, rate_ops,
       /*expect_sheds=*/false},
      {"many_clients", many, 4, /*queue_capacity=*/1u << 15,
       /*retry_budget=*/1u << 15, /*retry_deadline_us=*/100'000,
       /*spin_us=*/0, /*resend_us=*/600'000'000, rate_ops,
       /*expect_sheds=*/false},
      {"overload", overload_clients, 16, /*queue_capacity=*/64,
       /*retry_budget=*/64, /*retry_deadline_us=*/2'000,
       /*spin_us=*/300, /*resend_us=*/500'000, /*rate_ops=*/0,
       /*expect_sheds=*/true},
  };

  std::vector<CellResult> results;
  std::uint16_t port = kBasePort;
  for (const Cell& cell : cells) {
    results.push_back(run_cell(cell, port, warmup_ms, measure_ms));
    port = static_cast<std::uint16_t>(port + 8);
  }

  int failures = 0;
  for (const CellResult& r : results) {
    if (r.completed == 0) {
      std::fprintf(stderr, "FAIL %s: no requests completed\n", r.cell.name);
      ++failures;
    }
    if (r.cell.expect_sheds && r.child.ingress_shed == 0) {
      std::fprintf(stderr, "FAIL %s: expected ingress sheds, saw none\n",
                   r.cell.name);
      ++failures;
    }
    if (!r.cell.expect_sheds && r.child.ingress_shed != 0) {
      std::fprintf(stderr,
                   "FAIL %s: nominal cell shed %" PRIu64 " frames\n",
                   r.cell.name, r.child.ingress_shed);
      ++failures;
    }
    if (r.child.blocked_delta != 0) {
      std::fprintf(stderr,
                   "FAIL %s: pillar queues saw %" PRIu64 " blocking pushes\n",
                   r.cell.name, r.child.blocked_delta);
      ++failures;
    }
  }

  const std::string json =
      to_json(results, soak_clients, warmup_ms, measure_ms);
  if (!bench::JsonCheck(json).valid()) {
    std::fprintf(stderr, "FAIL: emitted JSON is invalid\n");
    return 1;
  }
  std::ofstream("BENCH_ingress.json") << json;
  std::printf("wrote BENCH_ingress.json\n");
  return failures == 0 ? 0 : 1;
}
