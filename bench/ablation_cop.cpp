// Ablations of COP's design decisions (beyond the paper's figures, but
// directly probing the §4 design points DESIGN.md calls out):
//
//   A. pillar count   — how many pillars does a 12-core replica want?
//      (the paper's "throughput can be increased just by adding pillars",
//      and its limits: execution stage + checkpoints as contention points)
//   B. checkpoint interval — the §4.2.2 shared-checkpointing rendezvous.
//   C. maximum batch size  — the classic batching trade-off (§2.2).
//   D. verification policy — MAC checks per request: COP's in-order
//      verification vs. the out-of-order pool of the SMaRt baseline
//      (§3.2), measured, not assumed.
#include <cstdio>

#include "support/paper_setup.hpp"

using namespace copbft::bench;

static void pillar_sweep() {
  std::printf("## A: pillar count (12 cores, batched)\n");
  std::printf("# pillars  kops_per_s  leader_MB_per_s\n");
  for (std::uint32_t pillars : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u}) {
    SimConfig cfg = paper_config(SimArch::kCop, 12, true);
    cfg.num_pillars = pillars;
    cfg.protocol.num_pillars = pillars;
    SimResult r = run_simulation(cfg);
    std::printf("%9u %11.1f %12.1f\n", pillars, r.throughput_ops / 1000.0,
                r.leader_tx_mbps);
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void checkpoint_sweep() {
  std::printf("## B: checkpoint interval (12 cores, batched)\n");
  std::printf("# interval  kops_per_s  stable_checkpoints\n");
  for (copbft::protocol::SeqNum interval : {100u, 500u, 1000u, 2000u, 5000u}) {
    SimConfig cfg = paper_config(SimArch::kCop, 12, true);
    cfg.protocol.checkpoint_interval = interval;
    cfg.protocol.window = 4 * interval;
    SimResult r = run_simulation(cfg);
    std::printf("%10llu %11.1f %14llu\n",
                static_cast<unsigned long long>(interval),
                r.throughput_ops / 1000.0,
                static_cast<unsigned long long>(
                    r.leader_core.checkpoints_stable));
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void batch_sweep() {
  std::printf("## C: maximum batch size (12 cores)\n");
  std::printf("# max_batch  kops_per_s  instances_per_s\n");
  for (std::uint32_t batch : {1u, 10u, 50u, 100u, 200u, 400u, 800u}) {
    SimConfig cfg = paper_config(SimArch::kCop, 12, true);
    cfg.protocol.max_batch = batch;
    SimResult r = run_simulation(cfg);
    double seconds = static_cast<double>(cfg.measure) / 1e9;
    std::printf("%10u %11.1f %15.0f\n", batch, r.throughput_ops / 1000.0,
                static_cast<double>(r.instances) / seconds);
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void drift_sweep() {
  std::printf("## E: drift bound (watermark window), 12 cores, batched\n");
  std::printf("# scheme    window  kops_per_s\n");
  for (bool rotate : {false, true}) {
    for (std::uint32_t window : {1000u, 1200u, 1600u, 2400u, 4000u}) {
      SimConfig cfg = paper_config(SimArch::kCop, 12, true);
      cfg.protocol.window = window;
      if (rotate) {
        cfg.protocol.leader_scheme = copbft::protocol::LeaderScheme::kRotating;
        cfg.reply_mode = copbft::core::ReplyMode::kOmitOne;
      }
      SimResult r = run_simulation(cfg);
      std::printf("%-9s %7u %11.1f\n", rotate ? "rotating" : "fixed", window,
                  r.throughput_ops / 1000.0);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
}

static void verification_policy() {
  std::printf("## D: verification policy — MAC checks per request\n");
  std::printf(
      "# system  verified_per_req  skipped_per_req  pre_verified_per_req\n");
  for (SimArch arch : {SimArch::kCop, SimArch::kTop, SimArch::kSmartStar}) {
    SimConfig cfg = paper_config(arch, 12, true);
    SimResult r = run_simulation(cfg);
    double reqs = static_cast<double>(r.leader_core.requests_delivered);
    if (reqs == 0) reqs = 1;
    std::printf("%-11s %13.3f %16.3f %19.3f\n", copbft::sim::arch_name(arch),
                static_cast<double>(r.leader_core.macs_verified +
                                    r.leader_core.request_macs_verified) /
                    reqs,
                static_cast<double>(r.leader_core.verifications_skipped +
                                    r.leader_core.request_verifications_skipped) /
                    reqs,
                static_cast<double>(r.leader_core.pre_verified) / reqs);
    std::fflush(stdout);
  }
  std::printf("\n");
}

int main() {
  print_header("COP ablations", "");
  pillar_sweep();
  checkpoint_sweep();
  batch_sweep();
  drift_sweep();
  verification_policy();
  return 0;
}
