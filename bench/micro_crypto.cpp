// Microbenchmarks of the cryptographic substrate on the build host.
//
// These measurements ground the simulator's cost model (sim/cost_model.hpp):
// the MAC/digest base and per-byte constants are this host's measured
// values scaled to the paper's Java-on-2013-Xeon environment (see
// EXPERIMENTS.md, "Cost-model calibration").
#include <benchmark/benchmark.h>

#include "crypto/authenticator.hpp"
#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "protocol/messages.hpp"

namespace {

using namespace copbft;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), Byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_HmacMac(benchmark::State& state) {
  crypto::SymmetricKey key = crypto::master_key_from_seed(7);
  Bytes data(static_cast<std::size_t>(state.range(0)), Byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_mac(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacMac)->Arg(64)->Arg(100)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AuthenticatorBuild3(benchmark::State& state) {
  auto crypto = crypto::make_real_crypto(7);
  Bytes data(static_cast<std::size_t>(state.range(0)), Byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::Authenticator::build(*crypto, 0, {1, 2, 3}, data));
  }
}
BENCHMARK(BM_AuthenticatorBuild3)->Arg(100)->Arg(1024);

void BM_AuthenticatorVerify(benchmark::State& state) {
  auto crypto = crypto::make_real_crypto(7);
  Bytes data(static_cast<std::size_t>(state.range(0)), Byte{0x5a});
  auto auth = crypto::Authenticator::build(*crypto, 0, {1, 2, 3}, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth.verify(*crypto, 0, 2, data));
  }
}
BENCHMARK(BM_AuthenticatorVerify)->Arg(100)->Arg(1024);

void BM_KeyStoreDerivation(benchmark::State& state) {
  crypto::KeyStore ks(crypto::master_key_from_seed(7));
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.key_for(0, 1000 + (i++ % 1024)));
  }
}
BENCHMARK(BM_KeyStoreDerivation);

void BM_BatchDigest(benchmark::State& state) {
  auto crypto = crypto::make_real_crypto(7);
  std::vector<protocol::Request> batch;
  for (int i = 0; i < state.range(0); ++i) {
    protocol::Request req;
    req.client = 1000 + static_cast<protocol::ClientId>(i % 16);
    req.id = static_cast<protocol::RequestId>(i);
    req.payload = Bytes(64, Byte{0x11});
    batch.push_back(std::move(req));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::batch_digest(*crypto, batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BatchDigest)->Arg(1)->Arg(20)->Arg(200);

void BM_NullCryptoDigest(benchmark::State& state) {
  auto crypto = crypto::make_null_crypto();
  Bytes data(256, Byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto->digest(data));
  }
}
BENCHMARK(BM_NullCryptoDigest);

}  // namespace

BENCHMARK_MAIN();
