// Calibration report: runs the simulator at the paper's anchor
// configurations and prints measured vs. published throughput, so drift
// in the cost model is visible at a glance. See EXPERIMENTS.md.
#include <cstdio>

#include "support/paper_setup.hpp"

namespace {

using namespace copbft::bench;

struct Anchor {
  const char* name;
  SimArch arch;
  std::uint32_t cores;
  bool batching;
  double paper_kops;
};

constexpr Anchor kAnchors[] = {
    {"COP      batched   1 core ", SimArch::kCop, 1, true, 190.0},
    {"COP      batched  12 cores", SimArch::kCop, 12, true, 1270.0},
    {"TOP      batched   1 core ", SimArch::kTop, 1, true, 69.0},
    {"TOP      batched  12 cores", SimArch::kTop, 12, true, 410.0},
    {"SMaRt*   batched   1 core ", SimArch::kSmartStar, 1, true, 84.0},
    {"SMaRt*   batched  12 cores", SimArch::kSmartStar, 12, true, 316.0},
    {"SMaRt    batched   1 core ", SimArch::kSmart, 1, true, 34.0},
    {"SMaRt    batched  12 cores", SimArch::kSmart, 12, true, 173.0},
    {"COP     unbatched  1 core ", SimArch::kCop, 1, false, 49.0},
    {"COP     unbatched 12 cores", SimArch::kCop, 12, false, 258.0},
    {"TOP     unbatched  1 core ", SimArch::kTop, 1, false, 14.0},
    {"TOP     unbatched 12 cores", SimArch::kTop, 12, false, 58.0},
    {"SMaRt   unbatched 12 cores", SimArch::kSmart, 12, false, 2.5},
};

}  // namespace

int main() {
  print_header("calibration anchors",
               "# system/config                paper_kops  sim_kops  ratio  "
               "leader_MB/s  leader_cpu");
  for (const Anchor& anchor : kAnchors) {
    SimConfig cfg = paper_config(anchor.arch, anchor.cores, anchor.batching);
    SimResult r = run_simulation(cfg);
    double kops = r.throughput_ops / 1000.0;
    std::printf("%s %10.1f %9.1f %6.2f %12.1f %11.2f\n", anchor.name,
                anchor.paper_kops, kops, kops / anchor.paper_kops,
                r.leader_tx_mbps, r.leader_cpu_utilization);
    std::fflush(stdout);
  }
  return 0;
}
