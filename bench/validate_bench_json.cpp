// CLI wrapper around the shared bench-JSON mini-validator: checks that
// every file given on the command line parses as structurally valid JSON
// (RFC 8259 subset — the same JsonCheck tests/metrics_test.cpp uses).
// CI's bench-smoke and scenario-smoke jobs run it over the emitted
// BENCH_*.json artifacts instead of carrying their own inline validators.
//
// Usage: validate_bench_json FILE... ; exit 0 iff all files are valid.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json_check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: validate_bench_json FILE...\n");
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    if (content.empty() || !copbft::bench::JsonCheck(content).valid()) {
      std::fprintf(stderr, "%s: INVALID JSON\n", argv[i]);
      ++bad;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", argv[i], content.size());
  }
  return bad == 0 ? 0 : 1;
}
