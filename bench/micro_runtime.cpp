// Throughput smoke measurement of the *threaded runtime* (real crypto,
// real queues, in-process transport) for all three architectures.
//
// This host has a single CPU core, so these numbers demonstrate
// functional end-to-end throughput, not multi-core scaling — that is the
// simulator's job (fig5*, fig8). Still useful: it exercises the exact
// code paths users of the library run, under sustained load.
#include <atomic>
#include <cstdio>

#include "app/null_service.hpp"
#include "client/client.hpp"
#include "common/time.hpp"
#include "core/cop_replica.hpp"
#include "core/smart_replica.hpp"
#include "core/top_replica.hpp"
#include "transport/inproc.hpp"

namespace {

using namespace copbft;

double run_arch(const char* name, int arch, std::uint32_t pillars,
                std::uint64_t duration_us) {
  transport::InprocNetwork network;
  auto crypto = crypto::make_real_crypto(3);

  core::ReplicaRuntimeConfig cfg;
  cfg.protocol.checkpoint_interval = 200;
  cfg.protocol.window = 800;
  cfg.protocol.view_change_timeout_us = 30'000'000;
  cfg.protocol.max_active_proposals = (arch == 2) ? 1 : 8;
  cfg.num_pillars = (arch == 0) ? pillars : 1;
  cfg.protocol.num_pillars = cfg.num_pillars;

  std::vector<std::unique_ptr<core::Replica>> replicas;
  for (protocol::ReplicaId r = 0; r < 4; ++r) {
    auto service = std::make_unique<app::NullService>(8);
    auto& endpoint = network.endpoint(protocol::replica_node(r));
    if (arch == 0) {
      replicas.push_back(std::make_unique<core::CopReplica>(
          r, cfg, std::move(service), *crypto, endpoint));
    } else if (arch == 1) {
      replicas.push_back(std::make_unique<core::TopReplica>(
          r, cfg, std::move(service), *crypto, endpoint));
    } else {
      replicas.push_back(std::make_unique<core::SmartReplica>(
          r, cfg, std::move(service), *crypto, endpoint));
    }
  }
  for (auto& replica : replicas) replica->start();

  std::vector<std::unique_ptr<client::Client>> clients;
  for (int i = 0; i < 4; ++i) {
    client::ClientConfig ccfg;
    ccfg.id = protocol::kClientIdBase + static_cast<protocol::ClientId>(i);
    ccfg.num_pillars = cfg.num_pillars;
    ccfg.window = 64;
    ccfg.retransmit_timeout_us = 2'000'000;
    auto& endpoint = network.endpoint(protocol::client_node(ccfg.id));
    clients.push_back(
        std::make_unique<client::Client>(ccfg, *crypto, endpoint));
    clients.back()->start();
  }

  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> completed{0};
  std::uint64_t start = now_us();

  // Closed loop: each completion immediately issues the next request.
  std::function<void(client::Client&)> pump = [&](client::Client& c) {
    c.invoke_async(Bytes{0x42}, 0, [&running, &completed, &pump, &c](
                                       Bytes, std::uint64_t) {
      ++completed;
      if (running.load(std::memory_order_relaxed)) pump(c);
    });
  };
  for (auto& c : clients)
    for (int k = 0; k < 32; ++k) pump(*c);

  while (now_us() - start < duration_us)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  running = false;
  for (auto& c : clients) c->drain();
  std::uint64_t elapsed = now_us() - start;
  double ops = static_cast<double>(completed.load()) * 1e6 /
               static_cast<double>(elapsed);

  for (auto& c : clients) c->stop();
  for (auto& replica : replicas) replica->stop();

  std::printf("%-6s %8.0f ops/s (%llu ops in %.2fs, host has 1 core)\n",
              name, ops, static_cast<unsigned long long>(completed.load()),
              static_cast<double>(elapsed) / 1e6);
  std::fflush(stdout);
  return ops;
}

}  // namespace

int main() {
  std::printf("# micro_runtime — threaded runtime end-to-end throughput\n");
  std::printf("# real HMAC-SHA256, in-process transport, 4 replicas, "
              "4 clients x window 64\n");
  std::uint64_t duration = 2'000'000;  // 2 s per architecture
  run_arch("COP", 0, 2, duration);
  run_arch("TOP", 1, 1, duration);
  run_arch("SMaRt", 2, 1, duration);
  return 0;
}
