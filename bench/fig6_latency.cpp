// Figure 6: response time with increasing workload and varying payload
// sizes for requests and replies (paper §5.2). 12 cores, batching on.
//
// 6a: 0-byte payloads; 6b: 1 KiB payloads. (The paper also measured
// 128 B and 4 KiB and reports them similar; we include them as extra
// series.) Expected shape: flat latency until saturation, then the
// hockey stick; saturation points ordered as in Figure 5b, BFT-SMaRt*
// collapsing onto BFT-SMaRt with large payloads because a single
// connection must carry each proposal.
#include <cstdio>

#include "support/bench_json.hpp"
#include "support/paper_setup.hpp"

int main() {
  using namespace copbft::bench;
  print_header(
      "Figure 6 — response time vs. throughput, varying payload",
      "# payload_B  system  clients  kops_per_s  mean_ms  p50_ms  p99_ms");

  const std::size_t kPayloads[] = {0, 128, 1024, 4096};
  const SimArch kSystems[] = {SimArch::kSmart, SimArch::kSmartStar,
                              SimArch::kTop, SimArch::kCop};
  const std::uint32_t kClients[] = {40, 100, 200, 400, 800, 1600, 2400, 3600};

  BenchJsonWriter json("fig6", /*batching=*/true, measure_ns());
  for (std::size_t payload : kPayloads) {
    // The paper's figures show 0 B and 1024 B; keep the other two series
    // short unless a full sweep is requested.
    bool headline = (payload == 0 || payload == 1024);
    if (!headline && !std::getenv("COPBFT_BENCH_FULL")) continue;

    for (SimArch arch : kSystems) {
      for (std::uint32_t clients : kClients) {
        SimConfig cfg = paper_config(arch, 12, /*batching=*/true);
        cfg.request_payload = payload;
        cfg.reply_payload = payload;
        cfg.clients = clients;
        cfg.client_window = 4;
        SimResult r = run_simulation(cfg);
        std::printf("%10zu  %-11s %7u %11.1f %8.2f %7.2f %7.2f\n", payload,
                    copbft::sim::arch_name(arch), clients, r.throughput_ops / 1000.0,
                    r.latency_mean_us / 1000.0,
                    static_cast<double>(r.latency_p50_us) / 1000.0,
                    static_cast<double>(r.latency_p99_us) / 1000.0);
        std::fflush(stdout);
        json.add(copbft::sim::arch_name(arch), /*cores=*/12, clients, payload,
                 r);
      }
      std::printf("\n");
    }
  }
  if (!json.write("BENCH_fig6.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig6.json\n");
    return 1;
  }
  return 0;
}
