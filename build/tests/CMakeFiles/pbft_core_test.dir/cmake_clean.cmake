file(REMOVE_RECURSE
  "CMakeFiles/pbft_core_test.dir/pbft_core_test.cpp.o"
  "CMakeFiles/pbft_core_test.dir/pbft_core_test.cpp.o.d"
  "pbft_core_test"
  "pbft_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
