file(REMOVE_RECURSE
  "CMakeFiles/byzantine_test.dir/byzantine_test.cpp.o"
  "CMakeFiles/byzantine_test.dir/byzantine_test.cpp.o.d"
  "byzantine_test"
  "byzantine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
