# Empty compiler generated dependencies file for byzantine_test.
# This may be replaced when dependencies are built.
