# Empty compiler generated dependencies file for retransmission_test.
# This may be replaced when dependencies are built.
