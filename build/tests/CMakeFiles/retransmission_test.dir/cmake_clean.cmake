file(REMOVE_RECURSE
  "CMakeFiles/retransmission_test.dir/retransmission_test.cpp.o"
  "CMakeFiles/retransmission_test.dir/retransmission_test.cpp.o.d"
  "retransmission_test"
  "retransmission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retransmission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
