# Empty compiler generated dependencies file for execution_stage_test.
# This may be replaced when dependencies are built.
