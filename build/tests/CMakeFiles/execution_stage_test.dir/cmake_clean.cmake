file(REMOVE_RECURSE
  "CMakeFiles/execution_stage_test.dir/execution_stage_test.cpp.o"
  "CMakeFiles/execution_stage_test.dir/execution_stage_test.cpp.o.d"
  "execution_stage_test"
  "execution_stage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
