# Empty compiler generated dependencies file for outbound_test.
# This may be replaced when dependencies are built.
