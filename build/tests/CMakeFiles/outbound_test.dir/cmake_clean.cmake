file(REMOVE_RECURSE
  "CMakeFiles/outbound_test.dir/outbound_test.cpp.o"
  "CMakeFiles/outbound_test.dir/outbound_test.cpp.o.d"
  "outbound_test"
  "outbound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outbound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
