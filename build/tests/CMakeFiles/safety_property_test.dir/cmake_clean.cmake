file(REMOVE_RECURSE
  "CMakeFiles/safety_property_test.dir/safety_property_test.cpp.o"
  "CMakeFiles/safety_property_test.dir/safety_property_test.cpp.o.d"
  "safety_property_test"
  "safety_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
