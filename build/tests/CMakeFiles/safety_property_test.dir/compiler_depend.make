# Empty compiler generated dependencies file for safety_property_test.
# This may be replaced when dependencies are built.
