file(REMOVE_RECURSE
  "CMakeFiles/protocol_sweep_test.dir/protocol_sweep_test.cpp.o"
  "CMakeFiles/protocol_sweep_test.dir/protocol_sweep_test.cpp.o.d"
  "protocol_sweep_test"
  "protocol_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
