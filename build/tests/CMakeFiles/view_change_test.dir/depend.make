# Empty dependencies file for view_change_test.
# This may be replaced when dependencies are built.
