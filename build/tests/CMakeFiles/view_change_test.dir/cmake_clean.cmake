file(REMOVE_RECURSE
  "CMakeFiles/view_change_test.dir/view_change_test.cpp.o"
  "CMakeFiles/view_change_test.dir/view_change_test.cpp.o.d"
  "view_change_test"
  "view_change_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_change_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
