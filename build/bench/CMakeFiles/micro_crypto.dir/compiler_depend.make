# Empty compiler generated dependencies file for micro_crypto.
# This may be replaced when dependencies are built.
