file(REMOVE_RECURSE
  "CMakeFiles/micro_crypto.dir/micro_crypto.cpp.o"
  "CMakeFiles/micro_crypto.dir/micro_crypto.cpp.o.d"
  "micro_crypto"
  "micro_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
