# Empty compiler generated dependencies file for fig5b_batched.
# This may be replaced when dependencies are built.
