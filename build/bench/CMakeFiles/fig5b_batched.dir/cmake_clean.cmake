file(REMOVE_RECURSE
  "CMakeFiles/fig5b_batched.dir/fig5b_batched.cpp.o"
  "CMakeFiles/fig5b_batched.dir/fig5b_batched.cpp.o.d"
  "fig5b_batched"
  "fig5b_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
