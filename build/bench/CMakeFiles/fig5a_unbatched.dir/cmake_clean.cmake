file(REMOVE_RECURSE
  "CMakeFiles/fig5a_unbatched.dir/fig5a_unbatched.cpp.o"
  "CMakeFiles/fig5a_unbatched.dir/fig5a_unbatched.cpp.o.d"
  "fig5a_unbatched"
  "fig5a_unbatched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_unbatched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
