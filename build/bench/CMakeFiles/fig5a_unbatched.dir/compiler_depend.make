# Empty compiler generated dependencies file for fig5a_unbatched.
# This may be replaced when dependencies are built.
