# Empty compiler generated dependencies file for fig6_latency.
# This may be replaced when dependencies are built.
