file(REMOVE_RECURSE
  "CMakeFiles/fig6_latency.dir/fig6_latency.cpp.o"
  "CMakeFiles/fig6_latency.dir/fig6_latency.cpp.o.d"
  "fig6_latency"
  "fig6_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
