# Empty compiler generated dependencies file for ablation_cop.
# This may be replaced when dependencies are built.
