file(REMOVE_RECURSE
  "CMakeFiles/ablation_cop.dir/ablation_cop.cpp.o"
  "CMakeFiles/ablation_cop.dir/ablation_cop.cpp.o.d"
  "ablation_cop"
  "ablation_cop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
