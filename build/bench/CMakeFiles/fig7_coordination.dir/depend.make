# Empty dependencies file for fig7_coordination.
# This may be replaced when dependencies are built.
