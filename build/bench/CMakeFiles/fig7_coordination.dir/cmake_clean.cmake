file(REMOVE_RECURSE
  "CMakeFiles/fig7_coordination.dir/fig7_coordination.cpp.o"
  "CMakeFiles/fig7_coordination.dir/fig7_coordination.cpp.o.d"
  "fig7_coordination"
  "fig7_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
