# Empty compiler generated dependencies file for fig8_limits.
# This may be replaced when dependencies are built.
