file(REMOVE_RECURSE
  "CMakeFiles/fig8_limits.dir/fig8_limits.cpp.o"
  "CMakeFiles/fig8_limits.dir/fig8_limits.cpp.o.d"
  "fig8_limits"
  "fig8_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
