
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/banking.cpp" "examples/CMakeFiles/banking.dir/banking.cpp.o" "gcc" "examples/CMakeFiles/banking.dir/banking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/cop_client.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cop_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cop_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/cop_app.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
