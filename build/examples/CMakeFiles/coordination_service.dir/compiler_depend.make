# Empty compiler generated dependencies file for coordination_service.
# This may be replaced when dependencies are built.
