file(REMOVE_RECURSE
  "CMakeFiles/coordination_service.dir/coordination_service.cpp.o"
  "CMakeFiles/coordination_service.dir/coordination_service.cpp.o.d"
  "coordination_service"
  "coordination_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
