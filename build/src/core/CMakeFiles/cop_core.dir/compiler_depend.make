# Empty compiler generated dependencies file for cop_core.
# This may be replaced when dependencies are built.
