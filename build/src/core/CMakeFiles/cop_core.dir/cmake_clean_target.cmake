file(REMOVE_RECURSE
  "libcop_core.a"
)
