file(REMOVE_RECURSE
  "CMakeFiles/cop_core.dir/cop_replica.cpp.o"
  "CMakeFiles/cop_core.dir/cop_replica.cpp.o.d"
  "CMakeFiles/cop_core.dir/execution_stage.cpp.o"
  "CMakeFiles/cop_core.dir/execution_stage.cpp.o.d"
  "CMakeFiles/cop_core.dir/outbound.cpp.o"
  "CMakeFiles/cop_core.dir/outbound.cpp.o.d"
  "CMakeFiles/cop_core.dir/outbound_sink.cpp.o"
  "CMakeFiles/cop_core.dir/outbound_sink.cpp.o.d"
  "CMakeFiles/cop_core.dir/pillar.cpp.o"
  "CMakeFiles/cop_core.dir/pillar.cpp.o.d"
  "CMakeFiles/cop_core.dir/smart_replica.cpp.o"
  "CMakeFiles/cop_core.dir/smart_replica.cpp.o.d"
  "CMakeFiles/cop_core.dir/top_replica.cpp.o"
  "CMakeFiles/cop_core.dir/top_replica.cpp.o.d"
  "libcop_core.a"
  "libcop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
