# Empty compiler generated dependencies file for cop_common.
# This may be replaced when dependencies are built.
