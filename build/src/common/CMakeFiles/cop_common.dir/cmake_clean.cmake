file(REMOVE_RECURSE
  "CMakeFiles/cop_common.dir/hex.cpp.o"
  "CMakeFiles/cop_common.dir/hex.cpp.o.d"
  "CMakeFiles/cop_common.dir/logging.cpp.o"
  "CMakeFiles/cop_common.dir/logging.cpp.o.d"
  "libcop_common.a"
  "libcop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
