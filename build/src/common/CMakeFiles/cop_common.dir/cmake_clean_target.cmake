file(REMOVE_RECURSE
  "libcop_common.a"
)
