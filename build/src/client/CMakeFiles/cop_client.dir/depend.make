# Empty dependencies file for cop_client.
# This may be replaced when dependencies are built.
