file(REMOVE_RECURSE
  "CMakeFiles/cop_client.dir/client.cpp.o"
  "CMakeFiles/cop_client.dir/client.cpp.o.d"
  "libcop_client.a"
  "libcop_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
