file(REMOVE_RECURSE
  "libcop_client.a"
)
