file(REMOVE_RECURSE
  "CMakeFiles/cop_sim.dir/machine.cpp.o"
  "CMakeFiles/cop_sim.dir/machine.cpp.o.d"
  "CMakeFiles/cop_sim.dir/simulation.cpp.o"
  "CMakeFiles/cop_sim.dir/simulation.cpp.o.d"
  "libcop_sim.a"
  "libcop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
