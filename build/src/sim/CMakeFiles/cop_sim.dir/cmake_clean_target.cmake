file(REMOVE_RECURSE
  "libcop_sim.a"
)
