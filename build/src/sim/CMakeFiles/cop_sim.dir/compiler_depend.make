# Empty compiler generated dependencies file for cop_sim.
# This may be replaced when dependencies are built.
