# Empty compiler generated dependencies file for cop_crypto.
# This may be replaced when dependencies are built.
