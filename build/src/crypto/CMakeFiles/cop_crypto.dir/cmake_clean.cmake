file(REMOVE_RECURSE
  "CMakeFiles/cop_crypto.dir/authenticator.cpp.o"
  "CMakeFiles/cop_crypto.dir/authenticator.cpp.o.d"
  "CMakeFiles/cop_crypto.dir/hmac.cpp.o"
  "CMakeFiles/cop_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/cop_crypto.dir/key_store.cpp.o"
  "CMakeFiles/cop_crypto.dir/key_store.cpp.o.d"
  "CMakeFiles/cop_crypto.dir/provider.cpp.o"
  "CMakeFiles/cop_crypto.dir/provider.cpp.o.d"
  "CMakeFiles/cop_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cop_crypto.dir/sha256.cpp.o.d"
  "libcop_crypto.a"
  "libcop_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
