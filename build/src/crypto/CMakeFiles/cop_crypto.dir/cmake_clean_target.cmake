file(REMOVE_RECURSE
  "libcop_crypto.a"
)
