
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/coordination.cpp" "src/app/CMakeFiles/cop_app.dir/coordination.cpp.o" "gcc" "src/app/CMakeFiles/cop_app.dir/coordination.cpp.o.d"
  "/root/repo/src/app/kv_store.cpp" "src/app/CMakeFiles/cop_app.dir/kv_store.cpp.o" "gcc" "src/app/CMakeFiles/cop_app.dir/kv_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cop_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
