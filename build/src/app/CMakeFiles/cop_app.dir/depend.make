# Empty dependencies file for cop_app.
# This may be replaced when dependencies are built.
