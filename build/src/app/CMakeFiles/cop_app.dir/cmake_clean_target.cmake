file(REMOVE_RECURSE
  "libcop_app.a"
)
