file(REMOVE_RECURSE
  "CMakeFiles/cop_app.dir/coordination.cpp.o"
  "CMakeFiles/cop_app.dir/coordination.cpp.o.d"
  "CMakeFiles/cop_app.dir/kv_store.cpp.o"
  "CMakeFiles/cop_app.dir/kv_store.cpp.o.d"
  "libcop_app.a"
  "libcop_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
