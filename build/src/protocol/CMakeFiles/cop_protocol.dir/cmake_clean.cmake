file(REMOVE_RECURSE
  "CMakeFiles/cop_protocol.dir/messages.cpp.o"
  "CMakeFiles/cop_protocol.dir/messages.cpp.o.d"
  "CMakeFiles/cop_protocol.dir/pbft_core.cpp.o"
  "CMakeFiles/cop_protocol.dir/pbft_core.cpp.o.d"
  "libcop_protocol.a"
  "libcop_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
