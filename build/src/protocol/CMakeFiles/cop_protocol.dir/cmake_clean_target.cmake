file(REMOVE_RECURSE
  "libcop_protocol.a"
)
