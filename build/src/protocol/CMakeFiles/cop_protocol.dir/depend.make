# Empty dependencies file for cop_protocol.
# This may be replaced when dependencies are built.
