# Empty compiler generated dependencies file for cop_transport.
# This may be replaced when dependencies are built.
