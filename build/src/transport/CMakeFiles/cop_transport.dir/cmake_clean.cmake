file(REMOVE_RECURSE
  "CMakeFiles/cop_transport.dir/inproc.cpp.o"
  "CMakeFiles/cop_transport.dir/inproc.cpp.o.d"
  "CMakeFiles/cop_transport.dir/tcp.cpp.o"
  "CMakeFiles/cop_transport.dir/tcp.cpp.o.d"
  "libcop_transport.a"
  "libcop_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
