file(REMOVE_RECURSE
  "libcop_transport.a"
)
