#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace coplint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

const std::vector<RuleInfo> kRules = {
    // determinism — replay and cross-replica agreement must not depend on
    // wall time, hashing seeds, or allocation addresses.
    {"det-clock", "determinism",
     "direct clock read outside common/time.hpp"},
    {"det-rng", "determinism",
     "non-deterministic randomness outside common/rng.hpp"},
    {"det-unordered-member", "determinism",
     "unordered container declared in a determinism scope"},
    {"det-unordered-iter", "determinism",
     "range-for over an unordered container"},
    {"det-pointer-key", "determinism",
     "pointer-keyed or address-hashed container"},
    // hot-path hygiene — inside COP_HOT functions.
    {"hot-container", "hotpath",
     "node-based container on a hot path"},
    {"hot-lock", "hotpath", "mutex acquisition on a hot path"},
    {"hot-block", "hotpath",
     "blocking call (sleep/wait/poll) on a hot path"},
    {"hot-iostream", "hotpath", "<iostream> in a hot-path file"},
    // annotation coverage — lock discipline must be visible to clang's
    // thread-safety analysis.
    {"ann-raw-mutex", "annotation",
     "raw std::mutex instead of the annotated copbft::Mutex"},
    {"ann-raw-cv", "annotation",
     "raw std::condition_variable instead of copbft::Cv"},
    {"ann-unguarded-mutex", "annotation",
     "Mutex member with no COP_GUARDED_BY coverage"},
    // lint — the suppression mechanism itself stays honest.
    {"lint-bad-suppression", "lint",
     "malformed suppression or unknown rule"},
    {"lint-unused-suppression", "lint",
     "suppression that matched no finding"},
};

const RuleInfo* rule_info(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return &r;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Emission: scoping + suppression matching in one place.

class Sink {
 public:
  Sink(const SourceFile& file, const Config& config,
       std::vector<Finding>& out)
      : file_(file), config_(config), out_(out) {}

  void emit(int line, const std::string& rule, std::string message) {
    const RuleInfo* info = rule_info(rule);
    if (!config_.rule_enabled(rule, info ? info->family : "", file_.path()))
      return;
    Finding f;
    f.file = file_.path();
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    for (const Suppression& s : file_.suppressions()) {
      if (!s.malformed && s.anchor_line == line && s.rule == rule) {
        s.used = true;
        f.suppressed = true;
        f.reason = s.reason;
        break;
      }
    }
    out_.push_back(std::move(f));
  }

 private:
  const SourceFile& file_;
  const Config& config_;
  std::vector<Finding>& out_;
};

// ---------------------------------------------------------------------------
// Shared scanning helpers.

struct TokenRule {
  const char* token;
  const char* what;  ///< short phrase naming the offender
};

void scan_tokens(const SourceFile& file, Sink& sink,
                 const std::string& rule,
                 const std::vector<TokenRule>& tokens,
                 const std::string& advice, bool hot_only) {
  const std::string& code = file.code();
  for (const TokenRule& t : tokens) {
    std::size_t pos = 0;
    while ((pos = find_token(code, t.token, pos)) != std::string::npos) {
      int line = file.line_of(pos);
      if (!hot_only || file.line_is_hot(line))
        sink.emit(line, rule, std::string(t.what) + ": " + advice);
      pos += std::string(t.token).size();
    }
  }
}

/// Skips a balanced <...> template argument list starting at `pos` (which
/// must point at '<'). Returns the offset one past the matching '>', or
/// npos. `first_arg` receives the depth-1 text of the first argument.
std::size_t skip_template_args(const std::string& code, std::size_t pos,
                               std::string* first_arg) {
  int depth = 0;
  bool in_first = true;
  for (std::size_t i = pos; i < code.size(); ++i) {
    char c = code[i];
    if (c == '<') {
      ++depth;
      if (depth == 1) continue;
    } else if (c == '>') {
      --depth;
      if (depth == 0) return i + 1;
      if (depth < 0) return std::string::npos;
    } else if (c == ',' && depth == 1) {
      in_first = false;
    } else if (c == ';' || c == '{') {
      return std::string::npos;  // not a template argument list after all
    }
    if (depth >= 1 && in_first && first_arg && !(depth == 1 && c == ','))
      first_arg->push_back(c);
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])))
    ++pos;
  return pos;
}

std::string read_ident(const std::string& code, std::size_t pos,
                       std::size_t* end) {
  std::size_t i = pos;
  while (i < code.size() && ident_char(code[i])) ++i;
  if (end) *end = i;
  return code.substr(pos, i - pos);
}

struct ContainerKind {
  const char* name;
  bool unordered;
  bool keyed;  ///< map/set family: first template arg is a key
};

const ContainerKind kContainers[] = {
    {"unordered_map", true, true},   {"unordered_multimap", true, true},
    {"unordered_set", true, true},   {"unordered_multiset", true, true},
    {"map", false, true},            {"multimap", false, true},
    {"set", false, true},            {"multiset", false, true},
    {"vector", false, false},        {"deque", false, false},
    {"list", false, false},          {"array", false, false},
};

}  // namespace

const std::vector<RuleInfo>& all_rules() { return kRules; }

bool known_rule(const std::string& id) { return rule_info(id) != nullptr; }

std::vector<ContainerDecl> parse_container_decls(const SourceFile& file) {
  std::vector<ContainerDecl> out;
  const std::string& code = file.code();
  for (const ContainerKind& kind : kContainers) {
    std::size_t pos = 0;
    while ((pos = find_token(code, kind.name, pos)) != std::string::npos) {
      std::size_t after = pos + std::string(kind.name).size();
      std::size_t lt = skip_ws(code, after);
      if (lt >= code.size() || code[lt] != '<') {
        pos = after;
        continue;
      }
      std::string first_arg;
      std::size_t close = skip_template_args(code, lt, &first_arg);
      if (close == std::string::npos) {
        pos = after;
        continue;
      }
      ContainerDecl decl;
      decl.line = file.line_of(pos);
      decl.unordered = kind.unordered;

      std::size_t i = skip_ws(code, close);
      // `std::map<K,V>::iterator` — a nested type, not a declaration.
      if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
        pos = after;
        continue;
      }
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        decl.is_ref = true;
        i = skip_ws(code, i + 1);
      }
      std::size_t end = i;
      decl.ident = read_ident(code, i, &end);
      if (!decl.ident.empty()) {
        // `std::vector<T> f(...)` declares a function, not a container.
        std::size_t next = skip_ws(code, end);
        if (next < code.size() && code[next] == '(') decl.is_ref = true;
        out.push_back(decl);
      }

      // Pointer-keyed containers order or hash by address — checked here
      // for every keyed container regardless of whether an identifier
      // follows (temporaries, typedefs, params all count).
      std::string key = trim(first_arg);
      if (kind.keyed && !key.empty() && key.back() == '*') {
        ContainerDecl ptr = decl.ident.empty() ? ContainerDecl{} : decl;
        ptr.line = file.line_of(pos);
        ptr.ident = "*";  // sentinel consumed by the det-pointer-key rule
        ptr.unordered = true;
        out.push_back(ptr);
      }
      pos = close;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// determinism

namespace {

void rule_det_clock(const SourceFile& file, Sink& sink) {
  scan_tokens(
      file, sink, "det-clock",
      {{"steady_clock", "steady_clock"},
       {"system_clock", "system_clock"},
       {"high_resolution_clock", "high_resolution_clock"},
       {"gettimeofday", "gettimeofday"},
       {"clock_gettime", "clock_gettime"},
       {"timespec_get", "timespec_get"},
       {"localtime", "localtime"},
       {"gmtime", "gmtime"}},
      "direct clock read in a determinism scope; take `now_us` as a "
      "parameter or use copbft::now_us() (common/time.hpp) so simulated "
      "and real time stay swappable",
      /*hot_only=*/false);
}

void rule_det_rng(const SourceFile& file, Sink& sink) {
  scan_tokens(
      file, sink, "det-rng",
      {{"random_device", "std::random_device"},
       {"mt19937", "std::mt19937"},
       {"mt19937_64", "std::mt19937_64"},
       {"minstd_rand", "minstd_rand"},
       {"default_random_engine", "default_random_engine"},
       {"rand", "rand()"},
       {"srand", "srand()"},
       {"drand48", "drand48()"},
       {"lrand48", "lrand48()"},
       {"random_shuffle", "std::random_shuffle"}},
      "non-deterministic randomness in a determinism scope; use "
      "copbft::Rng (common/rng.hpp), seeded from the scenario, so runs "
      "replay bit-identically",
      /*hot_only=*/false);
}

void rule_det_unordered(const SourceFile& file, const GlobalIndex& index,
                        Sink& sink) {
  const std::string& code = file.code();
  std::vector<ContainerDecl> decls = parse_container_decls(file);

  // File-local type table: a local declaration shadows the global index
  // (e.g. a local std::map named like an unordered member elsewhere).
  std::map<std::string, bool> local;  // ident -> unordered?
  for (const ContainerDecl& d : decls) {
    if (d.ident == "*") continue;
    auto [it, inserted] = local.emplace(d.ident, d.unordered);
    if (!inserted) it->second = it->second || d.unordered;
  }

  for (const ContainerDecl& d : decls) {
    if (d.ident == "*") {
      sink.emit(d.line, "det-pointer-key",
                "pointer-keyed container: ordering/hashing follows "
                "allocation addresses, which differ across runs and "
                "replicas — key by a stable id instead");
      continue;
    }
    if (d.unordered && !d.is_ref) {
      sink.emit(d.line, "det-unordered-member",
                "unordered container '" + d.ident +
                    "' declared in a determinism scope: iteration order "
                    "is unspecified — use an ordered container, or "
                    "suppress with a written lookup-only justification");
    }
  }

  // Range-for over anything known (here or anywhere in the scanned tree)
  // to be an unordered container.
  std::size_t pos = 0;
  while ((pos = find_token(code, "for", pos)) != std::string::npos) {
    std::size_t open = skip_ws(code, pos + 3);
    pos += 3;
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      char c = code[i];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool double_colon =
            (i > 0 && code[i - 1] == ':') ||
            (i + 1 < code.size() && code[i + 1] == ':');
        if (!double_colon) colon = i;
      }
      if (c == ';') break;  // classic for loop
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string range = code.substr(colon + 1, close - colon - 1);
    std::size_t j = 0;
    while (j < range.size()) {
      if (!ident_char(range[j])) {
        ++j;
        continue;
      }
      std::size_t end = j;
      while (end < range.size() && ident_char(range[end])) ++end;
      std::string ident = range.substr(j, end - j);
      j = end;
      if (ident == "auto" || ident == "const" || ident == "std") continue;
      auto it = local.find(ident);
      const bool unordered = it != local.end()
                                 ? it->second
                                 : index.unordered_idents.count(ident) > 0;
      if (unordered) {
        sink.emit(file.line_of(pos), "det-unordered-iter",
                  "range-for over unordered container '" + ident +
                      "': iteration order is unspecified and varies "
                      "across libraries and runs — iterate a sorted copy "
                      "or restructure");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hot-path hygiene

void rule_hotpath(const SourceFile& file, Sink& sink) {
  if (!file.has_hot_marker()) return;
  scan_tokens(file, sink, "hot-container",
              {{"std::map", "std::map"},
               {"std::multimap", "std::multimap"},
               {"std::list", "std::list"}},
              "node-based container inside a COP_HOT function: per-node "
              "allocation and pointer chasing on the fast path — use a "
              "vector, ring, or flat structure",
              /*hot_only=*/true);
  scan_tokens(file, sink, "hot-lock",
              {{"MutexLock", "MutexLock"},
               {"CvLock", "CvLock"},
               {"std::lock_guard", "std::lock_guard"},
               {"std::unique_lock", "std::unique_lock"},
               {"std::scoped_lock", "std::scoped_lock"},
               {"std::shared_lock", "std::shared_lock"}},
              "mutex acquisition inside a COP_HOT function: the fast "
              "path must stay lock-free — hand off through a queue or "
              "use single-writer atomics",
              /*hot_only=*/true);
  scan_tokens(
      file, sink, "hot-block",
      {{"sleep_for", "sleep_for"},
       {"sleep_until", "sleep_until"},
       {"sleep", "sleep"},
       {"usleep", "usleep"},
       {"nanosleep", "nanosleep"},
       {"wait", "wait"},
       {"wait_for", "wait_for"},
       {"wait_until", "wait_until"},
       {"epoll_wait", "epoll_wait"},
       {"poll", "poll"},
       {"select", "select"}},
      "blocking call inside a COP_HOT function: the fast path must never "
      "sleep or wait — blocking belongs in the stage loop, not per "
      "request",
      /*hot_only=*/true);
  scan_tokens(file, sink, "hot-iostream",
              {{"std::cout", "std::cout"},
               {"std::cerr", "std::cerr"},
               {"std::clog", "std::clog"},
               {"std::endl", "std::endl"}},
              "iostream inside a COP_HOT function: formatting plus a "
              "global lock per call — use the COP_LOG_* macros off the "
              "hot path",
              /*hot_only=*/true);
  // The include is flagged file-wide once any hot marker exists: pulling
  // <iostream> into a hot-path TU drags in static init and invites use.
  const std::string& code = file.code();
  std::size_t pos = 0;
  while ((pos = code.find("#include <iostream>", pos)) !=
         std::string::npos) {
    sink.emit(file.line_of(pos), "hot-iostream",
              "#include <iostream> in a file with COP_HOT functions: use "
              "the COP_LOG_* macros (common/logging.hpp) instead");
    pos += 1;
  }
}

// ---------------------------------------------------------------------------
// annotation coverage

void rule_annotations(const SourceFile& file, Sink& sink) {
  scan_tokens(file, sink, "ann-raw-mutex",
              {{"std::mutex", "std::mutex"},
               {"std::timed_mutex", "std::timed_mutex"},
               {"std::recursive_mutex", "std::recursive_mutex"},
               {"std::shared_mutex", "std::shared_mutex"}},
              "raw standard mutex: use the annotated copbft::Mutex "
              "(common/threading.hpp) so clang's thread-safety analysis "
              "sees the capability",
              /*hot_only=*/false);
  scan_tokens(file, sink, "ann-raw-cv",
              {{"std::condition_variable", "std::condition_variable"},
               {"std::condition_variable_any",
                "std::condition_variable_any"}},
              "raw condition variable: use copbft::Cv with CvLock "
              "(common/threading.hpp) so waits go through the annotated "
              "lock",
              /*hot_only=*/false);

  // Every Mutex member must guard something visible: a mutex with no
  // COP_GUARDED_BY/COP_REQUIRES coverage in its file protects nothing
  // the analysis can check.
  const std::string& code = file.code();
  static const char* kAnnotations[] = {
      "COP_GUARDED_BY",      "COP_PT_GUARDED_BY", "COP_REQUIRES",
      "COP_REQUIRES_SHARED", "COP_ACQUIRE",       "COP_RELEASE",
      "COP_EXCLUDES",        "COP_RETURN_CAPABILITY",
      "COP_ASSERT_CAPABILITY"};
  std::size_t pos = 0;
  while ((pos = find_token(code, "Mutex", pos)) != std::string::npos) {
    std::size_t i = skip_ws(code, pos + 5);
    pos += 5;
    std::size_t end = i;
    std::string ident = read_ident(code, i, &end);
    if (ident.empty() || ident == "mutable") continue;
    end = skip_ws(code, end);
    if (end >= code.size() || code[end] != ';') continue;  // not a member
    bool covered = false;
    for (const char* ann : kAnnotations) {
      std::size_t a = 0;
      while (!covered &&
             (a = code.find(std::string(ann) + "(", a)) !=
                 std::string::npos) {
        std::size_t open = a + std::string(ann).size();
        std::size_t close_paren = code.find(')', open);
        if (close_paren == std::string::npos) break;
        std::string args = code.substr(open + 1, close_paren - open - 1);
        if (find_token(args, ident) != std::string::npos) covered = true;
        a = close_paren;
      }
      if (covered) break;
    }
    if (!covered) {
      sink.emit(file.line_of(pos - 5), "ann-unguarded-mutex",
                "Mutex member '" + ident +
                    "' has no COP_GUARDED_BY/COP_REQUIRES coverage in "
                    "this file: annotate the data it protects so the "
                    "thread-safety analysis can check the discipline");
    }
  }
}

// ---------------------------------------------------------------------------
// lint: the suppression mechanism itself

void rule_lint(const SourceFile& file, Sink& sink) {
  for (const Suppression& s : file.suppressions()) {
    if (s.malformed) {
      sink.emit(s.comment_line, "lint-bad-suppression", s.reason);
    } else if (!known_rule(s.rule)) {
      sink.emit(s.comment_line, "lint-bad-suppression",
                "suppression names unknown rule '" + s.rule + "'");
    } else if (!s.used) {
      sink.emit(s.comment_line, "lint-unused-suppression",
                "suppression for '" + s.rule +
                    "' matched no finding — stale suppressions hide "
                    "future regressions; remove it");
    }
  }
}

}  // namespace

void run_rules(const SourceFile& file, const GlobalIndex& index,
               const Config& config, std::vector<Finding>& out) {
  Sink sink(file, config, out);
  rule_det_clock(file, sink);
  rule_det_rng(file, sink);
  rule_det_unordered(file, index, sink);
  rule_hotpath(file, sink);
  rule_annotations(file, sink);
  rule_lint(file, sink);  // last: sees which suppressions went unused
}

// ---------------------------------------------------------------------------
// Config

Config Config::parse(const std::string& text, std::string* error) {
  Config out;
  std::istringstream in(text);
  std::string line;
  std::string section;  // "" = everywhere
  int lineno = 0;
  auto normalize = [](std::string p) {
    if (p.rfind("./", 0) == 0) p = p.substr(2);
    while (!p.empty() && p.back() == '/') p.pop_back();
    if (p == ".") p.clear();
    return p;
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = normalize(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    std::istringstream ls(line);
    std::string verb, arg;
    ls >> verb >> arg;
    if (verb == "exclude" && !arg.empty()) {
      out.excludes_.push_back(normalize(arg));
    } else if ((verb == "enable" || verb == "disable") && !arg.empty()) {
      out.directives_.push_back(
          Directive{section, arg, verb == "enable"});
    } else if (error) {
      *error = "config line " + std::to_string(lineno) +
               ": expected [section], enable/disable <rule|family|all>, "
               "or exclude <prefix>: " +
               line;
      return out;
    }
  }
  // Longest prefix wins; ties resolved by file order (later wins). A
  // stable sort by length makes one forward pass implement exactly that.
  std::stable_sort(out.directives_.begin(), out.directives_.end(),
                   [](const Directive& a, const Directive& b) {
                     return a.prefix.size() < b.prefix.size();
                   });
  return out;
}

namespace {
bool prefix_match(const std::string& path, const std::string& prefix) {
  if (prefix.empty()) return true;
  if (path == prefix) return true;
  return path.size() > prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}
}  // namespace

bool Config::excluded(const std::string& path) const {
  for (const std::string& p : excludes_)
    if (prefix_match(path, p)) return true;
  return false;
}

bool Config::rule_enabled(const std::string& rule,
                          const std::string& family,
                          const std::string& path) const {
  bool state = true;
  for (const Directive& d : directives_) {
    if (!prefix_match(path, d.prefix)) continue;
    if (d.selector == "all" || d.selector == family || d.selector == rule)
      state = d.enable;
  }
  return state;
}

}  // namespace coplint
