// coplint — COP-aware static analysis for this repository.
//
//   coplint [--root DIR] [--config FILE] [--json FILE] [--fix-list]
//           [--expect FILE] [--baseline FILE] [--write-baseline FILE]
//           [--list-rules] PATH...
//
// PATHs are files or directories, relative to --root (default: cwd).
// Exit codes: 0 clean, 1 unsuppressed findings or a baseline/expect
// mismatch, 2 usage or I/O error.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "scan.hpp"

namespace fs = std::filesystem;
using coplint::Config;
using coplint::Finding;
using coplint::GlobalIndex;
using coplint::SourceFile;

namespace {

constexpr const char* kVersion = "1.0";

struct Options {
  std::string root = ".";
  std::string config_path;
  std::string json_path;
  std::string expect_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool fix_list = false;
  bool list_rules = false;
  std::vector<std::string> paths;
};

bool source_extension(const fs::path& p) {
  static const char* kExts[] = {".hpp", ".cpp", ".h", ".cc", ".hh", ".ipp"};
  std::string ext = p.extension().string();
  for (const char* e : kExts)
    if (ext == e) return true;
  return false;
}

bool skip_dir(const std::string& name) {
  return name == ".git" || name == "CMakeFiles" ||
         name.rfind("build", 0) == 0;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string canonical_line(const Finding& f) {
  std::string s = f.file + ":" + std::to_string(f.line) + ": " + f.rule +
                  ": " + f.message;
  if (f.suppressed) s += " [suppressed]";
  return s;
}

/// Tolerant extraction of {"key": <int>} pairs from the object following
/// `"section":` in hand-written or tool-written baseline JSON.
std::map<std::string, long> parse_count_object(const std::string& text,
                                               const std::string& section) {
  std::map<std::string, long> out;
  std::size_t pos = text.find("\"" + section + "\"");
  if (pos == std::string::npos) return out;
  std::size_t open = text.find('{', pos);
  if (open == std::string::npos) return out;
  std::size_t close = text.find('}', open);
  if (close == std::string::npos) return out;
  std::size_t i = open;
  while (i < close) {
    std::size_t k0 = text.find('"', i);
    if (k0 == std::string::npos || k0 >= close) break;
    std::size_t k1 = text.find('"', k0 + 1);
    if (k1 == std::string::npos || k1 >= close) break;
    std::string key = text.substr(k0 + 1, k1 - k0 - 1);
    std::size_t colon = text.find(':', k1);
    if (colon == std::string::npos || colon >= close) break;
    long value = 0;
    std::size_t v = colon + 1;
    while (v < close && std::isspace(static_cast<unsigned char>(text[v])))
      ++v;
    bool any = false;
    while (v < close && std::isdigit(static_cast<unsigned char>(text[v]))) {
      value = value * 10 + (text[v] - '0');
      ++v;
      any = true;
    }
    if (any) out[key] = value;
    i = v + 1;
  }
  return out;
}

std::string baseline_json(const std::map<std::string, long>& per_rule) {
  long total = 0;
  for (const auto& [rule, n] : per_rule) total += n;
  std::ostringstream out;
  out << "{\n  \"tool\": \"coplint-baseline\",\n  \"suppressed_total\": "
      << total << ",\n  \"suppressed_per_rule\": {";
  bool first = true;
  for (const auto& [rule, n] : per_rule) {
    out << (first ? "\n" : ",\n") << "    \"" << rule << "\": " << n;
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

int usage(const std::string& msg) {
  if (!msg.empty()) std::cerr << "coplint: " << msg << "\n";
  std::cerr << "usage: coplint [--root DIR] [--config FILE] [--json FILE]"
               " [--fix-list]\n               [--expect FILE] [--baseline"
               " FILE] [--write-baseline FILE]\n               "
               "[--list-rules] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(&opt.root)) return usage("--root needs a value");
    } else if (arg == "--config") {
      if (!value(&opt.config_path)) return usage("--config needs a value");
    } else if (arg == "--json") {
      if (!value(&opt.json_path)) return usage("--json needs a value");
    } else if (arg == "--expect") {
      if (!value(&opt.expect_path)) return usage("--expect needs a value");
    } else if (arg == "--baseline") {
      if (!value(&opt.baseline_path))
        return usage("--baseline needs a value");
    } else if (arg == "--write-baseline") {
      if (!value(&opt.write_baseline_path))
        return usage("--write-baseline needs a value");
    } else if (arg == "--fix-list") {
      opt.fix_list = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage("unknown option " + arg);
    } else {
      opt.paths.push_back(arg);
    }
  }

  if (opt.list_rules) {
    for (const coplint::RuleInfo& r : coplint::all_rules())
      std::cout << r.id << "  [" << r.family << "]  " << r.summary << "\n";
    return 0;
  }
  if (opt.paths.empty()) return usage("no paths given");

  std::error_code ec;
  fs::path root = fs::canonical(opt.root, ec);
  if (ec) return usage("bad --root " + opt.root + ": " + ec.message());

  Config config;
  if (!opt.config_path.empty()) {
    bool ok = false;
    std::string text = read_file(opt.config_path, &ok);
    if (!ok) text = read_file((root / opt.config_path).string(), &ok);
    if (!ok) return usage("cannot read config " + opt.config_path);
    std::string error;
    config = Config::parse(text, &error);
    if (!error.empty()) return usage(error);
  }

  // Collect files: sorted so output and JSON are byte-stable run to run.
  std::vector<std::string> rel_paths;
  for (const std::string& p : opt.paths) {
    fs::path abs = root / p;
    if (fs::is_regular_file(abs)) {
      rel_paths.push_back(fs::relative(abs, root).generic_string());
      continue;
    }
    if (!fs::is_directory(abs)) return usage("no such path: " + p);
    for (auto it = fs::recursive_directory_iterator(abs);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && skip_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && source_extension(it->path()))
        rel_paths.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()),
                  rel_paths.end());

  // Pass 1: load everything and build the cross-file index (identifiers
  // known to name unordered containers anywhere in the scanned tree).
  std::vector<SourceFile> files;
  GlobalIndex index;
  for (const std::string& rel : rel_paths) {
    if (config.excluded(rel)) continue;
    files.push_back(SourceFile::load((root / rel).string(), rel));
    for (const coplint::ContainerDecl& d :
         coplint::parse_container_decls(files.back())) {
      if (d.unordered && d.ident != "*") index.unordered_idents.insert(d.ident);
    }
  }

  // Pass 2: rules.
  std::vector<Finding> findings;
  for (const SourceFile& f : files) run_rules(f, index, config, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  long unsuppressed = 0, suppressed = 0;
  std::map<std::string, long> per_rule_suppressed;
  std::map<std::string, long> per_rule_unsuppressed;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      ++per_rule_suppressed[f.rule];
    } else {
      ++unsuppressed;
      ++per_rule_unsuppressed[f.rule];
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::binary);
    if (!out) return usage("cannot write " + opt.json_path);
    out << "{\n  \"tool\": \"coplint\",\n  \"version\": \"" << kVersion
        << "\",\n  \"root\": \"" << json_escape(root.generic_string())
        << "\",\n  \"files_scanned\": " << files.size()
        << ",\n  \"counts\": {\n    \"unsuppressed\": " << unsuppressed
        << ",\n    \"suppressed\": " << suppressed
        << ",\n    \"per_rule\": {";
    bool first = true;
    for (const auto& [rule, n] : per_rule_unsuppressed) {
      out << (first ? "\n" : ",\n") << "      \"" << rule << "\": " << n;
      first = false;
    }
    out << (first ? "" : "\n    ") << "},\n    \"per_rule_suppressed\": {";
    first = true;
    for (const auto& [rule, n] : per_rule_suppressed) {
      out << (first ? "\n" : ",\n") << "      \"" << rule << "\": " << n;
      first = false;
    }
    out << (first ? "" : "\n    ") << "}\n  },\n  \"findings\": [";
    first = true;
    for (const Finding& f : findings) {
      out << (first ? "\n" : ",\n") << "    {\"file\": \""
          << json_escape(f.file) << "\", \"line\": " << f.line
          << ", \"rule\": \"" << f.rule << "\", \"suppressed\": "
          << (f.suppressed ? "true" : "false") << ", \"message\": \""
          << json_escape(f.message) << "\"";
      if (f.suppressed)
        out << ", \"reason\": \"" << json_escape(f.reason) << "\"";
      out << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "]\n}\n";
  }

  if (!opt.write_baseline_path.empty()) {
    std::ofstream out(opt.write_baseline_path, std::ios::binary);
    if (!out) return usage("cannot write " + opt.write_baseline_path);
    out << baseline_json(per_rule_suppressed);
    std::cout << "coplint: wrote baseline (" << suppressed
              << " suppressed findings) to " << opt.write_baseline_path
              << "\n";
    return 0;
  }

  if (!opt.expect_path.empty()) {
    // Golden-file mode (fixture tests): compare canonical finding lines,
    // suppressed ones tagged, against the expected file. The exit code
    // reflects the comparison only.
    bool ok = false;
    std::string text = read_file(opt.expect_path, &ok);
    if (!ok) text = read_file((root / opt.expect_path).string(), &ok);
    if (!ok) return usage("cannot read expect file " + opt.expect_path);
    std::vector<std::string> expected;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && line[0] != '#') expected.push_back(line);
    }
    std::vector<std::string> got;
    got.reserve(findings.size());
    for (const Finding& f : findings) got.push_back(canonical_line(f));
    if (got == expected) {
      std::cout << "coplint: output matches " << opt.expect_path << " ("
                << got.size() << " findings)\n";
      return 0;
    }
    std::cerr << "coplint: findings do not match " << opt.expect_path
              << "\n--- expected (" << expected.size() << ") ---\n";
    for (const std::string& l : expected) std::cerr << l << "\n";
    std::cerr << "--- got (" << got.size() << ") ---\n";
    for (const std::string& l : got) std::cerr << l << "\n";
    return 1;
  }

  if (opt.fix_list) {
    for (const Finding& f : findings) {
      if (!f.suppressed)
        std::cout << f.file << ":" << f.line << ": " << f.rule << "\n";
    }
  } else {
    for (const Finding& f : findings) {
      if (!f.suppressed) std::cout << canonical_line(f) << "\n";
    }
  }

  int exit_code = unsuppressed > 0 ? 1 : 0;

  if (!opt.baseline_path.empty()) {
    // Suppression budget: per-rule suppressed counts may only go down.
    bool ok = false;
    std::string text = read_file(opt.baseline_path, &ok);
    if (!ok) text = read_file((root / opt.baseline_path).string(), &ok);
    if (!ok) return usage("cannot read baseline " + opt.baseline_path);
    std::map<std::string, long> budget =
        parse_count_object(text, "suppressed_per_rule");
    for (const auto& [rule, n] : per_rule_suppressed) {
      auto it = budget.find(rule);
      long allowed = it == budget.end() ? 0 : it->second;
      if (n > allowed) {
        std::cerr << "coplint: suppression budget exceeded for " << rule
                  << ": " << n << " suppressions, baseline allows "
                  << allowed
                  << " (fix the finding instead, or justify lowering the "
                     "bar in tools/coplint_baseline.json)\n";
        exit_code = 1;
      }
    }
  }

  std::cout << "coplint: " << files.size() << " files, " << unsuppressed
            << " findings, " << suppressed << " suppressed\n";
  return exit_code;
}
