#include "scan.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace coplint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

SourceFile SourceFile::load(const std::string& abs_path,
                            std::string rel_path) {
  SourceFile out;
  out.path_ = std::move(rel_path);

  std::ifstream in(abs_path, std::ios::binary);
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    raw.push_back(std::move(line));
  }

  out.strip(raw);
  out.parse_directives(raw);
  out.find_hot_regions();
  return out;
}

// Blank comments and the *contents* of string/char literals (quotes are
// kept so tokens do not merge across a removed literal). Handles //, /**/,
// escapes, and raw strings R"delim(...)delim".
void SourceFile::strip(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // raw-string closing delimiter: )delim"

  code_.clear();
  line_starts_.clear();
  for (const std::string& src : raw) {
    line_starts_.push_back(code_.size());
    std::string out(src.size(), ' ');
    std::size_t i = 0;
    const std::size_t n = src.size();
    // A // comment ends at the newline, so kCode is re-entered per line;
    // the other states persist across lines.
    bool line_comment = false;
    while (i < n) {
      char c = src[i];
      switch (state) {
        case State::kCode: {
          if (line_comment) {
            ++i;
            break;
          }
          if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            line_comment = true;
            i += 2;
            break;
          }
          if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
            break;
          }
          if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
              (i == 0 || !ident_char(src[i - 1]))) {
            std::size_t paren = src.find('(', i + 2);
            if (paren != std::string::npos) {
              raw_delim = ")" + src.substr(i + 2, paren - i - 2) + "\"";
              out[i] = 'R';
              out[i + 1] = '"';
              state = State::kRawString;
              i = paren + 1;
              break;
            }
          }
          if (c == '"') {
            out[i] = '"';
            state = State::kString;
            ++i;
            break;
          }
          if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
            ++i;
            break;
          }
          out[i] = c;
          ++i;
          break;
        }
        case State::kBlockComment:
          if (c == '*' && i + 1 < n && src[i + 1] == '/') {
            state = State::kCode;
            i += 2;
          } else {
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < n) {
            i += 2;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < n) {
            i += 2;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        case State::kRawString: {
          std::size_t close = src.find(raw_delim, i);
          if (close == std::string::npos) {
            i = n;
          } else {
            std::size_t end = close + raw_delim.size();
            out[end - 1] = '"';
            state = State::kCode;
            i = end;
          }
          break;
        }
      }
    }
    code_ += out;
    code_ += '\n';
  }
}

int SourceFile::line_of(std::size_t offset) const {
  auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<int>(it - line_starts_.begin());
}

std::string SourceFile::code_line(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > line_starts_.size())
    return "";
  std::size_t begin = line_starts_[line - 1];
  std::size_t end = static_cast<std::size_t>(line) < line_starts_.size()
                        ? line_starts_[line]
                        : code_.size();
  std::string s = code_.substr(begin, end - begin);
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

// Parses `COPLINT(...)` directives out of the *raw* text (they live in
// comments, which the stripped view blanks). Grammar:
//   COPLINT(allow:<rule>: <reason>)   suppress <rule> on the anchored line
//   COPLINT(hot-file)                 whole file is a hot path
// A suppression on a line with no code anchors to the next code line.
void SourceFile::parse_directives(const std::vector<std::string>& raw) {
  const std::string marker = "COPLINT(";
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& text = raw[li];
    std::size_t pos = 0;
    while ((pos = text.find(marker, pos)) != std::string::npos) {
      std::size_t body_begin = pos + marker.size();
      std::size_t close = text.find(')', body_begin);
      pos = body_begin;
      Suppression s;
      s.comment_line = static_cast<int>(li + 1);
      if (close == std::string::npos) {
        s.malformed = true;
        s.reason = "unterminated COPLINT(...) directive";
        suppressions_.push_back(std::move(s));
        continue;
      }
      std::string body = text.substr(body_begin, close - body_begin);
      if (trim(body) == "hot-file") {
        hot_file_ = true;
        continue;
      }
      if (body.rfind("allow:", 0) != 0) {
        s.malformed = true;
        s.reason = "unknown COPLINT directive (expected allow:<rule>: "
                   "<reason> or hot-file)";
        suppressions_.push_back(std::move(s));
        continue;
      }
      std::size_t rule_begin = 6;  // after "allow:"
      std::size_t colon = body.find(':', rule_begin);
      if (colon == std::string::npos) {
        s.malformed = true;
        s.reason = "suppression has no reason: COPLINT(allow:<rule>: "
                   "<reason>) — the reason is mandatory";
        suppressions_.push_back(std::move(s));
        continue;
      }
      s.rule = trim(body.substr(rule_begin, colon - rule_begin));
      s.reason = trim(body.substr(colon + 1));
      if (s.rule.empty() || s.reason.empty()) {
        s.malformed = true;
        s.reason = s.rule.empty()
                       ? "suppression names no rule"
                       : "suppression has an empty reason — the reason is "
                         "mandatory";
        suppressions_.push_back(std::move(s));
        continue;
      }
      // Anchor: this line if it carries code, otherwise the next line
      // that does.
      int anchor = static_cast<int>(li + 1);
      if (trim(code_line(anchor)).empty()) {
        for (std::size_t nl = li + 1; nl < raw.size(); ++nl) {
          if (!trim(code_line(static_cast<int>(nl + 1))).empty()) {
            anchor = static_cast<int>(nl + 1);
            break;
          }
        }
      }
      s.anchor_line = anchor;
      suppressions_.push_back(std::move(s));
    }
  }
}

// A COP_HOT marker followed by a function body `{...}` makes that body a
// hot region; a marker followed by `;` first is a plain declaration.
void SourceFile::find_hot_regions() {
  std::size_t pos = 0;
  while ((pos = find_token(code_, "COP_HOT", pos)) != std::string::npos) {
    std::size_t i = pos + 7;
    // Skip the #define in common/hot.hpp itself.
    std::string line = code_line(line_of(pos));
    if (line.find("#define") != std::string::npos) {
      pos = i;
      continue;
    }
    int depth = 0;
    std::size_t body_open = std::string::npos;
    for (; i < code_.size(); ++i) {
      char c = code_[i];
      if (c == ';' && depth == 0 && body_open == std::string::npos) break;
      if (c == '{') {
        if (body_open == std::string::npos) body_open = i;
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0 && body_open != std::string::npos) break;
      }
    }
    if (body_open != std::string::npos && i < code_.size()) {
      hot_regions_.push_back(
          HotRegion{line_of(pos), line_of(i)});
    }
    pos = i;
  }
}

bool SourceFile::line_is_hot(int line) const {
  if (hot_file_) return true;
  for (const HotRegion& r : hot_regions_) {
    if (line >= r.begin && line <= r.end) return true;
  }
  return false;
}

std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t after = pos + token.size();
    const bool right_ok = after >= code.size() || !ident_char(code[after]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

}  // namespace coplint
