// coplint scanner: loads a source file and prepares the views the rules
// run on.
//
// The tool is deliberately token/line-level (no libclang): every rule is a
// heuristic over a comment- and literal-stripped view of the code, which
// keeps the tool dependency-free and fast enough to run on every build.
// False positives are expected and handled by the suppression mechanism
// (docs/static_analysis.md) — a suppression must carry a written reason.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace coplint {

/// One `// COPLINT(allow:<rule>: <reason>)` directive.
struct Suppression {
  int comment_line = 0;  ///< 1-based line the comment sits on
  int anchor_line = 0;   ///< 1-based line the suppression applies to
  std::string rule;
  std::string reason;
  bool malformed = false;     ///< syntax error; `reason` holds the message
  mutable bool used = false;  ///< matched at least one finding
};

/// Inclusive 1-based line range of a COP_HOT function body.
struct HotRegion {
  int begin = 0;
  int end = 0;
};

class SourceFile {
 public:
  /// Loads `abs_path`, strips comments/literals, and parses COPLINT
  /// directives. `rel_path` is the path reported in findings.
  static SourceFile load(const std::string& abs_path, std::string rel_path);

  const std::string& path() const { return path_; }
  /// Code with comments and string/char literal contents blanked out,
  /// lines joined with '\n'. Offsets map back to lines via line_of().
  const std::string& code() const { return code_; }
  int line_of(std::size_t offset) const;
  /// The stripped text of one 1-based line.
  std::string code_line(int line) const;

  const std::vector<Suppression>& suppressions() const {
    return suppressions_;
  }
  std::vector<Suppression>& suppressions() { return suppressions_; }

  bool hot_file() const { return hot_file_; }
  const std::vector<HotRegion>& hot_regions() const { return hot_regions_; }
  /// True when `line` is inside a COP_HOT function (or the whole file is
  /// marked hot).
  bool line_is_hot(int line) const;
  /// True when the file contains at least one hot marker of either kind.
  bool has_hot_marker() const { return hot_file_ || !hot_regions_.empty(); }

 private:
  void strip(const std::vector<std::string>& raw);
  void parse_directives(const std::vector<std::string>& raw);
  void find_hot_regions();

  std::string path_;
  std::string code_;
  std::vector<std::size_t> line_starts_;  ///< offset of each line in code_
  std::vector<Suppression> suppressions_;
  std::vector<HotRegion> hot_regions_;
  bool hot_file_ = false;
};

/// Whole-word token search over stripped code: `token` may contain
/// identifier characters plus ':'; a match requires non-identifier
/// characters (or the text edge) on both sides. Returns the offset of the
/// first match at or after `from`, or npos.
std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0);

}  // namespace coplint
