// coplint rule engine: rule registry, per-directory scoping, and the
// three COP rule families (determinism, hot-path hygiene, annotation
// coverage) plus the lint family that keeps suppressions honest.
//
// Adding a rule: give it an id ("<family>-<name>"), add it to kRules, and
// implement it in rules.cpp against the SourceFile/GlobalIndex views. See
// docs/static_analysis.md.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "scan.hpp"

namespace coplint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< the suppression's reason, when suppressed
};

struct RuleInfo {
  const char* id;
  const char* family;  ///< determinism | hotpath | annotation | lint
  const char* summary;
};

/// Every rule the engine knows. Suppressions naming anything else are
/// themselves findings (lint-bad-suppression).
const std::vector<RuleInfo>& all_rules();
bool known_rule(const std::string& id);

/// Per-directory rule scoping. Directives come from a config file:
///   exclude <path-prefix>          skip these files entirely
///   [<path-prefix>]                start a section ("." = everywhere)
///   enable <rule|family|all>
///   disable <rule|family|all>
/// For each rule and file, the longest matching prefix wins (ties: later
/// directive wins). With no config every rule is enabled everywhere.
class Config {
 public:
  static Config parse(const std::string& text, std::string* error);

  bool excluded(const std::string& path) const;
  bool rule_enabled(const std::string& rule, const std::string& family,
                    const std::string& path) const;

 private:
  struct Directive {
    std::string prefix;    ///< "" matches everything
    std::string selector;  ///< rule id, family name, or "all"
    bool enable = true;
  };
  std::vector<Directive> directives_;
  std::vector<std::string> excludes_;
};

/// Cross-file knowledge built in a first pass over every scanned file.
struct GlobalIndex {
  /// Identifiers declared anywhere as std::unordered_{map,set}.
  std::set<std::string> unordered_idents;
};

/// Declarations of standard containers found in one file.
struct ContainerDecl {
  int line = 0;
  std::string ident;
  bool unordered = false;
  bool is_ref = false;  ///< reference/pointer declarator (param, alias)
};
std::vector<ContainerDecl> parse_container_decls(const SourceFile& file);

/// Runs every (scoped-in) rule over `file`, appending findings and
/// marking matched suppressions used. Suppression bookkeeping findings
/// (lint-*) are included.
void run_rules(const SourceFile& file, const GlobalIndex& index,
               const Config& config, std::vector<Finding>& out);

}  // namespace coplint
