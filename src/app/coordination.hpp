// Coordination service with a ZooKeeper-like API (paper §5.3).
//
// Clients coordinate through a hierarchical namespace of nodes carrying
// small data chunks. Unlike ZooKeeper, reads are strongly consistent: they
// are totally ordered like writes and executed in the single service
// thread — exactly the configuration the paper benchmarks in Figure 7.
//
// Deliberately NOT sharded for parallel execution: every operation walks
// the hierarchy (parent checks, child listings), so the inherited
// conservative Service::classify() — everything kGlobal — is the correct
// classification, and the execution stage runs this service strictly
// sequentially even when a worker pool is configured.
//
// Operation encoding:
//   request : [op u8 | path bytes | data bytes]
//   reply   : [status u8 | version u32 | payload bytes]
// For kChildren the payload is a '\n'-separated list of child names.
#pragma once

#include <map>
#include <set>
#include <string>

#include "app/service.hpp"

namespace copbft::app {

enum class CoordOpCode : std::uint8_t {
  kCreate = 1,
  kDelete = 2,
  kSetData = 3,
  kGetData = 4,
  kChildren = 5,
  kExists = 6,
};

enum class CoordStatus : std::uint8_t {
  kOk = 0,
  kNoNode = 1,
  kNodeExists = 2,
  kNotEmpty = 3,
  kBadRequest = 4,
  kNoParent = 5,
};

struct CoordOp {
  CoordOpCode op = CoordOpCode::kGetData;
  std::string path;
  Bytes data;

  bool is_read() const {
    return op == CoordOpCode::kGetData || op == CoordOpCode::kChildren ||
           op == CoordOpCode::kExists;
  }

  Bytes encode() const;
  static std::optional<CoordOp> decode(ByteSpan payload);
};

struct CoordResult {
  CoordStatus status = CoordStatus::kOk;
  std::uint32_t version = 0;
  Bytes payload;

  Bytes encode() const;
  static std::optional<CoordResult> decode(ByteSpan payload);
};

class CoordinationService final : public Service {
 public:
  explicit CoordinationService(const crypto::CryptoProvider& crypto);

  Bytes execute(const protocol::Request& request) override;
  crypto::Digest state_digest() const override { return state_digest_; }
  bool pre_validate(const protocol::Request& request) override;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct ZNode {
    Bytes data;
    std::uint32_t version = 0;
    std::set<std::string> children;  ///< child *names*, not full paths
  };

  CoordResult apply(const CoordOp& op);
  static bool valid_path(const std::string& path);
  static std::pair<std::string, std::string> split_path(
      const std::string& path);

  crypto::Digest node_digest(const std::string& path, const ZNode& node) const;
  void xor_into_state(const crypto::Digest& d);

  const crypto::CryptoProvider& crypto_;
  std::map<std::string, ZNode> nodes_;
  crypto::Digest state_digest_;
};

}  // namespace copbft::app
