#include "app/kv_store.hpp"

#include <algorithm>

#include "protocol/wire.hpp"

namespace copbft::app {

Bytes KvOp::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(to_bytes(key));
  w.bytes(value);
  return out;
}

std::optional<KvOp> KvOp::decode(ByteSpan payload) {
  protocol::WireReader r(payload);
  KvOp op;
  op.op = static_cast<KvOpCode>(r.u8());
  op.key = to_string(r.bytes());
  op.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  if (op.op != KvOpCode::kGet && op.op != KvOpCode::kPut &&
      op.op != KvOpCode::kDelete)
    return std::nullopt;
  return op;
}

Bytes KvResult::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(status));
  w.bytes(value);
  return out;
}

std::optional<KvResult> KvResult::decode(ByteSpan payload) {
  protocol::WireReader r(payload);
  KvResult res;
  res.status = static_cast<KvStatus>(r.u8());
  res.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return res;
}

crypto::Digest KvStore::entry_digest(const std::string& key,
                                     ByteSpan value) const {
  Bytes buf;
  protocol::WireWriter w(buf);
  w.bytes(to_bytes(key));
  w.bytes(value);
  return crypto_.digest(buf);
}

void KvStore::xor_into_state(const crypto::Digest& d) {
  for (std::size_t i = 0; i < state_digest_.bytes.size(); ++i)
    state_digest_.bytes[i] ^= d.bytes[i];
}

Bytes KvStore::execute(const protocol::Request& request) {
  auto op = KvOp::decode(request.payload);
  if (!op) return KvResult{KvStatus::kBadRequest, {}}.encode();

  switch (op->op) {
    case KvOpCode::kGet: {
      auto it = data_.find(op->key);
      if (it == data_.end()) return KvResult{KvStatus::kNotFound, {}}.encode();
      return KvResult{KvStatus::kOk, it->second}.encode();
    }
    case KvOpCode::kPut: {
      auto it = data_.find(op->key);
      if (it != data_.end()) {
        xor_into_state(entry_digest(op->key, it->second));
        it->second = op->value;
      } else {
        data_.emplace(op->key, op->value);
      }
      xor_into_state(entry_digest(op->key, op->value));
      return KvResult{KvStatus::kOk, {}}.encode();
    }
    case KvOpCode::kDelete: {
      auto it = data_.find(op->key);
      if (it == data_.end()) return KvResult{KvStatus::kNotFound, {}}.encode();
      xor_into_state(entry_digest(op->key, it->second));
      data_.erase(it);
      return KvResult{KvStatus::kOk, {}}.encode();
    }
  }
  return KvResult{KvStatus::kBadRequest, {}}.encode();
}

Bytes KvStore::snapshot() const {
  std::vector<const std::pair<const std::string, Bytes>*> entries;
  entries.reserve(data_.size());
  for (const auto& entry : data_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  Bytes out;
  protocol::WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto* entry : entries) {
    w.bytes(to_bytes(entry->first));
    w.bytes(entry->second);
  }
  return out;
}

bool KvStore::restore(ByteSpan snapshot, const crypto::Digest& expect) {
  protocol::WireReader r(snapshot);
  std::uint32_t n = r.u32();
  // Each entry occupies >= 8 bytes (two length prefixes); bound allocation.
  if (!r.ok() || r.remaining() / 8 < n) return false;

  std::unordered_map<std::string, Bytes> data;
  data.reserve(n);
  crypto::Digest digest;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = to_string(r.bytes());
    Bytes value = r.bytes();
    if (!r.ok()) return false;
    auto [it, inserted] = data.emplace(std::move(key), std::move(value));
    if (!inserted) return false;  // duplicate key: not a valid state
    const crypto::Digest e = entry_digest(it->first, it->second);
    for (std::size_t b = 0; b < digest.bytes.size(); ++b)
      digest.bytes[b] ^= e.bytes[b];
  }
  if (!r.at_end()) return false;
  if (digest != expect) return false;

  data_ = std::move(data);
  state_digest_ = digest;
  return true;
}

}  // namespace copbft::app
