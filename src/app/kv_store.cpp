#include "app/kv_store.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "protocol/wire.hpp"

namespace copbft::app {

Bytes KvOp::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(to_bytes(key));
  w.bytes(value);
  return out;
}

std::optional<KvOp> KvOp::decode(ByteSpan payload) {
  protocol::WireReader r(payload);
  KvOp op;
  op.op = static_cast<KvOpCode>(r.u8());
  op.key = to_string(r.bytes());
  op.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  if (op.op != KvOpCode::kGet && op.op != KvOpCode::kPut &&
      op.op != KvOpCode::kDelete)
    return std::nullopt;
  return op;
}

Bytes KvResult::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(status));
  w.bytes(value);
  return out;
}

std::optional<KvResult> KvResult::decode(ByteSpan payload) {
  protocol::WireReader r(payload);
  KvResult res;
  res.status = static_cast<KvStatus>(r.u8());
  res.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return res;
}

std::uint32_t KvStore::shard_of(const std::string& key) const {
  // FNV-1a: deterministic across replicas and processes (std::hash is
  // not guaranteed stable, and shard placement feeds classify()).
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % shards_.size());
}

crypto::Digest KvStore::entry_digest(const std::string& key,
                                     ByteSpan value) const {
  Bytes buf;
  protocol::WireWriter w(buf);
  w.bytes(to_bytes(key));
  w.bytes(value);
  return crypto_.digest(buf);
}

void KvStore::xor_into(crypto::Digest& acc, const crypto::Digest& d) {
  for (std::size_t i = 0; i < acc.bytes.size(); ++i)
    acc.bytes[i] ^= d.bytes[i];
}

void KvStore::assert_quiescent(const char* op) const {
  COP_INVARIANT(active_execs_.load(std::memory_order_acquire) == 0,
                "KvStore::%s needs a quiescent point but %lld execute() "
                "calls are in flight — the execution stage must drain its "
                "worker pool before checkpointing",
                op,
                static_cast<long long>(
                    active_execs_.load(std::memory_order_acquire)));
}

AccessClass KvStore::classify(const protocol::Request& request) const {
  auto op = KvOp::decode(request.payload);
  // Undecodable requests execute to kBadRequest without touching state,
  // but the conservative default costs nothing on a path this rare.
  if (!op) return AccessClass::global();
  return AccessClass::sharded(shard_of(op->key), op->op != KvOpCode::kGet);
}

crypto::Digest KvStore::state_digest() const {
  assert_quiescent("state_digest");
  crypto::Digest out;
  for (const Shard& s : shards_) xor_into(out, s.digest);
  return out;
}

std::size_t KvStore::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.data.size();
  return n;
}

Bytes KvStore::execute(const protocol::Request& request) {
  ExecutionScope in_flight(*this);
  auto op = KvOp::decode(request.payload);
  if (!op) return KvResult{KvStatus::kBadRequest, {}}.encode();
  Shard& shard = shards_[shard_of(op->key)];

  switch (op->op) {
    case KvOpCode::kGet: {
      auto it = shard.data.find(op->key);
      if (it == shard.data.end())
        return KvResult{KvStatus::kNotFound, {}}.encode();
      return KvResult{KvStatus::kOk, it->second}.encode();
    }
    case KvOpCode::kPut: {
      auto it = shard.data.find(op->key);
      if (it != shard.data.end()) {
        xor_into(shard.digest, entry_digest(op->key, it->second));
        it->second = op->value;
      } else {
        shard.data.emplace(op->key, op->value);
      }
      xor_into(shard.digest, entry_digest(op->key, op->value));
      return KvResult{KvStatus::kOk, {}}.encode();
    }
    case KvOpCode::kDelete: {
      auto it = shard.data.find(op->key);
      if (it == shard.data.end())
        return KvResult{KvStatus::kNotFound, {}}.encode();
      xor_into(shard.digest, entry_digest(op->key, it->second));
      shard.data.erase(it);
      return KvResult{KvStatus::kOk, {}}.encode();
    }
  }
  return KvResult{KvStatus::kBadRequest, {}}.encode();
}

Bytes KvStore::snapshot() const {
  assert_quiescent("snapshot");
  std::vector<const std::pair<const std::string, Bytes>*> entries;
  entries.reserve(size());
  for (const Shard& s : shards_)
    for (const auto& entry : s.data) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  Bytes out;
  protocol::WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto* entry : entries) {
    w.bytes(to_bytes(entry->first));
    w.bytes(entry->second);
  }
  return out;
}

bool KvStore::restore(ByteSpan snapshot, const crypto::Digest& expect) {
  assert_quiescent("restore");
  protocol::WireReader r(snapshot);
  std::uint32_t n = r.u32();
  // Each entry occupies >= 8 bytes (two length prefixes); bound allocation.
  if (!r.ok() || r.remaining() / 8 < n) return false;

  std::vector<Shard> shards(shards_.size());
  crypto::Digest digest;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = to_string(r.bytes());
    Bytes value = r.bytes();
    if (!r.ok()) return false;
    Shard& shard = shards[shard_of(key)];
    auto [it, inserted] = shard.data.emplace(std::move(key), std::move(value));
    if (!inserted) return false;  // duplicate key: not a valid state
    const crypto::Digest e = entry_digest(it->first, it->second);
    xor_into(shard.digest, e);
    xor_into(digest, e);
  }
  if (!r.at_end()) return false;
  if (digest != expect) return false;

  shards_ = std::move(shards);
  return true;
}

}  // namespace copbft::app
