// Replicated key-value store service.
//
// Operation encoding (see KvOp helpers):
//   request : [op u8 | key bytes | value bytes]
//   reply   : [status u8 | value bytes]
#pragma once

#include <string>
#include <unordered_map>

#include "app/service.hpp"

namespace copbft::app {

enum class KvOpCode : std::uint8_t { kGet = 1, kPut = 2, kDelete = 3 };
enum class KvStatus : std::uint8_t { kOk = 0, kNotFound = 1, kBadRequest = 2 };

struct KvOp {
  KvOpCode op = KvOpCode::kGet;
  std::string key;
  Bytes value;

  Bytes encode() const;
  static std::optional<KvOp> decode(ByteSpan payload);
};

struct KvResult {
  KvStatus status = KvStatus::kOk;
  Bytes value;

  Bytes encode() const;
  static std::optional<KvResult> decode(ByteSpan payload);
};

class KvStore final : public Service {
 public:
  explicit KvStore(const crypto::CryptoProvider& crypto) : crypto_(crypto) {}

  Bytes execute(const protocol::Request& request) override;
  crypto::Digest state_digest() const override { return state_digest_; }
  bool pre_validate(const protocol::Request& request) override {
    return KvOp::decode(request.payload).has_value();
  }
  /// Canonical (sorted-by-key) encoding: [n u32 | (key bytes, value
  /// bytes) * n]. Sorting is for reproducibility only — the XOR digest is
  /// order-independent, so verification does not depend on it.
  Bytes snapshot() const override;
  bool restore(ByteSpan snapshot, const crypto::Digest& expect) override;

  std::size_t size() const { return data_.size(); }
  /// Direct read access for tests / state comparison.
  const Bytes* lookup(const std::string& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }

 private:
  // The state digest is the XOR of one digest per live entry, so it is
  // order-independent and maintainable in O(1) per mutation.
  crypto::Digest entry_digest(const std::string& key, ByteSpan value) const;
  void xor_into_state(const crypto::Digest& d);

  const crypto::CryptoProvider& crypto_;
  std::unordered_map<std::string, Bytes> data_;
  crypto::Digest state_digest_;
};

}  // namespace copbft::app
