// Replicated key-value store service.
//
// Operation encoding (see KvOp helpers):
//   request : [op u8 | key bytes | value bytes]
//   reply   : [status u8 | value bytes]
//
// Sharded for parallel execution: the key space is partitioned into
// `num_shards` independent maps, each with its own XOR-of-entries digest.
// classify() routes every operation to the shard owning its key, so the
// execution stage may run operations on distinct shards concurrently —
// execute() is safe to call from multiple workers as long as calls are
// serialized *per shard*, which is exactly the Service::classify()
// contract. The global state digest is the XOR of the per-shard digests
// (order-independent, so its value is identical to the unsharded
// implementation), and snapshot() still emits the canonical globally
// key-sorted encoding: shard count is a private scheduling detail, not
// replicated state, and replicas with different shard counts agree.
#pragma once

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/service.hpp"

namespace copbft::app {

enum class KvOpCode : std::uint8_t { kGet = 1, kPut = 2, kDelete = 3 };
enum class KvStatus : std::uint8_t { kOk = 0, kNotFound = 1, kBadRequest = 2 };

struct KvOp {
  KvOpCode op = KvOpCode::kGet;
  std::string key;
  Bytes value;

  Bytes encode() const;
  static std::optional<KvOp> decode(ByteSpan payload);
};

struct KvResult {
  KvStatus status = KvStatus::kOk;
  Bytes value;

  Bytes encode() const;
  static std::optional<KvResult> decode(ByteSpan payload);
};

class KvStore final : public Service {
 public:
  static constexpr std::uint32_t kDefaultShards = 16;

  explicit KvStore(const crypto::CryptoProvider& crypto,
                   std::uint32_t num_shards = kDefaultShards)
      : crypto_(crypto), shards_(num_shards ? num_shards : 1) {}

  Bytes execute(const protocol::Request& request) override;
  /// XOR of the per-shard digests. Quiescent-point only (asserted): must
  /// not race an in-flight execute() — the checkpoint drain guarantees it.
  crypto::Digest state_digest() const override;
  AccessClass classify(const protocol::Request& request) const override;
  bool pre_validate(const protocol::Request& request) override {
    return KvOp::decode(request.payload).has_value();
  }
  /// Canonical (sorted-by-key) encoding: [n u32 | (key bytes, value
  /// bytes) * n]. Sorting is for reproducibility only — the XOR digest is
  /// order-independent, so verification does not depend on it.
  Bytes snapshot() const override;
  bool restore(ByteSpan snapshot, const crypto::Digest& expect) override;

  std::size_t size() const;
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Direct read access for tests / state comparison.
  const Bytes* lookup(const std::string& key) const {
    const Shard& s = shards_[shard_of(key)];
    auto it = s.data.find(key);
    return it == s.data.end() ? nullptr : &it->second;
  }

  /// RAII token marking one execution in flight; execute() enters one
  /// itself. snapshot()/state_digest() assert none are live — the
  /// explicit quiescent point the checkpoint drain must establish (and a
  /// deterministic handle for tests to make the invariant fire).
  class ExecutionScope {
   public:
    explicit ExecutionScope(const KvStore& store) : store_(store) {
      store_.active_execs_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ExecutionScope() {
      store_.active_execs_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ExecutionScope(const ExecutionScope&) = delete;
    ExecutionScope& operator=(const ExecutionScope&) = delete;

   private:
    const KvStore& store_;
  };

 private:
  friend class ExecutionScope;

  // One independent partition of the key space. The digest is the XOR of
  // one digest per live entry, so it is order-independent and
  // maintainable in O(1) per mutation; shard digests XOR into the global
  // digest the same way.
  struct Shard {
    std::unordered_map<std::string, Bytes> data;
    crypto::Digest digest;
  };

  std::uint32_t shard_of(const std::string& key) const;
  crypto::Digest entry_digest(const std::string& key, ByteSpan value) const;
  static void xor_into(crypto::Digest& acc, const crypto::Digest& d);
  void assert_quiescent(const char* op) const;

  const crypto::CryptoProvider& crypto_;
  std::vector<Shard> shards_;
  /// Number of execute() calls in flight, across all shards.
  mutable std::atomic<std::int64_t> active_execs_{0};
};

}  // namespace copbft::app
