#include "app/coordination.hpp"

#include "protocol/wire.hpp"

namespace copbft::app {

Bytes CoordOp::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(op));
  w.bytes(to_bytes(path));
  w.bytes(data);
  return out;
}

std::optional<CoordOp> CoordOp::decode(ByteSpan payload) {
  protocol::WireReader r(payload);
  CoordOp op;
  op.op = static_cast<CoordOpCode>(r.u8());
  op.path = to_string(r.bytes());
  op.data = r.bytes();
  if (!r.at_end()) return std::nullopt;
  if (static_cast<std::uint8_t>(op.op) < 1 ||
      static_cast<std::uint8_t>(op.op) > 6)
    return std::nullopt;
  return op;
}

Bytes CoordResult::encode() const {
  Bytes out;
  protocol::WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(status));
  w.u32(version);
  w.bytes(payload);
  return out;
}

std::optional<CoordResult> CoordResult::decode(ByteSpan data) {
  protocol::WireReader r(data);
  CoordResult res;
  res.status = static_cast<CoordStatus>(r.u8());
  res.version = r.u32();
  res.payload = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return res;
}

CoordinationService::CoordinationService(const crypto::CryptoProvider& crypto)
    : crypto_(crypto) {
  // The namespace root always exists.
  nodes_.emplace("/", ZNode{});
  xor_into_state(node_digest("/", nodes_.at("/")));
}

bool CoordinationService::valid_path(const std::string& path) {
  if (path.empty() || path[0] != '/') return false;
  if (path.size() > 1 && path.back() == '/') return false;
  if (path.find("//") != std::string::npos) return false;
  if (path.find('\n') != std::string::npos) return false;
  return true;
}

std::pair<std::string, std::string> CoordinationService::split_path(
    const std::string& path) {
  auto pos = path.rfind('/');
  std::string parent = (pos == 0) ? "/" : path.substr(0, pos);
  return {parent, path.substr(pos + 1)};
}

bool CoordinationService::pre_validate(const protocol::Request& request) {
  auto op = CoordOp::decode(request.payload);
  return op && valid_path(op->path);
}

crypto::Digest CoordinationService::node_digest(const std::string& path,
                                                const ZNode& node) const {
  Bytes buf;
  protocol::WireWriter w(buf);
  w.bytes(to_bytes(path));
  w.u32(node.version);
  w.bytes(node.data);
  return crypto_.digest(buf);
}

void CoordinationService::xor_into_state(const crypto::Digest& d) {
  for (std::size_t i = 0; i < state_digest_.bytes.size(); ++i)
    state_digest_.bytes[i] ^= d.bytes[i];
}

Bytes CoordinationService::execute(const protocol::Request& request) {
  auto op = CoordOp::decode(request.payload);
  if (!op || !valid_path(op->path))
    return CoordResult{CoordStatus::kBadRequest, 0, {}}.encode();
  return apply(*op).encode();
}

CoordResult CoordinationService::apply(const CoordOp& op) {
  switch (op.op) {
    case CoordOpCode::kCreate: {
      if (op.path == "/") return {CoordStatus::kNodeExists, 0, {}};
      if (nodes_.contains(op.path)) return {CoordStatus::kNodeExists, 0, {}};
      auto [parent_path, name] = split_path(op.path);
      auto parent = nodes_.find(parent_path);
      if (parent == nodes_.end()) return {CoordStatus::kNoParent, 0, {}};

      // Parent's child set changes its identity digest via the version.
      xor_into_state(node_digest(parent_path, parent->second));
      parent->second.children.insert(name);
      ++parent->second.version;
      xor_into_state(node_digest(parent_path, parent->second));

      ZNode node;
      node.data = op.data;
      xor_into_state(node_digest(op.path, node));
      nodes_.emplace(op.path, std::move(node));
      return {CoordStatus::kOk, 0, {}};
    }
    case CoordOpCode::kDelete: {
      if (op.path == "/") return {CoordStatus::kBadRequest, 0, {}};
      auto it = nodes_.find(op.path);
      if (it == nodes_.end()) return {CoordStatus::kNoNode, 0, {}};
      if (!it->second.children.empty()) return {CoordStatus::kNotEmpty, 0, {}};

      auto [parent_path, name] = split_path(op.path);
      auto parent = nodes_.find(parent_path);
      if (parent != nodes_.end()) {
        xor_into_state(node_digest(parent_path, parent->second));
        parent->second.children.erase(name);
        ++parent->second.version;
        xor_into_state(node_digest(parent_path, parent->second));
      }
      xor_into_state(node_digest(op.path, it->second));
      nodes_.erase(it);
      return {CoordStatus::kOk, 0, {}};
    }
    case CoordOpCode::kSetData: {
      auto it = nodes_.find(op.path);
      if (it == nodes_.end()) return {CoordStatus::kNoNode, 0, {}};
      xor_into_state(node_digest(op.path, it->second));
      it->second.data = op.data;
      ++it->second.version;
      xor_into_state(node_digest(op.path, it->second));
      return {CoordStatus::kOk, it->second.version, {}};
    }
    case CoordOpCode::kGetData: {
      auto it = nodes_.find(op.path);
      if (it == nodes_.end()) return {CoordStatus::kNoNode, 0, {}};
      return {CoordStatus::kOk, it->second.version, it->second.data};
    }
    case CoordOpCode::kChildren: {
      auto it = nodes_.find(op.path);
      if (it == nodes_.end()) return {CoordStatus::kNoNode, 0, {}};
      Bytes list;
      for (const auto& child : it->second.children) {
        if (!list.empty()) list.push_back('\n');
        append(list, child);
      }
      return {CoordStatus::kOk, it->second.version, std::move(list)};
    }
    case CoordOpCode::kExists: {
      auto it = nodes_.find(op.path);
      if (it == nodes_.end()) return {CoordStatus::kNoNode, 0, {}};
      return {CoordStatus::kOk, it->second.version, {}};
    }
  }
  return {CoordStatus::kBadRequest, 0, {}};
}

}  // namespace copbft::app
