// Deterministic replicated-service interface (state-machine replication).
//
// The execution stage invokes execute() strictly in total order; any two
// non-faulty replicas that executed the same prefix must hold identical
// state and return identical results. state_digest() feeds checkpointing
// and must be cheap — implementations maintain it incrementally (the paper
// notes services can pre-compute parts of the checkpoint hash, §2.2).
//
// pre_validate()/post_process() are COP's offloading hooks (§4.3.1): they
// run inside the pillar, outside the total order, and must not touch
// ordered state.
#pragma once

#include "common/bytes.hpp"
#include "crypto/provider.hpp"
#include "protocol/messages.hpp"

namespace copbft::app {

/// Conflict classification of one ordered request (parallel execution of
/// non-conflicting requests — the P-SMR playbook: classify by read/write
/// key set after ordering, parallelize independence, serialize conflicts).
///
/// `kGlobal` means the request may read or write arbitrary state: the
/// execution stage runs it alone, as a barrier that drains the worker
/// pool first. `kShard` names the single state shard the request touches;
/// requests on distinct shards commute and may execute concurrently,
/// while same-shard requests keep their total-order FIFO. A request that
/// touches more than one shard must classify as kGlobal — correctness
/// never depends on a service classifying precisely, only on it never
/// under-classifying (claiming a shard it escapes).
struct AccessClass {
  enum class Scope : std::uint8_t { kGlobal, kShard };
  Scope scope = Scope::kGlobal;
  std::uint32_t shard = 0;  ///< valid iff scope == kShard
  bool write = true;        ///< read/write bit of the key set (conservative)

  static AccessClass global() { return {}; }
  static AccessClass sharded(std::uint32_t shard, bool write) {
    return AccessClass{Scope::kShard, shard, write};
  }
};

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one ordered request; returns the reply payload.
  ///
  /// Thread contract: calls are serialized per shard. Two concurrent
  /// calls only ever happen for requests this service classified onto
  /// *different* shards (see classify()); a kGlobal request is never
  /// concurrent with anything.
  virtual Bytes execute(const protocol::Request& request) = 0;

  /// Tags a request with the state it may touch (read/write key set,
  /// collapsed to a shard id). Runs on the execution stage thread, in
  /// total order, before dispatch; must be deterministic and cheap. The
  /// default — every request is global — is the conservative fallback
  /// that keeps unknown services (CoordinationService, baselines)
  /// strictly sequential.
  virtual AccessClass classify(const protocol::Request&) const {
    return AccessClass::global();
  }

  /// Incrementally maintained digest over the full service state. Called
  /// only at a quiescent point: the execution stage drains every
  /// outstanding worker before checkpointing, so no execute() is in
  /// flight (sharded services may assert this — see KvStore).
  virtual crypto::Digest state_digest() const = 0;

  /// Offloaded pre-execution (parse/validate), run in the pillar before
  /// ordering completes enforcement; false rejects the request early.
  virtual bool pre_validate(const protocol::Request&) { return true; }

  /// Offloaded post-processing of a reply (e.g. final formatting), run in
  /// the pillar after the ordered part produced `result`.
  virtual Bytes post_process(const protocol::Request&, Bytes result) {
    return result;
  }

  /// Serializes the full service state for checkpoint-based state
  /// transfer. The encoding is the service's own; the only contract is
  /// restore(snapshot(), state_digest()) == true on a fresh instance.
  /// The default (empty + restore() == false) marks a service that cannot
  /// be transferred; laggard replicas of such a service stay stranded.
  virtual Bytes snapshot() const { return {}; }

  /// Replaces the state with the decoded `snapshot` iff the restored
  /// state's digest equals `expect`. Must be atomic: parse and verify into
  /// scratch state first, swap last, so a Byzantine peer's bad snapshot
  /// never leaves partial state behind. Returns false on parse failure or
  /// digest mismatch, leaving the current state untouched.
  virtual bool restore(ByteSpan, const crypto::Digest&) { return false; }
};

}  // namespace copbft::app
