// Deterministic replicated-service interface (state-machine replication).
//
// The execution stage invokes execute() strictly in total order; any two
// non-faulty replicas that executed the same prefix must hold identical
// state and return identical results. state_digest() feeds checkpointing
// and must be cheap — implementations maintain it incrementally (the paper
// notes services can pre-compute parts of the checkpoint hash, §2.2).
//
// pre_validate()/post_process() are COP's offloading hooks (§4.3.1): they
// run inside the pillar, outside the total order, and must not touch
// ordered state.
#pragma once

#include "common/bytes.hpp"
#include "crypto/provider.hpp"
#include "protocol/messages.hpp"

namespace copbft::app {

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one ordered request; returns the reply payload.
  virtual Bytes execute(const protocol::Request& request) = 0;

  /// Incrementally maintained digest over the full service state.
  virtual crypto::Digest state_digest() const = 0;

  /// Offloaded pre-execution (parse/validate), run in the pillar before
  /// ordering completes enforcement; false rejects the request early.
  virtual bool pre_validate(const protocol::Request&) { return true; }

  /// Offloaded post-processing of a reply (e.g. final formatting), run in
  /// the pillar after the ordered part produced `result`.
  virtual Bytes post_process(const protocol::Request&, Bytes result) {
    return result;
  }

  /// Serializes the full service state for checkpoint-based state
  /// transfer. The encoding is the service's own; the only contract is
  /// restore(snapshot(), state_digest()) == true on a fresh instance.
  /// The default (empty + restore() == false) marks a service that cannot
  /// be transferred; laggard replicas of such a service stay stranded.
  virtual Bytes snapshot() const { return {}; }

  /// Replaces the state with the decoded `snapshot` iff the restored
  /// state's digest equals `expect`. Must be atomic: parse and verify into
  /// scratch state first, swap last, so a Byzantine peer's bad snapshot
  /// never leaves partial state behind. Returns false on parse failure or
  /// digest mismatch, leaving the current state untouched.
  virtual bool restore(ByteSpan, const crypto::Digest&) { return false; }
};

}  // namespace copbft::app
