// Microbenchmark service: no application work, configurable reply size.
// This is the paper's "service implementation that does not perform
// calculations but answers totally ordered requests with replies of
// configurable size" (§5.1).
//
// Sharded so the parallel-execution benchmarks exercise the worker pool:
// the only state is per-shard bookkeeping (execution count + last key),
// each request touches exactly the shard its key hashes to, and the
// digest folds the shards in index order. Because the per-shard values
// depend only on the shard's own FIFO subsequence, any conflict-respecting
// parallel schedule reproduces the sequential digest exactly.
#pragma once

#include <algorithm>
#include <vector>

#include "app/service.hpp"

namespace copbft::app {

class NullService final : public Service {
 public:
  static constexpr std::uint32_t kNumShards = 16;

  explicit NullService(std::size_t reply_size = 0)
      : reply_(reply_size, Byte{0xab}), shards_(kNumShards) {}

  Bytes execute(const protocol::Request& request) override {
    ShardState& s = shards_[shard_of(request)];
    ++s.executed;
    s.last_key = request.key();
    return reply_;
  }

  AccessClass classify(const protocol::Request& request) const override {
    return AccessClass::sharded(shard_of(request), /*write=*/true);
  }

  crypto::Digest state_digest() const override {
    // State is per-shard (count, last key); fold it directly (FNV-1a) —
    // cheap, and identical across replicas that executed the same
    // per-shard subsequences.
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
      }
    };
    for (const ShardState& s : shards_) {
      mix(s.executed);
      mix(s.last_key);
    }
    crypto::Digest d;
    for (int i = 0; i < 8; ++i)
      d.bytes[static_cast<std::size_t>(i)] = static_cast<Byte>(h >> (8 * i));
    return d;
  }

  std::uint64_t executed() const {
    std::uint64_t n = 0;
    for (const ShardState& s : shards_) n += s.executed;
    return n;
  }

  Bytes snapshot() const override {
    Bytes out(16 * shards_.size());
    std::size_t at = 0;
    for (const ShardState& s : shards_) {
      for (int i = 0; i < 8; ++i)
        out[at++] = static_cast<Byte>(s.executed >> (8 * i));
      for (int i = 0; i < 8; ++i)
        out[at++] = static_cast<Byte>(s.last_key >> (8 * i));
    }
    return out;
  }

  bool restore(ByteSpan snapshot, const crypto::Digest& expect) override {
    if (snapshot.size() != 16 * shards_.size()) return false;
    std::vector<ShardState> shards(shards_.size());
    std::size_t at = 0;
    for (ShardState& s : shards) {
      s.executed = 0;
      s.last_key = 0;
      for (int i = 0; i < 8; ++i)
        s.executed |=
            static_cast<std::uint64_t>(snapshot[at++]) << (8 * i);
      for (int i = 0; i < 8; ++i)
        s.last_key |=
            static_cast<std::uint64_t>(snapshot[at++]) << (8 * i);
    }
    // Verify against the digest before swapping, so a bad snapshot never
    // leaves partial state behind.
    std::vector<ShardState> saved = std::move(shards_);
    shards_ = std::move(shards);
    if (state_digest() != expect) {
      shards_ = std::move(saved);
      return false;
    }
    return true;
  }

 private:
  struct ShardState {
    std::uint64_t executed = 0;
    std::uint64_t last_key = 0;
  };

  std::uint32_t shard_of(const protocol::Request& request) const {
    return static_cast<std::uint32_t>(request.key() % shards_.size());
  }

  Bytes reply_;
  std::vector<ShardState> shards_;
};

}  // namespace copbft::app
