// Microbenchmark service: no application work, configurable reply size.
// This is the paper's "service implementation that does not perform
// calculations but answers totally ordered requests with replies of
// configurable size" (§5.1).
#pragma once

#include <algorithm>

#include "app/service.hpp"

namespace copbft::app {

class NullService final : public Service {
 public:
  explicit NullService(std::size_t reply_size = 0)
      : reply_(reply_size, Byte{0xab}) {}

  Bytes execute(const protocol::Request& request) override {
    ++executed_;
    last_key_ = request.key();
    return reply_;
  }

  crypto::Digest state_digest() const override {
    // State is just the execution counter; fold it into a digest directly.
    crypto::Digest d;
    for (int i = 0; i < 8; ++i) {
      d.bytes[static_cast<std::size_t>(i)] =
          static_cast<Byte>(executed_ >> (8 * i));
      d.bytes[static_cast<std::size_t>(8 + i)] =
          static_cast<Byte>(last_key_ >> (8 * i));
    }
    return d;
  }

  std::uint64_t executed() const { return executed_; }

  Bytes snapshot() const override {
    Bytes out(16);
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(i)] =
          static_cast<Byte>(executed_ >> (8 * i));
      out[static_cast<std::size_t>(8 + i)] =
          static_cast<Byte>(last_key_ >> (8 * i));
    }
    return out;
  }

  bool restore(ByteSpan snapshot, const crypto::Digest& expect) override {
    if (snapshot.size() != 16) return false;
    std::uint64_t executed = 0;
    std::uint64_t last_key = 0;
    for (int i = 0; i < 8; ++i) {
      executed |= static_cast<std::uint64_t>(snapshot[static_cast<std::size_t>(i)])
                  << (8 * i);
      last_key |=
          static_cast<std::uint64_t>(snapshot[static_cast<std::size_t>(8 + i)])
          << (8 * i);
    }
    // The digest is a direct fold of (executed, last_key): the snapshot
    // bytes coincide with the first 16 digest bytes by construction.
    crypto::Digest check;
    std::copy(snapshot.begin(), snapshot.end(), check.bytes.begin());
    if (check != expect) return false;
    executed_ = executed;
    last_key_ = last_key;
    return true;
  }

 private:
  Bytes reply_;
  std::uint64_t executed_ = 0;
  std::uint64_t last_key_ = 0;
};

}  // namespace copbft::app
