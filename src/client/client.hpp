// Client library: asynchronous invocation with a bounded window, reply
// quorum matching, MAC verification and retransmission.
//
// Matches the paper's load-generation model (§5, "The Setup"): clients
// issue a limited number of asynchronous requests and measure the time
// from sending a request to obtaining a *stable* result, i.e. f+1 matching
// replies from distinct replicas.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <unordered_map>

#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "crypto/provider.hpp"
#include "protocol/messages.hpp"
#include "transport/transport.hpp"

namespace copbft::client {

struct ClientConfig {
  protocol::ClientId id = protocol::kClientIdBase;
  std::uint32_t num_replicas = 4;
  std::uint32_t max_faulty = 1;
  /// Pillars per replica; this client's requests travel on lane id % NP.
  std::uint32_t num_pillars = 1;
  /// Maximum outstanding asynchronous requests.
  std::uint32_t window = 16;
  /// Base retransmission timeout; doubles per retransmission of the same
  /// request (with jitter) up to retransmit_timeout_max_us.
  std::uint64_t retransmit_timeout_us = 500'000;
  std::uint64_t retransmit_timeout_max_us = 8'000'000;
};

/// Retransmission delay for the attempt-th re-send of one request:
/// exponential (base << attempt) capped at `cap`, with +-12.5% uniform
/// jitter so concurrently-pending requests do not re-fire in lockstep —
/// a fixed rearm turns one hiccup into synchronized retransmission storms
/// that arrive together at the replicas forever after.
std::uint64_t retransmit_backoff_us(std::uint64_t base, std::uint64_t cap,
                                    std::uint32_t attempt, Rng& rng);

class Client {
 public:
  /// Called on completion with the stable result and the measured latency.
  using Callback = std::function<void(Bytes result, std::uint64_t latency_us)>;

  Client(ClientConfig config, const crypto::CryptoProvider& crypto,
         transport::Transport& transport);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void start();
  void stop();

  /// Asynchronous invocation; blocks only while the window is full.
  /// Returns false after stop().
  bool invoke_async(Bytes payload, std::uint8_t flags, Callback done);

  /// Synchronous invocation; nullopt if the client was stopped.
  std::optional<Bytes> invoke(Bytes payload, std::uint8_t flags = 0);

  /// Blocks until every outstanding request completed.
  void drain();

  /// Snapshot accessors: safe to call from any thread at any time.
  Histogram latencies() const {
    MutexLock lock(mutex_);
    return latencies_;
  }
  std::uint64_t completed() const {
    MutexLock lock(mutex_);
    return completed_;
  }
  std::uint64_t retransmissions() const {
    MutexLock lock(mutex_);
    return retransmissions_;
  }
  /// Retransmission deadlines of the currently pending requests, in
  /// microsecond timestamps (unordered). Test/diagnostic hook for
  /// observing backoff de-synchronization.
  std::vector<std::uint64_t> pending_deadlines() const {
    MutexLock lock(mutex_);
    std::vector<std::uint64_t> out;
    out.reserve(pending_.size());
    for (const auto& [id, p] : pending_) out.push_back(p.deadline_us);
    return out;
  }
  protocol::ClientId id() const { return config_.id; }

 private:
  struct Pending {
    Bytes frame;  ///< sealed request frame, kept for retransmission
    Callback done;
    std::uint64_t sent_at_us = 0;
    std::uint64_t deadline_us = 0;
    std::uint32_t attempts = 0;  ///< retransmissions so far (backoff exponent)
    /// votes: digest of result -> replicas that returned it
    std::map<crypto::Digest, std::uint32_t> votes;
    std::uint32_t voters_seen = 0;  ///< bitmask of replica ids (< 32)
    Bytes result;                   ///< first result matching the quorum digest
    std::map<crypto::Digest, Bytes> results;
  };

  void run();
  void handle_reply(transport::ReceivedFrame& frame);
  void retransmit_due(std::uint64_t now);
  Bytes seal_request(protocol::Request& req);
  transport::LaneId lane() const { return config_.id % config_.num_pillars; }

  const ClientConfig config_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;

  std::shared_ptr<transport::Inbox> inbox_;
  std::jthread thread_;

  mutable Mutex mutex_;
  Cv window_open_;
  std::unordered_map<protocol::RequestId, Pending> pending_
      COP_GUARDED_BY(mutex_);
  protocol::RequestId next_id_ COP_GUARDED_BY(mutex_) = 1;
  /// Completions whose user callback has not returned yet; drain() waits
  /// for these too so callers observe all effects of their callbacks.
  std::uint32_t callbacks_in_flight_ COP_GUARDED_BY(mutex_) = 0;
  bool stopped_ COP_GUARDED_BY(mutex_) = false;

  Histogram latencies_ COP_GUARDED_BY(mutex_);
  std::uint64_t completed_ COP_GUARDED_BY(mutex_) = 0;
  std::uint64_t retransmissions_ COP_GUARDED_BY(mutex_) = 0;
  /// Jitter source for retransmission backoff; deterministic per client.
  Rng backoff_rng_ COP_GUARDED_BY(mutex_);

  // Observability (shared across client instances; registered in ctor).
  metrics::Counter& m_sent_;
  metrics::Counter& m_retransmissions_;
  metrics::Counter& m_completed_;
  metrics::HistogramMetric& m_latency_us_;
};

}  // namespace copbft::client
