// Workload generators for benchmarks, examples and tests.
#pragma once

#include <string>

#include "app/coordination.hpp"
#include "app/kv_store.hpp"
#include "common/rng.hpp"

namespace copbft::client {

/// Microbenchmark workload: fixed-size opaque payloads (paper §5.1/§5.2).
class NullWorkload {
 public:
  explicit NullWorkload(std::size_t payload_size)
      : payload_(payload_size, Byte{0x5a}) {}

  Bytes next() { return payload_; }

 private:
  Bytes payload_;
};

/// Uniform reads/writes over a fixed key space.
class KvWorkload {
 public:
  KvWorkload(std::uint64_t seed, std::uint32_t num_keys,
             std::size_t value_size, double read_ratio)
      : rng_(seed),
        num_keys_(num_keys),
        value_(value_size, Byte{0x11}),
        read_ratio_(read_ratio) {}

  Bytes next() {
    std::string key = "key-" + std::to_string(rng_.below(num_keys_));
    if (rng_.chance(read_ratio_))
      return app::KvOp{app::KvOpCode::kGet, key, {}}.encode();
    return app::KvOp{app::KvOpCode::kPut, key, value_}.encode();
  }

 private:
  Rng rng_;
  std::uint32_t num_keys_;
  Bytes value_;
  double read_ratio_;
};

/// Coordination-service workload (paper §5.3): a prepared namespace of
/// `num_nodes` znodes carrying `data_size` bytes each; clients read and
/// write nodes uniformly with the given read proportion.
class CoordWorkload {
 public:
  CoordWorkload(std::uint64_t seed, std::uint32_t num_nodes,
                std::size_t data_size, double read_ratio)
      : rng_(seed),
        num_nodes_(num_nodes),
        data_(data_size, Byte{0x22}),
        read_ratio_(read_ratio) {}

  /// Path of the i-th prepared node.
  static std::string node_path(std::uint32_t i) {
    return "/node-" + std::to_string(i);
  }

  /// Operations that preload the namespace before the measurement.
  std::vector<Bytes> preparation() const {
    std::vector<Bytes> ops;
    ops.reserve(num_nodes_);
    for (std::uint32_t i = 0; i < num_nodes_; ++i)
      ops.push_back(
          app::CoordOp{app::CoordOpCode::kCreate, node_path(i), data_}
              .encode());
    return ops;
  }

  Bytes next() {
    std::string path = node_path(
        static_cast<std::uint32_t>(rng_.below(num_nodes_)));
    if (rng_.chance(read_ratio_))
      return app::CoordOp{app::CoordOpCode::kGetData, path, {}}.encode();
    return app::CoordOp{app::CoordOpCode::kSetData, path, data_}.encode();
  }

 private:
  Rng rng_;
  std::uint32_t num_nodes_;
  Bytes data_;
  double read_ratio_;
};

}  // namespace copbft::client
