#include "client/client.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "protocol/wire.hpp"

namespace copbft::client {

std::uint64_t retransmit_backoff_us(std::uint64_t base, std::uint64_t cap,
                                    std::uint32_t attempt, Rng& rng) {
  if (base == 0) base = 1;
  if (cap < base) cap = base;
  // base << attempt, saturating well before 64-bit overflow.
  std::uint64_t backoff = cap;
  if (attempt < 63 && (base >> (63 - attempt)) == 0) {
    backoff = std::min(cap, base << attempt);
  }
  // +-12.5% uniform jitter, never below 1us.
  const std::uint64_t spread = backoff / 8;
  const std::uint64_t lo = backoff - spread;
  const std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t hi = (backoff > kMax - spread) ? kMax : backoff + spread;
  return std::max<std::uint64_t>(1, rng.between(lo, hi));
}

Client::Client(ClientConfig config, const crypto::CryptoProvider& crypto,
               transport::Transport& transport)
    : config_(config),
      crypto_(crypto),
      transport_(transport),
      backoff_rng_(0x9e3779b9u ^ config.id),
      m_sent_(metrics::MetricsRegistry::global().counter(
          "client.requests_sent")),
      m_retransmissions_(metrics::MetricsRegistry::global().counter(
          "client.retransmissions")),
      m_completed_(
          metrics::MetricsRegistry::global().counter("client.completed")),
      m_latency_us_(metrics::MetricsRegistry::global().histogram(
          "client.latency_us")) {
  inbox_ = std::make_shared<transport::Inbox>(4096);
  // Replies arrive on lane 0 (dedicated reply lane) but also, over the
  // event-loop transport, on the lane of the connection the client dialed
  // (replies ride back over the request connection); register both.
  transport_.register_sink(0, inbox_);
  if (lane() != 0) transport_.register_sink(lane(), inbox_);
}

Client::~Client() { stop(); }

void Client::start() {
  thread_ = named_thread("client-" + std::to_string(config_.id),
                         [this] { run(); });
}

void Client::stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  window_open_.notify_all();
  inbox_->close();
  if (thread_.joinable()) thread_.join();
}

Bytes Client::seal_request(protocol::Request& req) {
  std::vector<crypto::KeyNodeId> recipients;
  recipients.reserve(config_.num_replicas);
  for (std::uint32_t r = 0; r < config_.num_replicas; ++r)
    recipients.push_back(protocol::replica_node(r));

  Bytes body = protocol::request_authenticated_bytes(req);
  req.auth = crypto::Authenticator::build(
      crypto_, protocol::client_node(config_.id), recipients, ByteSpan{body});
  protocol::WireWriter w(body);
  w.authenticator(req.auth);
  return body;
}

bool Client::invoke_async(Bytes payload, std::uint8_t flags, Callback done) {
  protocol::RequestId id;
  Bytes frame;
  std::uint64_t now;
  {
    CvLock lock(mutex_);
    while (!stopped_ && pending_.size() >= config_.window)
      window_open_.wait(lock);
    if (stopped_) return false;

    id = next_id_++;
    protocol::Request req{config_.id, id, flags, std::move(payload), {}};
    frame = seal_request(req);
    now = now_us();

    Pending& p = pending_[id];
    p.frame = frame;
    p.done = std::move(done);
    p.sent_at_us = now;
    // Jitter the very first deadline too: requests issued together in one
    // window must not fall due together if the cluster stalls.
    p.deadline_us =
        now + retransmit_backoff_us(config_.retransmit_timeout_us,
                                    config_.retransmit_timeout_max_us,
                                    /*attempt=*/0, backoff_rng_);
  }
  m_sent_.add();
  trace::point(trace::Point::kClientSend,
               static_cast<std::uint32_t>(config_.id), /*pillar=*/0, /*seq=*/0,
               /*view=*/0, config_.id, id);
  for (std::uint32_t r = 0; r < config_.num_replicas; ++r)
    transport_.send(protocol::replica_node(r), lane(), frame);
  return true;
}

std::optional<Bytes> Client::invoke(Bytes payload, std::uint8_t flags) {
  std::promise<Bytes> promise;
  auto future = promise.get_future();
  bool ok = invoke_async(std::move(payload), flags,
                         [&promise](Bytes result, std::uint64_t) {
                           promise.set_value(std::move(result));
                         });
  if (!ok) return std::nullopt;
  // stop() never abandons pending callbacks before the thread joined, but
  // guard against a stop racing the completion.
  if (future.wait_for(std::chrono::minutes(5)) != std::future_status::ready)
    return std::nullopt;
  return future.get();
}

void Client::drain() {
  CvLock lock(mutex_);
  while (!stopped_ && !(pending_.empty() && callbacks_in_flight_ == 0))
    window_open_.wait(lock);
}

void Client::run() {
  const auto poll = std::chrono::microseconds(10'000);
  while (true) {
    auto frame = inbox_->queue().pop_for(poll);
    if (!frame && inbox_->queue().closed()) break;
    if (frame) handle_reply(*frame);
    retransmit_due(now_us());
  }
  // Fail outstanding invocations so synchronous callers unblock.
  std::unordered_map<protocol::RequestId, Pending> orphans;
  {
    MutexLock lock(mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, p] : orphans)
    if (p.done) p.done({}, 0);
  window_open_.notify_all();
}

void Client::handle_reply(transport::ReceivedFrame& frame) {
  auto decoded = protocol::decode_message(frame.bytes);
  if (!decoded) return;
  auto* reply = std::get_if<protocol::Reply>(&decoded->msg);
  if (!reply || reply->client != config_.id ||
      reply->replica >= config_.num_replicas)
    return;

  // Authenticate the reply against the claimed replica.
  ByteSpan body{frame.bytes.data(), decoded->body_size};
  if (!reply->auth.verify(crypto_, protocol::replica_node(reply->replica),
                          protocol::client_node(config_.id), body))
    return;

  Callback done;
  Bytes result;
  std::uint64_t latency = 0;
  {
    MutexLock lock(mutex_);
    auto it = pending_.find(reply->id);
    if (it == pending_.end()) return;  // already stable or stale
    Pending& p = it->second;

    std::uint32_t bit = 1u << reply->replica;
    if (p.voters_seen & bit) return;  // duplicate vote
    p.voters_seen |= bit;

    crypto::Digest d = crypto_.digest(reply->result);
    std::uint32_t count = ++p.votes[d];
    p.results.try_emplace(d, reply->result);
    if (count < config_.max_faulty + 1) return;

    // Stable: f+1 matching replies.
    latency = now_us() - p.sent_at_us;
    result = std::move(p.results[d]);
    done = std::move(p.done);
    pending_.erase(it);
    latencies_.record(latency);
    ++completed_;
    if (done) ++callbacks_in_flight_;
  }
  m_completed_.add();
  m_latency_us_.record(latency);
  trace::point(trace::Point::kStableResult,
               static_cast<std::uint32_t>(config_.id), /*pillar=*/0, /*seq=*/0,
               /*view=*/0, config_.id, reply->id);
  window_open_.notify_all();
  if (done) {
    done(std::move(result), latency);
    {
      MutexLock lock(mutex_);
      --callbacks_in_flight_;
    }
    window_open_.notify_all();
  }
}

void Client::retransmit_due(std::uint64_t now) {
  std::vector<Bytes> frames;
  {
    MutexLock lock(mutex_);
    for (auto& [id, p] : pending_) {
      if (now >= p.deadline_us) {
        // Per-request capped exponential backoff with jitter. Rearming
        // every due request with the same fixed timeout would lock their
        // deadlines together: one stall and the whole window re-fires in
        // lockstep at every timeout forever.
        ++p.attempts;
        p.deadline_us =
            now + retransmit_backoff_us(config_.retransmit_timeout_us,
                                        config_.retransmit_timeout_max_us,
                                        p.attempts, backoff_rng_);
        frames.push_back(p.frame);
        ++retransmissions_;
        m_retransmissions_.add();
        trace::point(trace::Point::kClientRetransmit,
                     static_cast<std::uint32_t>(config_.id), /*pillar=*/0,
                     /*seq=*/0, /*view=*/0, config_.id, id);
      }
    }
  }
  for (Bytes& frame : frames)
    for (std::uint32_t r = 0; r < config_.num_replicas; ++r)
      transport_.send(protocol::replica_node(r), lane(), frame);
}

}  // namespace copbft::client
