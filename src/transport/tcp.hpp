// TCP transport: one socket per (peer, lane) and direction.
//
// COP's pillars use private lanes, so a 4-replica / 3-pillar cluster runs
// 3 independent TCP connections per replica pair per direction — the
// multi-connection setup of paper §4.2.3. Frames are length-prefixed; a
// small hello header identifies (sender, lane) after connect.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/threading.hpp"
#include "transport/transport.hpp"

namespace copbft::transport {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Reads exactly `len` bytes from `fd`. Retries on EINTR: a signal
/// delivered to the reading thread (profilers, timers) interrupts recv()
/// with a partial transfer in flight, which is not connection death.
/// Returns false on EOF or a real error.
bool read_exact(int fd, void* buf, std::size_t len);

/// Writes all `len` bytes to `fd` (MSG_NOSIGNAL), retrying on EINTR.
bool write_all_fd(int fd, const Byte* data, std::size_t len);

class TcpTransport final : public Transport {
 public:
  /// `self` is this node's id; `listen_port` may be 0 for client nodes
  /// that only initiate connections; `peers` maps node ids to addresses.
  TcpTransport(crypto::KeyNodeId self, std::uint16_t listen_port,
               std::map<crypto::KeyNodeId, TcpPeer> peers);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and starts the accept loop (no-op for pure-client nodes).
  /// Returns false if the listen socket could not be created.
  bool start();

  /// Tunes the bounded connect retry (see connect_with_retry). Call before
  /// traffic starts; tests shrink the schedule to keep failures fast.
  void set_connect_retry(int attempts, std::uint32_t base_delay_ms) {
    connect_attempts_ = attempts;
    connect_base_delay_ms_ = base_delay_ms;
  }

  void register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) override;
  bool send(crypto::KeyNodeId to, LaneId lane, Bytes frame) override;
  void shutdown() override;

 private:
  /// One outgoing connection. `fd` is immutable after construction; the
  /// mutex serializes writers so frames are never interleaved on the wire.
  /// Per-lane traffic counters are bound at connect time (cold path) so
  /// the per-frame accounting is a cached pointer, not a registry lookup.
  struct OutConn {
    OutConn(int fd, metrics::Counter& tx_frames, metrics::Counter& tx_bytes)
        : fd(fd), tx_frames(tx_frames), tx_bytes(tx_bytes) {}
    const int fd;
    metrics::Counter& tx_frames;
    metrics::Counter& tx_bytes;
    Mutex write_mutex;
  };

  int connect_to(const TcpPeer& peer);
  int connect_with_retry(const TcpPeer& peer);
  static bool write_all(const OutConn& conn, const Byte* data,
                        std::size_t len) COP_REQUIRES(conn.write_mutex);
  void accept_loop(int listen_fd);
  void recv_loop(int fd);
  std::shared_ptr<FrameSink> sink_for(LaneId lane);

  const crypto::KeyNodeId self_;
  const std::uint16_t listen_port_;
  const std::map<crypto::KeyNodeId, TcpPeer> peers_;

  Mutex mutex_;
  std::map<LaneId, std::shared_ptr<FrameSink>> sinks_ COP_GUARDED_BY(mutex_);
  std::map<std::pair<crypto::KeyNodeId, LaneId>, std::unique_ptr<OutConn>>
      outgoing_ COP_GUARDED_BY(mutex_);
  std::vector<std::jthread> recv_threads_ COP_GUARDED_BY(mutex_);
  std::vector<int> accepted_fds_ COP_GUARDED_BY(mutex_);
  int listen_fd_ COP_GUARDED_BY(mutex_) = -1;
  bool stopping_ COP_GUARDED_BY(mutex_) = false;
  std::jthread accept_thread_;

  // Connect retry schedule: up to `connect_attempts_` tries, exponential
  // backoff from `connect_base_delay_ms_` with ±25% jitter. Set before
  // start(); not guarded because they are configuration, not shared state.
  int connect_attempts_ = 5;
  std::uint32_t connect_base_delay_ms_ = 10;
};

}  // namespace copbft::transport
