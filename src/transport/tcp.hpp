// TCP transport on epoll event-loop lanes.
//
// Replica-to-replica traffic keeps one dialed socket per (peer, lane) and
// direction — the multi-connection setup of paper §4.2.3 — while the
// client-facing side multiplexes every accepted connection onto a small
// set of lane threads (EventLoop) with batched reads, writev-coalesced
// replies and admission control; see src/transport/event_loop.hpp and
// docs/transport.md. Frames are length-prefixed; a small hello header
// identifies (sender, lane) after connect. Replies to clients travel back
// over the connection the client dialed (no dial-back, no client listen
// port), which is what lets one replica serve tens of thousands of
// clients within its fd budget.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/metrics.hpp"
#include "common/threading.hpp"
#include "transport/event_loop.hpp"
#include "transport/transport.hpp"

namespace copbft::transport {

struct TcpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Reads exactly `len` bytes from `fd`. Retries on EINTR: a signal
/// delivered to the reading thread (profilers, timers) interrupts recv()
/// with a partial transfer in flight, which is not connection death.
/// Returns false on EOF or a real error.
bool read_exact(int fd, void* buf, std::size_t len);

/// Writes all `len` bytes to `fd` (MSG_NOSIGNAL), retrying on EINTR.
bool write_all_fd(int fd, const Byte* data, std::size_t len);

struct TcpOptions {
  /// Event-loop lane threads; connections are multiplexed over them by
  /// lane % lane_threads. Replicas typically run one per pillar (NP).
  std::uint32_t lane_threads = 2;
  /// Frame bound for replica peers (state-transfer chunks are large).
  std::uint32_t max_frame_replica = 64u << 20;
  /// Frame bound for client peers (requests are small; a hostile client
  /// must not make the replica allocate big buffers).
  std::uint32_t max_frame_client = 1u << 20;
  /// Per-connection outbound budgets; past them frames are dropped (the
  /// egress side of admission control — a slow peer sheds, never blocks).
  std::size_t conn_out_frames = 1 << 16;
  std::size_t conn_out_bytes = 128u << 20;
  /// Nodes at or above this id are clients: sheddable admission, client
  /// frame bound, reply routing over their accepted connection. Matches
  /// protocol::kClientIdBase without a protocol-layer dependency.
  crypto::KeyNodeId client_node_floor = 1000;
  EventLoopOptions loop;
};

class TcpTransport final : public Transport {
 public:
  /// `self` is this node's id; `listen_port` may be 0 for client nodes
  /// that only initiate connections; `peers` maps node ids to addresses.
  TcpTransport(crypto::KeyNodeId self, std::uint16_t listen_port,
               std::map<crypto::KeyNodeId, TcpPeer> peers,
               TcpOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds the listener (if any) and starts the event-loop lane threads.
  bool start();

  /// Tunes the bounded connect retry (see connect_with_retry). Call before
  /// traffic starts; tests shrink the schedule to keep failures fast.
  void set_connect_retry(int attempts, std::uint32_t base_delay_ms) {
    connect_attempts_ = attempts;
    connect_base_delay_ms_ = base_delay_ms;
  }

  void register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) override;
  bool send(crypto::KeyNodeId to, LaneId lane, Bytes frame) override;
  void shutdown() override;

  /// A lightweight multiplexed client: a Transport facade that shares
  /// this transport's sockets-and-loops machinery but dials with its own
  /// node identity and receives on its own sink. Thousands of endpoints
  /// ride on one TcpTransport's lane threads — the client side of
  /// connection multiplexing (no per-client transport, no per-client
  /// receive thread). The endpoint stays valid until its shutdown() or
  /// the owning transport's.
  std::shared_ptr<Transport> client_endpoint(crypto::KeyNodeId node);

 private:
  class Endpoint;
  friend class Endpoint;

  /// (local identity, remote node, lane) -> dialed connection.
  using DialKey = std::tuple<crypto::KeyNodeId, crypto::KeyNodeId, LaneId>;

  int connect_to(const TcpPeer& peer);
  int connect_with_retry(const TcpPeer& peer);
  bool send_from(crypto::KeyNodeId from, crypto::KeyNodeId to, LaneId lane,
                 Bytes frame);
  std::shared_ptr<Conn> dial(crypto::KeyNodeId from, crypto::KeyNodeId to,
                             LaneId lane);
  std::shared_ptr<FrameSink> sink_for(LaneId lane);
  std::shared_ptr<FrameSink> sink_for_conn(const std::shared_ptr<Conn>& conn);
  EventLoop* loop_for(LaneId lane) {
    return loops_[lane % loops_.size()].get();
  }
  void drop_endpoint(crypto::KeyNodeId node);
  void bind_conn_metrics(const std::shared_ptr<Conn>& conn, LaneId lane);

  // EventLoop hooks (run on loop threads).
  std::shared_ptr<Conn> on_accept(int fd);
  EventLoop* on_hello(const std::shared_ptr<Conn>& conn);
  void on_conn_closed(const std::shared_ptr<Conn>& conn);

  const crypto::KeyNodeId self_;
  const std::uint16_t listen_port_;
  const std::map<crypto::KeyNodeId, TcpPeer> peers_;
  const TcpOptions options_;

  std::vector<std::unique_ptr<EventLoop>> loops_;

  Mutex mutex_;
  std::map<LaneId, std::shared_ptr<FrameSink>> sinks_ COP_GUARDED_BY(mutex_);
  std::map<DialKey, std::shared_ptr<Conn>> outgoing_ COP_GUARDED_BY(mutex_);
  /// Client node -> its accepted connection (reply route; latest wins).
  std::map<crypto::KeyNodeId, std::shared_ptr<Conn>> accepted_routes_
      COP_GUARDED_BY(mutex_);
  std::map<crypto::KeyNodeId, std::shared_ptr<Endpoint>> endpoints_
      COP_GUARDED_BY(mutex_);
  bool stopping_ COP_GUARDED_BY(mutex_) = false;
  bool started_ COP_GUARDED_BY(mutex_) = false;

  // Connect retry schedule: up to `connect_attempts_` tries, exponential
  // backoff from `connect_base_delay_ms_` with ±25% jitter. Set before
  // start(); not guarded because they are configuration, not shared state.
  int connect_attempts_ = 5;
  std::uint32_t connect_base_delay_ms_ = 10;

  metrics::Gauge& m_accepted_conns_;
};

}  // namespace copbft::transport
