// Epoll event-loop engine for the TCP transport (production ingress).
//
// One EventLoop is one lane thread: a level-triggered epoll multiplexing
// every connection assigned to the lane — tens of thousands of client
// sockets map onto NP lane threads instead of one thread each. Reads are
// batched (one wakeup drains a socket and decodes every complete frame in
// the buffer), writes go through per-connection outbound queues flushed
// with writev so back-to-back replies coalesce into one syscall, and
// ingress runs under explicit admission control: a frame the sink cannot
// take right now is queued with a deadline inside a bounded per-lane
// budget, or shed — the loop never blocks on a sink, so a saturated
// pillar can slow its own lane but cannot wedge the transport.
//
// Two connection classes, decided by the owning transport:
//   * sheddable (client-facing): shed-or-queue-with-deadline admission;
//     clients retransmit, so dropping under overload is the correct
//     backpressure signal (ingress_shed / ingress_deadline_drops).
//   * lossless (replica-to-replica): on kBusy the loop parks the decoded
//     frames and disarms EPOLLIN — TCP flow control pushes back on the
//     peer; nothing is dropped and nothing blocks.
#pragma once

#include <sys/epoll.h>
#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/hot.hpp"
#include "common/metrics.hpp"
#include "common/threading.hpp"
#include "transport/transport.hpp"

namespace copbft::transport {

class EventLoop;

/// Incremental length-prefixed frame decoder (u32 host-order length, then
/// payload — the same wire format the blocking transport used). Feed it
/// arbitrary byte chunks; it surfaces every completed frame. The length
/// header is validated against `max_frame` BEFORE the payload buffer is
/// allocated: a Byzantine peer sending one hostile 4-byte header must not
/// be able to trigger a huge allocation.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame) : max_frame_(max_frame) {}

  /// Adjusts the bound for frames whose header has not been read yet
  /// (connections are re-bounded once the hello identifies the peer class).
  void set_max_frame(std::uint32_t max_frame) { max_frame_ = max_frame; }
  std::uint32_t max_frame() const { return max_frame_; }

  /// Consumes `len` bytes, appending completed frames to `out`. Returns
  /// false on a length-header violation (frame larger than max_frame):
  /// the connection is lying or corrupt and must be closed.
  COP_HOT bool feed(const Byte* data, std::size_t len, std::vector<Bytes>& out);

 private:
  std::uint32_t max_frame_;
  Byte header_[4] = {};
  std::uint32_t header_have_ = 0;
  bool in_frame_ = false;
  Bytes frame_;
  std::size_t frame_have_ = 0;
};

/// One queued outbound frame: the u32 wire header lives in the entry so
/// the flush path can point an iovec straight at it (deque growth never
/// moves existing elements).
struct OutFrame {
  std::uint32_t len = 0;  ///< wire header (host order, like the codec)
  Bytes payload;
};

/// Builds up to `max_iov` iovecs over the queued frames, resuming a
/// partially written front frame at byte `front_offset` (offset counts
/// header + payload). Returns the number of iovecs produced. Pure —
/// exercised directly by the torn-boundary tests.
std::size_t build_flush_iovecs(const std::deque<OutFrame>& queue,
                               std::size_t front_offset, struct iovec* iov,
                               std::size_t max_iov);

/// Advances the flush cursor by `written` bytes: pops fully sent frames,
/// returns the new front_offset. `frames_done`/`bytes_released` report
/// completed frames and their total wire bytes (for budgets + metrics).
std::size_t consume_flushed(std::deque<OutFrame>& queue,
                            std::size_t front_offset, std::size_t written,
                            std::size_t& frames_done,
                            std::size_t& bytes_released);

/// One connection, owned by exactly one EventLoop at a time. Senders (any
/// thread) enqueue frames under out_mutex_ and poke the owning loop; all
/// socket I/O happens on loop threads. The fd is RAII-owned: whatever
/// error path abandons the connection, the destructor closes it.
class Conn {
 public:
  enum class Kind : std::uint8_t { kAccepted, kDialed };

  /// Outcome of queueing one outbound frame.
  enum class Offer : std::uint8_t {
    kQueued,           ///< queued; a flush is already scheduled
    kQueuedNeedFlush,  ///< queued; caller must schedule a flush
    kOverflow,         ///< outbound budget exceeded; frame dropped
    kClosed,           ///< connection is gone
  };

  Conn(int fd, Kind kind, crypto::KeyNodeId peer, LaneId lane,
       std::uint32_t max_frame, std::size_t max_out_frames,
       std::size_t max_out_bytes);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  Kind kind() const { return kind_; }
  crypto::KeyNodeId peer() const { return peer_; }
  LaneId lane() const { return lane_; }
  FrameDecoder& decoder() { return decoder_; }

  /// Local identity a dialed conn spoke in its hello (the transport's own
  /// node, or a multiplexed client endpoint's).
  crypto::KeyNodeId local_from() const { return local_from_; }
  void set_local_from(crypto::KeyNodeId from) { local_from_ = from; }

  /// Loop that currently owns the connection's I/O (nullptr before
  /// adoption). Set via set_owner before the conn is published to senders.
  EventLoop* owner() const { return owner_.load(std::memory_order_acquire); }
  void set_owner(EventLoop* loop) {
    owner_.store(loop, std::memory_order_release);
  }

  /// Inbound destination. Resolved at dial time / hello time; may be
  /// re-resolved lazily when a sink registers after the conn came up.
  std::shared_ptr<FrameSink> sink() const {
    MutexLock lock(out_mutex_);
    return sink_;
  }
  void set_sink(std::shared_ptr<FrameSink> sink) {
    MutexLock lock(out_mutex_);
    sink_ = std::move(sink);
  }

  /// Sheddable = client-facing admission (shed-or-queue-with-deadline);
  /// lossless = replica traffic (park + TCP backpressure).
  bool sheddable() const { return sheddable_; }
  void set_sheddable(bool sheddable) { sheddable_ = sheddable; }

  /// Identity learned from the hello preamble (accepted conns).
  void set_identity(crypto::KeyNodeId peer, LaneId lane) {
    peer_ = peer;
    lane_ = lane;
    hello_done_ = true;
  }
  bool hello_done() const { return hello_done_; }

  /// Sender-side enqueue (any thread, non-blocking).
  Offer offer(Bytes frame);
  bool has_pending_out() const {
    MutexLock lock(out_mutex_);
    return !out_.empty();
  }

  /// Flush protocol (loop thread): begin_flush snapshots iovecs for the
  /// queued frames (returns 0 when drained, clearing the flush-scheduled
  /// latch so the next sender re-schedules); end_flush retires `written`
  /// bytes and returns the number of frames completed.
  std::size_t begin_flush(struct iovec* iov, std::size_t max_iov);
  std::size_t end_flush(std::size_t written, std::size_t& bytes_released);

  /// Marks the conn dead and closes the fd; idempotent. Pending outbound
  /// frames are discarded.
  void mark_closed();

  // Per-lane traffic/admission counters, bound once on the cold path
  // (dial / hello) so per-frame accounting is a cached pointer. Null until
  // bound; the loop guards every use.
  void bind_rx(metrics::Counter* frames, metrics::Counter* bytes) {
    rx_frames_ = frames;
    rx_bytes_ = bytes;
  }
  void bind_tx(metrics::Counter* frames, metrics::Counter* bytes) {
    tx_frames_ = frames;
    tx_bytes_ = bytes;
  }
  void bind_ingress(metrics::Counter* accepted, metrics::Counter* shed,
                    metrics::Counter* deadline_drops,
                    metrics::Counter* egress_dropped) {
    ingress_accepted_ = accepted;
    ingress_shed_ = shed;
    ingress_deadline_drops_ = deadline_drops;
    egress_dropped_ = egress_dropped;
  }
  void count_rx(std::uint64_t frames, std::uint64_t bytes) {
    if (rx_frames_) rx_frames_->add(frames);
    if (rx_bytes_) rx_bytes_->add(bytes);
  }
  void count_tx(std::uint64_t frames, std::uint64_t bytes) {
    if (tx_frames_) tx_frames_->add(frames);
    if (tx_bytes_) tx_bytes_->add(bytes);
  }
  void count_ingress_accepted() {
    if (ingress_accepted_) ingress_accepted_->add();
  }
  void count_ingress_shed() {
    if (ingress_shed_) ingress_shed_->add();
  }
  void count_deadline_drop() {
    if (ingress_deadline_drops_) ingress_deadline_drops_->add();
  }
  void count_egress_dropped() {
    if (egress_dropped_) egress_dropped_->add();
  }

 private:
  friend class EventLoop;

  int fd_;  ///< closed by mark_closed() or the destructor (RAII)
  const Kind kind_;
  crypto::KeyNodeId peer_;
  crypto::KeyNodeId local_from_ = 0;
  LaneId lane_;
  bool sheddable_ = false;
  bool hello_done_ = false;

  // ---- read side: loop-thread-only ----
  FrameDecoder decoder_;
  Byte hello_buf_[8] = {};
  std::uint32_t hello_have_ = 0;
  bool paused_ = false;     ///< EPOLLIN disarmed (lossless backpressure)
  bool registered_ = false; ///< currently in the owner's epoll set
  bool want_write_ = false; ///< EPOLLOUT armed (partial flush pending)
  EventLoop* migrate_target_ = nullptr;
  std::deque<ReceivedFrame> parked_;  ///< decoded but not yet admitted

  // ---- write side: shared with sender threads ----
  const std::size_t max_out_frames_;
  const std::size_t max_out_bytes_;
  mutable Mutex out_mutex_;
  std::deque<OutFrame> out_ COP_GUARDED_BY(out_mutex_);
  std::size_t out_bytes_ COP_GUARDED_BY(out_mutex_) = 0;
  std::size_t front_offset_ COP_GUARDED_BY(out_mutex_) = 0;
  bool flush_scheduled_ COP_GUARDED_BY(out_mutex_) = false;
  bool closed_ COP_GUARDED_BY(out_mutex_) = false;
  std::shared_ptr<FrameSink> sink_ COP_GUARDED_BY(out_mutex_);

  std::atomic<EventLoop*> owner_{nullptr};

  metrics::Counter* rx_frames_ = nullptr;
  metrics::Counter* rx_bytes_ = nullptr;
  metrics::Counter* tx_frames_ = nullptr;
  metrics::Counter* tx_bytes_ = nullptr;
  metrics::Counter* ingress_accepted_ = nullptr;
  metrics::Counter* ingress_shed_ = nullptr;
  metrics::Counter* ingress_deadline_drops_ = nullptr;
  metrics::Counter* egress_dropped_ = nullptr;
};

struct EventLoopOptions {
  /// Read buffer per recv() call (one buffer per loop, reused).
  std::size_t read_chunk = 64 * 1024;
  /// Fairness: max bytes drained from one connection per wakeup.
  std::size_t max_read_per_wake = 256 * 1024;
  /// Admission: max frames queued per lane awaiting a busy sink.
  std::size_t ingress_retry_budget = 1024;
  /// Admission: how long a queued frame may wait before it is dropped.
  std::uint64_t ingress_retry_deadline_us = 20'000;
  /// Idle epoll timeout (the loop polls at 1 ms while retries/parked
  /// frames are pending).
  int epoll_wait_ms = 100;
};

/// Callbacks into the owning transport. All run on the loop thread; they
/// may take the transport's own locks (the transport never calls into the
/// loop while holding them).
struct EventLoopHooks {
  /// A listener conn was accepted (fd is non-blocking, TCP_NODELAY set).
  /// Return the Conn to adopt on this loop, or nullptr to refuse (the fd
  /// is closed either way on refusal).
  std::function<std::shared_ptr<Conn>(int fd)> on_accept;
  /// The hello preamble completed: peer/lane are set. Bind the sink,
  /// decoder bound and metrics; return the loop that should own the conn
  /// from now on (usually lane % loops), or nullptr to reject it.
  std::function<EventLoop*(const std::shared_ptr<Conn>&)> on_hello;
  /// A conn with a null sink received traffic; return the sink to use
  /// (or nullptr to drop the frame).
  std::function<std::shared_ptr<FrameSink>(const std::shared_ptr<Conn>&)>
      resolve_sink;
  /// The conn was closed and removed from the loop.
  std::function<void(const std::shared_ptr<Conn>&)> on_close;
};

/// One epoll lane thread. See file comment for the model.
class EventLoop {
 public:
  EventLoop(std::string name, std::string metric_prefix, EventLoopOptions opts,
            EventLoopHooks hooks);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Transfers ownership of a listening socket (non-blocking) to the
  /// loop. Call before start(); the loop closes it on exit.
  void set_listener(int fd) { listen_fd_ = fd; }

  bool start();
  void request_stop();
  void join();

  /// Hands a connection to this loop (thread-safe). The caller must have
  /// set_owner(this) before publishing the conn to any sender.
  void adopt(std::shared_ptr<Conn> conn);

  /// Asks the loop to flush `conn`'s outbound queue soon (thread-safe).
  void schedule_flush(std::shared_ptr<Conn> conn);

  /// Asks the loop to close `conn` (thread-safe; the close itself runs on
  /// the loop thread so epoll bookkeeping stays single-threaded).
  void request_close(std::shared_ptr<Conn> conn);

  void wake();

 private:
  struct PendingFrame;

  void run();
  void drain_control(bool& stopping);
  void dispatch(const struct epoll_event& ev, std::uint64_t now);
  void accept_batch();
  COP_HOT void handle_readable(const std::shared_ptr<Conn>& conn,
                               std::uint64_t now);
  bool consume_hello(const std::shared_ptr<Conn>& conn, const Byte*& data,
                     std::size_t& len);
  COP_HOT void route_frame(const std::shared_ptr<Conn>& conn, Bytes frame,
                           std::uint64_t now);
  void enqueue_retry(const std::shared_ptr<Conn>& conn, ReceivedFrame frame,
                     std::uint64_t now);
  std::deque<PendingFrame>& lane_retry(LaneId lane);
  COP_HOT void flush_conn(const std::shared_ptr<Conn>& conn);
  void pump_retries(std::uint64_t now);
  void pump_paused();
  void pause_reads(const std::shared_ptr<Conn>& conn);
  void update_epoll_interest(const std::shared_ptr<Conn>& conn);
  void set_want_write(const std::shared_ptr<Conn>& conn, bool want);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void migrate(const std::shared_ptr<Conn>& conn, EventLoop* target);
  void register_conn(const std::shared_ptr<Conn>& conn);
  bool want_fast_poll() const;
  std::shared_ptr<Conn> lookup(int fd);

  const std::string name_;
  const EventLoopOptions opts_;
  const EventLoopHooks hooks_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint64_t listener_paused_until_us_ = 0;  ///< EMFILE backoff

  Mutex mutex_;
  bool stopping_ COP_GUARDED_BY(mutex_) = false;
  std::vector<std::shared_ptr<Conn>> inbox_ COP_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Conn>> dirty_ COP_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Conn>> closing_ COP_GUARDED_BY(mutex_);

  // ---- loop-thread-only state ----
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  struct PendingFrame {
    std::shared_ptr<Conn> conn;
    ReceivedFrame frame;
    std::uint64_t deadline_us = 0;
  };
  /// Admission retry queues, indexed by lane (grown on demand).
  std::vector<std::deque<PendingFrame>> retry_;
  std::vector<std::shared_ptr<Conn>> paused_;
  std::vector<Byte> scratch_;        ///< recv buffer
  std::vector<Bytes> frames_;        ///< decode output scratch
  std::size_t retry_depth_ = 0;      ///< total frames across retry_

  // Observability: epoll wakeups, frames decoded per readable event,
  // writev syscalls, and decode-protocol violations, per lane thread.
  metrics::Counter& m_wakeups_;
  metrics::Counter& m_writev_calls_;
  metrics::Counter& m_protocol_errors_;
  metrics::HistogramMetric& m_rx_batch_frames_;

  std::jthread thread_;
};

/// Queues `frame` on `conn` and wakes the owning loop. Returns false when
/// the frame was dropped (budget overflow or closed connection) — the
/// transport's non-blocking send guarantee: a slow peer sheds egress
/// instead of wedging the sending thread.
bool submit_frame(const std::shared_ptr<Conn>& conn, Bytes frame);

}  // namespace copbft::transport
