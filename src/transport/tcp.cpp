#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"

namespace copbft::transport {
namespace {

// Hello header sent once per outgoing connection: sender node id + lane.
struct Hello {
  std::uint32_t from;
  std::uint32_t lane;
};

constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound

std::string lane_metric(crypto::KeyNodeId self, LaneId lane,
                        const char* name) {
  return "tcp.node" + std::to_string(self) + ".lane" + std::to_string(lane) +
         "." + name;
}

}  // namespace

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<Byte*>(buf);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0 && errno == EINTR) continue;  // signal, not connection death
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all_fd(int fd, const Byte* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not connection death
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

TcpTransport::TcpTransport(crypto::KeyNodeId self, std::uint16_t listen_port,
                           std::map<crypto::KeyNodeId, TcpPeer> peers)
    : self_(self), listen_port_(listen_port), peers_(std::move(peers)) {}

TcpTransport::~TcpTransport() { shutdown(); }

bool TcpTransport::start() {
  if (listen_port_ == 0) return true;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen_port_);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return false;
  }
  {
    MutexLock lock(mutex_);
    listen_fd_ = fd;
  }
  // The accept loop works on its own copy of the fd; shutdown() closes
  // listen_fd_ under the lock, which makes ::accept fail and the loop exit.
  accept_thread_ = named_thread("tcp-accept", [this, fd] { accept_loop(fd); });
  return true;
}

void TcpTransport::accept_loop(int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal, not shutdown
      return;  // listen socket closed during shutdown
    }
    int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    MutexLock lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    accepted_fds_.push_back(fd);
    recv_threads_.emplace_back(
        named_thread("tcp-recv", [this, fd] { recv_loop(fd); }));
  }
}

void TcpTransport::recv_loop(int fd) {
  Hello hello{};
  if (!read_exact(fd, &hello, sizeof hello)) {
    ::close(fd);
    return;
  }
  auto sink = sink_for(hello.lane);
  if (!sink) {
    COP_LOG_WARN("node %u: no sink for lane %u", self_, hello.lane);
    ::close(fd);
    return;
  }
  auto& registry = metrics::MetricsRegistry::global();
  metrics::Counter& rx_frames =
      registry.counter(lane_metric(self_, hello.lane, "rx_frames"));
  metrics::Counter& rx_bytes =
      registry.counter(lane_metric(self_, hello.lane, "rx_bytes"));
  while (true) {
    std::uint32_t len = 0;
    if (!read_exact(fd, &len, sizeof len) || len > kMaxFrame) break;
    Bytes frame(len);
    if (len > 0 && !read_exact(fd, frame.data(), len)) break;
    rx_frames.add();
    rx_bytes.add(sizeof len + len);
    if (!sink->deliver(ReceivedFrame{hello.from, hello.lane, std::move(frame)}))
      break;  // sink closed
  }
  ::close(fd);
}

std::shared_ptr<FrameSink> TcpTransport::sink_for(LaneId lane) {
  MutexLock lock(mutex_);
  auto it = sinks_.find(lane);
  return it == sinks_.end() ? nullptr : it->second;
}

void TcpTransport::register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) {
  MutexLock lock(mutex_);
  sinks_[lane] = std::move(sink);
}

int TcpTransport::connect_to(const TcpPeer& peer) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    // A signal during connect() does NOT abort the handshake: it proceeds
    // asynchronously (POSIX). Wait for completion and read the outcome
    // from SO_ERROR instead of treating the peer as unreachable.
    bool recovered = false;
    int saved = errno;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      while ((rc = ::poll(&pfd, 1, /*ms=*/10'000)) < 0 && errno == EINTR) {
      }
      int err = 0;
      socklen_t err_len = sizeof err;
      recovered = rc > 0 &&
                  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
                  err == 0;
      if (!recovered && rc > 0 && err != 0) saved = err;
    }
    if (!recovered) {
      // close() may clobber errno; callers (connect_with_retry) dispatch on
      // the *connect* failure, so carry it across.
      ::close(fd);
      errno = saved;
      return -1;
    }
  }
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
  return fd;
}

int TcpTransport::connect_with_retry(const TcpPeer& peer) {
  // ECONNREFUSED during startup is routine — replicas boot in arbitrary
  // order, so the first sender usually races the peer's listen(). Retry a
  // bounded number of times with exponential backoff; ±25% jitter keeps a
  // whole cluster restarting at once from hammering the late peer in
  // lockstep. Other errnos (unreachable host, bad address) fail fast.
  Rng jitter(0x7c9ULL * self_ ^ (static_cast<std::uint64_t>(peer.port) << 32) ^
             reinterpret_cast<std::uintptr_t>(&peer));
  std::uint32_t delay_ms = connect_base_delay_ms_;
  for (int attempt = 1;; ++attempt) {
    int fd = connect_to(peer);
    if (fd >= 0) return fd;
    if (errno != ECONNREFUSED || attempt >= connect_attempts_) return -1;
    {
      MutexLock lock(mutex_);
      if (stopping_) return -1;
    }
    // delay ± 25%: [3/4·delay, 5/4·delay].
    std::uint64_t lo = delay_ms - delay_ms / 4;
    std::uint64_t sleep_ms = lo + jitter.below(delay_ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    delay_ms = std::min(delay_ms * 2, 500u);
  }
}

bool TcpTransport::write_all(const OutConn& conn, const Byte* data,
                             std::size_t len) {
  return write_all_fd(conn.fd, data, len);
}

bool TcpTransport::send(crypto::KeyNodeId to, LaneId lane, Bytes frame) {
  OutConn* conn = nullptr;
  {
    MutexLock lock(mutex_);
    if (stopping_) return false;
    auto it = outgoing_.find({to, lane});
    if (it != outgoing_.end()) conn = it->second.get();
  }
  if (!conn) {
    // Connect outside mutex_: the retry schedule can block for hundreds of
    // milliseconds, and holding the lock would freeze every other lane's
    // sends (plus sink registration and shutdown) meanwhile.
    auto peer = peers_.find(to);  // peers_ is immutable after construction
    if (peer == peers_.end()) return false;
    int fd = connect_with_retry(peer->second);
    if (fd < 0) return false;
    auto& registry = metrics::MetricsRegistry::global();
    auto fresh = std::make_unique<OutConn>(
        fd, registry.counter(lane_metric(self_, lane, "tx_frames")),
        registry.counter(lane_metric(self_, lane, "tx_bytes")));
    Hello hello{self_, lane};
    // Not yet published: no writer contention on the hello, so the plain
    // fd write is safe without fresh->write_mutex.
    if (!write_all_fd(fresh->fd, reinterpret_cast<const Byte*>(&hello),
                      sizeof hello)) {
      ::close(fd);
      return false;
    }
    MutexLock lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return false;
    }
    auto& slot = outgoing_[{to, lane}];
    if (slot) {
      // Another sender connected this (peer, lane) while we were outside
      // the lock; keep the published one, drop ours.
      ::close(fd);
    } else {
      registry.counter(lane_metric(self_, lane, "connects")).add();
      slot = std::move(fresh);
    }
    conn = slot.get();
  }

  // Frame: u32 length (host order is fine: both ends are this code on the
  // same architecture family; the *protocol* encoding above is explicit).
  std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  MutexLock wlock(conn->write_mutex);
  if (!write_all(*conn, reinterpret_cast<const Byte*>(&len), sizeof len) ||
      !write_all(*conn, frame.data(), frame.size()))
    return false;
  conn->tx_frames.add();
  conn->tx_bytes.add(sizeof len + frame.size());
  return true;
}

void TcpTransport::shutdown() {
  std::vector<std::jthread> recv_threads;
  std::jthread accept_thread;
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& [key, conn] : outgoing_)
      if (conn && conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [lane, sink] : sinks_)
      if (sink) sink->close();
    recv_threads.swap(recv_threads_);
    accept_thread = std::move(accept_thread_);
  }
  // jthreads join on destruction here, outside the lock.
}

}  // namespace copbft::transport
