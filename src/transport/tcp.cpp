#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"

namespace copbft::transport {
namespace {

// Hello header sent once per outgoing connection: sender node id + lane.
struct Hello {
  std::uint32_t from;
  std::uint32_t lane;
};

std::string lane_metric(crypto::KeyNodeId self, LaneId lane,
                        const char* name) {
  return "tcp.node" + std::to_string(self) + ".lane" + std::to_string(lane) +
         "." + name;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<Byte*>(buf);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0 && errno == EINTR) continue;  // signal, not connection death
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all_fd(int fd, const Byte* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not connection death
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Endpoint: a multiplexed client identity riding on the owning transport.

class TcpTransport::Endpoint final : public Transport {
 public:
  Endpoint(TcpTransport* owner, crypto::KeyNodeId node)
      : owner_(owner), node_(node) {}

  void register_sink(LaneId /*lane*/,
                     std::shared_ptr<FrameSink> sink) override {
    // One sink per endpoint: a client's replies all come back over its own
    // dialed connections, whatever lane they were sent on.
    MutexLock lock(mutex_);
    sink_ = std::move(sink);
  }

  bool send(crypto::KeyNodeId to, LaneId lane, Bytes frame) override {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
    }
    // Never call into the owner while holding mutex_: the owner resolves
    // sinks under its own lock and then takes ours (transport -> endpoint
    // order); re-entering the transport here would invert it.
    return owner_->send_from(node_, to, lane, std::move(frame));
  }

  void shutdown() override {
    std::shared_ptr<FrameSink> sink;
    {
      MutexLock lock(mutex_);
      if (closed_) return;
      closed_ = true;
      sink = std::move(sink_);
    }
    owner_->drop_endpoint(node_);
    if (sink) sink->close();
  }

  /// Shutdown driven by the owning transport (its maps are already being
  /// torn down, so no drop_endpoint round-trip).
  void close_sink() {
    std::shared_ptr<FrameSink> sink;
    {
      MutexLock lock(mutex_);
      if (closed_) return;
      closed_ = true;
      sink = std::move(sink_);
    }
    if (sink) sink->close();
  }

  std::shared_ptr<FrameSink> sink() const {
    MutexLock lock(mutex_);
    return sink_;
  }

 private:
  TcpTransport* const owner_;
  const crypto::KeyNodeId node_;
  mutable Mutex mutex_;
  std::shared_ptr<FrameSink> sink_ COP_GUARDED_BY(mutex_);
  bool closed_ COP_GUARDED_BY(mutex_) = false;
};

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(crypto::KeyNodeId self, std::uint16_t listen_port,
                           std::map<crypto::KeyNodeId, TcpPeer> peers,
                           TcpOptions options)
    : self_(self),
      listen_port_(listen_port),
      peers_(std::move(peers)),
      options_(options),
      m_accepted_conns_(metrics::MetricsRegistry::global().gauge(
          "tcp.node" + std::to_string(self) + ".accepted_conns")) {}

TcpTransport::~TcpTransport() { shutdown(); }

bool TcpTransport::start() {
  {
    MutexLock lock(mutex_);
    if (started_ || stopping_) return started_ && !stopping_;
    started_ = true;
  }
  int listen_fd = -1;
  if (listen_port_ != 0) {
    listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return false;
    int yes = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(listen_port_);
    // Deep backlog: a soak fleet dials thousands of clients at once and
    // the accept path drains in batches, not per-SYN.
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd, 4096) < 0) {
      ::close(listen_fd);
      return false;
    }
  }

  EventLoopHooks hooks;
  hooks.on_accept = [this](int fd) { return on_accept(fd); };
  hooks.on_hello = [this](const std::shared_ptr<Conn>& conn) {
    return on_hello(conn);
  };
  hooks.resolve_sink = [this](const std::shared_ptr<Conn>& conn) {
    return sink_for_conn(conn);
  };
  hooks.on_close = [this](const std::shared_ptr<Conn>& conn) {
    on_conn_closed(conn);
  };
  const std::uint32_t nloops = std::max(1u, options_.lane_threads);
  for (std::uint32_t i = 0; i < nloops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        "tcp-lane" + std::to_string(i),
        "tcp.node" + std::to_string(self_) + ".loop" + std::to_string(i) + ".",
        options_.loop, hooks));
  }
  if (listen_fd >= 0) loops_[0]->set_listener(listen_fd);
  for (auto& loop : loops_) {
    if (!loop->start()) {
      for (auto& l : loops_) l->request_stop();
      for (auto& l : loops_) l->join();
      loops_.clear();
      return false;
    }
  }
  return true;
}

std::shared_ptr<FrameSink> TcpTransport::sink_for(LaneId lane) {
  MutexLock lock(mutex_);
  auto it = sinks_.find(lane);
  return it == sinks_.end() ? nullptr : it->second;
}

std::shared_ptr<FrameSink> TcpTransport::sink_for_conn(
    const std::shared_ptr<Conn>& conn) {
  // Dialed on behalf of a multiplexed client endpoint: inbound frames on
  // this conn are that endpoint's replies, not ours.
  if (conn->kind() == Conn::Kind::kDialed && conn->local_from() != self_) {
    MutexLock lock(mutex_);
    auto it = endpoints_.find(conn->local_from());
    return it == endpoints_.end() ? nullptr : it->second->sink();
  }
  return sink_for(conn->lane());
}

void TcpTransport::register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) {
  MutexLock lock(mutex_);
  sinks_[lane] = std::move(sink);
}

// connect_to / connect_with_retry run on the *sending* thread, not a loop
// thread: the bounded retry schedule may sleep for hundreds of
// milliseconds, which is exactly what the event loops must never do.
int TcpTransport::connect_to(const TcpPeer& peer) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    // A signal during connect() does NOT abort the handshake: it proceeds
    // asynchronously (POSIX). Wait for completion and read the outcome
    // from SO_ERROR instead of treating the peer as unreachable.
    bool recovered = false;
    int saved = errno;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      while ((rc = ::poll(&pfd, 1, /*ms=*/10'000)) < 0 && errno == EINTR) {
      }
      int err = 0;
      socklen_t err_len = sizeof err;
      recovered = rc > 0 &&
                  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
                  err == 0;
      if (!recovered && rc > 0 && err != 0) saved = err;
    }
    if (!recovered) {
      // close() may clobber errno; callers (connect_with_retry) dispatch on
      // the *connect* failure, so carry it across.
      ::close(fd);
      errno = saved;
      return -1;
    }
  }
  int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
  return fd;
}

int TcpTransport::connect_with_retry(const TcpPeer& peer) {
  // ECONNREFUSED during startup is routine — replicas boot in arbitrary
  // order, so the first sender usually races the peer's listen(). Retry a
  // bounded number of times with exponential backoff; ±25% jitter keeps a
  // whole cluster restarting at once from hammering the late peer in
  // lockstep. Other errnos (unreachable host, bad address) fail fast.
  Rng jitter(0x7c9ULL * self_ ^ (static_cast<std::uint64_t>(peer.port) << 32) ^
             reinterpret_cast<std::uintptr_t>(&peer));
  std::uint32_t delay_ms = connect_base_delay_ms_;
  for (int attempt = 1;; ++attempt) {
    int fd = connect_to(peer);
    if (fd >= 0) return fd;
    if (errno != ECONNREFUSED || attempt >= connect_attempts_) return -1;
    {
      MutexLock lock(mutex_);
      if (stopping_) return -1;
    }
    // delay ± 25%: [3/4·delay, 5/4·delay].
    std::uint64_t lo = delay_ms - delay_ms / 4;
    std::uint64_t sleep_ms = lo + jitter.below(delay_ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    delay_ms = std::min(delay_ms * 2, 500u);
  }
}

void TcpTransport::bind_conn_metrics(const std::shared_ptr<Conn>& conn,
                                     LaneId lane) {
  auto& registry = metrics::MetricsRegistry::global();
  conn->bind_rx(&registry.counter(lane_metric(self_, lane, "rx_frames")),
                &registry.counter(lane_metric(self_, lane, "rx_bytes")));
  conn->bind_tx(&registry.counter(lane_metric(self_, lane, "tx_frames")),
                &registry.counter(lane_metric(self_, lane, "tx_bytes")));
  conn->bind_ingress(
      &registry.counter(lane_metric(self_, lane, "ingress_accepted")),
      &registry.counter(lane_metric(self_, lane, "ingress_shed")),
      &registry.counter(lane_metric(self_, lane, "ingress_deadline_drops")),
      &registry.counter(lane_metric(self_, lane, "egress_dropped")));
}

std::shared_ptr<Conn> TcpTransport::on_accept(int fd) {
  {
    MutexLock lock(mutex_);
    if (stopping_) return nullptr;
  }
  // Identity is unknown until the hello: start with the hostile-client
  // frame bound; on_hello() widens it for authenticated replica peers.
  auto conn = std::make_shared<Conn>(
      fd, Conn::Kind::kAccepted, /*peer=*/0, /*lane=*/0,
      options_.max_frame_client, options_.conn_out_frames,
      options_.conn_out_bytes);
  m_accepted_conns_.add(1);
  return conn;
}

EventLoop* TcpTransport::on_hello(const std::shared_ptr<Conn>& conn) {
  const bool client = conn->peer() >= options_.client_node_floor;
  conn->set_sheddable(client);
  if (!client) conn->decoder().set_max_frame(options_.max_frame_replica);
  auto sink = sink_for(conn->lane());
  if (!sink) {
    COP_LOG_WARN("node %u: no sink for lane %u", self_, conn->lane());
    return nullptr;
  }
  conn->set_sink(std::move(sink));
  bind_conn_metrics(conn, conn->lane());
  {
    MutexLock lock(mutex_);
    if (stopping_) return nullptr;
    // Replies to this client go back over the connection it dialed;
    // latest hello wins if the client reconnects.
    if (client) accepted_routes_[conn->peer()] = conn;
  }
  return loop_for(conn->lane());
}

void TcpTransport::on_conn_closed(const std::shared_ptr<Conn>& conn) {
  if (conn->kind() == Conn::Kind::kAccepted) m_accepted_conns_.add(-1);
  MutexLock lock(mutex_);
  if (conn->kind() == Conn::Kind::kAccepted) {
    auto it = accepted_routes_.find(conn->peer());
    if (it != accepted_routes_.end() && it->second == conn)
      accepted_routes_.erase(it);
  } else {
    auto it = outgoing_.find(
        DialKey{conn->local_from(), conn->peer(), conn->lane()});
    if (it != outgoing_.end() && it->second == conn) outgoing_.erase(it);
  }
}

bool TcpTransport::send(crypto::KeyNodeId to, LaneId lane, Bytes frame) {
  return send_from(self_, to, lane, std::move(frame));
}

bool TcpTransport::send_from(crypto::KeyNodeId from, crypto::KeyNodeId to,
                             LaneId lane, Bytes frame) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(mutex_);
    if (stopping_) return false;
    if (to >= options_.client_node_floor) {
      // Replies ride the connection the client dialed — no dial-back.
      auto it = accepted_routes_.find(to);
      if (it != accepted_routes_.end()) conn = it->second;
    }
    if (!conn) {
      auto it = outgoing_.find(DialKey{from, to, lane});
      if (it != outgoing_.end()) conn = it->second;
    }
  }
  if (!conn) conn = dial(from, to, lane);
  if (!conn) return false;
  return submit_frame(conn, std::move(frame));
}

std::shared_ptr<Conn> TcpTransport::dial(crypto::KeyNodeId from,
                                         crypto::KeyNodeId to, LaneId lane) {
  auto peer = peers_.find(to);  // peers_ is immutable after construction
  if (peer == peers_.end()) return nullptr;
  if (loops_.empty()) return nullptr;  // start() was never called
  // Connect outside mutex_: the retry schedule can block for hundreds of
  // milliseconds, and holding the lock would freeze every other lane's
  // sends (plus sink registration and shutdown) meanwhile.
  int fd = connect_with_retry(peer->second);
  if (fd < 0) return nullptr;
  const bool to_client = to >= options_.client_node_floor;
  // Construct the RAII owner immediately: every failure path below — a
  // hello write error, a raced shutdown, a lost publication race — drops
  // the last reference and the destructor closes the fd.
  auto conn = std::make_shared<Conn>(
      fd, Conn::Kind::kDialed, to, lane,
      to_client ? options_.max_frame_client : options_.max_frame_replica,
      options_.conn_out_frames, options_.conn_out_bytes);
  conn->set_local_from(from);
  conn->set_sheddable(false);  // inbound here is replica traffic: lossless
  Hello hello{from, lane};
  // The hello goes out on the still-blocking socket (bounded 8-byte
  // write); only then does the fd join the non-blocking loop machinery.
  if (!write_all_fd(fd, reinterpret_cast<const Byte*>(&hello), sizeof hello))
    return nullptr;
  if (!set_nonblocking(fd)) return nullptr;
  conn->set_sink(sink_for_conn(conn));  // may be null: resolved lazily
  bind_conn_metrics(conn, lane);
  conn->set_owner(loop_for(lane));
  bool publish = false;
  {
    MutexLock lock(mutex_);
    if (stopping_) return nullptr;
    auto& slot = outgoing_[DialKey{from, to, lane}];
    if (slot) {
      // Another sender dialed this (from, to, lane) while we were outside
      // the lock; keep the published one, drop ours.
      conn = slot;
    } else {
      metrics::MetricsRegistry::global()
          .counter(lane_metric(self_, lane, "connects"))
          .add();
      slot = conn;
      publish = true;
    }
  }
  // Adopt outside mutex_ (lock order: the loop's hooks take mutex_).
  if (publish) conn->owner()->adopt(conn);
  return conn;
}

std::shared_ptr<Transport> TcpTransport::client_endpoint(
    crypto::KeyNodeId node) {
  MutexLock lock(mutex_);
  if (stopping_) return nullptr;
  auto& slot = endpoints_[node];
  if (!slot) slot = std::make_shared<Endpoint>(this, node);
  return slot;
}

void TcpTransport::drop_endpoint(crypto::KeyNodeId node) {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    MutexLock lock(mutex_);
    endpoints_.erase(node);
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
      if (std::get<0>(it->first) == node) {
        conns.push_back(it->second);
        it = outgoing_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : conns) {
    if (EventLoop* owner = conn->owner()) owner->request_close(std::move(conn));
  }
}

void TcpTransport::shutdown() {
  std::vector<std::shared_ptr<Endpoint>> endpoints;
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [node, endpoint] : endpoints_) endpoints.push_back(endpoint);
  }
  // Stop the loops first (outside mutex_ — their close hooks take it);
  // each loop gives every connection one best-effort flush, then closes
  // it, then closes the listener.
  for (auto& loop : loops_) loop->request_stop();
  for (auto& loop : loops_) loop->join();
  {
    MutexLock lock(mutex_);
    for (auto& [lane, sink] : sinks_)
      if (sink) sink->close();
    outgoing_.clear();
    accepted_routes_.clear();
    endpoints_.clear();
  }
  for (auto& endpoint : endpoints) endpoint->close_sink();
}

}  // namespace copbft::transport
