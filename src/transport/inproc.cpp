#include "transport/inproc.hpp"

#include "common/metrics.hpp"

namespace copbft::transport {

void InprocTransport::register_sink(LaneId lane,
                                    std::shared_ptr<FrameSink> sink) {
  network_.register_sink(self_, lane, std::move(sink));
}

bool InprocTransport::send(crypto::KeyNodeId to, LaneId lane, Bytes frame) {
  return network_.send(self_, to, lane, std::move(frame));
}

void InprocTransport::shutdown() { network_.shutdown_node(self_); }

InprocTransport& InprocNetwork::endpoint(crypto::KeyNodeId node) {
  MutexLock lock(mutex_);
  auto& slot = endpoints_[node];
  if (!slot) slot = std::make_unique<InprocTransport>(*this, node);
  return *slot;
}

void InprocNetwork::register_sink(crypto::KeyNodeId node, LaneId lane,
                                  std::shared_ptr<FrameSink> sink) {
  MutexLock lock(mutex_);
  sinks_[{node, lane}] = std::move(sink);
}

bool InprocNetwork::send(crypto::KeyNodeId from, crypto::KeyNodeId to,
                         LaneId lane, Bytes frame) {
  std::shared_ptr<FrameSink> sink;
  LaneCounters* counters = nullptr;
  {
    MutexLock lock(mutex_);
    if (filter_ && !filter_(from, to, lane)) return true;
    auto it = sinks_.find({to, lane});
    if (it == sinks_.end()) return false;
    sink = it->second;
    auto& slot = lane_counters_[lane];
    if (!slot) {
      auto& registry = metrics::MetricsRegistry::global();
      std::string prefix = "inproc.lane" + std::to_string(lane) + ".";
      slot = std::make_unique<LaneCounters>(
          LaneCounters{registry.counter(prefix + "frames"),
                       registry.counter(prefix + "bytes")});
    }
    counters = slot.get();
  }
  counters->frames.add();
  counters->bytes.add(frame.size());
  // Blocking deliver outside the registry lock: backpressure without
  // serializing unrelated senders.
  return sink->deliver(ReceivedFrame{from, lane, std::move(frame)});
}

void InprocNetwork::shutdown_node(crypto::KeyNodeId node) {
  MutexLock lock(mutex_);
  for (auto& [key, sink] : sinks_)
    if (key.first == node && sink) sink->close();
}

void InprocNetwork::shutdown_all() {
  MutexLock lock(mutex_);
  for (auto& [key, sink] : sinks_)
    if (sink) sink->close();
}

}  // namespace copbft::transport
