// In-process transport: nodes within one process exchange frames through
// frame sinks. Used by integration tests, examples and the threaded
// runtime when a whole cluster is hosted in a single process.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/metrics.hpp"
#include "common/threading.hpp"
#include "transport/transport.hpp"

namespace copbft::transport {

class InprocNetwork;

/// Per-node endpoint of an InprocNetwork.
class InprocTransport final : public Transport {
 public:
  InprocTransport(InprocNetwork& network, crypto::KeyNodeId self)
      : network_(network), self_(self) {}

  void register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) override;
  bool send(crypto::KeyNodeId to, LaneId lane, Bytes frame) override;
  void shutdown() override;

  crypto::KeyNodeId self() const { return self_; }

 private:
  InprocNetwork& network_;
  crypto::KeyNodeId self_;
};

/// The shared fabric: routes frames to the destination node's lane sink.
/// Optionally drops frames via a fault-injection hook (tests).
class InprocNetwork {
 public:
  /// Creates (or returns) the endpoint for `node`.
  InprocTransport& endpoint(crypto::KeyNodeId node);

  /// Fault injection: frames for which the filter returns false are
  /// silently dropped (as a lossy network would).
  using DeliverFilter = std::function<bool(
      crypto::KeyNodeId from, crypto::KeyNodeId to, LaneId lane)>;
  void set_filter(DeliverFilter filter) {
    MutexLock lock(mutex_);
    filter_ = std::move(filter);
  }

  void register_sink(crypto::KeyNodeId node, LaneId lane,
                     std::shared_ptr<FrameSink> sink);
  bool send(crypto::KeyNodeId from, crypto::KeyNodeId to, LaneId lane,
            Bytes frame);
  void shutdown_node(crypto::KeyNodeId node);
  void shutdown_all();

 private:
  struct LaneCounters {
    metrics::Counter& frames;
    metrics::Counter& bytes;
  };

  Mutex mutex_;
  std::map<crypto::KeyNodeId, std::unique_ptr<InprocTransport>> endpoints_
      COP_GUARDED_BY(mutex_);
  std::map<std::pair<crypto::KeyNodeId, LaneId>, std::shared_ptr<FrameSink>>
      sinks_ COP_GUARDED_BY(mutex_);
  /// Per-lane traffic counters, bound lazily on first send.
  std::map<LaneId, std::unique_ptr<LaneCounters>> lane_counters_
      COP_GUARDED_BY(mutex_);
  DeliverFilter filter_ COP_GUARDED_BY(mutex_);
};

}  // namespace copbft::transport
