#include "transport/event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "common/time.hpp"

namespace copbft::transport {
namespace {

constexpr std::size_t kMaxIov = 64;
constexpr int kAcceptBatch = 256;
constexpr std::uint64_t kListenerBackoffUs = 100'000;  // EMFILE cool-down

}  // namespace

// ---------------------------------------------------------------------------
// FrameDecoder

COP_HOT bool FrameDecoder::feed(const Byte* data, std::size_t len,
                                std::vector<Bytes>& out) {
  while (len > 0) {
    if (!in_frame_) {
      while (header_have_ < sizeof(header_) && len > 0) {
        header_[header_have_++] = *data++;
        --len;
      }
      if (header_have_ < sizeof(header_)) return true;
      std::uint32_t frame_len = 0;
      std::memcpy(&frame_len, header_, sizeof frame_len);
      // Bound check BEFORE the payload allocation: one hostile 4-byte
      // header must not reserve gigabytes.
      if (frame_len > max_frame_) return false;
      header_have_ = 0;
      if (frame_len == 0) {
        out.emplace_back();
        continue;
      }
      in_frame_ = true;
      frame_.resize(frame_len);
      frame_have_ = 0;
    }
    const std::size_t take = std::min(len, frame_.size() - frame_have_);
    std::memcpy(frame_.data() + frame_have_, data, take);
    frame_have_ += take;
    data += take;
    len -= take;
    if (frame_have_ == frame_.size()) {
      out.push_back(std::move(frame_));
      frame_ = Bytes{};
      frame_have_ = 0;
      in_frame_ = false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Flush-cursor helpers (pure; unit-tested against torn boundaries)

std::size_t build_flush_iovecs(const std::deque<OutFrame>& queue,
                               std::size_t front_offset, struct iovec* iov,
                               std::size_t max_iov) {
  std::size_t count = 0;
  for (const OutFrame& frame : queue) {
    if (count >= max_iov) break;
    // The header and the payload are separate segments; a partially sent
    // front frame resumes mid-header or mid-payload.
    const auto* header = reinterpret_cast<const Byte*>(&frame.len);
    std::size_t skip = front_offset;
    front_offset = 0;  // only the first frame can be partially written
    if (skip < sizeof frame.len) {
      iov[count].iov_base = const_cast<Byte*>(header + skip);
      iov[count].iov_len = sizeof frame.len - skip;
      ++count;
      skip = 0;
    } else {
      skip -= sizeof frame.len;
    }
    if (count >= max_iov) break;
    if (frame.payload.size() > skip) {
      iov[count].iov_base = const_cast<Byte*>(frame.payload.data() + skip);
      iov[count].iov_len = frame.payload.size() - skip;
      ++count;
    }
  }
  return count;
}

std::size_t consume_flushed(std::deque<OutFrame>& queue,
                            std::size_t front_offset, std::size_t written,
                            std::size_t& frames_done,
                            std::size_t& bytes_released) {
  frames_done = 0;
  bytes_released = 0;
  while (written > 0 && !queue.empty()) {
    const std::size_t total = sizeof(OutFrame{}.len) + queue.front().payload.size();
    const std::size_t remaining = total - front_offset;
    if (written >= remaining) {
      written -= remaining;
      front_offset = 0;
      bytes_released += total;
      ++frames_done;
      queue.pop_front();
    } else {
      front_offset += written;
      written = 0;
    }
  }
  return front_offset;
}

// ---------------------------------------------------------------------------
// Conn

Conn::Conn(int fd, Kind kind, crypto::KeyNodeId peer, LaneId lane,
           std::uint32_t max_frame, std::size_t max_out_frames,
           std::size_t max_out_bytes)
    : fd_(fd),
      kind_(kind),
      peer_(peer),
      lane_(lane),
      hello_done_(kind == Kind::kDialed),
      decoder_(max_frame),
      max_out_frames_(max_out_frames),
      max_out_bytes_(max_out_bytes) {}

Conn::~Conn() {
  // RAII backstop: every error path that abandons the connection — a
  // failed hello write, a lost publication race, shutdown — still closes
  // the socket when the last reference drops.
  if (fd_ >= 0) ::close(fd_);
}

Conn::Offer Conn::offer(Bytes frame) {
  MutexLock lock(out_mutex_);
  if (closed_) return Offer::kClosed;
  const std::size_t wire = frame.size() + sizeof(OutFrame{}.len);
  if (out_.size() >= max_out_frames_ || out_bytes_ + wire > max_out_bytes_)
    return Offer::kOverflow;
  out_bytes_ += wire;
  out_.push_back(OutFrame{static_cast<std::uint32_t>(frame.size()),
                          std::move(frame)});
  if (flush_scheduled_) return Offer::kQueued;
  flush_scheduled_ = true;
  return Offer::kQueuedNeedFlush;
}

std::size_t Conn::begin_flush(struct iovec* iov, std::size_t max_iov) {
  MutexLock lock(out_mutex_);
  if (closed_ || out_.empty()) {
    // Clearing the latch under the same mutex offer() takes means a
    // sender racing this drain re-schedules: no frame is ever stranded.
    flush_scheduled_ = false;
    return 0;
  }
  return build_flush_iovecs(out_, front_offset_, iov, max_iov);
}

std::size_t Conn::end_flush(std::size_t written, std::size_t& bytes_released) {
  MutexLock lock(out_mutex_);
  std::size_t frames_done = 0;
  front_offset_ =
      consume_flushed(out_, front_offset_, written, frames_done, bytes_released);
  out_bytes_ -= std::min(out_bytes_, bytes_released);
  return frames_done;
}

void Conn::mark_closed() {
  MutexLock lock(out_mutex_);
  closed_ = true;
  out_.clear();
  out_bytes_ = 0;
  front_offset_ = 0;
  flush_scheduled_ = false;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(std::string name, std::string metric_prefix,
                     EventLoopOptions opts, EventLoopHooks hooks)
    : name_(std::move(name)),
      opts_(opts),
      hooks_(std::move(hooks)),
      scratch_(opts.read_chunk),
      m_wakeups_(metrics::MetricsRegistry::global().counter(metric_prefix +
                                                            "wakeups")),
      m_writev_calls_(metrics::MetricsRegistry::global().counter(
          metric_prefix + "writev_calls")),
      m_protocol_errors_(metrics::MetricsRegistry::global().counter(
          metric_prefix + "protocol_errors")),
      m_rx_batch_frames_(metrics::MetricsRegistry::global().histogram(
          metric_prefix + "rx_batch_frames")) {}

EventLoop::~EventLoop() {
  request_stop();
  join();
  if (listen_fd_ >= 0) ::close(listen_fd_);  // start() never ran
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return false;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return false;
  }
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (listen_fd_ >= 0) {
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  thread_ = named_thread(name_, [this] { run(); });
  return true;
}

void EventLoop::request_stop() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake();
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::adopt(std::shared_ptr<Conn> conn) {
  {
    MutexLock lock(mutex_);
    if (!stopping_) {
      inbox_.push_back(std::move(conn));
      conn = nullptr;
    }
  }
  if (conn) {
    // Raced shutdown: the loop will never pick it up, close it here.
    conn->mark_closed();
    if (hooks_.on_close) hooks_.on_close(conn);
    return;
  }
  wake();
}

void EventLoop::schedule_flush(std::shared_ptr<Conn> conn) {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;  // frames die with the connections at shutdown
    dirty_.push_back(std::move(conn));
  }
  wake();
}

void EventLoop::request_close(std::shared_ptr<Conn> conn) {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;  // the shutdown path closes every conn anyway
    closing_.push_back(std::move(conn));
  }
  wake();
}

void EventLoop::run() {
  std::vector<struct epoll_event> events(256);
  for (;;) {
    bool stopping = false;
    drain_control(stopping);
    if (stopping) break;
    const int timeout = want_fast_poll() ? 1 : opts_.epoll_wait_ms;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      COP_LOG_WARN("%s: epoll_wait failed: %s", name_.c_str(),
                   std::strerror(errno));
      break;
    }
    m_wakeups_.add();
    const std::uint64_t now = now_us();
    for (int i = 0; i < n; ++i) dispatch(events[i], now);
    pump_retries(now);
    pump_paused();
    if (listener_paused_until_us_ != 0 && now >= listener_paused_until_us_ &&
        listen_fd_ >= 0) {
      struct epoll_event ev {};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev);
      listener_paused_until_us_ = 0;
    }
  }

  // Shutdown: adopt any last-moment connections so their fds are closed,
  // give every queue one best-effort non-blocking flush (quick
  // send-then-stop callers lose nothing the kernel would take), close all.
  {
    MutexLock lock(mutex_);
    for (auto& conn : inbox_) conns_.emplace(conn->fd(), conn);
    inbox_.clear();
    dirty_.clear();
  }
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) all.push_back(conn);
  for (auto& conn : all) {
    if (conn->fd() >= 0) flush_conn(conn);
    close_conn(conn);
  }
  retry_.clear();
  paused_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventLoop::drain_control(bool& stopping) {
  std::vector<std::shared_ptr<Conn>> adopted;
  std::vector<std::shared_ptr<Conn>> dirty;
  std::vector<std::shared_ptr<Conn>> closing;
  {
    MutexLock lock(mutex_);
    stopping = stopping_;
    adopted.swap(inbox_);
    dirty.swap(dirty_);
    closing.swap(closing_);
  }
  if (stopping) {
    // Hand the adoptions back so the shutdown path closes them.
    MutexLock lock(mutex_);
    for (auto& conn : adopted) inbox_.push_back(std::move(conn));
    return;
  }
  for (auto& conn : adopted) register_conn(conn);
  for (auto& conn : closing) {
    EventLoop* owner = conn->owner();
    if (owner != this) {
      if (owner) owner->request_close(std::move(conn));
      continue;
    }
    if (conn->fd() >= 0) close_conn(conn);
  }
  for (auto& conn : dirty) {
    EventLoop* owner = conn->owner();
    if (owner != this) {
      // The conn migrated between enqueue and drain; forward the flush.
      if (owner) owner->schedule_flush(std::move(conn));
      continue;
    }
    if (conn->fd() >= 0) flush_conn(conn);
  }
}

void EventLoop::register_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd() < 0) return;
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd(), &ev) < 0) {
    conn->mark_closed();
    if (hooks_.on_close) hooks_.on_close(conn);
    return;
  }
  conn->registered_ = true;
  conn->want_write_ = false;
  conns_[conn->fd()] = conn;
  // A migrated conn may carry queued output from its previous loop.
  if (conn->has_pending_out()) flush_conn(conn);
}

std::shared_ptr<Conn> EventLoop::lookup(int fd) {
  auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second;
}

void EventLoop::dispatch(const struct epoll_event& ev, std::uint64_t now) {
  const int fd = ev.data.fd;
  if (fd == wake_fd_) {
    std::uint64_t drained = 0;
    [[maybe_unused]] ssize_t n = ::read(wake_fd_, &drained, sizeof drained);
    return;
  }
  if (fd == listen_fd_) {
    accept_batch();
    return;
  }
  auto conn = lookup(fd);
  if (!conn) return;
  if (ev.events & EPOLLIN) handle_readable(conn, now);
  if (conn->fd() < 0) return;
  if (ev.events & EPOLLOUT) flush_conn(conn);
  if (conn->fd() < 0) return;
  if (ev.events & (EPOLLERR | EPOLLHUP)) close_conn(conn);
}

void EventLoop::accept_batch() {
  for (int i = 0; i < kAcceptBatch; ++i) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: a level-triggered listener would spin at 100% CPU.
        // Disarm it and retry after a cool-down.
        struct epoll_event ev {};
        ev.data.fd = listen_fd_;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev);
        listener_paused_until_us_ = now_us() + kListenerBackoffUs;
      }
      return;  // EAGAIN: backlog drained
    }
    int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    auto conn = hooks_.on_accept ? hooks_.on_accept(fd) : nullptr;
    if (!conn) {
      ::close(fd);
      continue;
    }
    conn->set_owner(this);
    register_conn(conn);
  }
}

COP_HOT void EventLoop::handle_readable(const std::shared_ptr<Conn>& conn,
                                        std::uint64_t now) {
  std::size_t budget = opts_.max_read_per_wake;
  std::size_t batch_frames = 0;
  bool dead = false;
  while (budget > 0 && conn->fd_ >= 0 && !conn->paused_ &&
         conn->migrate_target_ == nullptr) {
    const std::size_t want = std::min(scratch_.size(), budget);
    const ssize_t n = ::recv(conn->fd_, scratch_.data(), want, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      dead = true;
      break;
    }
    budget -= static_cast<std::size_t>(n);
    const Byte* data = scratch_.data();
    std::size_t len = static_cast<std::size_t>(n);
    if (!conn->hello_done_) {
      if (!consume_hello(conn, data, len)) {
        dead = true;
        break;
      }
      if (!conn->hello_done_) continue;  // partial hello, need more bytes
    }
    frames_.clear();
    if (!conn->decoder_.feed(data, len, frames_)) {
      // Oversized length header: Byzantine or corrupt peer.
      m_protocol_errors_.add();
      dead = true;
      break;
    }
    batch_frames += frames_.size();
    conn->count_rx(frames_.size(), static_cast<std::uint64_t>(n));
    for (Bytes& frame : frames_) {
      if (conn->fd_ < 0) break;
      if (conn->paused_) {
        // A lossless sink went busy mid-batch: park the rest in order.
        conn->parked_.push_back(
            ReceivedFrame{conn->peer_, conn->lane_, std::move(frame)});
        continue;
      }
      route_frame(conn, std::move(frame), now);
    }
    if (static_cast<std::size_t>(n) < want) break;  // socket drained
  }
  if (batch_frames > 0) m_rx_batch_frames_.record(batch_frames);
  if (dead) {
    close_conn(conn);
    return;
  }
  if (conn->fd_ >= 0 && conn->migrate_target_ != nullptr) {
    EventLoop* target = conn->migrate_target_;
    conn->migrate_target_ = nullptr;
    migrate(conn, target);
  }
}

bool EventLoop::consume_hello(const std::shared_ptr<Conn>& conn,
                              const Byte*& data, std::size_t& len) {
  while (conn->hello_have_ < sizeof(conn->hello_buf_) && len > 0) {
    conn->hello_buf_[conn->hello_have_++] = *data++;
    --len;
  }
  if (conn->hello_have_ < sizeof(conn->hello_buf_)) return true;
  std::uint32_t from = 0;
  std::uint32_t lane = 0;
  std::memcpy(&from, conn->hello_buf_, sizeof from);
  std::memcpy(&lane, conn->hello_buf_ + sizeof from, sizeof lane);
  conn->set_identity(from, lane);
  EventLoop* target = hooks_.on_hello ? hooks_.on_hello(conn) : this;
  if (target == nullptr) return false;  // rejected (no sink for the lane)
  conn->migrate_target_ = (target == this) ? nullptr : target;
  return true;
}

COP_HOT void EventLoop::route_frame(const std::shared_ptr<Conn>& conn,
                                    Bytes frame, std::uint64_t now) {
  ReceivedFrame rf{conn->peer_, conn->lane_, std::move(frame)};
  if (conn->sheddable_) {
    // Admission control: order within the lane is preserved, so while a
    // retry queue exists new frames append behind it.
    auto& queue = lane_retry(conn->lane_);
    if (!queue.empty()) {
      enqueue_retry(conn, std::move(rf), now);
      return;
    }
  }
  auto sink = conn->sink();
  if (!sink && hooks_.resolve_sink) {
    sink = hooks_.resolve_sink(conn);
    if (sink) conn->set_sink(sink);
  }
  if (!sink) {
    m_protocol_errors_.add();
    return;
  }
  switch (sink->try_deliver(rf)) {
    case Admit::kAdmitted:
      conn->count_ingress_accepted();
      return;
    case Admit::kBusy:
      if (conn->sheddable_) {
        enqueue_retry(conn, std::move(rf), now);
      } else {
        // Lossless backpressure: park the frame and stop reading; the
        // kernel's receive window pushes back on the peer.
        conn->parked_.push_back(std::move(rf));
        pause_reads(conn);
      }
      return;
    case Admit::kClosed:
      close_conn(conn);
      return;
  }
}

void EventLoop::enqueue_retry(const std::shared_ptr<Conn>& conn,
                              ReceivedFrame frame, std::uint64_t now) {
  auto& queue = lane_retry(frame.lane);
  if (queue.size() >= opts_.ingress_retry_budget) {
    conn->count_ingress_shed();
    return;  // shed: the client's retransmission is the retry
  }
  queue.push_back(PendingFrame{conn, std::move(frame),
                               now + opts_.ingress_retry_deadline_us});
  ++retry_depth_;
}

std::deque<EventLoop::PendingFrame>& EventLoop::lane_retry(LaneId lane) {
  if (lane >= retry_.size()) retry_.resize(lane + 1);
  return retry_[lane];
}

void EventLoop::pump_retries(std::uint64_t now) {
  if (retry_depth_ == 0) return;
  for (auto& queue : retry_) {
    while (!queue.empty()) {
      PendingFrame& entry = queue.front();
      if (now >= entry.deadline_us) {
        // The request sat at ingress longer than it would stay fresh;
        // drop it — the client retransmits against live state instead of
        // the replica chewing through a stale backlog.
        entry.conn->count_deadline_drop();
        queue.pop_front();
        --retry_depth_;
        continue;
      }
      auto sink = entry.conn->sink();
      const Admit admit =
          sink ? sink->try_deliver(entry.frame) : Admit::kClosed;
      if (admit == Admit::kBusy) break;  // keep order; retry next tick
      if (admit == Admit::kAdmitted) entry.conn->count_ingress_accepted();
      if (admit == Admit::kClosed && entry.conn->fd() >= 0)
        close_conn(entry.conn);
      queue.pop_front();
      --retry_depth_;
    }
  }
}

void EventLoop::pump_paused() {
  for (auto it = paused_.begin(); it != paused_.end();) {
    const std::shared_ptr<Conn>& conn = *it;
    if (conn->fd() < 0) {
      it = paused_.erase(it);
      continue;
    }
    bool closed = false;
    while (!conn->parked_.empty()) {
      auto sink = conn->sink();
      const Admit admit =
          sink ? sink->try_deliver(conn->parked_.front()) : Admit::kClosed;
      if (admit == Admit::kBusy) break;
      if (admit == Admit::kClosed) {
        closed = true;
        break;
      }
      conn->count_ingress_accepted();
      conn->parked_.pop_front();
    }
    if (closed) {
      auto dead = conn;
      it = paused_.erase(it);
      close_conn(dead);
      continue;
    }
    if (conn->parked_.empty()) {
      conn->paused_ = false;
      update_epoll_interest(conn);
      it = paused_.erase(it);
      continue;
    }
    ++it;
  }
}

void EventLoop::pause_reads(const std::shared_ptr<Conn>& conn) {
  if (conn->paused_) return;
  conn->paused_ = true;
  update_epoll_interest(conn);
  paused_.push_back(conn);
}

void EventLoop::update_epoll_interest(const std::shared_ptr<Conn>& conn) {
  if (!conn->registered_ || conn->fd() < 0) return;
  struct epoll_event ev {};
  ev.events = (conn->paused_ ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn->want_write_ ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

void EventLoop::set_want_write(const std::shared_ptr<Conn>& conn, bool want) {
  if (conn->want_write_ == want) return;
  conn->want_write_ = want;
  update_epoll_interest(conn);
}

COP_HOT void EventLoop::flush_conn(const std::shared_ptr<Conn>& conn) {
  struct iovec iov[kMaxIov];
  for (;;) {
    const std::size_t count = conn->begin_flush(iov, kMaxIov);
    if (count == 0) {
      if (conn->want_write_) set_want_write(conn, false);
      return;
    }
    struct msghdr mh {};
    mh.msg_iov = iov;
    mh.msg_iovlen = count;
    const ssize_t n = ::sendmsg(conn->fd_, &mh, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write_) set_want_write(conn, true);
      return;  // resume on EPOLLOUT
    }
    if (n <= 0) {
      close_conn(conn);
      return;
    }
    m_writev_calls_.add();
    std::size_t released = 0;
    const std::size_t done =
        conn->end_flush(static_cast<std::size_t>(n), released);
    conn->count_tx(done, released);
  }
}

void EventLoop::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd() < 0) return;
  if (conn->registered_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
    conn->registered_ = false;
  }
  conns_.erase(conn->fd());
  std::erase(paused_, conn);
  conn->mark_closed();
  if (hooks_.on_close) hooks_.on_close(conn);
}

void EventLoop::migrate(const std::shared_ptr<Conn>& conn, EventLoop* target) {
  if (conn->registered_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
    conn->registered_ = false;
  }
  conn->want_write_ = false;
  conns_.erase(conn->fd());
  conn->set_owner(target);
  target->adopt(conn);
}

bool EventLoop::want_fast_poll() const {
  return retry_depth_ > 0 || !paused_.empty() ||
         listener_paused_until_us_ != 0;
}

// ---------------------------------------------------------------------------

bool submit_frame(const std::shared_ptr<Conn>& conn, Bytes frame) {
  switch (conn->offer(std::move(frame))) {
    case Conn::Offer::kQueued:
      return true;
    case Conn::Offer::kQueuedNeedFlush:
      if (EventLoop* owner = conn->owner()) owner->schedule_flush(conn);
      return true;
    case Conn::Offer::kOverflow:
      // Egress admission: dropping beats blocking the sending (pillar)
      // thread on a slow peer; the protocol absorbs loss by design.
      conn->count_egress_dropped();
      return false;
    case Conn::Offer::kClosed:
      return false;
  }
  return false;
}

}  // namespace copbft::transport
