// Transport abstraction.
//
// A transport moves opaque frames between nodes. Frames are addressed by
// (node, lane): lanes model the *private connections* of COP pillars
// (paper §4.2.3) — pillar p of replica A talks to pillar p of replica B on
// lane p, and each lane can be backed by its own socket / NIC adapter.
// Delivery is push-based: receivers register one sink per lane.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "common/queue.hpp"
#include "crypto/key_store.hpp"

namespace copbft::transport {

using LaneId = std::uint32_t;

struct ReceivedFrame {
  crypto::KeyNodeId from = 0;
  LaneId lane = 0;
  Bytes bytes;
};

/// Outcome of a non-blocking delivery attempt (admission control).
enum class Admit : std::uint8_t {
  kAdmitted,  ///< the sink took the frame
  kBusy,      ///< the sink is full right now; retry, queue or shed
  kClosed,    ///< the sink shut down; the connection should close
};

/// Destination of received frames. Implementations are thread-safe;
/// deliver() may block for backpressure and returns false once closed.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual bool deliver(ReceivedFrame frame) = 0;
  virtual void close() = 0;

  /// Non-blocking admission used by event-driven transports: an event-loop
  /// thread multiplexes thousands of connections and must never park on
  /// one sink's backpressure. On kBusy/kClosed `frame` is left intact so
  /// the caller can queue it with a deadline or shed it. The default
  /// bridges sinks that predate admission control onto their blocking
  /// deliver() — correct, but it can stall the calling loop, so the
  /// high-fan-in sinks (Inbox, Pillar, StateTransferManager) override it.
  virtual Admit try_deliver(ReceivedFrame& frame) {
    return deliver(std::move(frame)) ? Admit::kAdmitted : Admit::kClosed;
  }
};

/// FrameSink backed by a bounded queue; the default receiving end for
/// clients and tests.
class Inbox final : public FrameSink {
 public:
  explicit Inbox(std::size_t capacity = 4096) : queue_(capacity) {}

  bool deliver(ReceivedFrame frame) override {
    return queue_.push(std::move(frame));
  }
  Admit try_deliver(ReceivedFrame& frame) override {
    if (queue_.try_push_ref(frame)) return Admit::kAdmitted;
    return queue_.closed() ? Admit::kClosed : Admit::kBusy;
  }
  void close() override { queue_.close(); }

  BoundedQueue<ReceivedFrame>& queue() { return queue_; }

 private:
  BoundedQueue<ReceivedFrame> queue_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers the receiving sink for `lane`. Must be called before frames
  /// for that lane arrive; one sink may serve several lanes.
  virtual void register_sink(LaneId lane, std::shared_ptr<FrameSink> sink) = 0;

  /// Sends a frame to `to` on `lane`. Returns false if the peer is
  /// unreachable or the transport is shut down. Per (sender, lane) FIFO
  /// order is preserved; no ordering holds across lanes, which is exactly
  /// what lets lanes proceed independently (§4.2.3).
  virtual bool send(crypto::KeyNodeId to, LaneId lane, Bytes frame) = 0;

  /// Stops background activity and closes registered sinks.
  virtual void shutdown() = 0;
};

}  // namespace copbft::transport
