// PBFT-style authenticators: a vector of per-recipient MACs.
//
// A sender authenticates one message for many recipients by computing one
// MAC per recipient over the same bytes. Each recipient verifies only its
// own entry. This is the MAC-based authentication mode PBFT and BFT-SMaRt
// use by default and the dominant CPU cost the paper discusses.
#pragma once

#include <vector>

#include "crypto/provider.hpp"

namespace copbft::crypto {

struct AuthenticatorEntry {
  KeyNodeId recipient = 0;
  Mac mac;

  bool operator==(const AuthenticatorEntry&) const = default;
};

struct Authenticator {
  std::vector<AuthenticatorEntry> entries;

  bool operator==(const Authenticator&) const = default;

  /// Builds MACs from `sender` to each of `recipients` over `data`.
  static Authenticator build(const CryptoProvider& crypto, KeyNodeId sender,
                             const std::vector<KeyNodeId>& recipients,
                             ByteSpan data);

  /// Verifies the entry addressed to `self`; false if absent or wrong.
  bool verify(const CryptoProvider& crypto, KeyNodeId sender, KeyNodeId self,
              ByteSpan data) const;

  /// Serialized size in bytes (count prefix + entries).
  std::size_t wire_size() const;
};

}  // namespace copbft::crypto
