#include "crypto/hmac.hpp"

namespace copbft::crypto {

Digest hmac_sha256(const SymmetricKey& key, ByteSpan data) {
  // Key is exactly 32 bytes (< 64-byte block), so no pre-hash is needed.
  Byte ipad[64];
  Byte opad[64];
  for (std::size_t i = 0; i < 64; ++i) {
    Byte k = i < key.bytes.size() ? key.bytes[i] : 0;
    ipad[i] = static_cast<Byte>(k ^ 0x36);
    opad[i] = static_cast<Byte>(k ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ByteSpan{ipad, sizeof ipad});
  inner.update(data);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteSpan{opad, sizeof opad});
  outer.update(inner_digest.span());
  return outer.finish();
}

Mac hmac_mac(const SymmetricKey& key, ByteSpan data) {
  Digest full = hmac_sha256(key, data);
  Mac mac;
  std::copy_n(full.bytes.begin(), mac.bytes.size(), mac.bytes.begin());
  return mac;
}

bool mac_equal(const Mac& a, const Mac& b) {
  Byte diff = 0;
  for (std::size_t i = 0; i < a.bytes.size(); ++i)
    diff |= static_cast<Byte>(a.bytes[i] ^ b.bytes[i]);
  return diff == 0;
}

}  // namespace copbft::crypto
