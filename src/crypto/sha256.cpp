#include "crypto/sha256.hpp"

#include <cstring>

namespace copbft::crypto {
namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load32_be(const Byte* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store32_be(Byte* p, std::uint32_t v) {
  p[0] = static_cast<Byte>(v >> 24);
  p[1] = static_cast<Byte>(v >> 16);
  p[2] = static_cast<Byte>(v >> 8);
  p[3] = static_cast<Byte>(v);
}

}  // namespace

void Sha256::reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256::compress(const Byte block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load32_be(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(ByteSpan data) {
  total_bytes_ += data.size();
  const Byte* p = data.data();
  std::size_t n = data.size();

  if (buffered_ > 0) {
    std::size_t take = std::min(n, sizeof buffer_ - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof buffer_) {
      compress(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    compress(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest Sha256::finish() {
  std::uint64_t bit_len = total_bytes_ * 8;

  // Padding: 0x80, zeros, 64-bit big-endian length.
  Byte pad[72];
  std::size_t pad_len = (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i)
    pad[pad_len + i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  update(ByteSpan{pad, pad_len + 8});

  Digest out;
  for (int i = 0; i < 8; ++i) store32_be(out.bytes.data() + 4 * i, state_[i]);
  return out;
}

}  // namespace copbft::crypto
