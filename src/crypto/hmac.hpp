// HMAC-SHA256 (RFC 2104), built on our SHA-256.
#pragma once

#include "common/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/sha256.hpp"

namespace copbft::crypto {

/// Symmetric key used for pairwise message authentication.
struct SymmetricKey {
  std::array<Byte, 32> bytes{};

  bool operator==(const SymmetricKey&) const = default;
  ByteSpan span() const { return {bytes.data(), bytes.size()}; }
};

/// One-shot HMAC-SHA256 of `data` under `key`.
Digest hmac_sha256(const SymmetricKey& key, ByteSpan data);

/// HMAC truncated to a 128-bit MAC (the form carried in authenticators).
Mac hmac_mac(const SymmetricKey& key, ByteSpan data);

/// Constant-time MAC comparison.
bool mac_equal(const Mac& a, const Mac& b);

}  // namespace copbft::crypto
