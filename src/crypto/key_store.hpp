// Pairwise symmetric session keys between nodes (replicas and clients).
//
// In a deployment these keys would be negotiated via a handshake; here they
// are derived deterministically from a cluster master secret, which gives
// every node the same view of the pairwise keys without extra protocol.
#pragma once

#include <cstdint>

#include "crypto/hmac.hpp"

namespace copbft::crypto {

/// Node identifier in the key space. Replica and client ids live in the
/// same namespace (see protocol/types.hpp for the partitioning convention).
using KeyNodeId = std::uint32_t;

class KeyStore {
 public:
  /// `master` seeds the whole cluster's pairwise keys.
  explicit KeyStore(const SymmetricKey& master) : master_(master) {}

  /// Deterministic key for the unordered pair {a, b}; key_for(a,b) ==
  /// key_for(b,a).
  SymmetricKey key_for(KeyNodeId a, KeyNodeId b) const;

 private:
  SymmetricKey master_;
};

/// Convenience: derives a master key from a seed value (tests, examples).
SymmetricKey master_key_from_seed(std::uint64_t seed);

}  // namespace copbft::crypto
