#include "crypto/key_store.hpp"

namespace copbft::crypto {

SymmetricKey KeyStore::key_for(KeyNodeId a, KeyNodeId b) const {
  if (a > b) std::swap(a, b);
  Byte info[2 * sizeof(KeyNodeId) + 4] = {'p', 'a', 'i', 'r'};
  for (int i = 0; i < 4; ++i) {
    info[4 + i] = static_cast<Byte>(a >> (8 * i));
    info[8 + i] = static_cast<Byte>(b >> (8 * i));
  }
  Digest d = hmac_sha256(master_, ByteSpan{info, sizeof info});
  SymmetricKey key;
  key.bytes = d.bytes;
  return key;
}

SymmetricKey master_key_from_seed(std::uint64_t seed) {
  Byte raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<Byte>(seed >> (8 * i));
  SymmetricKey zero{};
  Digest d = hmac_sha256(zero, ByteSpan{raw, sizeof raw});
  SymmetricKey key;
  key.bytes = d.bytes;
  return key;
}

}  // namespace copbft::crypto
