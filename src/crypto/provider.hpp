// CryptoProvider — the seam between protocol logic and cryptography.
//
// Two implementations:
//  * RealCrypto  — SHA-256 / HMAC-SHA256 over the cluster KeyStore; used by
//    the threaded runtime, integration tests and examples.
//  * NullCrypto  — cheap non-cryptographic stand-ins with identical
//    semantics (equal inputs -> equal digests/MACs, unequal inputs almost
//    surely differ); used by the simulator, where CPU cost is accounted by
//    the cost model instead of burned for real, and by fast unit tests.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/key_store.hpp"

namespace copbft::crypto {

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  /// Content digest used for request/batch/state identity.
  virtual Digest digest(ByteSpan data) const = 0;

  /// MAC over `data` for the directed pair sender -> receiver.
  virtual Mac mac(KeyNodeId sender, KeyNodeId receiver,
                  ByteSpan data) const = 0;

  virtual bool verify_mac(KeyNodeId sender, KeyNodeId receiver, ByteSpan data,
                          const Mac& candidate) const {
    return mac_equal(mac(sender, receiver, data), candidate);
  }
};

class RealCrypto final : public CryptoProvider {
 public:
  explicit RealCrypto(KeyStore keys) : keys_(std::move(keys)) {}

  Digest digest(ByteSpan data) const override;
  Mac mac(KeyNodeId sender, KeyNodeId receiver, ByteSpan data) const override;

 private:
  KeyStore keys_;
};

class NullCrypto final : public CryptoProvider {
 public:
  Digest digest(ByteSpan data) const override;
  Mac mac(KeyNodeId sender, KeyNodeId receiver, ByteSpan data) const override;
};

/// RealCrypto over a key store seeded from `seed`.
std::unique_ptr<CryptoProvider> make_real_crypto(std::uint64_t seed);
std::unique_ptr<CryptoProvider> make_null_crypto();

}  // namespace copbft::crypto
