#include "crypto/authenticator.hpp"

namespace copbft::crypto {

Authenticator Authenticator::build(const CryptoProvider& crypto,
                                   KeyNodeId sender,
                                   const std::vector<KeyNodeId>& recipients,
                                   ByteSpan data) {
  Authenticator auth;
  auth.entries.reserve(recipients.size());
  for (KeyNodeId r : recipients)
    auth.entries.push_back({r, crypto.mac(sender, r, data)});
  return auth;
}

bool Authenticator::verify(const CryptoProvider& crypto, KeyNodeId sender,
                           KeyNodeId self, ByteSpan data) const {
  for (const auto& entry : entries) {
    if (entry.recipient == self)
      return crypto.verify_mac(sender, self, data, entry.mac);
  }
  return false;
}

std::size_t Authenticator::wire_size() const {
  return 2 + entries.size() * (sizeof(KeyNodeId) + sizeof(Mac::bytes));
}

}  // namespace copbft::crypto
