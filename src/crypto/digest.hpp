// Fixed-size digest and MAC value types.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/hex.hpp"

namespace copbft::crypto {

/// 256-bit digest (SHA-256 output, or a cheap stand-in under NullCrypto).
struct Digest {
  std::array<Byte, 32> bytes{};

  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;

  ByteSpan span() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return to_hex(span()); }
  bool is_zero() const {
    for (Byte b : bytes)
      if (b != 0) return false;
    return true;
  }
};

/// 128-bit message authentication code (truncated HMAC-SHA256, as in
/// PBFT-style authenticators).
struct Mac {
  std::array<Byte, 16> bytes{};

  bool operator==(const Mac&) const = default;

  ByteSpan span() const { return {bytes.data(), bytes.size()}; }
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    std::size_t h;
    std::memcpy(&h, d.bytes.data(), sizeof h);
    return h;
  }
};

}  // namespace copbft::crypto
