#include "crypto/provider.hpp"

#include "crypto/sha256.hpp"

namespace copbft::crypto {
namespace {

// FNV-1a 64-bit, widened to fill the digest; NOT cryptographic, used only by
// NullCrypto where adversarial inputs are out of scope.
std::uint64_t fnv1a(ByteSpan data, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (Byte b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Digest RealCrypto::digest(ByteSpan data) const { return Sha256::hash(data); }

Mac RealCrypto::mac(KeyNodeId sender, KeyNodeId receiver,
                    ByteSpan data) const {
  return hmac_mac(keys_.key_for(sender, receiver), data);
}

Digest NullCrypto::digest(ByteSpan data) const {
  std::uint64_t h0 = fnv1a(data, 0);
  Digest out;
  for (int w = 0; w < 4; ++w) {
    std::uint64_t h = mix(h0 + static_cast<std::uint64_t>(w));
    for (int i = 0; i < 8; ++i)
      out.bytes[static_cast<std::size_t>(8 * w + i)] =
          static_cast<Byte>(h >> (8 * i));
  }
  return out;
}

Mac NullCrypto::mac(KeyNodeId sender, KeyNodeId receiver,
                    ByteSpan data) const {
  std::uint64_t pair = (std::uint64_t{sender} << 32) | receiver;
  std::uint64_t h0 = mix(fnv1a(data, pair));
  std::uint64_t h1 = mix(h0);
  Mac out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[static_cast<std::size_t>(i)] = static_cast<Byte>(h0 >> (8 * i));
    out.bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<Byte>(h1 >> (8 * i));
  }
  return out;
}

std::unique_ptr<CryptoProvider> make_real_crypto(std::uint64_t seed) {
  return std::make_unique<RealCrypto>(KeyStore(master_key_from_seed(seed)));
}

std::unique_ptr<CryptoProvider> make_null_crypto() {
  return std::make_unique<NullCrypto>();
}

}  // namespace copbft::crypto
