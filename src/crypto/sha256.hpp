// SHA-256 (FIPS 180-4), implemented from scratch; incremental interface.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace copbft::crypto {

/// Incremental SHA-256 context.
///
///   Sha256 ctx;
///   ctx.update(a); ctx.update(b);
///   Digest d = ctx.finish();
///
/// finish() may be called once; reset() re-initializes for reuse.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteSpan data);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteSpan data) {
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
  }

 private:
  void compress(const Byte block[64]);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_;
  Byte buffer_[64];
  std::size_t buffered_;
};

}  // namespace copbft::crypto
