#include "core/pillar.hpp"

#include "common/invariant.hpp"
#include "common/hot.hpp"
#include "common/logging.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "core/outbound.hpp"

namespace copbft::core {
namespace {

protocol::SeqSlice slice_for(std::uint32_t index,
                             const ReplicaRuntimeConfig& config) {
  return protocol::SeqSlice{index, config.num_pillars};
}

std::string metric_prefix(ReplicaId self, std::uint32_t index) {
  return "replica" + std::to_string(self) + ".pillar" + std::to_string(index) +
         ".";
}

}  // namespace

Pillar::Pillar(ReplicaId self, std::uint32_t index,
               const ReplicaRuntimeConfig& config,
               const crypto::CryptoProvider& crypto,
               transport::Transport& transport, ExecutionStage& exec,
               OutboundSink& outbound, app::Service* service,
               StableFn on_stable)
    : self_(self),
      index_(index),
      config_(config),
      crypto_(crypto),
      transport_(transport),
      exec_(exec),
      outbound_(outbound),
      service_(service),
      on_stable_(std::move(on_stable)),
      queue_(config.queue_capacity),
      verifier_(crypto, protocol::replica_node(self)),
      core_(config.protocol, self, slice_for(index, config), verifier_, crypto),
      m_frames_in_(metrics::MetricsRegistry::global().counter(
          metric_prefix(self, index) + "frames_in")),
      m_requests_in_(metrics::MetricsRegistry::global().counter(
          metric_prefix(self, index) + "requests_in")),
      m_instances_delivered_(metrics::MetricsRegistry::global().counter(
          metric_prefix(self, index) + "instances_delivered")),
      m_replies_out_(metrics::MetricsRegistry::global().counter(
          metric_prefix(self, index) + "replies_out")),
      m_stable_seq_(metrics::MetricsRegistry::global().gauge(
          metric_prefix(self, index) + "stable_seq")) {
  queue_.instrument(metrics::MetricsRegistry::global().gauge(
                        metric_prefix(self, index) + "queue_depth"),
                    metrics::MetricsRegistry::global().counter(
                        metric_prefix(self, index) + "queue_blocked_pushes"));
}

void Pillar::start() {
  thread_ = named_thread("pillar-" + std::to_string(index_),
                         [this] { run(); });
}

void Pillar::stop() {
  queue_.close();
  commands_.close();
  if (thread_.joinable()) thread_.join();
}

void Pillar::run() {
  const auto poll = std::chrono::microseconds(1000);
  while (true) {
    auto event = queue_.pop_for(poll);
    if (!event && queue_.closed()) {
      publish_stats();
      return;
    }
    // Commands are few but urgent (checkpoint stability slides the
    // window); drain them first.
    while (auto command = commands_.try_pop()) handle_command(*command);
    // Pre-execution offload (paper §4.3.1): pick up this pillar's share
    // of the bookkeeping the exec stage no longer does — checkpoint
    // rounds it owns and gap fills for its slice.
    poll_out_.clear();
    exec_.poll_pillar(index_, now_us(), poll_out_);
    for (PillarCommand& command : poll_out_) handle_command(command);
    if (event) {
      if (auto* frame = std::get_if<transport::ReceivedFrame>(&*event)) {
        handle_frame(*frame);
      } else if (auto* prepared = std::get_if<PreparedInput>(&*event)) {
        handle_prepared(*prepared);
      } else if (auto* reply = std::get_if<ReplyTask>(&*event)) {
        process_reply(std::move(*reply));
      } else {
        handle_command(std::get<PillarCommand>(*event));
      }
    }
    core_.tick(now_us());
    drain_effects();
    publish_stats();
  }
}

void Pillar::publish_stats() {
  m_stable_seq_.set(static_cast<std::int64_t>(core_.stable_seq()));
  MutexLock lock(stats_mutex_);
  stats_snapshot_ = core_.stats();
}

COP_HOT void Pillar::handle_frame(transport::ReceivedFrame& frame) {
  m_frames_in_.add();
  auto decoded = protocol::decode_message(frame.bytes);
  if (!decoded) {
    COP_LOG_WARN("replica %u pillar %u: malformed frame from node %u", self_,
                 index_, frame.from);
    return;
  }
  if (auto* req = std::get_if<protocol::Request>(&decoded->msg)) {
    feed_request(std::move(*req), /*verified=*/false);
    return;
  }
  protocol::IncomingMessage im;
  im.msg = std::move(decoded->msg);
  im.raw = std::move(frame.bytes);
  im.body_size = decoded->body_size;
  core_.on_message(std::move(im), now_us());
}

COP_HOT void Pillar::handle_prepared(PreparedInput& input) {
  if (auto* req = std::get_if<protocol::Request>(&input.im.msg)) {
    feed_request(std::move(*req), input.im.pre_verified);
    return;
  }
  core_.on_message(std::move(input.im), now_us());
}

COP_HOT void Pillar::process_reply(ReplyTask task) {
  // Offloaded post-execution (paper §4.3.2): the non-sequential tail of a
  // request — post_process, Reply construction, MAC sealing, egress —
  // runs here, in parallel across the NP pillar threads, instead of
  // serializing inside the execution stage. Cached retransmissions carry
  // no batch and skip post_process (it ran on first send).
  Bytes result = (service_ && task.requests)
                     ? service_->post_process((*task.requests)[task.index],
                                              std::move(task.result))
                     : std::move(task.result);
  protocol::Message msg = protocol::Reply{
      task.view, task.client, task.request, self_, std::move(result), {}};
  Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                             {protocol::client_node(task.client)});
  m_replies_out_.add();
  trace::point(trace::Point::kReplyEgress, self_, task.pillar, task.seq,
               task.view, task.client, task.request);
  transport_.send(protocol::client_node(task.client), /*lane=*/0,
                  std::move(frame));
}

COP_HOT void Pillar::feed_request(protocol::Request req, bool verified) {
  // Offloaded pre-execution (paper §4.3.1): reject malformed operations
  // before they consume an ordering slot.
  if (service_ && !service_->pre_validate(req)) return;
  m_requests_in_.add();
  trace::point(trace::Point::kPillarIngress, self_, index_, /*seq=*/0,
               /*view=*/0, req.client, req.id);
  core_.on_request(std::move(req), now_us(), verified);
}

void Pillar::handle_command(PillarCommand& command) {
  if (auto* reply = std::get_if<ReplyTask>(&command)) {
    // Reply offload rides the command channel (see try_post_reply).
    process_reply(std::move(*reply));
  } else if (const auto* cp = std::get_if<StartCheckpoint>(&command)) {
    // Checkpoint agreements are distributed round-robin over the pillars
    // (paper §4.2.2); running one on the wrong pillar would agree the
    // checkpoint on the wrong lane and desynchronize log truncation.
    COP_INVARIANT(
        (cp->seq / config_.protocol.checkpoint_interval) %
                config_.num_pillars ==
            index_,
        "checkpoint at seq %llu routed to pillar %u, owner is %llu",
        static_cast<unsigned long long>(cp->seq), index_,
        static_cast<unsigned long long>(
            (cp->seq / config_.protocol.checkpoint_interval) %
            config_.num_pillars));
    core_.start_checkpoint(cp->seq, cp->digest, now_us());
  } else if (const auto* stable = std::get_if<NoteStable>(&command)) {
    core_.note_checkpoint_stable(stable->seq, stable->digest);
  } else if (const auto* gap = std::get_if<FillGap>(&command)) {
    core_.fill_gap_upto(gap->seq, now_us(), gap->frontier);
  } else if (const auto* fetch = std::get_if<FetchMissing>(&command)) {
    core_.fetch_missing_upto(fetch->upto, now_us());
  }
}

COP_HOT void Pillar::drain_effects() {
  for (protocol::Effect& effect : core_.take_effects()) {
    if (auto* bc = std::get_if<protocol::Broadcast>(&effect)) {
      outbound_.broadcast(std::move(bc->msg), index_);
    } else if (auto* send = std::get_if<protocol::SendTo>(&effect)) {
      outbound_.send_to(send->to, std::move(send->msg), index_);
    } else if (auto* deliver = std::get_if<protocol::Deliver>(&effect)) {
      m_instances_delivered_.add();
      // Pre-execution offload (paper §4.3.1): admission runs right here
      // on the pillar thread — the batch goes straight into this slice's
      // reorder-ring slot; the exec stage is only woken at the frontier.
      exec_.admit(CommittedBatch{deliver->seq, deliver->view,
                                 std::move(deliver->requests), index_,
                                 core_.stable_seq()});
    } else if (auto* stable = std::get_if<protocol::CheckpointStable>(&effect)) {
      if (on_stable_)
        on_stable_(stable->seq, stable->digest, stable->voters, index_);
    } else if (auto* vc = std::get_if<protocol::ViewChanged>(&effect)) {
      COP_LOG_INFO("replica %u pillar %u: now in view %llu", self_, index_,
                   static_cast<unsigned long long>(vc->view));
    } else if (auto* st = std::get_if<protocol::StateTransferNeeded>(&effect)) {
      if (on_catch_up_) on_catch_up_(st->observed_seq);
    }
  }
}

}  // namespace copbft::core
