// Checkpoint-based state transfer for laggard replicas.
//
// A replica that falls behind the 2f+1 quorum past its peers' log
// truncation is stranded: its window cannot slide without executing, and
// the certificates it needs are garbage-collected cluster-wide (§3.3 log
// truncation). This manager implements the recovery path:
//
//   server side — keeps the last few encoded CheckpointArtifacts the
//   execution stage produced, marks them stable when a pillar's checkpoint
//   agreement completes, and serves them to peers in chunked StateReply
//   frames on its own transport lane (lane NP, below the pillar lanes).
//
//   client side — when a pillar reports StateTransferNeeded, broadcasts a
//   StateRequest to every peer, reassembles per-peer replies, and installs
//   a candidate once f+1 distinct peers attested the same (seq, digest).
//   With MAC authenticators a checkpoint certificate is not transferable
//   proof (MACs only convince their addressee), so cross-checking f+1
//   independent attestations — at least one from a correct replica —
//   replaces third-party certificate verification. The snapshot content
//   itself is verified against the agreed digest during install; a
//   Byzantine peer serving a bad snapshot is detected by the mismatch and
//   the next attested peer is tried. Timeouts re-broadcast the request.
//
// Single-threaded like the other stages: every input (frames, checkpoint
// hand-offs from the execution stage, stability notices, hints, install
// outcomes) is an event in one queue.
#pragma once

#include <map>
#include <vector>

#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/execution_stage.hpp"
#include "core/outbound.hpp"
#include "core/runtime_config.hpp"
#include "protocol/verifier.hpp"
#include "transport/transport.hpp"

namespace copbft::core {

struct StateTransferStats {
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t requests_retried = 0;
  /// StateRequests answered with a full chunk set.
  std::uint64_t snapshots_served = 0;
  /// Install attempts rejected (bad artifact / digest mismatch).
  std::uint64_t snapshots_rejected = 0;
  protocol::SeqNum installed_seq = 0;
};

class StateTransferManager final : public transport::FrameSink {
 public:
  /// Runs on the manager thread after a successful install; the host fans
  /// NoteStable/FetchMissing out to its pillars so their windows slide.
  using InstalledFn = std::function<void(
      protocol::SeqNum seq, const crypto::Digest& digest,
      protocol::SeqNum fetch_upto)>;

  StateTransferManager(ReplicaId self, const ReplicaRuntimeConfig& config,
                       const crypto::CryptoProvider& crypto,
                       transport::Transport& transport, ExecutionStage& exec,
                       InstalledFn on_installed);

  void start();
  void stop();

  /// The transport lane this manager must be registered on.
  transport::LaneId lane() const { return config_.num_pillars; }

  // FrameSink (StateRequest/StateReply frames).
  bool deliver(transport::ReceivedFrame frame) override {
    return queue_.push(Event{std::move(frame)});
  }
  /// Non-blocking admission for the event-loop transport (state-transfer
  /// traffic is replica-to-replica, so kBusy here turns into TCP
  /// backpressure on the peer, never a blocked loop thread).
  transport::Admit try_deliver(transport::ReceivedFrame& frame) override {
    Event event{std::move(frame)};
    if (queue_.try_push_ref(event, /*count_blocked=*/false))
      return transport::Admit::kAdmitted;
    frame = std::move(std::get<transport::ReceivedFrame>(event));
    return queue_.closed() ? transport::Admit::kClosed
                           : transport::Admit::kBusy;
  }
  void close() override { queue_.close(); }

  /// Execution stage produced a checkpoint artifact (any thread).
  void store_checkpoint(protocol::SeqNum seq, const crypto::Digest& digest,
                        Bytes artifact) {
    queue_.push(Event{StoreCheckpoint{seq, digest, std::move(artifact)}});
  }

  /// A pillar's checkpoint agreement became stable (any thread).
  void note_stable(protocol::SeqNum seq, const crypto::Digest& digest,
                   std::vector<protocol::ReplicaId> voters) {
    queue_.push(Event{MarkStable{seq, digest, std::move(voters)}});
  }

  /// A pillar observed evidence of being stranded (any thread).
  void note_peer_ahead(protocol::SeqNum observed) {
    queue_.push(Event{PeerAhead{observed}});
  }

  StateTransferStats stats() const {
    MutexLock lock(stats_mutex_);
    return stats_;
  }

 private:
  struct StoreCheckpoint {
    protocol::SeqNum seq = 0;
    crypto::Digest digest;
    Bytes artifact;
  };
  struct MarkStable {
    protocol::SeqNum seq = 0;
    crypto::Digest digest;
    std::vector<protocol::ReplicaId> voters;
  };
  struct PeerAhead {
    protocol::SeqNum observed = 0;
  };
  struct InstallDone {
    protocol::ReplicaId peer = 0;
    protocol::SeqNum seq = 0;
    crypto::Digest digest;
    bool ok = false;
  };
  using Event = std::variant<transport::ReceivedFrame, StoreCheckpoint,
                             MarkStable, PeerAhead, InstallDone>;

  /// A checkpoint artifact held for serving peers.
  struct Held {
    crypto::Digest digest;
    Bytes artifact;
    bool stable = false;
    std::vector<protocol::ReplicaId> voters;
  };

  /// Per-peer reassembly of one checkpoint transfer.
  struct Incoming {
    protocol::SeqNum seq = 0;
    crypto::Digest digest;
    std::vector<protocol::ReplicaId> voters;
    std::uint32_t chunk_count = 0;
    std::map<std::uint32_t, Bytes> chunks;
    /// Install from this peer already failed; do not retry it.
    bool tried = false;

    bool complete() const { return chunks.size() == chunk_count; }
  };

  void run();
  void handle(Event event);
  void handle_frame(transport::ReceivedFrame frame);
  void handle_request(const protocol::StateRequest& request);
  void handle_reply(protocol::StateReply reply);
  void begin_transfer(std::uint64_t now);
  void send_request(std::uint64_t now);
  void try_install();
  void finish_install(const InstallDone& done);
  void tick(std::uint64_t now);

  const ReplicaId self_;
  const ReplicaRuntimeConfig& config_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  ExecutionStage& exec_;
  InstalledFn on_installed_;

  BoundedQueue<Event> queue_;
  protocol::CryptoVerifier verifier_;

  // Everything below is owned by the manager thread.
  std::map<protocol::SeqNum, Held> held_;
  bool catching_up_ = false;
  bool install_pending_ = false;
  protocol::SeqNum target_hint_ = 0;
  protocol::SeqNum min_seq_ = 0;
  std::uint64_t deadline_us_ = 0;
  std::map<protocol::ReplicaId, Incoming> incoming_;

  // Observability (registered once in the ctor; handles are stable).
  metrics::Counter& m_started_;
  metrics::Counter& m_completed_;
  metrics::Counter& m_served_;
  metrics::Counter& m_rejected_;

  mutable Mutex stats_mutex_;
  StateTransferStats stats_ COP_GUARDED_BY(stats_mutex_);
  std::jthread thread_;
};

}  // namespace copbft::core
