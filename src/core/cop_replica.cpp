#include "core/cop_replica.hpp"

namespace copbft::core {

CopReplica::CopReplica(ReplicaId self, ReplicaRuntimeConfig config,
                       std::unique_ptr<app::Service> service,
                       const crypto::CryptoProvider& crypto,
                       transport::Transport& transport)
    : self_(self),
      config_(std::move(config)),
      service_(std::move(service)),
      transport_(transport),
      outbound_(self, config_.protocol.num_replicas, crypto, transport),
      exec_(self, config_, *service_, crypto, transport) {
  // Laggard recovery: the manager serves the artifacts the execution
  // stage produces and, when a pillar reports being stranded, fetches and
  // installs a peer checkpoint, then slides every pillar's window to it.
  state_ = std::make_shared<StateTransferManager>(
      self_, config_, crypto, transport_, exec_,
      [this](protocol::SeqNum seq, const crypto::Digest& digest,
             protocol::SeqNum fetch_upto) {
        for (auto& pillar : pillars_) {
          pillar->post_command(NoteStable{seq, digest});
          pillar->post_command(FetchMissing{fetch_upto});
        }
      });
  exec_.set_snapshot_fn([this](protocol::SeqNum seq,
                               const crypto::Digest& digest, Bytes artifact) {
    state_->store_checkpoint(seq, digest, std::move(artifact));
  });
  transport_.register_sink(state_->lane(), state_);

  // Checkpoint stability found by one pillar is fanned out to siblings so
  // all of them can truncate logs and stay within the drift bound; the
  // transfer manager learns it to mark held artifacts servable.
  auto on_stable = [this](protocol::SeqNum seq, const crypto::Digest& digest,
                          const std::vector<protocol::ReplicaId>& voters,
                          std::uint32_t origin) {
    for (std::uint32_t q = 0; q < pillars_.size(); ++q) {
      if (q != origin) pillars_[q]->post_command(NoteStable{seq, digest});
    }
    state_->note_stable(seq, digest, voters);
  };

  pillars_.reserve(config_.num_pillars);
  for (std::uint32_t p = 0; p < config_.num_pillars; ++p) {
    pillars_.push_back(std::make_shared<Pillar>(
        self_, p, config_, crypto, transport_, exec_, outbound_,
        service_.get(), on_stable));
    pillars_.back()->set_catch_up_hint(
        [this](protocol::SeqNum observed) { state_->note_peer_ahead(observed); });
    transport_.register_sink(p, pillars_.back());
  }

  // Offloaded post-execution (paper §4.3.2): the execution stage hands
  // each finished request back to the pillar that ran its instance
  // (task.pillar = seq % NP), where post_process + sealing + egress run
  // in parallel. Non-blocking: if the pillar cannot take it (saturated or
  // shutting down) the stage falls back to sealing inline.
  exec_.set_reply_fn([this](ReplyTask& task) {
    return pillars_[task.pillar]->try_post_reply(task);
  });
}

void CopReplica::start() {
  exec_.start();
  state_->start();
  for (auto& pillar : pillars_) pillar->start();
}

void CopReplica::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& pillar : pillars_) pillar->stop();
  state_->stop();
  exec_.stop();
}

ReplicaStats CopReplica::stats() const {
  ReplicaStats out;
  out.exec = exec_.stats();
  for (const auto& pillar : pillars_) out.core += pillar->core_stats();
  return out;
}

}  // namespace copbft::core
