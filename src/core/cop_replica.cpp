#include "core/cop_replica.hpp"

namespace copbft::core {

CopReplica::CopReplica(ReplicaId self, ReplicaRuntimeConfig config,
                       std::unique_ptr<app::Service> service,
                       const crypto::CryptoProvider& crypto,
                       transport::Transport& transport)
    : self_(self),
      config_(std::move(config)),
      service_(std::move(service)),
      transport_(transport),
      outbound_(self, config_.protocol.num_replicas, crypto, transport),
      exec_(self, config_, *service_, crypto, transport,
            [this](std::uint32_t pillar, PillarCommand command) {
              pillars_[pillar]->post_command(std::move(command));
            }) {
  // Checkpoint stability found by one pillar is fanned out to siblings so
  // all of them can truncate logs and stay within the drift bound.
  auto on_stable = [this](protocol::SeqNum seq, const crypto::Digest& digest,
                          std::uint32_t origin) {
    for (std::uint32_t q = 0; q < pillars_.size(); ++q) {
      if (q != origin) pillars_[q]->post_command(NoteStable{seq, digest});
    }
  };

  pillars_.reserve(config_.num_pillars);
  for (std::uint32_t p = 0; p < config_.num_pillars; ++p) {
    pillars_.push_back(std::make_shared<Pillar>(
        self_, p, config_, crypto, transport_, exec_, outbound_,
        service_.get(), on_stable));
    transport_.register_sink(p, pillars_.back());
  }
}

void CopReplica::start() {
  exec_.start();
  for (auto& pillar : pillars_) pillar->start();
}

void CopReplica::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& pillar : pillars_) pillar->stop();
  exec_.stop();
}

ReplicaStats CopReplica::stats() const {
  ReplicaStats out;
  out.exec = exec_.stats();
  for (const auto& pillar : pillars_) out.core += pillar->core_stats();
  return out;
}

}  // namespace copbft::core
