#include "core/execution_stage.hpp"

#include "common/logging.hpp"
#include "common/time.hpp"
#include "core/outbound.hpp"

namespace copbft::core {
namespace {

constexpr std::size_t kReplyCachePerClient = 32;
constexpr std::uint64_t kDedupWindow = 4096;

}  // namespace

ExecutionStage::ExecutionStage(ReplicaId self,
                               const ReplicaRuntimeConfig& config,
                               app::Service& service,
                               const crypto::CryptoProvider& crypto,
                               transport::Transport& transport,
                               CommandFn command)
    : self_(self),
      config_(config),
      service_(service),
      crypto_(crypto),
      transport_(transport),
      command_(std::move(command)),
      queue_(config.queue_capacity) {}

void ExecutionStage::start() {
  thread_ = named_thread("exec", [this] { run(); });
}

void ExecutionStage::stop() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void ExecutionStage::run() {
  const auto poll = std::chrono::microseconds(
      std::max<std::uint64_t>(config_.gap_timeout_us / 2, 500));
  while (true) {
    auto batch = queue_.pop_for(poll);
    if (!batch && queue_.closed()) return;
    if (batch) {
      if (batch->seq >= next_seq_ && !reorder_.contains(batch->seq))
        reorder_.emplace(batch->seq, std::move(*batch));
      // Drain whatever else is already queued before executing: cheap and
      // increases the chance the reorder buffer can run a long streak.
      while (auto more = queue_.try_pop()) {
        if (more->seq >= next_seq_ && !reorder_.contains(more->seq))
          reorder_.emplace(more->seq, std::move(*more));
      }
    }
    apply_ready();
    check_gap(now_us());
  }
}

void ExecutionStage::apply_ready() {
  while (true) {
    auto it = reorder_.find(next_seq_);
    if (it == reorder_.end()) break;
    execute_batch(it->second);
    reorder_.erase(it);
    stats_.last_executed_seq = next_seq_;
    maybe_checkpoint(next_seq_);
    ++next_seq_;
    stall_since_us_ = 0;
  }
}

void ExecutionStage::execute_batch(const CommittedBatch& batch) {
  ++stats_.batches_executed;
  if (!batch.requests || batch.requests->empty()) {
    ++stats_.noops_executed;
    return;
  }
  for (const protocol::Request& req : *batch.requests)
    execute_request(req, batch.view);
}

bool ExecutionStage::already_executed(ClientState& state,
                                      protocol::RequestId id) const {
  if (state.max_done >= kDedupWindow && id <= state.max_done - kDedupWindow)
    return true;  // far below the window: long done
  return state.done.contains(id);
}

void ExecutionStage::record_executed(ClientState& state,
                                     protocol::RequestId id) {
  state.done.insert(id);
  if (id > state.max_done) state.max_done = id;
  // Prune entries that fell below the dedup window.
  if (state.done.size() > 2 * kDedupWindow) {
    std::erase_if(state.done, [&](protocol::RequestId done_id) {
      return state.max_done >= kDedupWindow &&
             done_id <= state.max_done - kDedupWindow;
    });
  }
}

void ExecutionStage::execute_request(const protocol::Request& request,
                                     protocol::ViewId view) {
  ClientState& state = clients_[request.client];
  if (already_executed(state, request.id)) {
    ++stats_.duplicates_suppressed;
    // Retransmission of an executed request: resend the cached reply.
    for (const auto& [id, result] : state.replies) {
      if (id == request.id) {
        send_reply(request.client, request.id, view, result);
        break;
      }
    }
    return;
  }

  Bytes result = service_.execute(request);
  record_executed(state, request.id);
  ++stats_.requests_executed;

  state.replies.emplace_back(request.id, result);
  if (state.replies.size() > kReplyCachePerClient) state.replies.pop_front();

  if (config_.reply_mode == ReplyMode::kOmitOne &&
      config_.omitted_replier(request.key()) == self_) {
    ++stats_.replies_omitted;
    return;
  }
  send_reply(request.client, request.id, view,
             service_.post_process(request, std::move(result)));
}

void ExecutionStage::send_reply(protocol::ClientId client,
                                protocol::RequestId id, protocol::ViewId view,
                                Bytes result) {
  protocol::Message msg =
      protocol::Reply{view, client, id, self_, std::move(result), {}};
  Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                             {protocol::client_node(client)});
  transport_.send(protocol::client_node(client), /*lane=*/0,
                  std::move(frame));
  ++stats_.replies_sent;
}

void ExecutionStage::maybe_checkpoint(protocol::SeqNum seq) {
  if (seq % config_.protocol.checkpoint_interval != 0) return;
  ++stats_.checkpoints_triggered;
  crypto::Digest digest = service_.state_digest();
  // Round-robin checkpoint ownership across pillars (paper §4.2.2).
  std::uint32_t owner = static_cast<std::uint32_t>(
      (seq / config_.protocol.checkpoint_interval) % config_.num_pillars);
  command_(owner, StartCheckpoint{seq, digest});
}

void ExecutionStage::check_gap(std::uint64_t now) {
  if (reorder_.empty()) {
    stall_since_us_ = 0;
    return;
  }
  // Something beyond next_seq_ committed but next_seq_ has not: a gap.
  if (stall_since_us_ == 0) {
    stall_since_us_ = now;
    return;
  }
  if (now - stall_since_us_ < config_.gap_timeout_us) return;
  stall_since_us_ = now;
  ++stats_.gap_fills_requested;
  protocol::SeqNum target = reorder_.rbegin()->first;
  for (std::uint32_t p = 0; p < config_.num_pillars; ++p)
    command_(p, FillGap{target});
}

}  // namespace copbft::core
