#include "core/execution_stage.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "common/hot.hpp"
#include "common/logging.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "core/checkpoint_artifact.hpp"
#include "core/outbound.hpp"
#include "protocol/wire.hpp"

namespace copbft::core {
namespace {

constexpr std::size_t kReplyCachePerClient = 32;
constexpr std::uint64_t kDedupWindow = 4096;

// Slot state encoding (see ReorderRing in the header).
constexpr std::uint64_t slot_published(protocol::SeqNum seq) {
  return static_cast<std::uint64_t>(seq) << 1;
}
constexpr std::uint64_t slot_claimed(protocol::SeqNum seq) {
  return (static_cast<std::uint64_t>(seq) << 1) | 1;
}

/// FNV-1a over the request keys. Two commits for the same sequence number
/// must carry the same batch; a fingerprint mismatch on a duplicate means
/// the total order forked. The stored fingerprint lets any pillar run the
/// check against a slot another pillar published without touching the
/// (non-atomic) payload.
std::uint64_t batch_hash(const CommittedBatch& b) {
  std::uint64_t h = 1469598103934665603ULL;
  if (!b.requests) return h;
  for (const auto& r : *b.requests) {
    std::uint64_t k = r.key();
    for (int i = 0; i < 8; ++i) {
      h ^= (k >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// (request count << 1) | is_noop — the cheap half of the fingerprint.
std::uint64_t batch_meta(const CommittedBatch& b) {
  const bool noop = !b.requests || b.requests->empty();
  const std::uint64_t n = noop ? 0 : b.requests->size();
  return (n << 1) | (noop ? 1 : 0);
}

std::string exec_metric(ReplicaId self, const char* name) {
  return "replica" + std::to_string(self) + ".exec." + name;
}

/// Live sequence numbers span at most [frontier, stable + window]; the
/// frontier can itself trail stability, so 2x window plus slack covers
/// every buffered seq with distinct slots. Clamped so a pathological
/// window cannot exhaust memory — collisions are then legal and resolved
/// by publish().
std::size_t ring_slots(std::uint64_t window) {
  const std::uint64_t want = 2 * window + 2;
  std::size_t n = 64;
  while (n < want && n < (std::size_t{1} << 20)) n <<= 1;
  return n;
}

}  // namespace

// --------------------------------------------------------------------------
// ReorderRing — lock-free slot ring, one pillar writer per slot (slice
// partition), single consumer (the stage thread).

ExecutionStage::ReorderRing::ReorderRing(std::uint64_t window)
    : slots_(ring_slots(window)), mask_(slots_.size() - 1) {}

COP_HOT ExecutionStage::ReorderRing::PublishResult
ExecutionStage::ReorderRing::publish(CommittedBatch&& batch,
                                     protocol::SeqNum frontier,
                                     std::uint64_t hash, std::uint64_t meta) {
  Slot& s = slots_[index(batch.seq)];
  const std::uint64_t mine_pub = slot_published(batch.seq);
  const std::uint64_t mine_claim = slot_claimed(batch.seq);
  std::uint64_t cur = s.state.load(std::memory_order_seq_cst);
  while (true) {
    if (cur == mine_pub) {
      // Redelivery of a seq someone already published. Read the stored
      // fingerprint and validate it by re-reading the state word: if the
      // slot changed under us (consumed/reclaimed mid-read), the
      // fingerprint may belong to another batch and the check is skipped.
      PublishResult res;
      res.outcome = Outcome::kDuplicate;
      res.stored_hash = s.hash.load(std::memory_order_relaxed);
      res.stored_meta = s.meta.load(std::memory_order_relaxed);
      res.fingerprint_valid =
          s.state.load(std::memory_order_seq_cst) == mine_pub;
      return res;
    }
    if (cur == mine_claim) {
      // Another writer is mid-publishing the same seq (concurrent
      // redelivery); nothing to verify yet.
      return {Outcome::kDuplicate, false, 0, 0};
    }
    if (cur == 0) {
      if (!s.state.compare_exchange_strong(cur, mine_claim,
                                           std::memory_order_seq_cst))
        continue;  // cur reloaded
      s.hash.store(hash, std::memory_order_relaxed);
      s.meta.store(meta, std::memory_order_relaxed);
      s.batch.emplace(std::move(batch));
      count_.fetch_add(1, std::memory_order_relaxed);
      s.state.store(mine_pub, std::memory_order_seq_cst);
      return {Outcome::kStored, false, 0, 0};
    }
    if (cur & 1) {
      // Claimed by a writer for a *different* seq — only reachable when
      // distinct live seqs collide on one slot (clamped ring). Drop ours;
      // gap detection re-fetches it.
      return {Outcome::kDroppedSelf, false, 0, 0};
    }
    const protocol::SeqNum occupant = cur >> 1;
    if (occupant < frontier) {
      // Stale leftover below the execution frontier (e.g. dropped by a
      // checkpoint install sweep that lost its CAS): reclaim in place.
      if (!s.state.compare_exchange_strong(cur, mine_claim,
                                           std::memory_order_seq_cst))
        continue;
      s.hash.store(hash, std::memory_order_relaxed);
      s.meta.store(meta, std::memory_order_relaxed);
      s.batch.emplace(std::move(batch));  // destroys the stale payload
      s.state.store(mine_pub, std::memory_order_seq_cst);
      return {Outcome::kStored, false, 0, 0};
    }
    if (occupant < batch.seq) {
      // Ring wrap-around with a live lower occupant: it executes first,
      // keep it and drop ours; gap detection re-fetches.
      return {Outcome::kDroppedSelf, false, 0, 0};
    }
    // Live higher occupant: evict it, ours executes first.
    if (!s.state.compare_exchange_strong(cur, mine_claim,
                                         std::memory_order_seq_cst))
      continue;
    s.hash.store(hash, std::memory_order_relaxed);
    s.meta.store(meta, std::memory_order_relaxed);
    s.batch.emplace(std::move(batch));
    s.state.store(mine_pub, std::memory_order_seq_cst);
    return {Outcome::kEvictedOther, false, 0, 0};
  }
}

COP_HOT std::optional<CommittedBatch> ExecutionStage::ReorderRing::take(
    protocol::SeqNum seq) {
  Slot& s = slots_[index(seq)];
  std::uint64_t want = slot_published(seq);
  if (s.state.load(std::memory_order_seq_cst) != want) return std::nullopt;
  // Claim before moving the payload out: writer CASes expect `published`
  // and fail while we hold the claim, so eviction/reclaim can never race
  // the move.
  if (!s.state.compare_exchange_strong(want, slot_claimed(seq),
                                       std::memory_order_seq_cst))
    return std::nullopt;
  std::optional<CommittedBatch> out = std::move(s.batch);
  s.batch.reset();
  count_.fetch_sub(1, std::memory_order_relaxed);
  // Freed before the caller advances next_seq, so the slot is reusable by
  // the time any writer can consider this seq stale.
  s.state.store(0, std::memory_order_seq_cst);
  return out;
}

void ExecutionStage::ReorderRing::discard_upto(protocol::SeqNum upto) {
  for (Slot& s : slots_) {
    std::uint64_t cur = s.state.load(std::memory_order_seq_cst);
    if (cur == 0 || (cur & 1)) continue;  // free, or a writer owns it
    const protocol::SeqNum occupant = cur >> 1;
    if (occupant > upto) continue;
    if (!s.state.compare_exchange_strong(cur, slot_claimed(occupant),
                                         std::memory_order_seq_cst))
      continue;  // republished concurrently; the writer self-heals later
    s.batch.reset();
    count_.fetch_sub(1, std::memory_order_relaxed);
    s.state.store(0, std::memory_order_seq_cst);
  }
}

// --------------------------------------------------------------------------

ExecutionStage::ExecutionStage(ReplicaId self,
                               const ReplicaRuntimeConfig& config,
                               app::Service& service,
                               const crypto::CryptoProvider& crypto,
                               transport::Transport& transport)
    : self_(self),
      config_(config),
      service_(service),
      crypto_(crypto),
      transport_(transport),
      reorder_(config.protocol.window),
      lanes_(new PillarLane[std::max<std::uint32_t>(config.num_pillars, 1)]),
      ckpt_mail_(
          new CkptMailbox[std::max<std::uint32_t>(config.num_pillars, 1)]),
      install_queue_(config.queue_capacity),
      m_reorder_depth_(metrics::MetricsRegistry::global().gauge(
          exec_metric(self, "reorder_depth"))),
      m_drift_(
          metrics::MetricsRegistry::global().gauge(exec_metric(self, "drift"))),
      m_batches_executed_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "batches_executed"))),
      m_requests_executed_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "requests_executed"))),
      m_replies_sent_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "replies_sent"))),
      m_execute_us_(metrics::MetricsRegistry::global().histogram(
          exec_metric(self, "execute_us"))) {
  if (config.exec_workers > 0)
    pool_ = std::make_unique<ExecPool>(config.exec_workers, service_);
  // Commit admission no longer queues; the instrumented queue is the
  // (rare) state-transfer install lane.
  install_queue_.instrument(
      metrics::MetricsRegistry::global().gauge(exec_metric(self, "queue_depth")),
      metrics::MetricsRegistry::global().counter(
          exec_metric(self, "queue_blocked_pushes")));
}

void ExecutionStage::start() {
  if (pool_) pool_->start();
  thread_ = named_thread("exec", [this] { run(); });
}

void ExecutionStage::stop() {
  stop_requested_.store(true, std::memory_order_release);
  install_queue_.close();
  wake_exec();
  if (thread_.joinable()) thread_.join();
  // The stage thread drained pending_ before exiting (apply_ready always
  // leaves the pool quiescent), so the workers stop idle.
  if (pool_) pool_->stop();
}

bool ExecutionStage::submit_install(InstallState install) {
  const bool ok = install_queue_.push(std::move(install));
  wake_exec();
  return ok;
}

ExecutionStats ExecutionStage::stats() const {
  ExecutionStats out;
  // Acquire loads pairing with the stage thread's release stores. The
  // progress counters are read first: an observer that sees a request
  // counted is then guaranteed to also see everything counted before it
  // (e.g. the matching reply omission — tests sum both).
  out.requests_executed = n_requests_executed_.get();
  out.last_executed_seq = n_last_executed_seq_.get();
  out.requests_parallel = n_requests_parallel_.get();
  out.exec_barriers = n_exec_barriers_.get();
  out.batches_executed = n_batches_executed_.get();
  out.noops_executed = n_noops_executed_.get();
  out.duplicates_suppressed = n_duplicates_suppressed_.get();
  out.replies_sent = n_replies_sent_.get();
  out.replies_offloaded = n_replies_offloaded_.get();
  out.replies_omitted = n_replies_omitted_.get();
  out.checkpoints_triggered = n_checkpoints_triggered_.get();
  out.gap_fills_requested = n_gap_fills_requested_.get();
  out.reorder_slot_drops = n_reorder_slot_drops_.get();
  out.state_installs = n_state_installs_.get();
  out.installs_rejected = n_installs_rejected_.get();
  out.installed_seq = n_installed_seq_.get();
  return out;
}

void ExecutionStage::wake_exec() {
  {
    MutexLock lock(wake_mutex_);
    wake_pending_ = true;
  }
  wake_cv_.notify_one();
}

void ExecutionStage::run() {
  // The wait below is a fallback heartbeat, not the main wake path:
  // pillars notify whenever they publish the execution frontier. It still
  // bounds the stage's reaction to events with no publish edge (e.g. an
  // install that unblocks an already-buffered frontier on a quiet system).
  const auto poll = std::chrono::microseconds(
      std::max<std::uint64_t>(config_.gap_timeout_us / 2, 500));
  while (true) {
    while (auto install = install_queue_.try_pop())
      handle_install(std::move(*install));
    apply_ready();
    if (stop_requested_.load(std::memory_order_acquire) &&
        install_queue_.empty())
      return;
    CvLock lock(wake_mutex_);
    if (!wake_pending_) wake_cv_.wait_for(lock, poll);
    wake_pending_ = false;
  }
}

COP_HOT bool ExecutionStage::admit(CommittedBatch batch) {
  const std::uint32_t np = config_.num_pillars;
  COP_INVARIANT(batch.seq != 0,
                "sequence number 0 is genesis and must never commit "
                "(pillar %u)",
                batch.pillar);
  // Paper §4.2.1: pillar p owns exactly the numbers c(p,i) = p + i*NP.
  // This partition is also what makes pillar-side admission single-writer
  // per ring slot: distinct pillars can never contend on a live slot.
  COP_INVARIANT(batch.pillar < np && batch.seq % np == batch.pillar,
                "seq %llu delivered by pillar %u breaks the c(p,i)=p+i*NP "
                "partition (NP=%u)",
                static_cast<unsigned long long>(batch.seq), batch.pillar, np);

  // seq_cst pairs with take()/apply_ready: any occupant below this
  // snapshot is no longer consumable by the stage and is safe to reclaim.
  const protocol::SeqNum frontier = next_seq_.load(std::memory_order_seq_cst);
  if (batch.seq < frontier) return true;  // stale redelivery

  // Paper §3.4/§4.2.2: commits may only run `window` past the stable
  // checkpoint. The bound is checked against the emitting core's stable
  // seq (carried in the batch), not this stage's frontier: a replica that
  // learns stability from its peers' votes can legitimately buffer
  // commits further ahead than its own execution has reached.
  COP_INVARIANT(
      batch.seq <= batch.stable_basis + config_.protocol.window,
      "seq %llu exceeds the checkpoint-window drift bound: stable "
      "checkpoint %llu + window %llu",
      static_cast<unsigned long long>(batch.seq),
      static_cast<unsigned long long>(batch.stable_basis),
      static_cast<unsigned long long>(config_.protocol.window));

  const protocol::SeqNum seq = batch.seq;
  const auto view = batch.view;
  const std::uint32_t pillar = batch.pillar < np ? batch.pillar : 0;
  const std::uint64_t hash = batch_hash(batch);
  const std::uint64_t meta = batch_meta(batch);
  m_drift_.set(static_cast<std::int64_t>(seq - batch.stable_basis));

  const auto res = reorder_.publish(std::move(batch), frontier, hash, meta);
  switch (res.outcome) {
    case ReorderRing::Outcome::kDuplicate:
      // A duplicate commit is tolerated, a conflicting one is a fork: two
      // different batches for one slot can not both enter the total order.
      if (res.fingerprint_valid) {
        COP_INVARIANT(res.stored_hash == hash && res.stored_meta == meta,
                      "conflicting commits for seq %llu: the total order "
                      "would fork or leave a hole",
                      static_cast<unsigned long long>(seq));
      }
      break;
    case ReorderRing::Outcome::kDroppedSelf:
      n_reorder_slot_drops_.add();
      break;
    case ReorderRing::Outcome::kEvictedOther:
      n_reorder_slot_drops_.add();
      [[fallthrough]];
    case ReorderRing::Outcome::kStored:
      trace::point(trace::Point::kReorderEnter, self_, pillar, seq, view,
                   /*client=*/0, /*request=*/0);
      m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
      break;
  }

  // Slice admission watermark: the max seq this pillar has admitted (even
  // when the ring dropped it — a dropped commit still needs re-fetching,
  // which is exactly what the watermark-driven gap poll arranges). Single
  // writer: only the owning pillar's thread stores it.
  PillarLane& lane = lanes_[pillar];
  if (seq > lane.watermark.load(std::memory_order_relaxed))
    lane.watermark.store(seq, std::memory_order_release);

  // Wake handshake (Dekker): the slot publish above and this next_seq
  // load are both seq_cst, as are the stage's next_seq store and slot
  // read — so either we observe the frontier and wake, or the stage's
  // drain observes our publish. Waking only on the frontier edge is what
  // keeps the stage's dequeue cost off the per-commit path.
  if (res.outcome != ReorderRing::Outcome::kDroppedSelf &&
      next_seq_.load(std::memory_order_seq_cst) == seq)
    wake_exec();
  return true;
}

void ExecutionStage::poll_pillar(std::uint32_t pillar, std::uint64_t now_us,
                                 std::vector<PillarCommand>& out) {
  if (pillar >= config_.num_pillars) return;

  // Checkpoint rounds this pillar owns (paper §4.2.2): drained here and
  // fed to the pillar's own handle_command by the caller.
  {
    CkptMailbox& mail = ckpt_mail_[pillar];
    MutexLock lock(mail.mutex);
    for (const CkptSignal& sig : mail.pending)
      out.push_back(StartCheckpoint{sig.seq, sig.digest});
    mail.pending.clear();
  }

  // Slice-local gap tracking: the execution frontier is stalled when it
  // stops moving while some pillar has admitted past it. Each pillar runs
  // its own timer and requests fills for its own slice only.
  PillarLane& lane = lanes_[pillar];
  const protocol::SeqNum frontier = next_seq_.load(std::memory_order_seq_cst);
  if (frontier != lane.last_frontier) {
    lane.last_frontier = frontier;
    lane.stall_since_us = 0;
    return;
  }
  protocol::SeqNum target = 0;
  for (std::uint32_t p = 0; p < config_.num_pillars; ++p)
    target = std::max(target, lanes_[p].watermark.load(
                                  std::memory_order_acquire));
  if (target <= frontier) {
    // Nothing admitted beyond the frontier (== means the frontier itself
    // is published and the stage is about to run it): no gap.
    lane.stall_since_us = 0;
    return;
  }
  if (lane.stall_since_us == 0) {
    lane.stall_since_us = now_us;
    return;
  }
  if (now_us - lane.stall_since_us < config_.gap_timeout_us) return;
  lane.stall_since_us = now_us;
  n_gap_fills_requested_.add();
  out.push_back(FillGap{target, frontier});
}

COP_HOT void ExecutionStage::apply_ready() {
  while (true) {
    const protocol::SeqNum next = next_seq_.load(std::memory_order_relaxed);
    std::optional<CommittedBatch> batch = reorder_.take(next);
    if (!batch) break;
    {
      metrics::ScopedTimer timer(m_execute_us_);
      execute_batch(*batch);
    }
    m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
    n_last_executed_seq_.set(next);
    maybe_checkpoint(next);
    // seq_cst pairs with the pillars' publish/frontier-check handshake;
    // take() already freed the slot, so a writer that sees this new
    // frontier can immediately reuse it.
    next_seq_.store(next + 1, std::memory_order_seq_cst);
  }
  // Quiescent before parking (or stopping): every dispatched request is
  // retired and its reply emitted, so outside a ready streak the parallel
  // stage is observationally indistinguishable from the sequential one.
  drain_pool();
}

COP_HOT void ExecutionStage::execute_batch(const CommittedBatch& batch) {
  m_batches_executed_.add();
  n_batches_executed_.add();
  if (!batch.requests || batch.requests->empty()) {
    n_noops_executed_.add();
    return;
  }
  const auto& requests = *batch.requests;
  for (std::uint32_t i = 0; i < requests.size(); ++i) {
    // The linking event: ties (client, request) to the sequence number the
    // protocol-phase events are stamped with.
    trace::point(trace::Point::kExecute, self_, batch.pillar, batch.seq,
                 batch.view, requests[i].client, requests[i].id);
    execute_request(requests[i], batch, i);
  }
}

bool ExecutionStage::already_executed(ClientState& state,
                                      protocol::RequestId id) const {
  if (state.max_done >= kDedupWindow && id <= state.max_done - kDedupWindow)
    return true;  // far below the window: long done
  return state.done.contains(id);
}

void ExecutionStage::record_executed(ClientState& state,
                                     protocol::RequestId id) {
  state.done.insert(id);
  if (id > state.max_done) state.max_done = id;
  // Prune entries that fell below the dedup window.
  if (state.done.size() > 2 * kDedupWindow) {
    std::erase_if(state.done, [&](protocol::RequestId done_id) {
      return state.max_done >= kDedupWindow &&
             done_id <= state.max_done - kDedupWindow;
    });
  }
}

COP_HOT void ExecutionStage::execute_request(
    const protocol::Request& request,
                                     const CommittedBatch& batch,
                                     std::uint32_t index) {
  ClientState& state = clients_[request.client];
  if (already_executed(state, request.id)) {
    n_duplicates_suppressed_.add();
    // Retransmission of an executed request: resend the cached reply (the
    // raw ordered result; post_process ran when it was first sent, and a
    // retransmission skips it — null `requests` signals that downstream).
    auto cached = state.replies.find(request.id);
    if (cached == state.replies.end()) return;
    if (cached->second.pending_ticket != 0) {
      // The original is dispatched but not yet retired (the in-flight
      // retransmission race): force in-order retirement up to it, so the
      // resend carries the executed result and the original (pillar, seq)
      // stamp — never a second, differently-stamped reply. Re-find after
      // retiring: retirement inserts nothing, but stay rehash-safe.
      retire_until(cached->second.pending_ticket);
      cached = state.replies.find(request.id);
      if (cached == state.replies.end()) return;
    }
    ReplyTask task;
    task.client = request.client;
    task.request = request.id;
    task.view = batch.view;
    task.seq = cached->second.seq;
    task.pillar = static_cast<std::uint32_t>(cached->second.seq %
                                             config_.num_pillars);
    task.result = cached->second.result;  // the cache keeps its entry
    if (pending_.empty()) {
      emit_reply(std::move(task));
    } else {
      // Keep the reply stream in total order: earlier requests are still
      // awaiting retirement, so the resend queues behind them instead of
      // overtaking.
      PendingRetire p;
      p.ticket = next_ticket_++;
      p.resend = true;
      p.task = std::move(task);
      pending_.push_back(std::move(p));
    }
    return;
  }

  if (pool_) {
    const app::AccessClass access = service_.classify(request);
    if (access.scope == app::AccessClass::Scope::kShard) {
      dispatch_request(request, batch, index, access.shard);
      return;
    }
    // kGlobal: barrier — the request may touch anything, so nothing may
    // be in flight while it runs.
    n_exec_barriers_.add();
    drain_pool();
  }

  Bytes result = service_.execute(request);
  m_requests_executed_.add();
  record_executed(state, request.id);
  finish_request(state, request, batch, index, std::move(result));
}

COP_HOT void ExecutionStage::dispatch_request(const protocol::Request& request,
                                              const CommittedBatch& batch,
                                              std::uint32_t index,
                                              std::uint32_t shard) {
  const std::uint32_t worker = pool_->worker_of(shard);
  // The stage is the only party that frees ring slots (by retiring), so a
  // full ring is resolved here, never by spinning inside the pool.
  while (!pool_->can_dispatch(worker)) retire_front();

  ClientState& state = clients_[request.client];
  // Dedup and cache placement happen at dispatch — this request's
  // total-order position — exactly where sequential execution would do
  // them. The cache entry stays pending until retirement fills it.
  record_executed(state, request.id);
  const std::uint64_t ticket = next_ticket_++;
  if (state.replies
          .emplace(request.id, CachedReply{batch.seq, Bytes(), ticket})
          .second) {
    state.reply_order.push_back(request.id);
    if (state.reply_order.size() > kReplyCachePerClient) {
      state.replies.erase(state.reply_order.front());
      state.reply_order.pop_front();
    }
  }

  PendingRetire p;
  p.ticket = ticket;
  p.worker = worker;
  p.slot = pool_->dispatch(worker, &(*batch.requests)[index]);
  p.omit = config_.reply_mode == ReplyMode::kOmitOne &&
           config_.omitted_replier(request.key()) == self_;
  p.task.client = request.client;
  p.task.request = request.id;
  p.task.view = batch.view;
  p.task.pillar = batch.pillar;
  p.task.seq = batch.seq;
  p.task.requests = batch.requests;
  p.task.index = index;
  pending_.push_back(std::move(p));
}

void ExecutionStage::finish_request(ClientState& state,
                                    const protocol::Request& request,
                                    const CommittedBatch& batch,
                                    std::uint32_t index, Bytes result) {
  // The cache stores the *raw* ordered result for every request: it is
  // replicated state (part of the checkpoint digest), so it must not
  // depend on this replica's omit role or on post_process decoration.
  if (state.replies.emplace(request.id, CachedReply{batch.seq, result})
          .second) {
    state.reply_order.push_back(request.id);
    if (state.reply_order.size() > kReplyCachePerClient) {
      state.replies.erase(state.reply_order.front());
      state.reply_order.pop_front();
    }
  }

  const bool omit = config_.reply_mode == ReplyMode::kOmitOne &&
                    config_.omitted_replier(request.key()) == self_;
  // The omission is counted before requests_executed's release store, so
  // an observer that sees the request counted also sees the omission.
  if (omit) n_replies_omitted_.add();
  n_requests_executed_.add();
  if (omit) return;

  ReplyTask task;
  task.client = request.client;
  task.request = request.id;
  task.view = batch.view;
  task.pillar = batch.pillar;
  task.seq = batch.seq;
  task.result = std::move(result);
  task.requests = batch.requests;
  task.index = index;
  emit_reply(std::move(task));
}

COP_HOT void ExecutionStage::retire_front() {
  PendingRetire p = std::move(pending_.front());
  pending_.pop_front();
  if (p.resend) {
    emit_reply(std::move(p.task));
    return;
  }
  Bytes result = pool_->retire(p.worker, p.slot);
  m_requests_executed_.add();
  n_requests_parallel_.add();

  // Fill the pending cache entry (unless a busy client already evicted
  // it — sequential execution would have evicted it identically).
  auto client = clients_.find(p.task.client);
  if (client != clients_.end()) {
    auto cached = client->second.replies.find(p.task.request);
    if (cached != client->second.replies.end() &&
        cached->second.pending_ticket == p.ticket) {
      cached->second.result = result;
      cached->second.pending_ticket = 0;
    }
  }

  if (p.omit) n_replies_omitted_.add();
  n_requests_executed_.add();
  if (p.omit) return;
  p.task.result = std::move(result);
  emit_reply(std::move(p.task));
}

void ExecutionStage::retire_until(std::uint64_t ticket) {
  while (!pending_.empty() && pending_.front().ticket <= ticket)
    retire_front();
}

void ExecutionStage::drain_pool() {
  while (!pending_.empty()) retire_front();
}

COP_HOT void ExecutionStage::emit_reply(ReplyTask task) {
  // Counted at emission — offloaded or inline — so exec.replies_sent
  // covers every reply exactly once wherever it is sealed.
  m_replies_sent_.add();
  n_replies_sent_.add();
  // Offloaded post-execution (paper §4.3.2): the originating pillar runs
  // post_process, seals and sends, in parallel with this stage.
  if (reply_fn_ && reply_fn_(task)) {
    n_replies_offloaded_.add();
    return;
  }
  // Inline fallback: single-logic baselines (no ReplyFn installed) and the
  // overload/shutdown path (the pillar's queue is full or closed).
  Bytes result = task.requests
                     ? service_.post_process((*task.requests)[task.index],
                                             std::move(task.result))
                     : std::move(task.result);
  protocol::Message msg = protocol::Reply{
      task.view, task.client, task.request, self_, std::move(result), {}};
  Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                             {protocol::client_node(task.client)});
  trace::point(trace::Point::kReplyEgress, self_, task.pillar, task.seq,
               task.view, task.client, task.request);
  transport_.send(protocol::client_node(task.client), /*lane=*/0,
                  std::move(frame));
}

void ExecutionStage::maybe_checkpoint(protocol::SeqNum seq) {
  if (seq % config_.protocol.checkpoint_interval != 0) return;
  // Quiescent point for the hash: state_digest()/snapshot() may only run
  // with no execute() in flight, so everything dispatched before this
  // boundary retires first (which also clears every pending_ticket).
  drain_pool();
  COP_INVARIANT(pending_.empty(),
                "checkpoint at seq %llu with %zu unretired executions",
                static_cast<unsigned long long>(seq), pending_.size());
  n_checkpoints_triggered_.add();
  // The agreed checkpoint digest covers the service state *and* the
  // exactly-once client bookkeeping: both are part of what a transferred
  // replica must resume with (see checkpoint_artifact.hpp).
  Bytes client_table = encode_client_table();
  const crypto::Digest service_digest = service_.state_digest();
  const crypto::Digest digest = CheckpointArtifact::checkpoint_digest(
      crypto_, client_table, service_digest);
  if (snapshot_fn_) {
    CheckpointArtifact artifact{std::move(client_table), service_digest,
                                service_.snapshot()};
    snapshot_fn_(seq, digest, artifact.encode());
  }
  // Round-robin checkpoint ownership across pillars (paper §4.2.2): mail
  // the frontier-crossing signal to the owner; its next poll_pillar()
  // turns it into a StartCheckpoint on the owning pillar's own thread.
  const std::uint32_t owner = static_cast<std::uint32_t>(
      (seq / config_.protocol.checkpoint_interval) % config_.num_pillars);
  CkptMailbox& mail = ckpt_mail_[owner];
  MutexLock lock(mail.mutex);
  mail.pending.push_back(CkptSignal{seq, digest});
}

// --------------------------------------------------------------------------
// state transfer: checkpoint install + client-table codec

Bytes ExecutionStage::encode_client_table() const {
  std::vector<protocol::ClientId> ids;
  ids.reserve(clients_.size());
  // COPLINT(allow:det-unordered-iter: only ids are collected and sorted below; the encoding never sees map order)
  for (const auto& [id, state] : clients_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  Bytes out;
  protocol::WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (protocol::ClientId id : ids) {
    const ClientState& state = clients_.at(id);
    w.u32(id);
    w.u64(state.max_done);
    std::vector<protocol::RequestId> done(state.done.begin(),
                                          state.done.end());
    std::sort(done.begin(), done.end());
    w.u32(static_cast<std::uint32_t>(done.size()));
    for (protocol::RequestId rid : done) w.u64(rid);
    // Replies in eviction order so a restored replica evicts identically.
    w.u32(static_cast<std::uint32_t>(state.reply_order.size()));
    for (protocol::RequestId rid : state.reply_order) {
      const CachedReply& cached = state.replies.at(rid);
      w.u64(rid);
      w.u64(cached.seq);
      w.bytes(cached.result);
    }
  }
  return out;
}

bool ExecutionStage::decode_client_table(
    ByteSpan table,
    std::unordered_map<protocol::ClientId, ClientState>& out) const {
  protocol::WireReader r(table);
  std::uint32_t n_clients = r.u32();
  // Each client record occupies >= 20 bytes; bound allocations.
  if (!r.ok() || r.remaining() / 20 < n_clients) return false;
  out.reserve(n_clients);
  for (std::uint32_t i = 0; i < n_clients; ++i) {
    protocol::ClientId id = r.u32();
    ClientState state;
    state.max_done = r.u64();
    std::uint32_t n_done = r.u32();
    if (!r.ok() || r.remaining() / 8 < n_done) return false;
    state.done.reserve(n_done);
    for (std::uint32_t d = 0; d < n_done; ++d) state.done.insert(r.u64());
    std::uint32_t n_replies = r.u32();
    // Each cached reply occupies >= 20 bytes (id + seq + length prefix).
    if (!r.ok() || r.remaining() / 20 < n_replies) return false;
    for (std::uint32_t q = 0; q < n_replies && r.ok(); ++q) {
      protocol::RequestId rid = r.u64();
      CachedReply cached;
      cached.seq = r.u64();
      cached.result = r.bytes();
      if (state.replies.emplace(rid, std::move(cached)).second)
        state.reply_order.push_back(rid);
    }
    if (!r.ok()) return false;
    if (!out.emplace(id, std::move(state)).second) return false;
  }
  return r.at_end();
}

void ExecutionStage::handle_install(InstallState install) {
  // Installs replace service state wholesale (restore() requires a
  // quiescent service) and rewrite the client table the pending entries
  // would retire into — finish all in-flight execution first.
  drain_pool();
  const auto reject = [&] {
    n_installs_rejected_.add();
    if (install.done) install.done(false);
  };

  // Checkpoints exist only at interval boundaries; a misaligned install
  // means the transfer path and the protocol disagree about the windows.
  const std::uint64_t interval = config_.protocol.checkpoint_interval;
  COP_INVARIANT(install.seq != 0 && install.seq % interval == 0,
                "state install at seq %llu, not a multiple of the "
                "checkpoint interval %llu",
                static_cast<unsigned long long>(install.seq),
                static_cast<unsigned long long>(interval));
  // Windows never regress: no install may move the frontier below a
  // checkpoint this stage already installed (execution below an installed
  // checkpoint would re-apply history onto newer state).
  COP_INVARIANT(install.seq >= installed_floor_,
                "state install at seq %llu regresses below the installed "
                "checkpoint %llu",
                static_cast<unsigned long long>(install.seq),
                static_cast<unsigned long long>(installed_floor_));
  if (install.seq == 0 || install.seq % interval != 0 ||
      install.seq < installed_floor_)
    return reject();  // a continuing invariant handler lands here

  // Execution already passed this checkpoint (the transfer raced normal
  // progress): nothing to do, and not a failure.
  if (install.seq < next_seq_.load(std::memory_order_relaxed)) {
    if (install.done) install.done(true);
    return;
  }

  auto artifact = CheckpointArtifact::decode(install.artifact);
  if (!artifact) return reject();
  if (artifact->composite_digest(crypto_) != install.digest) return reject();
  // Parse the client table into scratch state before touching anything, so
  // a torn install is impossible; the service restore is atomic itself.
  // COPLINT(allow:det-unordered-member: scratch table mirroring clients_; filled by keyed insert and moved, never iterated)
  std::unordered_map<protocol::ClientId, ClientState> clients;
  if (!decode_client_table(artifact->client_table, clients)) return reject();
  if (!service_.restore(artifact->service_snapshot, artifact->service_digest))
    return reject();

  clients_ = std::move(clients);
  // Ring truncation races pillar writers: advance the frontier *first*
  // (seq_cst), then sweep. A writer that published concurrently and lost
  // the sweep's CAS left a below-frontier occupant, which any later
  // publish to that slot reclaims in place — the ring self-heals.
  next_seq_.store(install.seq + 1, std::memory_order_seq_cst);
  reorder_.discard_upto(install.seq);
  m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
  installed_floor_ = install.seq;
  n_state_installs_.add();
  n_installed_seq_.set(install.seq);
  // The state now reflects everything through install.seq.
  if (n_last_executed_seq_.get() < install.seq)
    n_last_executed_seq_.set(install.seq);
  if (install.done) install.done(true);
}

}  // namespace copbft::core
