#include "core/execution_stage.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "common/hot.hpp"
#include "common/logging.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "core/checkpoint_artifact.hpp"
#include "core/outbound.hpp"
#include "protocol/wire.hpp"

namespace copbft::core {
namespace {

constexpr std::size_t kReplyCachePerClient = 32;
constexpr std::uint64_t kDedupWindow = 4096;

/// Two commits for the same sequence number must carry the same batch;
/// anything else means the total order forked.
bool equivalent_batches(const CommittedBatch& a, const CommittedBatch& b) {
  const bool a_noop = !a.requests || a.requests->empty();
  const bool b_noop = !b.requests || b.requests->empty();
  if (a_noop || b_noop) return a_noop == b_noop;
  if (a.requests->size() != b.requests->size()) return false;
  for (std::size_t i = 0; i < a.requests->size(); ++i) {
    if ((*a.requests)[i].key() != (*b.requests)[i].key()) return false;
  }
  return true;
}

std::string exec_metric(ReplicaId self, const char* name) {
  return "replica" + std::to_string(self) + ".exec." + name;
}

/// Live sequence numbers span at most [frontier, stable + window]; the
/// frontier can itself trail stability, so 2x window plus slack covers
/// every buffered seq with distinct slots. Clamped so a pathological
/// window cannot exhaust memory — collisions are then legal and resolved
/// by admit().
std::size_t ring_slots(std::uint64_t window) {
  const std::uint64_t want = 2 * window + 2;
  std::size_t n = 64;
  while (n < want && n < (std::size_t{1} << 20)) n <<= 1;
  return n;
}

}  // namespace

// --------------------------------------------------------------------------
// ReorderRing

ExecutionStage::ReorderRing::ReorderRing(std::uint64_t window)
    : slots_(ring_slots(window)), mask_(slots_.size() - 1) {}

COP_HOT CommittedBatch* ExecutionStage::ReorderRing::find(
    protocol::SeqNum seq) {
  auto& cell = slots_[slot(seq)];
  if (cell && cell->seq == seq) return &*cell;
  return nullptr;
}

COP_HOT CommittedBatch* ExecutionStage::ReorderRing::occupant(
    protocol::SeqNum seq) {
  auto& cell = slots_[slot(seq)];
  return cell ? &*cell : nullptr;
}

COP_HOT void ExecutionStage::ReorderRing::insert(CommittedBatch batch) {
  auto& cell = slots_[slot(batch.seq)];
  cell.emplace(std::move(batch));
  ++count_;
}

COP_HOT void ExecutionStage::ReorderRing::erase(protocol::SeqNum seq) {
  auto& cell = slots_[slot(seq)];
  if (cell && cell->seq == seq) {
    cell.reset();
    --count_;
  }
}

void ExecutionStage::ReorderRing::erase_upto(protocol::SeqNum upto) {
  if (count_ == 0) return;
  for (auto& cell : slots_) {
    if (cell && cell->seq <= upto) {
      cell.reset();
      --count_;
    }
  }
}

protocol::SeqNum ExecutionStage::ReorderRing::highest() const {
  protocol::SeqNum best = 0;
  if (count_ == 0) return best;
  for (const auto& cell : slots_) {
    if (cell && cell->seq > best) best = cell->seq;
  }
  return best;
}

// --------------------------------------------------------------------------

ExecutionStage::ExecutionStage(ReplicaId self,
                               const ReplicaRuntimeConfig& config,
                               app::Service& service,
                               const crypto::CryptoProvider& crypto,
                               transport::Transport& transport,
                               CommandFn command)
    : self_(self),
      config_(config),
      service_(service),
      crypto_(crypto),
      transport_(transport),
      command_(std::move(command)),
      queue_(config.queue_capacity),
      reorder_(config.protocol.window),
      m_reorder_depth_(metrics::MetricsRegistry::global().gauge(
          exec_metric(self, "reorder_depth"))),
      m_drift_(
          metrics::MetricsRegistry::global().gauge(exec_metric(self, "drift"))),
      m_batches_executed_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "batches_executed"))),
      m_requests_executed_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "requests_executed"))),
      m_replies_sent_(metrics::MetricsRegistry::global().counter(
          exec_metric(self, "replies_sent"))),
      m_execute_us_(metrics::MetricsRegistry::global().histogram(
          exec_metric(self, "execute_us"))) {
  queue_.instrument(
      metrics::MetricsRegistry::global().gauge(exec_metric(self, "queue_depth")),
      metrics::MetricsRegistry::global().counter(
          exec_metric(self, "queue_blocked_pushes")));
}

void ExecutionStage::start() {
  thread_ = named_thread("exec", [this] { run(); });
}

void ExecutionStage::stop() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

ExecutionStats ExecutionStage::stats() const {
  ExecutionStats out;
  // Acquire loads pairing with the stage thread's release stores. The
  // progress counters are read first: an observer that sees a request
  // counted is then guaranteed to also see everything counted before it
  // (e.g. the matching reply omission — tests sum both).
  out.requests_executed = n_requests_executed_.get();
  out.last_executed_seq = n_last_executed_seq_.get();
  out.batches_executed = n_batches_executed_.get();
  out.noops_executed = n_noops_executed_.get();
  out.duplicates_suppressed = n_duplicates_suppressed_.get();
  out.replies_sent = n_replies_sent_.get();
  out.replies_offloaded = n_replies_offloaded_.get();
  out.replies_omitted = n_replies_omitted_.get();
  out.checkpoints_triggered = n_checkpoints_triggered_.get();
  out.gap_fills_requested = n_gap_fills_requested_.get();
  out.reorder_slot_drops = n_reorder_slot_drops_.get();
  out.state_installs = n_state_installs_.get();
  out.installs_rejected = n_installs_rejected_.get();
  out.installed_seq = n_installed_seq_.get();
  return out;
}

void ExecutionStage::run() {
  const auto poll = std::chrono::microseconds(
      std::max<std::uint64_t>(config_.gap_timeout_us / 2, 500));
  while (true) {
    auto input = queue_.pop_for(poll);
    if (!input && queue_.closed()) return;
    if (input) {
      admit_input(std::move(*input));
      // Drain whatever else is already queued before executing: cheap and
      // increases the chance the reorder buffer can run a long streak.
      while (auto more = queue_.try_pop()) admit_input(std::move(*more));
    }
    apply_ready();
    check_gap(now_us());
  }
}

void ExecutionStage::admit_input(Input input) {
  if (auto* batch = std::get_if<CommittedBatch>(&input)) {
    admit(std::move(*batch));
  } else {
    handle_install(std::move(std::get<InstallState>(input)));
  }
}

COP_HOT void ExecutionStage::admit(CommittedBatch batch) {
  const std::uint32_t np = config_.num_pillars;
  COP_INVARIANT(batch.seq != 0,
                "sequence number 0 is genesis and must never commit "
                "(pillar %u)",
                batch.pillar);
  // Paper §4.2.1: pillar p owns exactly the numbers c(p,i) = p + i*NP.
  COP_INVARIANT(batch.pillar < np && batch.seq % np == batch.pillar,
                "seq %llu delivered by pillar %u breaks the c(p,i)=p+i*NP "
                "partition (NP=%u)",
                static_cast<unsigned long long>(batch.seq), batch.pillar, np);

  const protocol::SeqNum next = next_seq_.load(std::memory_order_relaxed);
  if (batch.seq < next) return;  // stale redelivery (e.g. after view change)

  // Paper §3.4/§4.2.2: commits may only run `window` past the stable
  // checkpoint. The bound is checked against the emitting core's stable
  // seq (carried in the batch), not this stage's frontier: a replica that
  // learns stability from its peers' votes can legitimately buffer
  // commits further ahead than its own execution has reached.
  COP_INVARIANT(
      batch.seq <= batch.stable_basis + config_.protocol.window,
      "seq %llu exceeds the checkpoint-window drift bound: stable "
      "checkpoint %llu + window %llu",
      static_cast<unsigned long long>(batch.seq),
      static_cast<unsigned long long>(batch.stable_basis),
      static_cast<unsigned long long>(config_.protocol.window));

  if (CommittedBatch* existing = reorder_.find(batch.seq)) {
    // A duplicate commit is tolerated, a conflicting one is a fork: two
    // different batches for one slot can not both enter the total order.
    COP_INVARIANT(equivalent_batches(*existing, batch),
                  "conflicting commits for seq %llu: the total order would "
                  "fork or leave a hole",
                  static_cast<unsigned long long>(batch.seq));
    return;
  }
  if (CommittedBatch* occupant = reorder_.occupant(batch.seq)) {
    // Ring wrap-around — only reachable when the drift bound exceeded the
    // clamped ring size. Keep the lower sequence number (it executes
    // first) and drop the higher one; gap detection re-fetches it.
    n_reorder_slot_drops_.add();
    if (occupant->seq < batch.seq) return;
    reorder_.erase(occupant->seq);
  }
  m_drift_.set(static_cast<std::int64_t>(batch.seq - batch.stable_basis));
  trace::point(trace::Point::kReorderEnter, self_, batch.pillar, batch.seq,
               batch.view, /*client=*/0, /*request=*/0);
  reorder_.insert(std::move(batch));
  m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
}

COP_HOT void ExecutionStage::apply_ready() {
  while (true) {
    const protocol::SeqNum next = next_seq_.load(std::memory_order_relaxed);
    CommittedBatch* batch = reorder_.find(next);
    if (!batch) break;
    {
      metrics::ScopedTimer timer(m_execute_us_);
      execute_batch(*batch);
    }
    reorder_.erase(next);
    m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
    n_last_executed_seq_.set(next);
    maybe_checkpoint(next);
    next_seq_.store(next + 1, std::memory_order_relaxed);
    stall_since_us_ = 0;
  }
}

COP_HOT void ExecutionStage::execute_batch(const CommittedBatch& batch) {
  m_batches_executed_.add();
  n_batches_executed_.add();
  if (!batch.requests || batch.requests->empty()) {
    n_noops_executed_.add();
    return;
  }
  const auto& requests = *batch.requests;
  for (std::uint32_t i = 0; i < requests.size(); ++i) {
    // The linking event: ties (client, request) to the sequence number the
    // protocol-phase events are stamped with.
    trace::point(trace::Point::kExecute, self_, batch.pillar, batch.seq,
                 batch.view, requests[i].client, requests[i].id);
    execute_request(requests[i], batch, i);
  }
}

bool ExecutionStage::already_executed(ClientState& state,
                                      protocol::RequestId id) const {
  if (state.max_done >= kDedupWindow && id <= state.max_done - kDedupWindow)
    return true;  // far below the window: long done
  return state.done.contains(id);
}

void ExecutionStage::record_executed(ClientState& state,
                                     protocol::RequestId id) {
  state.done.insert(id);
  if (id > state.max_done) state.max_done = id;
  // Prune entries that fell below the dedup window.
  if (state.done.size() > 2 * kDedupWindow) {
    std::erase_if(state.done, [&](protocol::RequestId done_id) {
      return state.max_done >= kDedupWindow &&
             done_id <= state.max_done - kDedupWindow;
    });
  }
}

COP_HOT void ExecutionStage::execute_request(
    const protocol::Request& request,
                                     const CommittedBatch& batch,
                                     std::uint32_t index) {
  ClientState& state = clients_[request.client];
  if (already_executed(state, request.id)) {
    n_duplicates_suppressed_.add();
    // Retransmission of an executed request: resend the cached reply (the
    // raw ordered result; post_process ran when it was first sent, and a
    // retransmission skips it — null `requests` signals that downstream).
    auto cached = state.replies.find(request.id);
    if (cached != state.replies.end()) {
      ReplyTask task;
      task.client = request.client;
      task.request = request.id;
      task.view = batch.view;
      task.seq = cached->second.seq;
      task.pillar = static_cast<std::uint32_t>(cached->second.seq %
                                               config_.num_pillars);
      task.result = cached->second.result;  // the cache keeps its entry
      emit_reply(std::move(task));
    }
    return;
  }

  Bytes result = service_.execute(request);
  m_requests_executed_.add();
  record_executed(state, request.id);

  // The cache stores the *raw* ordered result for every request: it is
  // replicated state (part of the checkpoint digest), so it must not
  // depend on this replica's omit role or on post_process decoration.
  if (state.replies.emplace(request.id, CachedReply{batch.seq, result})
          .second) {
    state.reply_order.push_back(request.id);
    if (state.reply_order.size() > kReplyCachePerClient) {
      state.replies.erase(state.reply_order.front());
      state.reply_order.pop_front();
    }
  }

  const bool omit = config_.reply_mode == ReplyMode::kOmitOne &&
                    config_.omitted_replier(request.key()) == self_;
  // The omission is counted before requests_executed's release store, so
  // an observer that sees the request counted also sees the omission.
  if (omit) n_replies_omitted_.add();
  n_requests_executed_.add();
  if (omit) return;

  ReplyTask task;
  task.client = request.client;
  task.request = request.id;
  task.view = batch.view;
  task.pillar = batch.pillar;
  task.seq = batch.seq;
  task.result = std::move(result);
  task.requests = batch.requests;
  task.index = index;
  emit_reply(std::move(task));
}

COP_HOT void ExecutionStage::emit_reply(ReplyTask task) {
  // Counted at emission — offloaded or inline — so exec.replies_sent
  // covers every reply exactly once wherever it is sealed.
  m_replies_sent_.add();
  n_replies_sent_.add();
  // Offloaded post-execution (paper §4.3.2): the originating pillar runs
  // post_process, seals and sends, in parallel with this stage.
  if (reply_fn_ && reply_fn_(task)) {
    n_replies_offloaded_.add();
    return;
  }
  // Inline fallback: single-logic baselines (no ReplyFn installed) and the
  // overload/shutdown path (the pillar's queue is full or closed).
  Bytes result = task.requests
                     ? service_.post_process((*task.requests)[task.index],
                                             std::move(task.result))
                     : std::move(task.result);
  protocol::Message msg = protocol::Reply{
      task.view, task.client, task.request, self_, std::move(result), {}};
  Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                             {protocol::client_node(task.client)});
  trace::point(trace::Point::kReplyEgress, self_, task.pillar, task.seq,
               task.view, task.client, task.request);
  transport_.send(protocol::client_node(task.client), /*lane=*/0,
                  std::move(frame));
}

void ExecutionStage::maybe_checkpoint(protocol::SeqNum seq) {
  if (seq % config_.protocol.checkpoint_interval != 0) return;
  n_checkpoints_triggered_.add();
  // The agreed checkpoint digest covers the service state *and* the
  // exactly-once client bookkeeping: both are part of what a transferred
  // replica must resume with (see checkpoint_artifact.hpp).
  Bytes client_table = encode_client_table();
  const crypto::Digest service_digest = service_.state_digest();
  const crypto::Digest digest = CheckpointArtifact::checkpoint_digest(
      crypto_, client_table, service_digest);
  if (snapshot_fn_) {
    CheckpointArtifact artifact{std::move(client_table), service_digest,
                                service_.snapshot()};
    snapshot_fn_(seq, digest, artifact.encode());
  }
  // Round-robin checkpoint ownership across pillars (paper §4.2.2).
  std::uint32_t owner = static_cast<std::uint32_t>(
      (seq / config_.protocol.checkpoint_interval) % config_.num_pillars);
  command_(owner, StartCheckpoint{seq, digest});
}

void ExecutionStage::check_gap(std::uint64_t now) {
  if (reorder_.empty()) {
    stall_since_us_ = 0;
    return;
  }
  // Something beyond next_seq_ committed but next_seq_ has not: a gap.
  if (stall_since_us_ == 0) {
    stall_since_us_ = now;
    return;
  }
  if (now - stall_since_us_ < config_.gap_timeout_us) return;
  stall_since_us_ = now;
  n_gap_fills_requested_.add();
  protocol::SeqNum target = reorder_.highest();
  const protocol::SeqNum frontier = next_seq_.load(std::memory_order_relaxed);
  for (std::uint32_t p = 0; p < config_.num_pillars; ++p)
    command_(p, FillGap{target, frontier});
}

// --------------------------------------------------------------------------
// state transfer: checkpoint install + client-table codec

Bytes ExecutionStage::encode_client_table() const {
  std::vector<protocol::ClientId> ids;
  ids.reserve(clients_.size());
  // COPLINT(allow:det-unordered-iter: only ids are collected and sorted below; the encoding never sees map order)
  for (const auto& [id, state] : clients_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  Bytes out;
  protocol::WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (protocol::ClientId id : ids) {
    const ClientState& state = clients_.at(id);
    w.u32(id);
    w.u64(state.max_done);
    std::vector<protocol::RequestId> done(state.done.begin(),
                                          state.done.end());
    std::sort(done.begin(), done.end());
    w.u32(static_cast<std::uint32_t>(done.size()));
    for (protocol::RequestId rid : done) w.u64(rid);
    // Replies in eviction order so a restored replica evicts identically.
    w.u32(static_cast<std::uint32_t>(state.reply_order.size()));
    for (protocol::RequestId rid : state.reply_order) {
      const CachedReply& cached = state.replies.at(rid);
      w.u64(rid);
      w.u64(cached.seq);
      w.bytes(cached.result);
    }
  }
  return out;
}

bool ExecutionStage::decode_client_table(
    ByteSpan table,
    std::unordered_map<protocol::ClientId, ClientState>& out) const {
  protocol::WireReader r(table);
  std::uint32_t n_clients = r.u32();
  // Each client record occupies >= 20 bytes; bound allocations.
  if (!r.ok() || r.remaining() / 20 < n_clients) return false;
  out.reserve(n_clients);
  for (std::uint32_t i = 0; i < n_clients; ++i) {
    protocol::ClientId id = r.u32();
    ClientState state;
    state.max_done = r.u64();
    std::uint32_t n_done = r.u32();
    if (!r.ok() || r.remaining() / 8 < n_done) return false;
    state.done.reserve(n_done);
    for (std::uint32_t d = 0; d < n_done; ++d) state.done.insert(r.u64());
    std::uint32_t n_replies = r.u32();
    // Each cached reply occupies >= 20 bytes (id + seq + length prefix).
    if (!r.ok() || r.remaining() / 20 < n_replies) return false;
    for (std::uint32_t q = 0; q < n_replies && r.ok(); ++q) {
      protocol::RequestId rid = r.u64();
      CachedReply cached;
      cached.seq = r.u64();
      cached.result = r.bytes();
      if (state.replies.emplace(rid, std::move(cached)).second)
        state.reply_order.push_back(rid);
    }
    if (!r.ok()) return false;
    if (!out.emplace(id, std::move(state)).second) return false;
  }
  return r.at_end();
}

void ExecutionStage::handle_install(InstallState install) {
  const auto reject = [&] {
    n_installs_rejected_.add();
    if (install.done) install.done(false);
  };

  // Checkpoints exist only at interval boundaries; a misaligned install
  // means the transfer path and the protocol disagree about the windows.
  const std::uint64_t interval = config_.protocol.checkpoint_interval;
  COP_INVARIANT(install.seq != 0 && install.seq % interval == 0,
                "state install at seq %llu, not a multiple of the "
                "checkpoint interval %llu",
                static_cast<unsigned long long>(install.seq),
                static_cast<unsigned long long>(interval));
  // Windows never regress: no install may move the frontier below a
  // checkpoint this stage already installed (execution below an installed
  // checkpoint would re-apply history onto newer state).
  COP_INVARIANT(install.seq >= installed_floor_,
                "state install at seq %llu regresses below the installed "
                "checkpoint %llu",
                static_cast<unsigned long long>(install.seq),
                static_cast<unsigned long long>(installed_floor_));
  if (install.seq == 0 || install.seq % interval != 0 ||
      install.seq < installed_floor_)
    return reject();  // a continuing invariant handler lands here

  // Execution already passed this checkpoint (the transfer raced normal
  // progress): nothing to do, and not a failure.
  if (install.seq < next_seq_.load(std::memory_order_relaxed)) {
    if (install.done) install.done(true);
    return;
  }

  auto artifact = CheckpointArtifact::decode(install.artifact);
  if (!artifact) return reject();
  if (artifact->composite_digest(crypto_) != install.digest) return reject();
  // Parse the client table into scratch state before touching anything, so
  // a torn install is impossible; the service restore is atomic itself.
  // COPLINT(allow:det-unordered-member: scratch table mirroring clients_; filled by keyed insert and moved, never iterated)
  std::unordered_map<protocol::ClientId, ClientState> clients;
  if (!decode_client_table(artifact->client_table, clients)) return reject();
  if (!service_.restore(artifact->service_snapshot, artifact->service_digest))
    return reject();

  clients_ = std::move(clients);
  reorder_.erase_upto(install.seq);
  m_reorder_depth_.set(static_cast<std::int64_t>(reorder_.size()));
  next_seq_.store(install.seq + 1, std::memory_order_relaxed);
  installed_floor_ = install.seq;
  stall_since_us_ = 0;
  n_state_installs_.add();
  n_installed_seq_.set(install.seq);
  // The state now reflects everything through install.seq.
  if (n_last_executed_seq_.get() < install.seq)
    n_last_executed_seq_.set(install.seq);
  if (install.done) install.done(true);
}

}  // namespace copbft::core
