// TOP replica: the contemporary task-oriented, pipelined architecture the
// paper uses as its primary baseline (paper §3.1, evaluated as "TOP").
//
// Pipeline stages, each in its own thread(s):
//   ingress (client management: decode frames, verify client MACs)
//     -> protocol logic (one thread, multi-instance, in-order verification)
//     -> authentication pool (outgoing MACs) -> network
//     -> execution stage.
//
// The protocol logic and execution code are byte-identical with COP
// (shared Pillar / PbftCore / ExecutionStage); only the thread structure
// differs — the paper's same-code-base comparison.
#pragma once

#include "core/pillar.hpp"
#include "core/replica.hpp"

namespace copbft::core {

class TopReplica final : public Replica {
 public:
  /// `config.num_pillars` must be 1.
  TopReplica(ReplicaId self, ReplicaRuntimeConfig config,
             std::unique_ptr<app::Service> service,
             const crypto::CryptoProvider& crypto,
             transport::Transport& transport);

  void start() override;
  void stop() override;
  ReplicaStats stats() const override;
  ReplicaId id() const override { return self_; }

 private:
  /// Client-management stage: decodes every frame and verifies client
  /// request MACs before the logic thread sees them. Protocol messages
  /// pass through un-verified (in-order verification happens in the
  /// logic, §3.2).
  class IngressStage final : public transport::FrameSink {
   public:
    IngressStage(TopReplica& owner, std::size_t capacity)
        : owner_(owner), queue_(capacity) {}

    bool deliver(transport::ReceivedFrame frame) override {
      return queue_.push(std::move(frame));
    }
    void close() override { queue_.close(); }

    void start();
    void stop();

   private:
    void run();

    TopReplica& owner_;
    BoundedQueue<transport::ReceivedFrame> queue_;
    std::jthread thread_;
  };

  const ReplicaId self_;
  const ReplicaRuntimeConfig config_;
  std::unique_ptr<app::Service> service_;
  protocol::CryptoVerifier ingress_verifier_;
  AuthPoolOutbound outbound_;
  ExecutionStage exec_;
  std::shared_ptr<Pillar> logic_;
  std::shared_ptr<IngressStage> ingress_;
  bool stopped_ = false;
};

}  // namespace copbft::core
