#include "core/top_replica.hpp"

#include "common/logging.hpp"

namespace copbft::core {

TopReplica::TopReplica(ReplicaId self, ReplicaRuntimeConfig config,
                       std::unique_ptr<app::Service> service,
                       const crypto::CryptoProvider& crypto,
                       transport::Transport& transport)
    : self_(self),
      config_(std::move(config)),
      service_(std::move(service)),
      ingress_verifier_(crypto, protocol::replica_node(self)),
      outbound_(self, config_.protocol.num_replicas, crypto, transport,
                config_.auth_threads, config_.queue_capacity),
      exec_(self, config_, *service_, crypto, transport) {
  if (config_.num_pillars != 1)
    throw std::invalid_argument("TOP replica has exactly one logic thread");

  logic_ = std::make_shared<Pillar>(self_, 0, config_, crypto, transport,
                                    exec_, outbound_, service_.get(),
                                    Pillar::StableFn{});
  ingress_ = std::make_shared<IngressStage>(*this, config_.queue_capacity);
  transport.register_sink(0, ingress_);
}

void TopReplica::IngressStage::start() {
  thread_ = named_thread("ingress", [this] { run(); });
}

void TopReplica::IngressStage::stop() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void TopReplica::IngressStage::run() {
  while (auto frame = queue_.pop()) {
    auto decoded = protocol::decode_message(frame->bytes);
    if (!decoded) {
      COP_LOG_WARN("replica %u ingress: malformed frame from node %u",
                   owner_.self_, frame->from);
      continue;
    }
    protocol::IncomingMessage im;
    im.body_size = decoded->body_size;
    if (auto* req = std::get_if<protocol::Request>(&decoded->msg)) {
      // Client management: authenticate requests here, in the pipeline
      // stage, so the logic thread only sees valid ones.
      if (!owner_.ingress_verifier_.verify_request(*req)) continue;
      im.pre_verified = true;
      im.msg = std::move(decoded->msg);
    } else {
      im.msg = std::move(decoded->msg);
      im.raw = std::move(frame->bytes);
    }
    owner_.logic_->post(PillarEvent{PreparedInput{std::move(im)}});
  }
}

void TopReplica::start() {
  exec_.start();
  logic_->start();
  ingress_->start();
}

void TopReplica::stop() {
  if (stopped_) return;
  stopped_ = true;
  ingress_->stop();
  logic_->stop();
  outbound_.stop();
  exec_.stop();
}

ReplicaStats TopReplica::stats() const {
  ReplicaStats out;
  out.exec = exec_.stats();
  out.core += logic_->core_stats();
  return out;
}

}  // namespace copbft::core
