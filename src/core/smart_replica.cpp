#include "core/smart_replica.hpp"

#include "common/logging.hpp"

namespace copbft::core {

SmartReplica::SmartReplica(ReplicaId self, ReplicaRuntimeConfig config,
                           std::unique_ptr<app::Service> service,
                           const crypto::CryptoProvider& crypto,
                           transport::Transport& transport,
                           std::uint32_t lanes)
    : self_(self),
      config_(std::move(config)),
      lanes_(lanes),
      service_(std::move(service)),
      pool_verifier_(crypto, protocol::replica_node(self)),
      auth_pool_(self, config_.protocol.num_replicas, crypto, transport,
                 config_.auth_threads, config_.queue_capacity),
      outbound_(auth_pool_, lanes),
      exec_(self, config_, *service_, crypto, transport) {
  if (config_.num_pillars != 1)
    throw std::invalid_argument("SMaRt replica has exactly one logic thread");
  if (config_.protocol.max_active_proposals != 1)
    throw std::invalid_argument(
        "SMaRt baseline requires max_active_proposals = 1");

  logic_ = std::make_shared<Pillar>(self_, 0, config_, crypto, transport,
                                    exec_, outbound_, service_.get(),
                                    Pillar::StableFn{});
  verify_pool_ = std::make_shared<VerifyPool>(*this, config_.auth_threads,
                                              config_.queue_capacity);
  for (std::uint32_t lane = 0; lane < lanes_; ++lane)
    transport.register_sink(lane, verify_pool_);
}

void SmartReplica::VerifyPool::start() {
  threads_.reserve(threads_count_);
  for (std::uint32_t i = 0; i < threads_count_; ++i)
    threads_.emplace_back(
        named_thread("verify-" + std::to_string(i), [this] { run(); }));
}

void SmartReplica::VerifyPool::stop() {
  queue_.close();
  threads_.clear();  // join
}

void SmartReplica::VerifyPool::run() {
  while (auto frame = queue_.pop()) {
    auto decoded = protocol::decode_message(frame->bytes);
    if (!decoded) continue;

    protocol::IncomingMessage im;
    im.msg = std::move(decoded->msg);
    im.raw = std::move(frame->bytes);
    im.body_size = decoded->body_size;

    // Out-of-order verification: authenticate everything now, whether the
    // protocol will need it or not (paper §3.2).
    bool ok;
    owner_.pool_verifications_.fetch_add(1, std::memory_order_relaxed);
    if (auto* req = std::get_if<protocol::Request>(&im.msg)) {
      ok = owner_.pool_verifier_.verify_request(*req);
    } else {
      crypto::KeyNodeId sender = protocol::sender_node(im.msg);
      if (sender == protocol::kUnknownNode) {
        const auto& pp = std::get<protocol::PrePrepare>(im.msg);
        sender = protocol::replica_node(
            owner_.config_.protocol.leader_for(pp.view, pp.seq));
      }
      ok = owner_.pool_verifier_.verify(im, sender);
      if (ok) {
        if (const auto* pp = std::get_if<protocol::PrePrepare>(&im.msg)) {
          for (const protocol::Request& req : pp->requests) {
            owner_.pool_verifications_.fetch_add(1,
                                                 std::memory_order_relaxed);
            if (!(ok = owner_.pool_verifier_.verify_request(req))) break;
          }
        }
      }
    }
    if (!ok) continue;
    im.pre_verified = true;
    owner_.logic_->post(PillarEvent{PreparedInput{std::move(im)}});
  }
}

void SmartReplica::start() {
  exec_.start();
  logic_->start();
  verify_pool_->start();
}

void SmartReplica::stop() {
  if (stopped_) return;
  stopped_ = true;
  verify_pool_->stop();
  logic_->stop();
  auth_pool_.stop();
  exec_.stop();
}

ReplicaStats SmartReplica::stats() const {
  ReplicaStats out;
  out.exec = exec_.stats();
  out.core += logic_->core_stats();
  return out;
}

}  // namespace copbft::core
