// Common interface of the three replica architectures.
#pragma once

#include <memory>

#include "core/execution_stage.hpp"
#include "protocol/pbft_core.hpp"

namespace copbft::core {

struct ReplicaStats {
  protocol::CoreStats core;  ///< summed over all logic units
  ExecutionStats exec;
};

class Replica {
 public:
  virtual ~Replica() = default;

  virtual void start() = 0;
  /// Stops all threads; idempotent. Statistics remain readable.
  virtual void stop() = 0;
  virtual ReplicaStats stats() const = 0;
  virtual ReplicaId id() const = 0;
};

}  // namespace copbft::core
