#include "core/checkpoint_artifact.hpp"

#include "protocol/wire.hpp"

namespace copbft::core {

Bytes CheckpointArtifact::encode() const {
  Bytes out;
  out.reserve(4 + client_table.size() + 32 + 4 + service_snapshot.size());
  protocol::WireWriter w(out);
  w.bytes(client_table);
  w.digest(service_digest);
  w.bytes(service_snapshot);
  return out;
}

std::optional<CheckpointArtifact> CheckpointArtifact::decode(ByteSpan data) {
  protocol::WireReader r(data);
  CheckpointArtifact a;
  a.client_table = r.bytes();
  a.service_digest = r.digest();
  a.service_snapshot = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return a;
}

crypto::Digest CheckpointArtifact::checkpoint_digest(
    const crypto::CryptoProvider& crypto, ByteSpan client_table,
    const crypto::Digest& service_digest) {
  Bytes buf;
  buf.reserve(client_table.size() + service_digest.bytes.size());
  append(buf, client_table);
  append(buf, service_digest.span());
  return crypto.digest(buf);
}

}  // namespace copbft::core
