// COP replica: NP self-contained pillars + one execution stage (paper §4).
//
// Each pillar runs client management, the full protocol logic for its
// sequence slice, in-place cryptography and private lanes to its peers.
// The execution stage re-serializes the total order; checkpoints are
// agreed by one pillar and propagated to the others.
#pragma once

#include <vector>

#include "core/pillar.hpp"
#include "core/replica.hpp"
#include "core/state_transfer.hpp"

namespace copbft::core {

class CopReplica final : public Replica {
 public:
  /// `config.num_pillars` pillars are created; the transport must route
  /// lane p to pillar p on every replica. `service` is executed in the
  /// execution stage and consulted for offloaded pre-validation in the
  /// pillars.
  CopReplica(ReplicaId self, ReplicaRuntimeConfig config,
             std::unique_ptr<app::Service> service,
             const crypto::CryptoProvider& crypto,
             transport::Transport& transport);

  void start() override;
  void stop() override;
  ReplicaStats stats() const override;
  ReplicaId id() const override { return self_; }

  const app::Service& service() const { return *service_; }
  const Pillar& pillar(std::uint32_t p) const { return *pillars_[p]; }
  /// Counters of the checkpoint-based state-transfer path.
  StateTransferStats state_transfer_stats() const { return state_->stats(); }

 private:
  const ReplicaId self_;
  const ReplicaRuntimeConfig config_;
  std::unique_ptr<app::Service> service_;
  transport::Transport& transport_;
  InPlaceOutbound outbound_;
  ExecutionStage exec_;
  std::shared_ptr<StateTransferManager> state_;
  std::vector<std::shared_ptr<Pillar>> pillars_;
  bool stopped_ = false;
};

}  // namespace copbft::core
