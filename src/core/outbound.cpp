#include "core/outbound.hpp"

#include "common/hot.hpp"
#include "protocol/wire.hpp"

namespace copbft::core {

COP_HOT Bytes seal_message(protocol::Message& msg,
                   const crypto::CryptoProvider& crypto,
                   crypto::KeyNodeId self,
                   const std::vector<crypto::KeyNodeId>& recipients) {
  Bytes frame = protocol::encode_authenticated_part(msg);
  auto auth = crypto::Authenticator::build(crypto, self, recipients,
                                           ByteSpan{frame});
  protocol::authenticator_of(msg) = auth;
  protocol::WireWriter w(frame);
  w.authenticator(auth);
  return frame;
}

std::vector<crypto::KeyNodeId> other_replicas(std::uint32_t num_replicas,
                                              protocol::ReplicaId self) {
  std::vector<crypto::KeyNodeId> out;
  out.reserve(num_replicas - 1);
  for (std::uint32_t r = 0; r < num_replicas; ++r)
    if (r != self) out.push_back(protocol::replica_node(r));
  return out;
}

}  // namespace copbft::core
