// Configuration of a threaded replica (any architecture).
#pragma once

#include <cstdint>

#include "protocol/config.hpp"

namespace copbft::core {

using protocol::ReplicaId;

/// Which replicas answer a client (paper §5.4: sparing one reply out of
/// four relieves the network).
enum class ReplyMode : std::uint8_t {
  kAll,
  /// For each request, one deterministically chosen replica stays silent;
  /// clients still obtain f+1 matching replies from the rest.
  kOmitOne,
};

struct ReplicaRuntimeConfig {
  protocol::ProtocolConfig protocol;

  /// COP pillars per replica (ignored by TOP/SMaRt replicas, which have a
  /// single protocol-logic thread). Must equal protocol.num_pillars.
  std::uint32_t num_pillars = 1;

  ReplyMode reply_mode = ReplyMode::kAll;

  /// TOP: threads authenticating outgoing messages.
  /// SMaRt: threads verifying incoming messages (out-of-order).
  std::uint32_t auth_threads = 2;

  /// Execution worker pool: requests the service classifies onto a shard
  /// (Service::classify) execute on this many worker threads, in parallel
  /// across shards, FIFO within a shard. 0 = inline sequential execution
  /// on the stage thread (the classic single-service-thread model).
  std::uint32_t exec_workers = 0;

  /// Queue capacity for every inter-stage queue.
  std::size_t queue_capacity = 8192;

  /// Execution stage: how long the total order may stall on a missing
  /// sequence number before asking pillars to fill the gap with no-ops.
  std::uint64_t gap_timeout_us = 2'000;

  /// State transfer (laggard recovery): how long to wait for a usable
  /// checkpoint before re-requesting from all peers.
  std::uint64_t state_transfer_timeout_us = 500'000;

  /// Chunk size of snapshot delivery in StateReply frames.
  std::size_t state_chunk_bytes = 64 * 1024;

  ReplicaId omitted_replier(std::uint64_t request_key) const {
    return static_cast<ReplicaId>(request_key % protocol.num_replicas);
  }
};

}  // namespace copbft::core
