// BFT-SMaRt-like baseline replica (paper §5 "BFT-SMaRt"/"BFT-SMaRt*").
//
// Architecture, following the paper's characterization:
//   * single-instance protocol logic — one consensus at a time; throughput
//     scales only through batching (§3.2, §5.1);
//   * out-of-order verification — a pool of worker threads fully verifies
//     *every* incoming message (including redundant votes) before the
//     logic sees it;
//   * outgoing authentication in the worker pool as well;
//   * the '*' variant uses one lane per network adapter, used alternately
//     (the paper's modification, §5 "The Subjects").
#pragma once

#include <atomic>

#include "core/pillar.hpp"
#include "core/replica.hpp"

namespace copbft::core {

class SmartReplica final : public Replica {
 public:
  /// `lanes` > 1 selects the BFT-SMaRt* multi-connection variant. The
  /// caller must set config.protocol.max_active_proposals = 1.
  SmartReplica(ReplicaId self, ReplicaRuntimeConfig config,
               std::unique_ptr<app::Service> service,
               const crypto::CryptoProvider& crypto,
               transport::Transport& transport, std::uint32_t lanes = 1);

  void start() override;
  void stop() override;
  ReplicaStats stats() const override;
  ReplicaId id() const override { return self_; }

  /// Verifications performed by the out-of-order pool (for comparing
  /// against COP/TOP's in-order counts).
  std::uint64_t pool_verifications() const {
    return pool_verifications_.load(std::memory_order_relaxed);
  }

 private:
  /// Out-of-order verification pool: every frame is decoded and fully
  /// authenticated here, needed or not.
  class VerifyPool final : public transport::FrameSink {
   public:
    VerifyPool(SmartReplica& owner, std::uint32_t threads,
               std::size_t capacity)
        : owner_(owner), threads_count_(threads), queue_(capacity) {}

    bool deliver(transport::ReceivedFrame frame) override {
      return queue_.push(std::move(frame));
    }
    void close() override { queue_.close(); }

    void start();
    void stop();

   private:
    void run();

    SmartReplica& owner_;
    std::uint32_t threads_count_;
    BoundedQueue<transport::ReceivedFrame> queue_;
    std::vector<std::jthread> threads_;
  };

  /// Round-robin lane rotation for the '*' variant.
  class RotatingOutbound final : public OutboundSink {
   public:
    RotatingOutbound(AuthPoolOutbound& inner, std::uint32_t lanes)
        : inner_(inner), lanes_(lanes) {}

    void broadcast(protocol::Message msg, transport::LaneId) override {
      inner_.broadcast(std::move(msg), next_lane());
    }
    void send_to(ReplicaId to, protocol::Message msg,
                 transport::LaneId) override {
      inner_.send_to(to, std::move(msg), next_lane());
    }

   private:
    transport::LaneId next_lane() {
      return lanes_ <= 1 ? 0 : counter_.fetch_add(1) % lanes_;
    }

    AuthPoolOutbound& inner_;
    const std::uint32_t lanes_;
    std::atomic<std::uint32_t> counter_{0};
  };

  const ReplicaId self_;
  const ReplicaRuntimeConfig config_;
  const std::uint32_t lanes_;
  std::unique_ptr<app::Service> service_;
  protocol::CryptoVerifier pool_verifier_;
  AuthPoolOutbound auth_pool_;
  RotatingOutbound outbound_;
  ExecutionStage exec_;
  std::shared_ptr<Pillar> logic_;
  std::shared_ptr<VerifyPool> verify_pool_;
  std::atomic<std::uint64_t> pool_verifications_{0};
  bool stopped_ = false;
};

}  // namespace copbft::core
