// Execution worker pool: conflict-aware parallel execution behind the
// execute-only drain loop (the P-SMR playbook — classify after ordering,
// parallelize independence, serialize conflicts).
//
// Topology: the stage thread is the single dispatcher AND the single
// retirer; workers run nothing but Service::execute. Each worker owns one
// SPSC job ring — the stage publishes jobs with a release store, the
// worker consumes them FIFO and publishes results back into the same slot.
// Requests are routed by their AccessClass shard (`shard % workers`), so
// two requests on one shard always land on one worker in dispatch order:
// per-shard FIFO holds by construction, and no lock is needed anywhere on
// the dispatch/execute/retire fast path. Global (unclassified) requests
// never enter the pool — the stage drains it and runs them inline, a
// barrier (see ExecutionStage).
//
// All client-visible bookkeeping (dedup, reply cache, reply emission,
// checkpoints) stays on the stage thread, applied at *retirement* in
// ticket order == dispatch order == total order — which is what makes a
// parallel schedule observationally identical to sequential execution.
//
// Parking: both sides spin briefly, then park on an annotated Mutex/Cv.
// The park/wake helpers are deliberately not COP_HOT — they run on the
// empty/contended edges, not per job (same shape as the stage's own
// wake_exec latch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "app/service.hpp"
#include "common/hot.hpp"
#include "common/threading.hpp"

namespace copbft::core {

class ExecPool {
 public:
  /// `workers` >= 1; ring capacity per worker is fixed (kRingSlots).
  ExecPool(std::uint32_t workers, app::Service& service);
  ~ExecPool();

  void start();
  void stop();

  std::uint32_t workers() const {
    return static_cast<std::uint32_t>(workers_v_.size());
  }

  /// Worker a shard routes to — fixed for the pool's lifetime, which is
  /// what gives same-shard requests their FIFO.
  std::uint32_t worker_of(std::uint32_t shard) const {
    return shard % workers();
  }

  /// Stage thread only: true when `worker_of(shard)`'s ring has a free
  /// slot. When false the stage must retire outstanding jobs first (it is
  /// the only party that frees slots), never spin-wait here.
  bool can_dispatch(std::uint32_t worker) const;

  /// Stage thread only: publishes `request` to `worker`'s ring. The
  /// caller must have checked can_dispatch. The request must stay alive
  /// until the matching retire() (the stage holds the batch shared_ptr).
  /// Returns the slot index to pass to retire().
  std::uint32_t dispatch(std::uint32_t worker,
                         const protocol::Request* request);

  /// Stage thread only: waits for the job in `slot` of `worker` to
  /// complete, takes the result and frees the slot. Jobs of one worker
  /// must be retired in dispatch order (the stage's pending FIFO
  /// guarantees it).
  Bytes retire(std::uint32_t worker, std::uint32_t slot);

 private:
  // Job slot states: the stage moves a slot kFree -> kReady (request
  // published); the worker moves it kReady -> kDone (result published);
  // the stage's retire moves it kDone -> kFree. Each transition is a
  // release store read by an acquire load on the other side.
  enum : std::uint32_t { kFree = 0, kReady = 1, kDone = 2 };

  struct alignas(64) Job {
    std::atomic<std::uint32_t> state{kFree};
    const protocol::Request* request = nullptr;
    Bytes result;
  };

  struct alignas(64) Worker {
    std::vector<Job> ring;
    /// Stage-side cursor: next slot to fill. Worker-side cursor lives in
    /// the worker's stack frame; both advance monotonically mod capacity.
    std::uint32_t head = 0;
    /// Set (seq_cst) by the worker before its final empty-check, cleared
    /// when it wakes: the stage wakes it only when it is actually parked.
    std::atomic<bool> parked{false};
    Mutex mutex;
    Cv cv;
    /// Absorbs a notify that races the worker into its wait (same latch
    /// shape as the stage's wake_pending_).
    bool wake_pending COP_GUARDED_BY(mutex) = false;
    std::jthread thread;
  };

  void worker_loop(Worker& w);
  /// Slow paths, off the COP_HOT ring operations.
  void wake_worker(Worker& w);
  void park_worker(Worker& w, const Job& next);
  void wait_done(const Job& job);

  app::Service& service_;
  std::vector<std::unique_ptr<Worker>> workers_v_;
  /// Stage parked in retire(): workers notify completion_cv_ after
  /// publishing a result iff this is set (seq_cst Dekker pairing with the
  /// stage's park sequence).
  std::atomic<bool> stage_parked_{false};
  Mutex completion_mutex_;
  Cv completion_cv_;
  /// Absorbs a completion notify that races the stage into its wait.
  bool completion_pending_ COP_GUARDED_BY(completion_mutex_) = false;
  std::atomic<bool> stop_{false};
};

}  // namespace copbft::core
