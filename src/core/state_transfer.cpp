#include "core/state_transfer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/time.hpp"

namespace copbft::core {
namespace {

/// Checkpoints kept for serving; older ones are useless to any peer that
/// could still catch up by retransmission.
constexpr std::size_t kHeldCheckpoints = 4;

std::string st_metric(ReplicaId self, const char* name) {
  return "replica" + std::to_string(self) + ".state_transfer." + name;
}

}  // namespace

StateTransferManager::StateTransferManager(
    ReplicaId self, const ReplicaRuntimeConfig& config,
    const crypto::CryptoProvider& crypto, transport::Transport& transport,
    ExecutionStage& exec, InstalledFn on_installed)
    : self_(self),
      config_(config),
      crypto_(crypto),
      transport_(transport),
      exec_(exec),
      on_installed_(std::move(on_installed)),
      queue_(config.queue_capacity),
      verifier_(crypto, protocol::replica_node(self)),
      m_started_(metrics::MetricsRegistry::global().counter(
          st_metric(self, "transfers_started"))),
      m_completed_(metrics::MetricsRegistry::global().counter(
          st_metric(self, "transfers_completed"))),
      m_served_(metrics::MetricsRegistry::global().counter(
          st_metric(self, "snapshots_served"))),
      m_rejected_(metrics::MetricsRegistry::global().counter(
          st_metric(self, "snapshots_rejected"))) {}

void StateTransferManager::start() {
  thread_ = named_thread("statex", [this] { run(); });
}

void StateTransferManager::stop() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void StateTransferManager::run() {
  const auto poll = std::chrono::microseconds(
      std::max<std::uint64_t>(config_.state_transfer_timeout_us / 4, 1'000));
  while (true) {
    auto event = queue_.pop_for(poll);
    if (!event && queue_.closed()) return;
    if (event) {
      handle(std::move(*event));
      while (auto more = queue_.try_pop()) handle(std::move(*more));
    }
    tick(now_us());
  }
}

void StateTransferManager::handle(Event event) {
  if (auto* frame = std::get_if<transport::ReceivedFrame>(&event)) {
    handle_frame(std::move(*frame));
  } else if (auto* store = std::get_if<StoreCheckpoint>(&event)) {
    Held& held = held_[store->seq];
    held.digest = store->digest;
    held.artifact = std::move(store->artifact);
    while (held_.size() > kHeldCheckpoints) held_.erase(held_.begin());
  } else if (auto* stable = std::get_if<MarkStable>(&event)) {
    auto it = held_.find(stable->seq);
    if (it != held_.end() && it->second.digest == stable->digest) {
      it->second.stable = true;
      it->second.voters = std::move(stable->voters);
    }
  } else if (auto* ahead = std::get_if<PeerAhead>(&event)) {
    target_hint_ = std::max(target_hint_, ahead->observed);
    if (!catching_up_) begin_transfer(now_us());
  } else {
    finish_install(std::get<InstallDone>(event));
  }
}

void StateTransferManager::handle_frame(transport::ReceivedFrame frame) {
  auto decoded = protocol::decode_message(frame.bytes);
  if (!decoded) {
    COP_LOG_WARN("replica %u statex: malformed frame from node %u", self_,
                 frame.from);
    return;
  }
  const protocol::MsgType type = protocol::type_of(decoded->msg);
  if (type != protocol::MsgType::kStateRequest &&
      type != protocol::MsgType::kStateReply)
    return;

  protocol::IncomingMessage im;
  im.msg = std::move(decoded->msg);
  im.raw = std::move(frame.bytes);
  im.body_size = decoded->body_size;
  const crypto::KeyNodeId sender = protocol::sender_node(im.msg);
  if (sender == protocol::replica_node(self_) ||
      protocol::is_client_node(sender) ||
      sender >= config_.protocol.num_replicas)
    return;
  if (!verifier_.verify(im, sender)) return;

  if (auto* request = std::get_if<protocol::StateRequest>(&im.msg)) {
    handle_request(*request);
  } else {
    handle_reply(std::move(std::get<protocol::StateReply>(im.msg)));
  }
}

void StateTransferManager::handle_request(
    const protocol::StateRequest& request) {
  // Serve the newest stable checkpoint that is actually useful to the
  // requester (at or above its execution frontier); anything older would
  // install as a no-op and leave it stranded.
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (!it->second.stable || it->first < request.min_seq) continue;
    const Held& held = it->second;
    const std::size_t chunk_bytes =
        std::max<std::size_t>(config_.state_chunk_bytes, 1);
    const std::uint32_t chunk_count = static_cast<std::uint32_t>(
        std::max<std::size_t>(
            (held.artifact.size() + chunk_bytes - 1) / chunk_bytes, 1));
    const crypto::KeyNodeId to = protocol::replica_node(request.replica);
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
      const std::size_t begin = c * chunk_bytes;
      const std::size_t end =
          std::min(held.artifact.size(), begin + chunk_bytes);
      protocol::StateReply reply;
      reply.seq = it->first;
      reply.digest = held.digest;
      reply.certificate = held.voters;
      reply.chunk = c;
      reply.chunk_count = chunk_count;
      reply.data.assign(held.artifact.begin() + static_cast<std::ptrdiff_t>(begin),
                        held.artifact.begin() + static_cast<std::ptrdiff_t>(end));
      reply.replica = self_;
      protocol::Message msg = std::move(reply);
      Bytes frame =
          seal_message(msg, crypto_, protocol::replica_node(self_), {to});
      transport_.send(to, lane(), std::move(frame));
    }
    m_served_.add();
    MutexLock lock(stats_mutex_);
    ++stats_.snapshots_served;
    return;
  }
  // Nothing stable at or above min_seq yet: stay silent, the requester's
  // timeout re-asks once the next checkpoint stabilizes.
}

void StateTransferManager::handle_reply(protocol::StateReply reply) {
  if (!catching_up_) return;
  if (reply.seq < min_seq_) return;
  if (reply.chunk_count == 0 || reply.chunk >= reply.chunk_count) return;
  // Sanity on the claimed certificate: stability takes 2f+1 matching
  // votes. This is a claim, not proof — the real check is f+1 independent
  // peers attesting the same (seq, digest) below.
  if (reply.certificate.size() < config_.protocol.quorum()) return;
  // Checkpoints only exist at interval boundaries.
  if (reply.seq % config_.protocol.checkpoint_interval != 0) return;

  auto [it, inserted] = incoming_.try_emplace(reply.replica);
  Incoming& in = it->second;
  if (!inserted) {
    if (in.seq == reply.seq) {
      // Same transfer: digest/chunk_count must not waver (equivocation).
      if (in.digest != reply.digest || in.chunk_count != reply.chunk_count)
        return;
    } else if (reply.seq > in.seq) {
      in = Incoming{};  // the peer moved to a newer checkpoint; restart
    } else {
      return;  // stale chunk of an abandoned transfer
    }
  }
  if (in.chunk_count == 0) {
    in.seq = reply.seq;
    in.digest = reply.digest;
    in.voters = std::move(reply.certificate);
    in.chunk_count = reply.chunk_count;
  }
  in.chunks.try_emplace(reply.chunk, std::move(reply.data));
  try_install();
}

void StateTransferManager::begin_transfer(std::uint64_t now) {
  catching_up_ = true;
  incoming_.clear();
  m_started_.add();
  {
    MutexLock lock(stats_mutex_);
    ++stats_.transfers_started;
  }
  send_request(now);
}

void StateTransferManager::send_request(std::uint64_t now) {
  min_seq_ = exec_.next_seq();
  deadline_us_ = now + config_.state_transfer_timeout_us;
  // Assemblies below the (possibly advanced) frontier are useless now.
  std::erase_if(incoming_, [&](const auto& e) { return e.second.seq != 0 &&
                                                       e.second.seq < min_seq_; });
  protocol::Message msg = protocol::StateRequest{min_seq_, self_, {}};
  const auto recipients =
      other_replicas(config_.protocol.num_replicas, self_);
  Bytes frame =
      seal_message(msg, crypto_, protocol::replica_node(self_), recipients);
  for (crypto::KeyNodeId to : recipients) transport_.send(to, lane(), frame);
}

void StateTransferManager::try_install() {
  if (install_pending_ || !catching_up_) return;
  // A candidate must be fully reassembled, not yet rejected, and its
  // (seq, digest) attested by f+1 distinct peers — at least one of them
  // correct, which is what replaces transferable certificate proof under
  // MAC authenticators.
  const Incoming* best = nullptr;
  protocol::ReplicaId best_peer = 0;
  for (const auto& [peer, in] : incoming_) {
    if (in.chunk_count == 0 || !in.complete() || in.tried) continue;
    std::uint32_t attested = 0;
    for (const auto& [other_peer, other] : incoming_)
      if (other.seq == in.seq && other.digest == in.digest) ++attested;
    if (attested < config_.protocol.weak_quorum()) continue;
    if (!best || in.seq > best->seq) {
      best = &in;
      best_peer = peer;
    }
  }
  if (!best) return;

  Bytes artifact;
  for (const auto& [chunk, data] : best->chunks) append(artifact, data);
  install_pending_ = true;
  const protocol::ReplicaId peer = best_peer;
  const protocol::SeqNum seq = best->seq;
  const crypto::Digest digest = best->digest;
  exec_.submit_install(InstallState{
      seq, digest, std::move(artifact), [this, peer, seq, digest](bool ok) {
        // Runs on the execution-stage thread; bounce back into our queue.
        queue_.push(Event{InstallDone{peer, seq, digest, ok}});
      }});
}

void StateTransferManager::finish_install(const InstallDone& done) {
  install_pending_ = false;
  if (!done.ok) {
    // Hash mismatch or malformed artifact: the peer served a bad snapshot
    // (Byzantine or stale). Never retry it for this transfer; try the
    // next attested candidate.
    m_rejected_.add();
    {
      MutexLock lock(stats_mutex_);
      ++stats_.snapshots_rejected;
    }
    auto it = incoming_.find(done.peer);
    if (it != incoming_.end() && it->second.seq == done.seq)
      it->second.tried = true;
    try_install();
    return;
  }
  catching_up_ = false;
  incoming_.clear();
  m_completed_.add();
  {
    MutexLock lock(stats_mutex_);
    ++stats_.transfers_completed;
    stats_.installed_seq = done.seq;
  }
  COP_LOG_INFO("replica %u: installed state-transfer checkpoint at seq %llu",
               self_, static_cast<unsigned long long>(done.seq));
  if (on_installed_)
    on_installed_(done.seq, done.digest, std::max(target_hint_, done.seq));
}

void StateTransferManager::tick(std::uint64_t now) {
  if (!catching_up_ || install_pending_) return;
  if (now < deadline_us_) return;
  {
    MutexLock lock(stats_mutex_);
    ++stats_.requests_retried;
  }
  send_request(now);
}

}  // namespace copbft::core
