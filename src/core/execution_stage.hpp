// Execution stage: turns the out-of-order stream of committed instances
// into the total order, executes the service, and hands replies back to
// the pillars (paper §4.1/§4.2/§4.3.2).
//
// One single-threaded stage per replica, shared by all pillars (COP) or
// fed by the single logic thread (TOP/SMaRt). Responsibilities:
//   * reorder ring keyed by sequence number; execute strictly in order,
//   * exactly-once execution per (client, request id) with a bounded,
//     indexed reply cache for O(1) retransmission handling,
//   * offloaded post-execution: emit a ReplyTask to the originating
//     pillar, which runs post_process + MAC sealing + egress in parallel
//     across the NP pillar threads (inline fallback when no ReplyFn is
//     installed — the TOP/SMaRt baselines — or the pillar is saturated),
//   * checkpoint triggering every `checkpoint_interval` sequence numbers,
//     addressed round-robin to the owning pillar (paper §4.2.2),
//   * gap detection: if the next needed sequence number does not commit
//     within gap_timeout, ask the pillars to fill their slices with no-op
//     instances (paper §4.2.1).
//
// The hot path is lock-free on the stage side: counters are relaxed
// single-writer atomics snapshotted by stats(), not mutex-guarded.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/service.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/events.hpp"
#include "core/runtime_config.hpp"

namespace copbft::core {

struct ExecutionStats {
  std::uint64_t batches_executed = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t noops_executed = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t replies_sent = 0;
  /// Of replies_sent: how many were handed to a pillar (vs. sealed inline).
  std::uint64_t replies_offloaded = 0;
  std::uint64_t replies_omitted = 0;
  std::uint64_t checkpoints_triggered = 0;
  std::uint64_t gap_fills_requested = 0;
  /// Redundant commits dropped because their ring slot was still occupied
  /// by an older, not-yet-executed sequence number (re-fetched on demand).
  std::uint64_t reorder_slot_drops = 0;
  /// Checkpoints installed via state transfer / rejected (bad artifact).
  std::uint64_t state_installs = 0;
  std::uint64_t installs_rejected = 0;
  /// Highest seq whose effects this stage's state reflects — by execution
  /// or by checkpoint install.
  protocol::SeqNum last_executed_seq = 0;
  protocol::SeqNum installed_seq = 0;
};

/// Single-writer cell: only the stage thread writes, any thread reads.
/// The store(load+delta) pattern avoids the lock-prefixed RMW a fetch_add
/// would emit — this is the de-locked replacement for the old per-request
/// stats mutex. Release/acquire pairing keeps multi-counter snapshots
/// coherent for pollers (e.g. a test that waits on requests_executed and
/// then reads replies_omitted).
class StageCounter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_release);
  }
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_release);
  }
  std::uint64_t get() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class ExecutionStage {
 public:
  /// `command` routes a PillarCommand to logic unit `pillar` of this
  /// replica.
  using CommandFn = std::function<void(std::uint32_t pillar, PillarCommand)>;
  /// Receives (seq, composite digest, encoded CheckpointArtifact) on every
  /// checkpoint boundary; the host stores it for serving state transfers.
  using SnapshotFn =
      std::function<void(protocol::SeqNum, const crypto::Digest&, Bytes)>;
  /// Offloaded post-execution hook (paper §4.3.2): hand a finished request
  /// to the originating pillar for post_process + sealing + egress.
  /// Returns false *leaving the task intact* when the pillar cannot take
  /// it (queue full, shutting down); the stage then seals inline.
  using ReplyFn = std::function<bool(ReplyTask&)>;

  ExecutionStage(ReplicaId self, const ReplicaRuntimeConfig& config,
                 app::Service& service, const crypto::CryptoProvider& crypto,
                 transport::Transport& transport, CommandFn command);

  void start();
  void stop();

  /// Install before start(); snapshots are only materialized when set.
  void set_snapshot_fn(SnapshotFn fn) { snapshot_fn_ = std::move(fn); }
  /// Install before start(); unset (TOP/SMaRt baselines, bare-stage
  /// tests) means replies are post-processed, sealed and sent inline.
  void set_reply_fn(ReplyFn fn) { reply_fn_ = std::move(fn); }

  /// Called by any pillar thread when an instance commits.
  bool submit(CommittedBatch batch) { return queue_.push(std::move(batch)); }

  /// Called by the state-transfer manager with a fetched stable
  /// checkpoint; `done` runs on the stage thread with the outcome.
  bool submit_install(InstallState install) {
    return queue_.push(std::move(install));
  }

  /// Snapshot of the counters; safe to call from any thread while running.
  ExecutionStats stats() const;
  protocol::SeqNum next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  struct CachedReply {
    protocol::SeqNum seq = 0;  ///< instance the request executed in
    Bytes result;              ///< raw ordered result (pre-post_process)
  };
  struct ClientState {
    protocol::RequestId max_done = 0;
    /// Executed ids above the pruning floor (async windows commit out of
    /// order within a client).
    // COPLINT(allow:det-unordered-member: lookup-only dedup set; pruning walks ids numerically from max_done, never by iteration)
    std::unordered_set<protocol::RequestId> done;
    /// Recent replies for retransmission handling: eviction order (oldest
    /// first) plus an id -> reply index for O(1) lookup.
    std::deque<protocol::RequestId> reply_order;
    // COPLINT(allow:det-unordered-member: lookup-only cache; eviction order comes from reply_order, a deque)
    std::unordered_map<protocol::RequestId, CachedReply> replies;
  };

  /// Window-bounded reorder buffer indexed by seq % capacity. The drift
  /// invariant keeps live sequence numbers within `window` of the
  /// execution frontier, so a ring of ~2x window slots replaces the old
  /// std::map (no rebalancing, no per-node allocation on the hot path).
  /// Slot collisions (only possible after the bound was violated or with
  /// a clamped ring) are resolved in admit(); the ring itself just
  /// exposes exact-seq find/erase.
  class ReorderRing {
   public:
    explicit ReorderRing(std::uint64_t window);

    /// The batch stored for exactly `seq`, or nullptr.
    CommittedBatch* find(protocol::SeqNum seq);
    /// Whatever currently occupies seq's slot (any seq), or nullptr.
    CommittedBatch* occupant(protocol::SeqNum seq);
    /// Stores `batch`; its slot must be free.
    void insert(CommittedBatch batch);
    /// Drops the batch stored for exactly `seq`, if any.
    void erase(protocol::SeqNum seq);
    /// Drops every buffered batch with seq <= `upto` (checkpoint install).
    void erase_upto(protocol::SeqNum upto);
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    /// Highest buffered seq (scan; call off the hot path). 0 when empty.
    protocol::SeqNum highest() const;

   private:
    std::size_t slot(protocol::SeqNum seq) const {
      return static_cast<std::size_t>(seq) & mask_;
    }
    std::vector<std::optional<CommittedBatch>> slots_;
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
  };

  using Input = std::variant<CommittedBatch, InstallState>;

  void run();
  /// Invariant-checks an incoming batch and files it in the reorder ring.
  void admit(CommittedBatch batch);
  void admit_input(Input input);
  /// Verifies and installs a transferred checkpoint (state transfer).
  void handle_install(InstallState install);
  Bytes encode_client_table() const;
  bool decode_client_table(
      ByteSpan table,
      std::unordered_map<protocol::ClientId, ClientState>& out) const;
  void apply_ready();
  void execute_batch(const CommittedBatch& batch);
  void execute_request(const protocol::Request& request,
                       const CommittedBatch& batch, std::uint32_t index);
  /// Offloads the reply to its originating pillar, or — when no ReplyFn is
  /// installed or the pillar rejected it — post-processes, seals and sends
  /// inline.
  void emit_reply(ReplyTask task);
  void maybe_checkpoint(protocol::SeqNum seq);
  void check_gap(std::uint64_t now);
  bool already_executed(ClientState& state, protocol::RequestId id) const;
  void record_executed(ClientState& state, protocol::RequestId id);

  const ReplicaId self_;
  const ReplicaRuntimeConfig& config_;
  app::Service& service_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  CommandFn command_;
  SnapshotFn snapshot_fn_;
  ReplyFn reply_fn_;

  BoundedQueue<Input> queue_;
  // reorder_, clients_, installed_floor_ and stall_since_us_ are owned by
  // the stage thread; the cross-thread hand-off is the queue itself.
  ReorderRing reorder_;
  std::atomic<protocol::SeqNum> next_seq_{1};
  // COPLINT(allow:det-unordered-member: per-request access is keyed lookup; the one iteration (encode_client_table) sorts ids before serializing)
  std::unordered_map<protocol::ClientId, ClientState> clients_;
  /// Highest checkpoint installed via state transfer; execution and later
  /// installs must never regress below it.
  protocol::SeqNum installed_floor_ = 0;
  std::uint64_t stall_since_us_ = 0;

  // Observability (registered once in the ctor; handles are stable).
  metrics::Gauge& m_reorder_depth_;
  metrics::Gauge& m_drift_;
  metrics::Counter& m_batches_executed_;
  metrics::Counter& m_requests_executed_;
  metrics::Counter& m_replies_sent_;
  metrics::HistogramMetric& m_execute_us_;

  // Counters: written only by the stage thread, snapshotted by stats().
  StageCounter n_batches_executed_;
  StageCounter n_requests_executed_;
  StageCounter n_noops_executed_;
  StageCounter n_duplicates_suppressed_;
  StageCounter n_replies_sent_;
  StageCounter n_replies_offloaded_;
  StageCounter n_replies_omitted_;
  StageCounter n_checkpoints_triggered_;
  StageCounter n_gap_fills_requested_;
  StageCounter n_reorder_slot_drops_;
  StageCounter n_state_installs_;
  StageCounter n_installs_rejected_;
  StageCounter n_last_executed_seq_;
  StageCounter n_installed_seq_;

  std::jthread thread_;
};

}  // namespace copbft::core
