// Execution stage: turns the out-of-order stream of committed instances
// into the total order, executes the service, and hands replies back to
// the pillars (paper §4.1/§4.2/§4.3).
//
// Pre-execution offload (paper §4.3.1): commit admission no longer runs
// on the stage thread. Each pillar calls admit() from its own thread and
// writes the committed batch directly into its interleaved slice of the
// reorder ring (single writer per slot by the c(p,i) = p + i·NP
// partition; lock-free publish with an atomic per-slot state word). The
// pillar also maintains its slice's admission watermark, and poll_pillar()
// lets it pick up its own work — gap fills for its slice on timeout and
// checkpoint rounds it owns — so the stage thread does nothing but
// advance next_seq, read ready slots and invoke the service.
//
// Responsibilities that remain on the stage thread:
//   * execute strictly in sequence order from the reorder ring,
//   * exactly-once execution per (client, request id) with a bounded,
//     indexed reply cache for O(1) retransmission handling,
//   * offloaded post-execution: emit a ReplyTask to the originating
//     pillar, which runs post_process + MAC sealing + egress in parallel
//     across the NP pillar threads (inline fallback when no ReplyFn is
//     installed — the TOP/SMaRt baselines — or the pillar is saturated),
//   * checkpoint digest/snapshot every `checkpoint_interval` sequence
//     numbers; the StartCheckpoint signal is mailed to the owning pillar
//     and picked up by its next poll_pillar() (paper §4.2.2),
//   * checkpoint install from state transfer (ring truncation composes
//     with concurrent pillar writers: the frontier moves first, stragglers
//     self-heal their slots).
//
// Parallel execution (exec_workers > 0): the stage thread stops invoking
// Service::execute itself for requests the service classifies onto a
// shard (Service::classify). It dispatches them — still in total order —
// to a fixed pool of workers over per-worker SPSC rings (ExecPool), with
// per-shard FIFO by the fixed shard->worker mapping, and retires results
// in dispatch order, at which point all client-visible bookkeeping
// (dedup, reply cache, reply emission) happens exactly as it would have
// sequentially. kGlobal requests are barriers: drain the pool, run
// inline. Checkpoints and installs drain first too, so Service::
// snapshot()/state_digest() always see a quiescent service.
//
// The commit hot path is lock-free end to end: slot publication is an
// atomic state machine, counters are single-writer atomics (or relaxed
// fetch_add where pillars share them), and the only locks left are the
// stage wake-up latch, the per-pillar checkpoint mailboxes and the worker
// pool's park latches — all off the per-commit path.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/service.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/events.hpp"
#include "core/exec_pool.hpp"
#include "core/runtime_config.hpp"

namespace copbft::core {

struct ExecutionStats {
  std::uint64_t batches_executed = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t noops_executed = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t replies_sent = 0;
  /// Of replies_sent: how many were handed to a pillar (vs. sealed inline).
  std::uint64_t replies_offloaded = 0;
  std::uint64_t replies_omitted = 0;
  /// Of requests_executed: how many ran on the execution worker pool
  /// (parallel path). Zero when exec_workers == 0.
  std::uint64_t requests_parallel = 0;
  /// Requests classified kGlobal while a pool was active: each drained
  /// the pool (barrier) and ran inline on the stage thread.
  std::uint64_t exec_barriers = 0;
  std::uint64_t checkpoints_triggered = 0;
  /// Pillar-side gap-fill timeouts: each pillar polls its own stall timer,
  /// so NP pillars observing one stall count NP fills (one per slice).
  std::uint64_t gap_fills_requested = 0;
  /// Redundant commits dropped because their ring slot was still occupied
  /// by an older, not-yet-executed sequence number (re-fetched on demand).
  std::uint64_t reorder_slot_drops = 0;
  /// Checkpoints installed via state transfer / rejected (bad artifact).
  std::uint64_t state_installs = 0;
  std::uint64_t installs_rejected = 0;
  /// Highest seq whose effects this stage's state reflects — by execution
  /// or by checkpoint install.
  protocol::SeqNum last_executed_seq = 0;
  protocol::SeqNum installed_seq = 0;
};

/// Single-writer cell: only the stage thread writes, any thread reads.
/// The store(load+delta) pattern avoids the lock-prefixed RMW a fetch_add
/// would emit — this is the de-locked replacement for the old per-request
/// stats mutex. Release/acquire pairing keeps multi-counter snapshots
/// coherent for pollers (e.g. a test that waits on requests_executed and
/// then reads replies_omitted).
class StageCounter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_release);
  }
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_release);
  }
  std::uint64_t get() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Multi-writer counter: pillar threads share it (gap fills, slot drops),
/// so this one does pay for the RMW.
class SharedCounter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t get() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class ExecutionStage {
 public:
  /// Receives (seq, composite digest, encoded CheckpointArtifact) on every
  /// checkpoint boundary; the host stores it for serving state transfers.
  using SnapshotFn =
      std::function<void(protocol::SeqNum, const crypto::Digest&, Bytes)>;
  /// Offloaded post-execution hook (paper §4.3.2): hand a finished request
  /// to the originating pillar for post_process + sealing + egress.
  /// Returns false *leaving the task intact* when the pillar cannot take
  /// it (queue full, shutting down); the stage then seals inline.
  using ReplyFn = std::function<bool(ReplyTask&)>;

  ExecutionStage(ReplicaId self, const ReplicaRuntimeConfig& config,
                 app::Service& service, const crypto::CryptoProvider& crypto,
                 transport::Transport& transport);

  void start();
  void stop();

  /// Install before start(); snapshots are only materialized when set.
  void set_snapshot_fn(SnapshotFn fn) { snapshot_fn_ = std::move(fn); }
  /// Install before start(); unset (TOP/SMaRt baselines, bare-stage
  /// tests) means replies are post-processed, sealed and sent inline.
  void set_reply_fn(ReplyFn fn) { reply_fn_ = std::move(fn); }

  /// Pre-execution offload (paper §4.3.1): called *on the pillar thread*
  /// when an instance commits. Invariant-checks the batch and publishes it
  /// straight into its reorder-ring slot, then wakes the stage thread iff
  /// the batch is the execution frontier. Thread-safe: each pillar only
  /// writes slots of its own slice c(p,i) = p + i·NP.
  bool admit(CommittedBatch batch);
  /// Compatibility alias for single-producer callers (tests, benches).
  bool submit(CommittedBatch batch) { return admit(std::move(batch)); }

  /// Called by the state-transfer manager with a fetched stable
  /// checkpoint; `done` runs on the stage thread with the outcome.
  bool submit_install(InstallState install);

  /// Pillar-side bookkeeping poll (pre-execution offload): pillar
  /// `pillar` drains the checkpoint rounds it owns and its slice's
  /// gap-fill timer into `out` (commands it then feeds to its own
  /// handle_command). Called periodically from the pillar's run loop.
  void poll_pillar(std::uint32_t pillar, std::uint64_t now_us,
                   std::vector<PillarCommand>& out);

  /// Snapshot of the counters; safe to call from any thread while running.
  ExecutionStats stats() const;
  protocol::SeqNum next_seq() const {
    return next_seq_.load(std::memory_order_acquire);
  }

 private:
  struct CachedReply {
    protocol::SeqNum seq = 0;  ///< instance the request executed in
    Bytes result;              ///< raw ordered result (pre-post_process)
    /// Non-zero while the request is dispatched to a worker but not yet
    /// retired: the ticket to force-retire up to before this entry's
    /// result may be resent (the in-flight retransmission race). Always 0
    /// at checkpoint boundaries — the stage drains before hashing.
    std::uint64_t pending_ticket = 0;
  };
  struct ClientState {
    protocol::RequestId max_done = 0;
    /// Executed ids above the pruning floor (async windows commit out of
    /// order within a client).
    // COPLINT(allow:det-unordered-member: lookup-only dedup set; pruning walks ids numerically from max_done, never by iteration)
    std::unordered_set<protocol::RequestId> done;
    /// Recent replies for retransmission handling: eviction order (oldest
    /// first) plus an id -> reply index for O(1) lookup.
    std::deque<protocol::RequestId> reply_order;
    // COPLINT(allow:det-unordered-member: lookup-only cache; eviction order comes from reply_order, a deque)
    std::unordered_map<protocol::RequestId, CachedReply> replies;
  };

  /// Window-bounded concurrent reorder buffer indexed by seq % capacity.
  /// Multi-producer (one pillar per slot by the slice partition),
  /// single-consumer (the stage thread). Each slot carries an atomic state
  /// word encoding {empty, claimed(seq), published(seq)}:
  ///
  ///   0                  free
  ///   (seq << 1) | 1     claimed — a writer (or the consumer) holds the
  ///                      payload exclusively
  ///   (seq << 1)         published — payload readable, owned by `seq`
  ///
  /// Writers claim a slot by CAS, fill the payload, then publish with a
  /// seq_cst store (the stage pairs it with a seq_cst next_seq load for
  /// the wake-up handshake). The consumer claims a published frontier slot
  /// before moving the batch out, so a concurrent writer can never touch a
  /// payload the stage is consuming. The drift invariant keeps live
  /// sequence numbers within `window` of the execution frontier, so a
  /// ring of ~2x window slots gives every live seq a distinct slot; slot
  /// collisions (bound violated or clamped ring) keep the lower seq.
  class ReorderRing {
   public:
    enum class Outcome {
      kStored,        ///< batch published into its slot
      kDuplicate,     ///< slot already carries this seq (redelivery)
      kDroppedSelf,   ///< collision with a lower live seq: ours dropped
      kEvictedOther,  ///< collision with a higher live seq: it was evicted
    };
    struct PublishResult {
      Outcome outcome = Outcome::kStored;
      /// kDuplicate only: stored fingerprint was read consistently and can
      /// be compared against the incoming batch (fork check).
      bool fingerprint_valid = false;
      std::uint64_t stored_hash = 0;
      std::uint64_t stored_meta = 0;
    };

    explicit ReorderRing(std::uint64_t window);

    /// Writer side (pillar thread). `frontier` is the caller's seq_cst
    /// snapshot of next_seq; occupants below it are dead and reclaimed in
    /// place. `hash`/`meta` fingerprint the batch for fork detection.
    PublishResult publish(CommittedBatch&& batch, protocol::SeqNum frontier,
                          std::uint64_t hash, std::uint64_t meta);
    /// Consumer side (stage thread): atomically claims and removes the
    /// batch published for exactly `seq`, or returns nullopt.
    std::optional<CommittedBatch> take(protocol::SeqNum seq);
    /// Consumer side: drops every published batch with seq <= `upto`
    /// (checkpoint install). Slots a writer holds claimed are skipped —
    /// they republish against the post-install frontier and self-heal.
    void discard_upto(protocol::SeqNum upto);

    std::size_t size() const {
      return count_.load(std::memory_order_relaxed);
    }
    bool empty() const { return size() == 0; }

   private:
    struct alignas(64) Slot {
      std::atomic<std::uint64_t> state{0};
      /// Fingerprint of the published batch (see batch_fingerprint in the
      /// .cpp): readable by any pillar for the duplicate fork check, so
      /// they are atomics validated by re-reading `state`.
      std::atomic<std::uint64_t> hash{0};
      std::atomic<std::uint64_t> meta{0};
      std::optional<CommittedBatch> batch;
    };

    std::size_t index(protocol::SeqNum seq) const {
      return static_cast<std::size_t>(seq) & mask_;
    }
    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::size_t> count_{0};
  };

  /// Per-pillar admission lane. `watermark` is written only by the owning
  /// pillar (release) and read by every pillar's gap poll (acquire); the
  /// poll fields are private to the owning pillar's thread.
  struct alignas(64) PillarLane {
    std::atomic<protocol::SeqNum> watermark{0};
    protocol::SeqNum last_frontier = 0;   ///< poll-private
    std::uint64_t stall_since_us = 0;     ///< poll-private
  };

  /// Checkpoint hand-off to the owning pillar. The stage thread appends at
  /// most one signal per checkpoint_interval sequence numbers and the
  /// owner drains on its next poll — far off the per-commit path, so a
  /// tiny mutex beats inventing a lock-free mailbox here.
  struct CkptSignal {
    protocol::SeqNum seq = 0;
    crypto::Digest digest{};
  };
  struct CkptMailbox {
    Mutex mutex;
    std::vector<CkptSignal> pending COP_GUARDED_BY(mutex);
  };

  void run();
  /// Wakes the stage thread (publish-side of the Dekker handshake: slot
  /// publish with seq_cst, then a seq_cst next_seq load decides the wake).
  /// Deliberately not COP_HOT: it only runs when the published seq *is*
  /// the frontier, i.e. once per stage wake-up, not per commit.
  void wake_exec();
  /// Verifies and installs a transferred checkpoint (state transfer).
  void handle_install(InstallState install);
  Bytes encode_client_table() const;
  bool decode_client_table(
      ByteSpan table,
      std::unordered_map<protocol::ClientId, ClientState>& out) const;
  void apply_ready();
  void execute_batch(const CommittedBatch& batch);
  void execute_request(const protocol::Request& request,
                       const CommittedBatch& batch, std::uint32_t index);
  /// Parallel-path bookkeeping (stage thread only). A request the service
  /// classified onto a shard is dispatched to the worker pool and queued
  /// on pending_; everything client-visible happens at retirement, in
  /// ticket order == total order. Cached resends ride pending_ too, so
  /// the reply stream is emitted in exactly the sequential order.
  void dispatch_request(const protocol::Request& request,
                        const CommittedBatch& batch, std::uint32_t index,
                        std::uint32_t shard);
  void finish_request(ClientState& state, const protocol::Request& request,
                      const CommittedBatch& batch, std::uint32_t index,
                      Bytes result);
  void retire_front();
  /// Retires pending entries up to and including `ticket`.
  void retire_until(std::uint64_t ticket);
  /// Barrier: retires everything outstanding; afterwards the service is
  /// quiescent (no execute() in flight anywhere).
  void drain_pool();
  /// Offloads the reply to its originating pillar, or — when no ReplyFn is
  /// installed or the pillar rejected it — post-processes, seals and sends
  /// inline.
  void emit_reply(ReplyTask task);
  void maybe_checkpoint(protocol::SeqNum seq);
  bool already_executed(ClientState& state, protocol::RequestId id) const;
  void record_executed(ClientState& state, protocol::RequestId id);

  const ReplicaId self_;
  const ReplicaRuntimeConfig& config_;
  app::Service& service_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  SnapshotFn snapshot_fn_;
  ReplyFn reply_fn_;

  // Shared between pillar writers and the stage thread. next_seq_ is
  // advanced only by the stage thread (execution and install); pillars
  // read it with seq_cst for the stale check / wake handshake.
  ReorderRing reorder_;
  std::atomic<protocol::SeqNum> next_seq_{1};
  std::unique_ptr<PillarLane[]> lanes_;
  std::unique_ptr<CkptMailbox[]> ckpt_mail_;

  // State transfer installs still arrive over a queue: they are rare,
  // whole-state operations that must run on the stage thread.
  BoundedQueue<InstallState> install_queue_;

  // Stage wake-up latch. wake_pending_ absorbs the race between a
  // pillar's notify and the stage re-entering the wait.
  mutable Mutex wake_mutex_;
  Cv wake_cv_;
  bool wake_pending_ COP_GUARDED_BY(wake_mutex_) = false;
  std::atomic<bool> stop_requested_{false};

  // Parallel execution (exec_workers > 0). pool_ runs Service::execute on
  // worker threads; pending_ is the stage-owned retirement FIFO — ticket
  // order is dispatch order is total order. A `resend` entry carries a
  // cached result instead of a worker slot, so retransmissions keep their
  // place in the reply stream.
  struct PendingRetire {
    std::uint64_t ticket = 0;
    std::uint32_t worker = 0;
    std::uint32_t slot = 0;
    bool resend = false;
    bool omit = false;
    ReplyTask task;  ///< result empty until retirement (except resends)
  };
  std::unique_ptr<ExecPool> pool_;
  std::deque<PendingRetire> pending_;
  std::uint64_t next_ticket_ = 1;

  // clients_ and installed_floor_ are owned by the stage thread.
  // COPLINT(allow:det-unordered-member: per-request access is keyed lookup; the one iteration (encode_client_table) sorts ids before serializing)
  std::unordered_map<protocol::ClientId, ClientState> clients_;
  /// Highest checkpoint installed via state transfer; execution and later
  /// installs must never regress below it.
  protocol::SeqNum installed_floor_ = 0;

  // Observability (registered once in the ctor; handles are stable).
  metrics::Gauge& m_reorder_depth_;
  metrics::Gauge& m_drift_;
  metrics::Counter& m_batches_executed_;
  metrics::Counter& m_requests_executed_;
  metrics::Counter& m_replies_sent_;
  metrics::HistogramMetric& m_execute_us_;

  // Counters: written only by the stage thread, snapshotted by stats().
  StageCounter n_batches_executed_;
  StageCounter n_requests_executed_;
  StageCounter n_requests_parallel_;
  StageCounter n_exec_barriers_;
  StageCounter n_noops_executed_;
  StageCounter n_duplicates_suppressed_;
  StageCounter n_replies_sent_;
  StageCounter n_replies_offloaded_;
  StageCounter n_replies_omitted_;
  StageCounter n_checkpoints_triggered_;
  StageCounter n_state_installs_;
  StageCounter n_installs_rejected_;
  StageCounter n_last_executed_seq_;
  StageCounter n_installed_seq_;
  // Written from pillar threads (admission moved to the pillars).
  SharedCounter n_gap_fills_requested_;
  SharedCounter n_reorder_slot_drops_;

  std::jthread thread_;
};

}  // namespace copbft::core
