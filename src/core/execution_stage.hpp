// Execution stage: turns the out-of-order stream of committed instances
// into the total order, executes the service, and replies to clients
// (paper §4.1/§4.2).
//
// One single-threaded stage per replica, shared by all pillars (COP) or
// fed by the single logic thread (TOP/SMaRt). Responsibilities:
//   * reorder buffer keyed by sequence number; execute strictly in order,
//   * exactly-once execution per (client, request id) with a bounded
//     reply cache for retransmissions,
//   * checkpoint triggering every `checkpoint_interval` sequence numbers,
//     addressed round-robin to the owning pillar (paper §4.2.2),
//   * gap detection: if the next needed sequence number does not commit
//     within gap_timeout, ask the pillars to fill their slices with no-op
//     instances (paper §4.2.1).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "app/service.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/events.hpp"
#include "core/runtime_config.hpp"

namespace copbft::core {

struct ExecutionStats {
  std::uint64_t batches_executed = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t noops_executed = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t replies_omitted = 0;
  std::uint64_t checkpoints_triggered = 0;
  std::uint64_t gap_fills_requested = 0;
  /// Checkpoints installed via state transfer / rejected (bad artifact).
  std::uint64_t state_installs = 0;
  std::uint64_t installs_rejected = 0;
  /// Highest seq whose effects this stage's state reflects — by execution
  /// or by checkpoint install.
  protocol::SeqNum last_executed_seq = 0;
  protocol::SeqNum installed_seq = 0;
};

class ExecutionStage {
 public:
  /// `command` routes a PillarCommand to logic unit `pillar` of this
  /// replica; `send_reply` delivers a sealed frame to a client node.
  using CommandFn = std::function<void(std::uint32_t pillar, PillarCommand)>;
  /// Receives (seq, composite digest, encoded CheckpointArtifact) on every
  /// checkpoint boundary; the host stores it for serving state transfers.
  using SnapshotFn =
      std::function<void(protocol::SeqNum, const crypto::Digest&, Bytes)>;

  ExecutionStage(ReplicaId self, const ReplicaRuntimeConfig& config,
                 app::Service& service, const crypto::CryptoProvider& crypto,
                 transport::Transport& transport, CommandFn command);

  void start();
  void stop();

  /// Install before start(); snapshots are only materialized when set.
  void set_snapshot_fn(SnapshotFn fn) { snapshot_fn_ = std::move(fn); }

  /// Called by any pillar thread when an instance commits.
  bool submit(CommittedBatch batch) { return queue_.push(std::move(batch)); }

  /// Called by the state-transfer manager with a fetched stable
  /// checkpoint; `done` runs on the stage thread with the outcome.
  bool submit_install(InstallState install) {
    return queue_.push(std::move(install));
  }

  /// Snapshot of the counters; safe to call from any thread while running.
  ExecutionStats stats() const {
    MutexLock lock(stats_mutex_);
    return stats_;
  }
  protocol::SeqNum next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  struct ClientState {
    protocol::RequestId max_done = 0;
    /// Executed ids above the pruning floor (async windows commit out of
    /// order within a client).
    std::unordered_set<protocol::RequestId> done;
    /// Recent replies for retransmission handling, newest last.
    std::deque<std::pair<protocol::RequestId, Bytes>> replies;
  };

  using Input = std::variant<CommittedBatch, InstallState>;

  void run();
  /// Invariant-checks an incoming batch and files it in the reorder buffer.
  void admit(CommittedBatch batch);
  void admit_input(Input input);
  /// Verifies and installs a transferred checkpoint (state transfer).
  void handle_install(InstallState install);
  Bytes encode_client_table() const;
  bool decode_client_table(
      ByteSpan table,
      std::unordered_map<protocol::ClientId, ClientState>& out) const;
  void apply_ready();
  void execute_batch(const CommittedBatch& batch);
  void execute_request(const protocol::Request& request,
                       protocol::ViewId view);
  void send_reply(protocol::ClientId client, protocol::RequestId id,
                  protocol::ViewId view, Bytes result);
  void maybe_checkpoint(protocol::SeqNum seq);
  void check_gap(std::uint64_t now);
  bool already_executed(ClientState& state, protocol::RequestId id) const;
  void record_executed(ClientState& state, protocol::RequestId id);

  const ReplicaId self_;
  const ReplicaRuntimeConfig& config_;
  app::Service& service_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  CommandFn command_;
  SnapshotFn snapshot_fn_;

  BoundedQueue<Input> queue_;
  // reorder_, clients_, installed_floor_ and stall_since_us_ are owned by
  // the stage thread; the cross-thread hand-off is the queue itself.
  std::map<protocol::SeqNum, CommittedBatch> reorder_;
  std::atomic<protocol::SeqNum> next_seq_{1};
  std::unordered_map<protocol::ClientId, ClientState> clients_;
  /// Highest checkpoint installed via state transfer; execution and later
  /// installs must never regress below it.
  protocol::SeqNum installed_floor_ = 0;
  std::uint64_t stall_since_us_ = 0;

  // Observability (registered once in the ctor; handles are stable).
  metrics::Gauge& m_reorder_depth_;
  metrics::Gauge& m_drift_;
  metrics::Counter& m_batches_executed_;
  metrics::Counter& m_requests_executed_;
  metrics::Counter& m_replies_sent_;
  metrics::HistogramMetric& m_execute_us_;

  mutable Mutex stats_mutex_;
  ExecutionStats stats_ COP_GUARDED_BY(stats_mutex_);
  std::jthread thread_;
};

}  // namespace copbft::core
