// Events flowing between the threads of a replica.
#pragma once

#include <functional>
#include <memory>
#include <variant>

#include "protocol/messages.hpp"
#include "protocol/verifier.hpp"
#include "transport/transport.hpp"

namespace copbft::core {

// ---- pillar bookkeeping commands ------------------------------------------
//
// With pre-execution offload (paper §4.3.1) these are no longer pushed by
// the execution stage: each pillar picks up its own share — checkpoint
// rounds it owns, gap fills for its slice — via
// ExecutionStage::poll_pillar() and feeds them to its handle_command.

/// Execution crossed a checkpoint boundary owned by this logic unit; run
/// the checkpoint agreement (paper §4.2.2).
struct StartCheckpoint {
  protocol::SeqNum seq = 0;
  crypto::Digest digest;
};

/// A sibling pillar's checkpoint agreement became stable; truncate logs
/// and slide the window.
struct NoteStable {
  protocol::SeqNum seq = 0;
  crypto::Digest digest;
};

/// The total order is stalled waiting for sequence numbers up to `seq`;
/// fill this slice's share with pending requests or no-ops (paper §4.2.1).
/// Self-addressed: each pillar times its own stall and requests fills for
/// its own slice only. `frontier` is the execution stage's next needed
/// sequence number (0 = unknown) — the core uses it to detect that the
/// needed certificates were already truncated cluster-wide
/// (state-transfer trigger).
struct FillGap {
  protocol::SeqNum seq = 0;
  protocol::SeqNum frontier = 0;
};

/// A checkpoint install slid the window; (re-)fetch the proposals for the
/// slice's still-open sequence numbers up to `upto`.
struct FetchMissing {
  protocol::SeqNum upto = 0;
};

// ---- execution-stage -> protocol-logic reply offload ----------------------

/// Offloaded post-execution (paper §4.3.2): everything a pillar needs to
/// finish a reply outside the sequential execution stage — run
/// `Service::post_process`, build and MAC-seal the Reply, and send it.
/// Routed to the *originating* pillar (the one that ran instance `seq`),
/// so reply work parallelizes across the NP pillar threads.
struct ReplyTask {
  protocol::ClientId client = 0;
  protocol::RequestId request = 0;
  protocol::ViewId view = 0;
  /// Originating pillar (seq % NP) and the instance the request rode in.
  std::uint32_t pillar = 0;
  protocol::SeqNum seq = 0;
  /// The ordered-execution result. Deterministic and part of the
  /// replicated client table; `post_process` (non-agreed decoration) is
  /// applied downstream in the pillar, for fresh replies only.
  Bytes result;
  /// The batch the request came from, or null for a cached retransmission
  /// (which resends the raw cached result and skips post_process).
  std::shared_ptr<const std::vector<protocol::Request>> requests;
  /// Index of the request within `requests` (when non-null).
  std::uint32_t index = 0;
};

/// Intra-replica work a pillar drains with priority over network frames.
/// ReplyTask rides here (not in its own queue slot) so reply offload and
/// bookkeeping commands share the uninstrumented command channel and never
/// compete with ingress frames for the pillar's admission budget.
using PillarCommand = std::variant<StartCheckpoint, NoteStable, FillGap,
                                   FetchMissing, ReplyTask>;

/// A message that an upstream stage already decoded (and possibly
/// verified): the ingress stage of TOP, the verification workers of the
/// SMaRt baseline. COP pillars decode in place and never use this.
struct PreparedInput {
  protocol::IncomingMessage im;
};

/// Everything a protocol-logic thread consumes: network frames,
/// pre-processed messages, intra-replica commands, and offloaded reply
/// work, in one queue so the thread has a single blocking point.
using PillarEvent = std::variant<transport::ReceivedFrame, PillarCommand,
                                 PreparedInput, ReplyTask>;

// ---- protocol-logic -> execution-stage --------------------------------

/// Outcome of a completed consensus instance, possibly out of order.
struct CommittedBatch {
  protocol::SeqNum seq = 0;
  protocol::ViewId view = 0;
  std::shared_ptr<const std::vector<protocol::Request>> requests;
  /// Which pillar/logic unit completed it (reply routing, stats).
  std::uint32_t pillar = 0;
  /// The emitting core's stable checkpoint at delivery time — the
  /// authority under which `seq` was inside the watermark window. The
  /// execution stage asserts the paper's drift bound against this (its
  /// own frontier may legitimately lag a stability the peers voted).
  protocol::SeqNum stable_basis = 0;
};

/// Install a fetched stable checkpoint into the execution stage: restore
/// the service, rebuild the exactly-once bookkeeping, drop the reorder
/// buffer at or below `seq` and advance the frontier to seq+1.
struct InstallState {
  protocol::SeqNum seq = 0;
  /// Cluster-agreed composite checkpoint digest the artifact must match.
  crypto::Digest digest;
  /// Encoded CheckpointArtifact (client table + service snapshot).
  Bytes artifact;
  /// Completion callback, run on the stage thread (false = rejected).
  std::function<void(bool)> done;
};

}  // namespace copbft::core
