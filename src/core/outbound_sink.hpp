// Where outgoing protocol messages get authenticated and sent.
//
//  * InPlaceOutbound — the calling thread seals and sends immediately.
//    COP pillars use this: cryptographic operations are performed in place
//    when required; parallelism comes from multiplying whole pillars
//    (paper §4.1 "Conciliated Decisions").
//  * AuthPoolOutbound — work is handed to dedicated authentication
//    threads, the task-oriented approach of TOP/BFT-SMaRt (paper §3).
#pragma once

#include <vector>

#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/outbound.hpp"
#include "core/runtime_config.hpp"
#include "transport/transport.hpp"

namespace copbft::core {

class OutboundSink {
 public:
  virtual ~OutboundSink() = default;

  virtual void broadcast(protocol::Message msg, transport::LaneId lane) = 0;
  virtual void send_to(ReplicaId to, protocol::Message msg,
                       transport::LaneId lane) = 0;
  virtual void stop() {}
};

class InPlaceOutbound final : public OutboundSink {
 public:
  InPlaceOutbound(ReplicaId self, std::uint32_t num_replicas,
                  const crypto::CryptoProvider& crypto,
                  transport::Transport& transport)
      : self_(self),
        crypto_(crypto),
        transport_(transport),
        peers_(other_replicas(num_replicas, self)) {}

  void broadcast(protocol::Message msg, transport::LaneId lane) override {
    Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                               peers_);
    for (crypto::KeyNodeId peer : peers_) transport_.send(peer, lane, frame);
  }

  void send_to(ReplicaId to, protocol::Message msg,
               transport::LaneId lane) override {
    Bytes frame = seal_message(msg, crypto_, protocol::replica_node(self_),
                               {protocol::replica_node(to)});
    transport_.send(protocol::replica_node(to), lane, std::move(frame));
  }

 private:
  const ReplicaId self_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  const std::vector<crypto::KeyNodeId> peers_;
};

/// Fan-out through a pool of authentication threads (TOP / SMaRt).
class AuthPoolOutbound final : public OutboundSink {
 public:
  AuthPoolOutbound(ReplicaId self, std::uint32_t num_replicas,
                   const crypto::CryptoProvider& crypto,
                   transport::Transport& transport, std::uint32_t threads,
                   std::size_t queue_capacity);
  ~AuthPoolOutbound() override { stop(); }

  void broadcast(protocol::Message msg, transport::LaneId lane) override;
  void send_to(ReplicaId to, protocol::Message msg,
               transport::LaneId lane) override;
  void stop() override;

 private:
  struct Work {
    protocol::Message msg;
    transport::LaneId lane = 0;
    bool broadcast = false;
    ReplicaId to = 0;
  };

  void worker();

  const ReplicaId self_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  const std::vector<crypto::KeyNodeId> peers_;
  BoundedQueue<Work> queue_;
  std::vector<std::jthread> threads_;
};

}  // namespace copbft::core
