#include "core/exec_pool.hpp"

#include "common/invariant.hpp"

namespace copbft::core {
namespace {

/// Per-worker SPSC ring capacity. Bounds stage run-ahead: at most this
/// many dispatched-but-unretired jobs per worker, after which the stage
/// retires (in order) before dispatching more.
constexpr std::uint32_t kRingSlots = 256;

/// Spin iterations before a waiter parks on its cv. The pool's cadences
/// are sub-microsecond (one service call), so a short spin absorbs the
/// common case and the park path only runs on genuinely idle edges.
constexpr int kSpins = 4096;

}  // namespace

ExecPool::ExecPool(std::uint32_t workers, app::Service& service)
    : service_(service) {
  COP_INVARIANT(workers >= 1, "ExecPool needs >= 1 worker, got %u", workers);
  workers_v_.reserve(workers ? workers : 1);
  for (std::uint32_t i = 0; i < (workers ? workers : 1); ++i) {
    auto w = std::make_unique<Worker>();
    w->ring = std::vector<Job>(kRingSlots);
    workers_v_.push_back(std::move(w));
  }
}

ExecPool::~ExecPool() { stop(); }

void ExecPool::start() {
  stop_.store(false, std::memory_order_release);
  for (std::uint32_t i = 0; i < workers(); ++i) {
    Worker* w = workers_v_[i].get();
    w->thread = named_thread("exwk-" + std::to_string(i),
                             [this, w] { worker_loop(*w); });
  }
}

void ExecPool::stop() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_v_) {
    {
      MutexLock lock(w->mutex);
      w->wake_pending = true;
    }
    w->cv.notify_all();
    if (w->thread.joinable()) w->thread.join();
  }
}

COP_HOT bool ExecPool::can_dispatch(std::uint32_t worker) const {
  const Worker& w = *workers_v_[worker];
  return w.ring[w.head % kRingSlots].state.load(std::memory_order_acquire) ==
         kFree;
}

COP_HOT std::uint32_t ExecPool::dispatch(std::uint32_t worker,
                                         const protocol::Request* request) {
  Worker& w = *workers_v_[worker];
  const std::uint32_t slot = w.head % kRingSlots;
  Job& job = w.ring[slot];
  job.request = request;
  // seq_cst publish pairs with the worker's seq_cst parked_ handshake:
  // either the worker's final empty-check sees this job, or we see
  // parked_ and wake it.
  job.state.store(kReady, std::memory_order_seq_cst);
  ++w.head;
  if (w.parked.load(std::memory_order_seq_cst)) wake_worker(w);
  return slot;
}

COP_HOT Bytes ExecPool::retire(std::uint32_t worker, std::uint32_t slot) {
  Worker& w = *workers_v_[worker];
  Job& job = w.ring[slot];
  if (job.state.load(std::memory_order_acquire) != kDone) wait_done(job);
  Bytes result = std::move(job.result);
  job.result = Bytes();
  job.request = nullptr;
  job.state.store(kFree, std::memory_order_release);
  return result;
}

void ExecPool::wait_done(const Job& job) {
  for (int i = 0; i < kSpins; ++i) {
    if (job.state.load(std::memory_order_acquire) == kDone) return;
  }
  while (true) {
    // Park with a seq_cst Dekker handshake: the worker re-checks
    // stage_parked_ after every result publish (both seq_cst), so either
    // it sees our flag and notifies, or we see kDone before waiting.
    stage_parked_.store(true, std::memory_order_seq_cst);
    if (job.state.load(std::memory_order_seq_cst) == kDone) {
      stage_parked_.store(false, std::memory_order_seq_cst);
      return;
    }
    {
      CvLock lock(completion_mutex_);
      if (!completion_pending_ &&
          job.state.load(std::memory_order_seq_cst) != kDone)
        completion_cv_.wait_for(lock, std::chrono::milliseconds(1));
      completion_pending_ = false;
    }
    stage_parked_.store(false, std::memory_order_seq_cst);
    if (job.state.load(std::memory_order_acquire) == kDone) return;
  }
}

void ExecPool::wake_worker(Worker& w) {
  {
    MutexLock lock(w.mutex);
    w.wake_pending = true;
  }
  w.cv.notify_one();
}

void ExecPool::park_worker(Worker& w, const Job& next) {
  w.parked.store(true, std::memory_order_seq_cst);
  if (next.state.load(std::memory_order_seq_cst) == kReady ||
      stop_.load(std::memory_order_acquire)) {
    w.parked.store(false, std::memory_order_seq_cst);
    return;
  }
  {
    CvLock lock(w.mutex);
    if (!w.wake_pending &&
        next.state.load(std::memory_order_seq_cst) != kReady &&
        !stop_.load(std::memory_order_acquire))
      w.cv.wait_for(lock, std::chrono::milliseconds(1));
    w.wake_pending = false;
  }
  w.parked.store(false, std::memory_order_seq_cst);
}

void ExecPool::worker_loop(Worker& w) {
  std::uint32_t at = 0;
  int idle = 0;
  while (true) {
    Job& job = w.ring[at % kRingSlots];
    if (job.state.load(std::memory_order_acquire) == kReady) {
      idle = 0;
      job.result = service_.execute(*job.request);
      job.state.store(kDone, std::memory_order_seq_cst);
      // Dekker pairing with wait_done's park sequence (both seq_cst).
      if (stage_parked_.load(std::memory_order_seq_cst)) {
        {
          MutexLock lock(completion_mutex_);
          completion_pending_ = true;
        }
        completion_cv_.notify_one();
      }
      ++at;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (++idle < kSpins) continue;
    idle = 0;
    park_worker(w, job);
  }
}

}  // namespace copbft::core
