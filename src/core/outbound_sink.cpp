#include "core/outbound_sink.hpp"

namespace copbft::core {

AuthPoolOutbound::AuthPoolOutbound(ReplicaId self, std::uint32_t num_replicas,
                                   const crypto::CryptoProvider& crypto,
                                   transport::Transport& transport,
                                   std::uint32_t threads,
                                   std::size_t queue_capacity)
    : self_(self),
      crypto_(crypto),
      transport_(transport),
      peers_(other_replicas(num_replicas, self)),
      queue_(queue_capacity) {
  threads_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i)
    threads_.emplace_back(
        named_thread("auth-" + std::to_string(i), [this] { worker(); }));
}

void AuthPoolOutbound::broadcast(protocol::Message msg,
                                 transport::LaneId lane) {
  queue_.push(Work{std::move(msg), lane, /*broadcast=*/true, 0});
}

void AuthPoolOutbound::send_to(ReplicaId to, protocol::Message msg,
                               transport::LaneId lane) {
  queue_.push(Work{std::move(msg), lane, /*broadcast=*/false, to});
}

void AuthPoolOutbound::worker() {
  while (auto work = queue_.pop()) {
    if (work->broadcast) {
      Bytes frame = seal_message(work->msg, crypto_,
                                 protocol::replica_node(self_), peers_);
      for (crypto::KeyNodeId peer : peers_)
        transport_.send(peer, work->lane, frame);
    } else {
      Bytes frame =
          seal_message(work->msg, crypto_, protocol::replica_node(self_),
                       {protocol::replica_node(work->to)});
      transport_.send(protocol::replica_node(work->to), work->lane,
                      std::move(frame));
    }
  }
}

void AuthPoolOutbound::stop() {
  queue_.close();
  threads_.clear();  // jthreads join
}

}  // namespace copbft::core
