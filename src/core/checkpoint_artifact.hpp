// The unit of checkpoint-based state transfer.
//
// At every checkpoint boundary the execution stage digests not just the
// service state but everything a laggard needs to resume as if it had
// executed the prefix itself: the service state *and* the exactly-once
// bookkeeping (per-client dedup windows + cached replies). Without the
// latter, a restored replica would re-execute client retransmissions that
// the rest of the cluster suppresses, and its state would diverge.
//
// The cluster agrees on composite_digest(); the service snapshot itself is
// verified transitively — Service::restore() only succeeds if the restored
// state's digest equals `service_digest`, which the composite covers.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/provider.hpp"

namespace copbft::core {

struct CheckpointArtifact {
  /// Canonical encoding of the execution stage's client bookkeeping.
  Bytes client_table;
  /// Service::state_digest() at the checkpoint.
  crypto::Digest service_digest;
  /// Service::snapshot() at the checkpoint.
  Bytes service_snapshot;

  Bytes encode() const;
  /// nullopt on any malformed input (never reads out of bounds).
  static std::optional<CheckpointArtifact> decode(ByteSpan data);

  crypto::Digest composite_digest(const crypto::CryptoProvider& crypto) const {
    return checkpoint_digest(crypto, client_table, service_digest);
  }

  /// The cluster-agreed checkpoint digest: covers the client table and the
  /// service-state digest. Computable without materializing a snapshot, so
  /// replicas that never serve transfers (TOP/SMaRt baselines) pay nothing
  /// beyond hashing the client table.
  static crypto::Digest checkpoint_digest(const crypto::CryptoProvider& crypto,
                                          ByteSpan client_table,
                                          const crypto::Digest& service_digest);
};

}  // namespace copbft::core
