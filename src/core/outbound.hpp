// Outgoing message sealing: serialize the authenticated part, compute the
// per-recipient MAC vector, and produce the final frame.
//
// Kept separate from the protocol core because *where* this work runs is an
// architectural choice: COP pillars seal in place, TOP offloads it to
// authentication threads (paper §3.1/§4.1).
#pragma once

#include <vector>

#include "crypto/provider.hpp"
#include "protocol/messages.hpp"

namespace copbft::core {

/// Seals `msg` for `recipients`: fills msg.auth and returns the full frame.
Bytes seal_message(protocol::Message& msg, const crypto::CryptoProvider& crypto,
                   crypto::KeyNodeId self,
                   const std::vector<crypto::KeyNodeId>& recipients);

/// Node ids of all replicas except `self`.
std::vector<crypto::KeyNodeId> other_replicas(std::uint32_t num_replicas,
                                              protocol::ReplicaId self);

}  // namespace copbft::core
