// Protocol-logic unit: one thread driving one PbftCore.
//
// For COP this is a *pillar* (paper §4.1): it owns a slice of the sequence
// space, verifies in order and seals in place, and talks to peers over its
// private lane. The same class, instantiated once with the trivial slice
// and an AuthPoolOutbound, is the logic stage of the TOP and SMaRt
// pipelines — the paper's "same code base" methodology in code.
#pragma once

#include <functional>

#include "app/service.hpp"
#include "common/metrics.hpp"
#include "common/queue.hpp"
#include "common/threading.hpp"
#include "core/events.hpp"
#include "core/execution_stage.hpp"
#include "core/outbound_sink.hpp"
#include "protocol/pbft_core.hpp"

namespace copbft::core {

class Pillar final : public transport::FrameSink {
 public:
  /// Propagates checkpoint stability from the owning pillar to siblings
  /// (paper §4.2.2); no-op for single-pillar replicas. `voters` are the
  /// replicas whose matching votes formed the certificate.
  using StableFn = std::function<void(
      protocol::SeqNum, const crypto::Digest&,
      const std::vector<protocol::ReplicaId>& voters, std::uint32_t origin)>;
  /// The core detected it is stranded past the peers' log truncation;
  /// the host should run a checkpoint-based state transfer.
  using CatchUpFn = std::function<void(protocol::SeqNum observed)>;

  Pillar(ReplicaId self, std::uint32_t index,
         const ReplicaRuntimeConfig& config,
         const crypto::CryptoProvider& crypto,
         transport::Transport& transport, ExecutionStage& exec,
         OutboundSink& outbound, app::Service* service, StableFn on_stable);

  void start();
  void stop();

  /// Install before start(); unset means state-transfer hints are dropped
  /// (TOP/SMaRt baselines and hosts without a transfer manager).
  void set_catch_up_hint(CatchUpFn fn) { on_catch_up_ = std::move(fn); }

  // FrameSink: called by the transport for this pillar's lane.
  bool deliver(transport::ReceivedFrame frame) override {
    return queue_.push(PillarEvent{std::move(frame)});
  }
  /// Non-blocking admission for the event-loop transport: a full queue is
  /// kBusy (the loop queues or sheds at ingress), never a blocked loop
  /// thread. count_blocked=false — the blocked_pushes counter means "a
  /// stage thread stalled", and an admission probe is not that.
  transport::Admit try_deliver(transport::ReceivedFrame& frame) override {
    PillarEvent event{std::move(frame)};
    if (queue_.try_push_ref(event, /*count_blocked=*/false))
      return transport::Admit::kAdmitted;
    frame = std::move(std::get<transport::ReceivedFrame>(event));
    return queue_.closed() ? transport::Admit::kClosed
                           : transport::Admit::kBusy;
  }
  void close() override { queue_.close(); }

  /// Prepared messages from upstream pipeline stages.
  bool post(PillarEvent event) { return queue_.push(std::move(event)); }

  /// Offloaded post-execution (paper §4.3.2): the execution stage hands a
  /// finished request back to this (originating) pillar, which runs
  /// post_process + MAC sealing + egress on its own thread. Non-blocking —
  /// the execution stage must never wait on a pillar (the pillar may
  /// itself be blocked submitting to the execution stage). On failure the
  /// task is left intact so the caller can seal inline.
  /// Routed through the command channel (uninstrumented, ample headroom,
  /// drained with priority) so reply offload never competes with ingress
  /// frames for the main queue's admission budget — under overload the
  /// transport sheds *requests*, not finished replies.
  bool try_post_reply(ReplyTask& task) {
    PillarCommand command{std::move(task)};
    if (commands_.try_push_ref(command, /*count_blocked=*/false)) return true;
    task = std::move(std::get<ReplyTask>(command));
    return false;
  }

  /// Commands from the execution stage / sibling pillars. Uses a separate
  /// queue with ample headroom so the execution stage never blocks on a
  /// pillar whose main queue is full (which could deadlock: the pillar may
  /// itself be blocked submitting to the execution stage).
  bool post_command(PillarCommand command) {
    return commands_.push(std::move(command));
  }

  std::uint32_t index() const { return index_; }
  /// Core statistics. Returns the snapshot the pillar thread published at
  /// its last loop turn (and finally at exit), so concurrent reads are
  /// safe while the pillar runs and exact after stop().
  protocol::CoreStats core_stats() const {
    MutexLock lock(stats_mutex_);
    return stats_snapshot_;
  }
  /// The protocol core. Only safe to inspect after stop(): the pillar
  /// thread owns it while running.
  const protocol::PbftCore& core() const { return core_; }

 private:
  void run();
  void publish_stats();
  void handle_frame(transport::ReceivedFrame& frame);
  void handle_prepared(PreparedInput& input);
  void handle_command(PillarCommand& command);
  void process_reply(ReplyTask task);
  void feed_request(protocol::Request req, bool verified);
  void drain_effects();

  const ReplicaId self_;
  const std::uint32_t index_;
  const ReplicaRuntimeConfig& config_;
  const crypto::CryptoProvider& crypto_;
  transport::Transport& transport_;
  ExecutionStage& exec_;
  OutboundSink& outbound_;
  app::Service* service_;  ///< offloaded pre-validation hook; may be null
  StableFn on_stable_;
  CatchUpFn on_catch_up_;

  BoundedQueue<PillarEvent> queue_;
  BoundedQueue<PillarCommand> commands_{1 << 16};
  /// Scratch for ExecutionStage::poll_pillar (pre-execution offload):
  /// checkpoint rounds this pillar owns and gap fills for its slice,
  /// produced by the stage's bookkeeping and executed here.
  std::vector<PillarCommand> poll_out_;
  protocol::CryptoVerifier verifier_;
  protocol::PbftCore core_;

  // Observability (registered once in the ctor; handles are stable).
  metrics::Counter& m_frames_in_;
  metrics::Counter& m_requests_in_;
  metrics::Counter& m_instances_delivered_;
  metrics::Counter& m_replies_out_;
  metrics::Gauge& m_stable_seq_;

  mutable Mutex stats_mutex_;
  protocol::CoreStats stats_snapshot_ COP_GUARDED_BY(stats_mutex_);

  std::jthread thread_;
};

}  // namespace copbft::core
