// Simulated multi-core machine.
//
// A Machine has C cores with two SMT contexts each. SimThreads own FIFO
// task queues; a global scheduler assigns runnable threads to free
// contexts. A context whose core sibling is busy runs at CostModel::
// smt_speed — this reproduces the paper's "N cores with 2 hardware
// threads each" x-axis (§5.1) including the sub-linear SMT yield.
//
// Tasks are handler invocations: the handler runs instantly (mutating
// simulation state) and *returns its CPU cost in ns*; the context stays
// busy for cost/speed of virtual time before the thread takes its next
// task. Cross-thread communication is post()ing a task to another thread,
// optionally charging the hand-off cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"

namespace copbft::sim {

class Machine;

/// A software thread pinned to a machine (not to a core).
class SimThread {
 public:
  /// Handlers return their CPU cost in nanoseconds.
  using Task = std::function<double()>;

  SimThread(Machine& machine, std::string name);

  /// Enqueues work; the scheduler will run it when a context frees up.
  void post(Task task);

  const std::string& name() const { return name_; }
  std::size_t backlog() const { return tasks_.size(); }
  /// Accumulated busy nanoseconds (for utilization reports).
  double busy_ns() const { return busy_ns_; }

 private:
  friend class Machine;

  Machine& machine_;
  std::string name_;
  std::deque<Task> tasks_;
  bool running_ = false;   ///< currently occupying a context
  bool queued_ = false;    ///< in the machine's runnable list
  double busy_ns_ = 0;
};

class Machine {
 public:
  /// `cores` physical cores, each with 2 SMT contexts.
  Machine(EventQueue& events, const CostModel& costs, std::uint32_t cores,
          std::string name);

  SimThread& add_thread(std::string name);

  EventQueue& events() { return events_; }
  const CostModel& costs() const { return costs_; }
  std::uint32_t cores() const { return static_cast<std::uint32_t>(
      cores_busy_.size()); }
  const std::string& name() const { return name_; }

  /// Fraction of total context-time spent busy since construction
  /// (approximate; for reporting).
  double utilization(SimTime elapsed) const;

  /// All threads of this machine (diagnostics).
  const std::vector<std::unique_ptr<SimThread>>& threads() const {
    return threads_;
  }

 private:
  friend class SimThread;

  struct Context {
    std::uint32_t core;
    bool busy = false;
  };

  void enqueue_runnable(SimThread* thread);
  void schedule();
  void run_on(SimThread* thread, std::size_t context_index);

  EventQueue& events_;
  const CostModel& costs_;
  std::string name_;
  std::vector<Context> contexts_;
  std::vector<std::uint32_t> cores_busy_;  ///< busy contexts per core
  std::deque<SimThread*> runnable_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  double total_busy_ns_ = 0;
};

}  // namespace copbft::sim
