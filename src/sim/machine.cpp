#include "sim/machine.hpp"

#include <cassert>

namespace copbft::sim {

SimThread::SimThread(Machine& machine, std::string name)
    : machine_(machine), name_(std::move(name)) {}

void SimThread::post(Task task) {
  tasks_.push_back(std::move(task));
  if (!running_ && !queued_) machine_.enqueue_runnable(this);
}

Machine::Machine(EventQueue& events, const CostModel& costs,
                 std::uint32_t cores, std::string name)
    : events_(events), costs_(costs), name_(std::move(name)) {
  cores_busy_.assign(cores, 0);
  contexts_.reserve(2 * cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    contexts_.push_back(Context{c, false});
    contexts_.push_back(Context{c, false});
  }
}

SimThread& Machine::add_thread(std::string name) {
  threads_.push_back(std::make_unique<SimThread>(*this, std::move(name)));
  return *threads_.back();
}

void Machine::enqueue_runnable(SimThread* thread) {
  thread->queued_ = true;
  runnable_.push_back(thread);
  schedule();
}

void Machine::schedule() {
  while (!runnable_.empty()) {
    // Prefer a context on an idle core (full speed), fall back to the
    // sibling of a busy one (SMT speed).
    std::size_t chosen = contexts_.size();
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
      if (contexts_[i].busy) continue;
      if (cores_busy_[contexts_[i].core] == 0) {
        chosen = i;
        break;
      }
      if (chosen == contexts_.size()) chosen = i;
    }
    if (chosen == contexts_.size()) return;  // everything busy

    SimThread* thread = runnable_.front();
    runnable_.pop_front();
    thread->queued_ = false;
    run_on(thread, chosen);
  }
}

void Machine::run_on(SimThread* thread, std::size_t context_index) {
  Context& ctx = contexts_[context_index];
  assert(!ctx.busy && !thread->tasks_.empty());
  ctx.busy = true;
  ++cores_busy_[ctx.core];
  thread->running_ = true;

  SimThread::Task task = std::move(thread->tasks_.front());
  thread->tasks_.pop_front();

  // Execute the handler now; it returns the CPU cost. Speed is fixed at
  // dispatch: full if this context had the core alone, SMT speed if the
  // sibling was already busy.
  double speed = (cores_busy_[ctx.core] > 1) ? costs_.smt_speed : 1.0;
  // Oversubscription: other threads are waiting for a context, so this
  // dispatch implies a context switch.
  bool contended = !runnable_.empty();
  double cost_ns = task();
  if (contended) cost_ns += costs_.oversub_switch_ns;
  thread->busy_ns_ += cost_ns;
  total_busy_ns_ += cost_ns;
  SimTime duration = static_cast<SimTime>(cost_ns / speed);

  events_.schedule_in(duration, [this, thread, context_index] {
    Context& done_ctx = contexts_[context_index];
    done_ctx.busy = false;
    --cores_busy_[done_ctx.core];
    thread->running_ = false;
    if (!thread->tasks_.empty() && !thread->queued_)
      enqueue_runnable(thread);
    else
      schedule();
  });
}

double Machine::utilization(SimTime elapsed) const {
  if (elapsed == 0) return 0.0;
  double capacity =
      static_cast<double>(cores_busy_.size()) * static_cast<double>(elapsed);
  return total_busy_ns_ / capacity;
}

}  // namespace copbft::sim
