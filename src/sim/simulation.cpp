#include "sim/simulation.hpp"
#include <cstdlib>
#include <cstdio>

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "app/null_service.hpp"
#include "common/rng.hpp"
#include "protocol/verifier.hpp"
#include "sim/machine.hpp"
#include "sim/nic.hpp"

namespace copbft::sim {

const char* arch_name(SimArch arch) {
  switch (arch) {
    case SimArch::kCop:
      return "COP";
    case SimArch::kTop:
      return "TOP";
    case SimArch::kSmart:
      return "BFT-SMaRt";
    case SimArch::kSmartStar:
      return "BFT-SMaRt*";
  }
  return "?";
}

namespace {

using namespace copbft::protocol;

constexpr std::size_t kAuthEntryBytes = 20;  // recipient id + 128-bit MAC

/// A message in flight; shared between the recipients of a broadcast.
struct Packet {
  Message msg;
  std::size_t bytes = 0;
  bool pre_verified = false;
};
using PacketPtr = std::shared_ptr<const Packet>;

struct World;
struct ReplicaSim;
struct ClientFleet;

struct World {
  explicit World(const SimConfig& config) : cfg(config), costs(config.costs) {
    net_down.assign(cfg.protocol.num_replicas, 0);
    if (cfg.wan.enabled) {
      links = std::make_unique<LinkModel>(cfg.wan.default_latency_ns,
                                          cfg.wan.jitter_ns, cfg.seed ^ 0x11a);
      for (const LinkSpec& l : cfg.wan.links) {
        links->set_link(l.src, l.dst, l.latency_ns);
        links->set_link(l.dst, l.src, l.latency_ns);
      }
      // Clients sit on one sentinel node; their latency towards every
      // replica is uniform so WAN effects isolate to the replica mesh.
      for (std::uint32_t r = 0; r < cfg.protocol.num_replicas; ++r) {
        links->set_link(client_node(), r, cfg.wan.client_latency_ns);
        links->set_link(r, client_node(), cfg.wan.client_latency_ns);
      }
      for (const PartitionSpec& p : cfg.wan.partitions) links->add_partition(p);
    }
  }

  const SimConfig& cfg;
  const CostModel& costs;
  EventQueue events;
  std::vector<std::unique_ptr<ReplicaSim>> replicas;
  std::unique_ptr<ClientFleet> fleet;

  bool measuring = false;
  std::uint64_t completed_ops = 0;
  std::uint64_t state_transfers = 0;
  Histogram latency_us;

  /// Per-replica network state driven by the fault schedule: while down a
  /// replica neither sends nor receives.
  std::vector<char> net_down;
  /// WAN topology; null = uniform LAN from the cost model.
  std::unique_ptr<LinkModel> links;

  /// Cross-replica execution fork oracle: content hash of every executed
  /// sequence number, checked across correct replicas.
  // COPLINT(allow:det-unordered-member: oracle checked by seq lookup at each execution; never iterated)
  std::unordered_map<std::uint64_t, std::uint64_t> executed_hash;
  std::uint64_t fork_detections = 0;

  /// Completed client operations per 10 ms bucket, warmup included.
  std::vector<std::uint64_t> ops_timeline;

  std::uint64_t now_virtual_us() const { return events.now() / 1000; }

  /// Sentinel link-model node for the client machines.
  std::uint32_t client_node() const { return cfg.protocol.num_replicas; }

  /// Fault injection: the replica's network is cut both ways while down.
  bool paused(ReplicaId r) const { return net_down[r] != 0; }

  void note_executed(ReplicaId executor, SeqNum seq, std::uint64_t hash) {
    if (executor == cfg.protocol.adversary.replica) return;
    auto [it, inserted] = executed_hash.emplace(seq, hash);
    if (!inserted && it->second != hash) ++fork_detections;
  }

  void record_completion() {
    std::size_t bucket = events.now() / SimResult::kTimelineBucketNs;
    if (ops_timeline.size() <= bucket) ops_timeline.resize(bucket + 1, 0);
    ++ops_timeline[bucket];
  }

  /// Point-to-point transfer between link-model nodes `src_node` and
  /// `dst_node` (replica ids, or client_node()). Partitioned traffic is
  /// dropped; otherwise propagation comes from the link model (or the
  /// cost model's LAN constant when WAN is disabled).
  void transfer(std::uint32_t src_node, std::uint32_t dst_node, Adapter& src,
                Adapter& dst, std::size_t bytes,
                std::function<void()> deliver) {
    SimTime propagation = costs.propagation_ns;
    if (links) {
      if (links->blocked(src_node, dst_node, events.now())) return;
      propagation = links->latency(src_node, dst_node);
    }
    network_transfer(events, propagation, src, dst, bytes, std::move(deliver));
  }
};

// ---------------------------------------------------------------------------
// A protocol-logic unit: COP pillar or the TOP/SMaRt logic thread. Wraps a
// *real* PbftCore; CPU cost is derived from what the core actually did —
// the statistics deltas expose exactly how many MACs the in-order policy
// verified, so the efficiency argument of paper §3.2 is reproduced rather
// than assumed.

struct LogicUnit {
  World& world;
  ReplicaSim& replica;
  std::uint32_t index;
  SimThread& thread;
  AcceptAllVerifier verifier;
  std::unique_ptr<crypto::CryptoProvider> crypto;
  // Construction parameters kept so a crash/recover fault can re-create
  // the core in place (the LogicUnit itself stays alive: queued SimThread
  // tasks hold LogicUnit pointers).
  const ProtocolConfig pcfg;
  const ReplicaId self;
  const SeqSlice slice;
  std::optional<PbftCore> core;

  LogicUnit(World& w, ReplicaSim& r, std::uint32_t idx, SimThread& t,
            const ProtocolConfig& config, ReplicaId self_id, SeqSlice s)
      : world(w),
        replica(r),
        index(idx),
        thread(t),
        pcfg(config),
        self(self_id),
        slice(s) {
    crypto = crypto::make_null_crypto();
    core.emplace(pcfg, self, slice, verifier, *crypto);
  }

  /// Crash recovery: fresh protocol state, as if the process restarted.
  void reset_core() { core.emplace(pcfg, self, slice, verifier, *crypto); }

  static crypto::Digest digest_for(SeqNum seq) {
    crypto::Digest d;
    for (int i = 0; i < 8; ++i)
      d.bytes[static_cast<std::size_t>(i)] =
          static_cast<Byte>(seq >> (8 * i));
    return d;
  }

  /// Frontier snapshot of this unit's previous gap poll (pre-execution
  /// offload: each pillar times its own stall, §4.3.1).
  SeqNum last_gap_frontier = 0;

  double feed_request(const Request& req, std::size_t frame_bytes,
                      bool pre_verified);
  double feed_message(const Packet& packet);
  double note_stable(SeqNum seq);
  double start_checkpoint(SeqNum seq);
  double fetch_missing(SeqNum upto);
  double tick();
  double gap_check();
  double drain_effects();
};

// ---------------------------------------------------------------------------
// Execution stage

struct PendingReply {
  ClientId client = 0;
  RequestId rid = 0;
  std::size_t payload = 0;
};

struct ExecSim {
  World& world;
  ReplicaSim& replica;
  SimThread& thread;

  SeqNum next_seq = 1;
  /// Written directly by the delivering logic unit (pre-execution
  /// offload, §4.3.1): admission costs are charged to the pillar, and the
  /// stage is only woken when the execution frontier was published. At
  /// most one drain task is pending (the edge-triggered wake).
  std::map<SeqNum, Deliver> reorder;
  bool drain_scheduled = false;
  std::size_t reorder_peak = 0;
  std::uint64_t executed_requests = 0;
  std::uint64_t executed_instances = 0;
  /// Parallel execution (exec_pool() > 0): requests run on the worker
  /// threads; the stage only dispatches and retires.
  std::vector<SimThread*> workers;
  std::uint64_t executed_parallel = 0;
  /// Virtual ns the stage spent waiting on its slowest worker (conflict
  /// stalls: retirement is in order, so a lagging worker blocks it).
  double stall_ns = 0;

  ExecSim(World& w, ReplicaSim& r, SimThread& t)
      : world(w), replica(r), thread(t) {}

  double drain();
  double apply_ready(std::map<std::uint32_t, std::vector<PendingReply>>& out);
  double flush_replies(std::map<std::uint32_t, std::vector<PendingReply>>& out);
};

// ---------------------------------------------------------------------------
// Replica: architecture-specific thread wiring

struct ReplicaSim {
  World& world;
  const SimConfig& cfg;
  const CostModel& costs;
  ReplicaId id;
  Machine machine;
  NicSet nics;
  std::vector<std::unique_ptr<LogicUnit>> logic;
  std::vector<SimThread*> pool;   // TOP: auth out; SMaRt: verify + auth
  std::vector<SimThread*> client_mgrs;  // SMaRt-original client managers
  SimThread* ingress = nullptr;   // TOP client stage
  SimThread* batcher = nullptr;   // TOP batch-compilation stage
  std::unique_ptr<ExecSim> exec;
  std::uint32_t rr_pool = 0;
  std::uint32_t rr_cmgr = 0;
  std::uint32_t rr_lane = 0;

  ReplicaSim(World& w, ReplicaId replica_id)
      : world(w),
        cfg(w.cfg),
        costs(w.costs),
        id(replica_id),
        machine(w.events, costs, cfg.cores,
                "replica-" + std::to_string(replica_id)),
        nics(w.events, costs, cfg.adapters) {
    std::uint32_t np = cfg.pillars();
    for (std::uint32_t p = 0; p < np; ++p) {
      SimThread& t = machine.add_thread("logic-" + std::to_string(p));
      SeqSlice slice =
          (cfg.arch == SimArch::kCop) ? SeqSlice{p, np} : SeqSlice{0, 1};
      logic.push_back(std::make_unique<LogicUnit>(w, *this, p, t,
                                                  cfg.protocol, id, slice));
    }
    if (cfg.arch != SimArch::kCop) {
      for (std::uint32_t i = 0; i < cfg.pool(); ++i)
        pool.push_back(&machine.add_thread("pool-" + std::to_string(i)));
    }
    if (cfg.arch == SimArch::kTop) {
      ingress = &machine.add_thread("ingress");
      batcher = &machine.add_thread("batcher");
    }
    if (cfg.arch == SimArch::kSmart) {
      // The original's client-handling path: replies funnel through
      // dedicated client managers whose per-request inefficiency the
      // paper removed for BFT-SMaRt* (§5 "The Subjects").
      for (std::uint32_t i = 0; i < 5; ++i)
        client_mgrs.push_back(&machine.add_thread("cmgr-" + std::to_string(i)));
    }
    exec = std::make_unique<ExecSim>(w, *this, machine.add_thread("exec"));
    // Execution worker pool (conflict-aware parallel execution): the
    // workers occupy real machine contexts, so oversubscription and SMT
    // interference are part of the measured trade-off.
    for (std::uint32_t i = 0; i < cfg.exec_pool(); ++i)
      exec->workers.push_back(&machine.add_thread("exwk-" + std::to_string(i)));
  }

  std::uint32_t lanes() const {
    switch (cfg.arch) {
      case SimArch::kCop:
        return cfg.pillars();
      case SimArch::kSmartStar:
        return cfg.adapters;
      default:
        return 1;
    }
  }

  std::uint32_t client_lane(ClientId client) const { return client % lanes(); }

  /// Outgoing lane: BFT-SMaRt* alternates its per-adapter connections.
  std::uint32_t out_lane(std::uint32_t lane) {
    if (cfg.arch == SimArch::kSmartStar) return rr_lane++ % cfg.adapters;
    return lane;
  }

  SimThread& next_pool_thread() { return *pool[rr_pool++ % pool.size()]; }

  void deliver(std::uint32_t lane, PacketPtr packet);
  void deliver_to_logic(std::uint32_t unit, PacketPtr packet);

  double send_protocol(Message&& msg, std::uint32_t lane,
                       std::vector<ReplicaId> recipients);
  void transmit_to_peer(ReplicaId to, std::uint32_t lane, PacketPtr packet);
  double send_replies(const std::vector<PendingReply>& replies,
                      std::uint32_t lane);

  /// Checkpoint-based state transfer, modeled: fetch the newest stable
  /// checkpoint from a live peer after a network round-trip, install it
  /// into the execution stage, and slide every logic unit's window to it.
  bool transfer_inflight = false;
  void request_state_transfer(SeqNum observed);
  void complete_state_transfer(SeqNum observed);

  /// kRecover after kCrash: lose all volatile state — fresh protocol cores,
  /// empty execution frontier. First peer contact shows this replica is far
  /// behind (out-of-window evidence) and triggers a state transfer.
  void crash_reset();
};

// ---------------------------------------------------------------------------
// Client fleet: closed-loop clients on dedicated machines (paper: five
// comparably equipped client machines)

struct ClientFleet {
  struct Op {
    std::size_t reply_bytes = 0;
    SimTime issued_at = 0;
    std::uint32_t replies_seen = 0;
    bool done = false;
  };

  struct SimClient {
    ClientId id = 0;
    std::uint32_t machine = 0;
    std::uint32_t thread = 0;
    RequestId next_id = 1;
    // COPLINT(allow:det-unordered-member: replies resolve by keyed erase; completion order is reply arrival, not map order)
    std::unordered_map<RequestId, Op> outstanding;
  };

  World& world;
  const SimConfig& cfg;
  const CostModel& costs;
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<NicSet>> nics;
  std::vector<std::vector<SimThread*>> threads;
  std::vector<SimClient> clients;
  Rng rng;
  std::uint64_t stray_replies = 0;  ///< replies for unknown request ids

  static constexpr std::uint32_t kThreadsPerMachine = 8;

  explicit ClientFleet(World& w)
      : world(w), cfg(w.cfg), costs(w.costs), rng(w.cfg.seed) {
    for (std::uint32_t m = 0; m < cfg.client_machines; ++m) {
      machines.push_back(std::make_unique<Machine>(
          w.events, costs, cfg.client_cores, "clients-" + std::to_string(m)));
      nics.push_back(std::make_unique<NicSet>(w.events, costs, cfg.adapters));
      threads.emplace_back();
      for (std::uint32_t t = 0; t < kThreadsPerMachine; ++t)
        threads.back().push_back(
            &machines.back()->add_thread("cl-" + std::to_string(t)));
    }
    clients.resize(cfg.clients);
    for (std::uint32_t i = 0; i < cfg.clients; ++i) {
      clients[i].id = kClientIdBase + i;
      clients[i].machine = i % cfg.client_machines;
      clients[i].thread = (i / cfg.client_machines) % kThreadsPerMachine;
    }
  }

  std::uint32_t expected_replies() const {
    return cfg.reply_mode == core::ReplyMode::kOmitOne
               ? cfg.protocol.num_replicas - 1
               : cfg.protocol.num_replicas;
  }

  /// Reply payload is a deterministic function of the request flags so
  /// simulated replicas need no extra metadata.
  std::size_t reply_bytes_for_flags(std::uint8_t flags) const {
    switch (cfg.service) {
      case SimService::kNull:
        return cfg.reply_payload;
      case SimService::kCoordination:
        return (flags & kFlagReadOnly) ? cfg.coord_data_size + 8 : 8;
    }
    return 0;
  }

  void start() {
    for (auto& client : clients) {
      for (std::uint32_t k = 0; k < cfg.client_window; ++k) {
        SimTime jitter = rng.below(5'000'000);  // spread over 5 ms
        SimClient* c = &client;
        world.events.schedule_in(jitter, [this, c] {
          threads[c->machine][c->thread]->post(
              [this, c]() -> double { return issue(*c); });
        });
      }
    }
  }

  double issue(SimClient& client);
  void receive_reply(ClientId client_id, RequestId rid, std::size_t bytes);
  double on_reply(SimClient& client, RequestId rid, std::size_t bytes);
};

// ---------------------------------------------------------------------------
// LogicUnit implementation

double LogicUnit::feed_request(const Request& req, std::size_t frame_bytes,
                               bool pre_verified) {
  const CostModel& costs = world.costs;
  CoreStats before = core->stats();
  core->on_request(req, world.now_virtual_us(), pre_verified);
  const CoreStats& after = core->stats();
  double cost = static_cast<double>(after.request_macs_verified -
                                    before.request_macs_verified) *
                costs.mac_ns(frame_bytes);
  return cost + drain_effects();
}

double LogicUnit::feed_message(const Packet& packet) {
  const CostModel& costs = world.costs;
  CoreStats before = core->stats();
  IncomingMessage im;
  im.msg = packet.msg;  // copy; the packet is shared between recipients
  im.pre_verified = packet.pre_verified;
  core->on_message(std::move(im), world.now_virtual_us());
  const CoreStats& after = core->stats();

  double cost = costs.logic_per_message_ns;
  std::uint64_t verified = after.macs_verified - before.macs_verified;
  cost += static_cast<double>(verified) * costs.mac_ns(packet.bytes);
  // Client MACs checked inside an accepted proposal: charge per carried
  // request (skipped ones were verified on direct receipt, §3.2).
  std::uint64_t nested =
      after.request_macs_verified - before.request_macs_verified;
  if (nested > 0) {
    const auto* pp = std::get_if<PrePrepare>(&packet.msg);
    std::size_t per_req =
        (pp && !pp->requests.empty()) ? packet.bytes / pp->requests.size() : 96;
    cost += static_cast<double>(nested) * costs.mac_ns(per_req);
  }
  // Batch-digest check on an accepted proposal.
  if (verified > 0 && std::holds_alternative<PrePrepare>(packet.msg))
    cost += costs.digest_ns(packet.bytes);
  return cost + drain_effects();
}

double LogicUnit::note_stable(SeqNum seq) {
  core->note_checkpoint_stable(seq, digest_for(seq));
  return world.costs.dequeue_ns + world.costs.logic_per_message_ns +
         drain_effects();
}

double LogicUnit::start_checkpoint(SeqNum seq) {
  core->start_checkpoint(seq, digest_for(seq), world.now_virtual_us());
  return world.costs.dequeue_ns + world.costs.logic_per_message_ns +
         drain_effects();
}

double LogicUnit::fetch_missing(SeqNum upto) {
  core->fetch_missing_upto(upto, world.now_virtual_us());
  return world.costs.dequeue_ns + world.costs.logic_per_message_ns +
         drain_effects();
}

double LogicUnit::tick() {
  core->tick(world.now_virtual_us());
  return world.costs.logic_per_message_ns + drain_effects();
}

double LogicUnit::drain_effects() {
  const CostModel& costs = world.costs;
  double cost = 0;
  for (Effect& effect : core->take_effects()) {
    if (auto* bc = std::get_if<Broadcast>(&effect)) {
      // Proposals pay the batch digest when formed.
      if (std::holds_alternative<PrePrepare>(bc->msg))
        cost += costs.digest_ns(encoded_size(bc->msg));
      std::vector<ReplicaId> recipients;
      for (ReplicaId r = 0; r < core->config().num_replicas; ++r)
        if (r != replica.id) recipients.push_back(r);
      cost += replica.send_protocol(std::move(bc->msg), index,
                                    std::move(recipients));
    } else if (auto* st = std::get_if<SendTo>(&effect)) {
      cost += replica.send_protocol(std::move(st->msg), index, {st->to});
    } else if (auto* del = std::get_if<Deliver>(&effect)) {
      // Pre-execution offload (§4.3.1): this pillar publishes the commit
      // straight into its slice of the reorder ring — admission is paid
      // here, on the pillar. The exec stage is only woken (one hand-off)
      // when the published instance is the execution frontier.
      cost += costs.pillar_admit_ns;
      ExecSim* exec = replica.exec.get();
      const SeqNum seq = del->seq;
      if (seq >= exec->next_seq && !exec->reorder.contains(seq))
        exec->reorder.emplace(seq, std::move(*del));
      exec->reorder_peak = std::max(exec->reorder_peak, exec->reorder.size());
      if (seq == exec->next_seq && !exec->drain_scheduled) {
        exec->drain_scheduled = true;
        cost += costs.handoff_ns;
        exec->thread.post([exec]() -> double { return exec->drain(); });
      }
    } else if (auto* cs = std::get_if<CheckpointStable>(&effect)) {
      SeqNum seq = cs->seq;
      for (auto& sibling : replica.logic) {
        if (sibling.get() == this) continue;
        cost += costs.handoff_ns;
        LogicUnit* unit = sibling.get();
        unit->thread.post(
            [unit, seq]() -> double { return unit->note_stable(seq); });
      }
    } else if (auto* st = std::get_if<StateTransferNeeded>(&effect)) {
      // Stranded past peers' log truncation: model the checkpoint-based
      // state transfer (the threaded runtime's StateTransferManager).
      cost += costs.handoff_ns;
      replica.request_state_transfer(st->observed_seq);
    }
    // ViewChanged: not exercised in fault-free performance runs.
  }
  return cost;
}

// ---------------------------------------------------------------------------
// ReplicaSim implementation

void ReplicaSim::deliver(std::uint32_t lane, PacketPtr packet) {
  if (world.paused(id)) return;  // fault injection: ingress cut
  switch (cfg.arch) {
    case SimArch::kCop:
      // Private lane straight into the owning pillar (§4.2.3).
      deliver_to_logic(lane % logic.size(), std::move(packet));
      return;
    case SimArch::kTop: {
      // Client-management stage: parse and route. Client MACs are checked
      // by the additional authentication threads; requests then pass the
      // batch-compilation stage — each a per-request queue crossing
      // (§3.1). Protocol messages go to the logic, which verifies them in
      // order (§3.2).
      ReplicaSim* self = this;
      ingress->post([self, packet = std::move(packet)]() -> double {
        const CostModel& c = self->costs;
        double cost = c.parse_ns(packet->bytes) + c.handoff_ns;
        if (std::holds_alternative<Request>(packet->msg)) {
          self->next_pool_thread().post([self, packet]() -> double {
            const CostModel& pc = self->costs;
            auto verified = std::make_shared<Packet>(*packet);
            verified->pre_verified = true;
            self->batcher->post(
                [self, p = PacketPtr(std::move(verified))]() -> double {
                  self->deliver_to_logic(0, p);
                  // Batches are handed over wholesale; the per-batch
                  // enqueue amortizes to ~nothing per request.
                  return self->costs.dequeue_ns + 200.0;
                });
            return pc.dequeue_ns + pc.mac_ns(packet->bytes) + pc.handoff_ns;
          });
        } else {
          self->deliver_to_logic(0, packet);
        }
        return cost;
      });
      return;
    }
    case SimArch::kSmart:
    case SimArch::kSmartStar: {
      // Out-of-order verification: the worker pool authenticates every
      // message, needed or not (§3.2).
      ReplicaSim* self = this;
      next_pool_thread().post([self, packet = std::move(packet)]() -> double {
        const CostModel& c = self->costs;
        double cost =
            c.parse_ns(packet->bytes) + c.mac_ns(packet->bytes) + c.handoff_ns;
        if (const auto* pp = std::get_if<PrePrepare>(&packet->msg)) {
          std::size_t per_req =
              pp->requests.empty() ? 0 : packet->bytes / pp->requests.size();
          cost += static_cast<double>(pp->requests.size()) * c.mac_ns(per_req);
          cost += c.digest_ns(packet->bytes);
        }
        auto verified = std::make_shared<Packet>(*packet);
        verified->pre_verified = true;
        self->deliver_to_logic(0, std::move(verified));
        return cost;
      });
      return;
    }
  }
}

void ReplicaSim::deliver_to_logic(std::uint32_t unit, PacketPtr packet) {
  LogicUnit* target = logic[unit].get();
  // COP pillars receive straight from the network (parse in place); the
  // pipelined architectures received via an upstream stage (pay dequeue —
  // amortized for protocol messages, which stream in bursts).
  bool from_network = (cfg.arch == SimArch::kCop);
  target->thread.post([target, packet = std::move(packet),
                       from_network]() -> double {
    const CostModel& c = target->world.costs;
    double dequeue = std::holds_alternative<Request>(packet->msg)
                         ? c.dequeue_ns
                         : 0.5 * c.dequeue_ns;
    double cost = from_network ? c.parse_ns(packet->bytes) : dequeue;
    if (const auto* req = std::get_if<Request>(&packet->msg)) {
      cost += target->feed_request(*req, packet->bytes, packet->pre_verified);
    } else {
      cost += target->feed_message(*packet);
    }
    return cost;
  });
}

double ReplicaSim::send_protocol(Message&& msg, std::uint32_t lane,
                                 std::vector<ReplicaId> recipients) {
  auto packet = std::make_shared<Packet>();
  packet->bytes = encoded_size(msg) + recipients.size() * kAuthEntryBytes;
  packet->msg = std::move(msg);

  ReplicaSim* self = this;
  auto seal_and_send = [self, packet, lane,
                        recipients = std::move(recipients)]() -> double {
    const CostModel& c = self->costs;
    double cost = c.serialize_ns(packet->bytes);
    for (ReplicaId to : recipients) {
      cost += c.mac_ns(packet->bytes) + c.send_ns(packet->bytes);
      self->transmit_to_peer(to, self->out_lane(lane), packet);
    }
    return cost;
  };

  if (cfg.arch == SimArch::kCop) {
    // In-place cryptography inside the pillar (§4.1).
    return seal_and_send();
  }
  // Task-oriented: hand over to the authentication pool.
  double dequeue = costs.dequeue_ns;
  next_pool_thread().post(
      [dequeue, seal_and_send = std::move(seal_and_send)]() -> double {
        return dequeue + seal_and_send();
      });
  return costs.handoff_ns;
}

void ReplicaSim::transmit_to_peer(ReplicaId to, std::uint32_t lane,
                                  PacketPtr packet) {
  if (world.paused(id)) return;  // fault injection: egress cut
  // Lane stall: a slow/throttled pillar connection delays every frame it
  // carries before the NIC even sees it.
  SimTime stall = 0;
  for (const SimConfig::LaneStall& s : cfg.lane_stalls) {
    if (s.replica != id || s.lane != lane) continue;
    SimTime now = world.events.now();
    if (now < s.from || (s.until != 0 && now >= s.until)) continue;
    stall += s.delay_ns;
  }
  ReplicaSim& peer = *world.replicas[to];
  std::uint32_t peer_lane = lane % peer.lanes();
  ReplicaSim* self = this;
  auto put_on_wire = [self, &peer, to, lane, peer_lane, packet]() mutable {
    self->world.transfer(self->id, to, self->nics.adapter_for_lane(lane),
                         peer.nics.adapter_for_lane(peer_lane), packet->bytes,
                         [&peer, peer_lane, packet]() mutable {
                           peer.deliver(peer_lane, std::move(packet));
                         });
  };
  if (stall == 0) {
    put_on_wire();
  } else {
    world.events.schedule_in(stall, std::move(put_on_wire));
  }
}

double ReplicaSim::send_replies(const std::vector<PendingReply>& replies,
                                std::uint32_t lane) {
  double cost = 0;
  for (const PendingReply& reply : replies) {
    // Reply frame: tag + header + payload + single-entry authenticator.
    std::size_t bytes = 1 + 24 + 4 + reply.payload + 2 + kAuthEntryBytes;
    cost += costs.reply_build_ns + costs.mac_ns(bytes) + costs.send_ns(bytes);

    ClientFleet& fleet = *world.fleet;
    std::uint32_t idx = reply.client - kClientIdBase;
    auto& client = fleet.clients[idx];
    Adapter& dst = fleet.nics[client.machine]->adapter_for_lane(reply.client);
    ClientId cid = reply.client;
    RequestId rid = reply.rid;
    world.transfer(id, world.client_node(), nics.adapter_for_lane(out_lane(lane)),
                   dst, bytes, [&fleet, cid, rid, bytes] {
                     fleet.receive_reply(cid, rid, bytes);
                   });
  }
  return cost;
}

void ReplicaSim::request_state_transfer(SeqNum observed) {
  if (transfer_inflight || world.paused(id)) return;
  transfer_inflight = true;
  // Model the StateRequest round-trip plus the chunked snapshot delivery
  // as a fixed virtual-time delay; the threaded runtime's fault-injection
  // tests exercise the real wire path.
  ReplicaSim* self = this;
  world.events.schedule_in(3'000'000 /*3 ms*/, [self, observed] {
    self->exec->thread.post([self, observed]() -> double {
      self->complete_state_transfer(observed);
      return self->costs.dequeue_ns + 10'000.0;  // decode + install
    });
  });
}

void ReplicaSim::complete_state_transfer(SeqNum observed) {
  transfer_inflight = false;
  if (world.paused(id)) return;
  // Donor: the newest stable checkpoint held by any live peer.
  SeqNum stable = 0;
  for (auto& peer : world.replicas) {
    if (peer->id == id || world.paused(peer->id)) continue;
    for (auto& unit : peer->logic)
      stable = std::max(stable, unit->core->stable_seq());
  }
  if (stable < exec->next_seq) return;  // caught up by retransmission
  ++world.state_transfers;
  exec->reorder.erase(exec->reorder.begin(),
                      exec->reorder.upper_bound(stable));
  exec->next_seq = stable + 1;
  // The new frontier may already sit in the ring with no future publish
  // edge to wake the stage: kick a drain explicitly.
  if (!exec->drain_scheduled && exec->reorder.contains(exec->next_seq)) {
    ExecSim* e = exec.get();
    e->drain_scheduled = true;
    e->thread.post([e]() -> double { return e->drain(); });
  }
  // Slide every logic unit's window to the installed checkpoint, then
  // re-fetch the instances between it and the observed frontier.
  SeqNum upto = std::max(observed, stable);
  for (auto& unit_ptr : logic) {
    LogicUnit* unit = unit_ptr.get();
    unit->thread.post([unit, stable, upto]() -> double {
      return unit->note_stable(stable) + unit->fetch_missing(upto);
    });
  }
}

void ReplicaSim::crash_reset() {
  for (auto& unit : logic) {
    unit->reset_core();
    unit->last_gap_frontier = 0;
  }
  exec->next_seq = 1;
  exec->reorder.clear();
  transfer_inflight = false;
}

// ---------------------------------------------------------------------------
// ExecSim implementation

double ExecSim::drain() {
  drain_scheduled = false;
  // Pre-execution offload (§4.3.1): admission already happened on the
  // pillar. One wakeup per frontier edge — the stage pays the dequeue,
  // then executes the ready streak straight from the ring.
  double cost = world.costs.dequeue_ns;
  std::map<std::uint32_t, std::vector<PendingReply>> replies;
  cost += apply_ready(replies);
  return cost + flush_replies(replies);
}

double ExecSim::apply_ready(
    std::map<std::uint32_t, std::vector<PendingReply>>& replies) {
  const SimConfig& cfg = world.cfg;
  const CostModel& costs = world.costs;
  double cost = 0;

  // Parallel execution (threaded mirror: ExecPool). Per request the stage
  // pays dispatch + retire instead of the service cost, which moves to
  // the shard's worker (fixed shard -> worker mapping, like the threaded
  // stage's worker_of). Workers run concurrently with the stage's own
  // bookkeeping, so per drained burst the stage only stalls for
  // max(0, slowest worker - its own overlapping work) — the conflict
  // stall of in-order retirement.
  const std::uint32_t pool = static_cast<std::uint32_t>(workers.size());
  std::vector<double> worker_busy(pool, 0.0);
  double settle_mark = 0;
  const auto settle_workers = [&] {
    if (pool == 0) return;
    double slowest = 0;
    for (std::uint32_t w = 0; w < pool; ++w) {
      if (worker_busy[w] <= 0) continue;
      const double busy = worker_busy[w] + costs.exec_wake_ns;
      slowest = std::max(slowest, busy);
      workers[w]->post([busy]() -> double { return busy; });
      worker_busy[w] = 0;
    }
    const double overlap = cost - settle_mark;
    const double stall = std::max(0.0, slowest - overlap);
    stall_ns += stall;
    cost += stall;
    settle_mark = cost;
  };

  while (true) {
    auto it = reorder.find(next_seq);
    if (it == reorder.end()) break;
    const Deliver& d = it->second;
    ++executed_instances;
    cost += costs.exec_order_ns;
    // Fork oracle (pure observer, no CPU charged): record what this
    // replica executed at next_seq and compare against its peers. The
    // fold over (client, id) keys is order-sensitive, so any divergence
    // in agreed batch contents shows up.
    std::uint64_t content_hash = 1469598103934665603ULL;
    if (d.requests) {
      for (const Request& req : *d.requests) {
        content_hash ^= req.key();
        content_hash *= 1099511628211ULL;
      }
    }
    world.note_executed(replica.id, next_seq, content_hash);
    if (d.requests) {
      for (const Request& req : *d.requests) {
        ++executed_requests;
        if (pool > 0) {
          // Shard classification mirrors app::NullService: key % shards,
          // then the fixed shard -> worker mapping. (The coordination
          // service classifies everything global — exec_pool() is 0 for
          // it, so this branch is never taken there.)
          ++executed_parallel;
          cost += costs.exec_dispatch_ns + costs.exec_retire_ns;
          const std::uint32_t shard = static_cast<std::uint32_t>(
              req.key() % app::NullService::kNumShards);
          worker_busy[shard % pool] +=
              costs.exec_base_ns + costs.exec_worker_ns;
        } else {
          cost += (cfg.service == SimService::kCoordination)
                      ? costs.coord_op_ns
                      : costs.exec_base_ns;
        }
        bool omit = cfg.reply_mode == core::ReplyMode::kOmitOne &&
                    req.key() % cfg.protocol.num_replicas == replica.id;
        if (!omit) {
          // Offloaded post-execution (§4.3.2): the reply goes back to the
          // *originating* pillar — the one that ran instance seq — so
          // post-processing and sealing parallelize across pillars. The
          // stage itself only pays for building/routing the ReplyTask.
          std::uint32_t unit =
              (cfg.arch == SimArch::kCop)
                  ? static_cast<std::uint32_t>(d.seq % replica.logic.size())
                  : 0;
          cost += costs.reply_task_ns;
          replies[unit].push_back(
              {req.client, req.id,
               world.fleet->reply_bytes_for_flags(req.flags)});
        }
      }
    }
    SeqNum seq = next_seq;
    reorder.erase(it);
    ++next_seq;

    if (seq % cfg.protocol.checkpoint_interval == 0) {
      // Checkpoint hashing needs the quiescent point: every dispatched
      // request retires first (the threaded stage's drain_pool()).
      settle_workers();
      // The stage pays the digest; the StartCheckpoint signal is mailed
      // to the owning pillar, whose poll picks it up (the dequeue_ns in
      // start_checkpoint) — no exec-side hand-off anymore (§4.3.1).
      cost += costs.digest_base_ns;
      std::uint32_t owner = static_cast<std::uint32_t>(
          (seq / cfg.protocol.checkpoint_interval) % replica.logic.size());
      LogicUnit* unit = replica.logic[owner].get();
      unit->thread.post(
          [unit, seq]() -> double { return unit->start_checkpoint(seq); });
    }
  }

  // Quiescent before the stage parks: everything dispatched retired, all
  // replies emitted — outside a ready streak the parallel stage is
  // observationally the sequential one.
  settle_workers();
  return cost;
}

double ExecSim::flush_replies(
    std::map<std::uint32_t, std::vector<PendingReply>>& replies) {
  const SimConfig& cfg = world.cfg;
  const CostModel& costs = world.costs;
  double cost = 0;
  ReplicaSim* rep = &replica;
  if (cfg.arch == SimArch::kCop) {
    // The originating pillar seals and sends the replies; one hand-off
    // per pillar per drained burst, not per request (§4.3.2).
    for (auto& [unit_index, batch] : replies) {
      cost += costs.handoff_ns;
      std::uint32_t lane = unit_index;
      replica.logic[unit_index]->thread.post(
          [rep, lane, batch = std::move(batch)]() -> double {
            return rep->costs.dequeue_ns + rep->send_replies(batch, lane);
          });
    }
  } else {
    // Pipelines push every reply through another stage — one more
    // per-request queue crossing (§3.1). The original BFT-SMaRt's client
    // managers additionally pay its legacy client-handling cost.
    for (auto& [unit_index, batch] : replies) {
      for (const PendingReply& reply : batch) {
        cost += costs.handoff_ns;
        bool legacy = (cfg.arch == SimArch::kSmart);
        SimThread* target =
            legacy ? replica.client_mgrs[replica.rr_cmgr++ %
                                         replica.client_mgrs.size()]
                   : &replica.next_pool_thread();
        target->post([rep, reply, legacy]() -> double {
          double c = rep->costs.dequeue_ns +
                     rep->send_replies({reply}, /*lane=*/0);
          if (legacy) c += rep->costs.legacy_client_ns;
          return c;
        });
      }
    }
  }
  return cost;
}

double LogicUnit::gap_check() {
  // Pre-execution offload (§4.3.1): each pillar polls the shared frontier
  // and times its own stall; a stalled frontier makes it fill its *own*
  // slice up to the highest admitted instance (§4.2.1). Self-detected on
  // this thread — no exec-side hand-off.
  ExecSim* exec = replica.exec.get();
  if (exec->reorder.empty() || exec->next_seq != last_gap_frontier) {
    last_gap_frontier = exec->next_seq;
    return 50.0;
  }
  const SeqNum target = exec->reorder.rbegin()->first;
  const SeqNum frontier = exec->next_seq;
  core->fill_gap_upto(target, world.now_virtual_us(), frontier);
  return 100.0 + world.costs.logic_per_message_ns + drain_effects();
}

// ---------------------------------------------------------------------------
// ClientFleet implementation

double ClientFleet::issue(SimClient& client) {
  bool read = cfg.read_ratio > 0.0 && rng.chance(cfg.read_ratio);
  std::uint8_t flags = read ? kFlagReadOnly : 0;
  std::size_t payload = 0;
  switch (cfg.service) {
    case SimService::kNull:
      payload = cfg.request_payload;
      break;
    case SimService::kCoordination:
      payload = read ? cfg.coord_path_size
                     : cfg.coord_path_size + cfg.coord_data_size;
      break;
  }

  RequestId rid = client.next_id++;
  Request req;
  req.client = client.id;
  req.id = rid;
  req.flags = flags;
  req.payload = Bytes(payload, Byte{0x5a});
  // Carry the client's per-replica authenticator so proposals that embed
  // the request have the true wire size (MAC values are irrelevant: the
  // simulator accounts verification cost, not cryptography).
  req.auth.entries.resize(cfg.protocol.num_replicas);
  for (ReplicaId r = 0; r < cfg.protocol.num_replicas; ++r)
    req.auth.entries[r].recipient = replica_node(r);

  auto packet = std::make_shared<Packet>();
  packet->bytes = encoded_size(Message{req});
  packet->msg = std::move(req);

  Op& op = client.outstanding[rid];
  op.reply_bytes = reply_bytes_for_flags(flags);
  op.issued_at = world.events.now();

  double cost = costs.client_issue_ns;
  Adapter& src = nics[client.machine]->adapter_for_lane(client.id);
  for (ReplicaId r = 0; r < cfg.protocol.num_replicas; ++r) {
    cost += costs.mac_ns(packet->bytes) + costs.send_ns(packet->bytes);
    ReplicaSim& replica = *world.replicas[r];
    std::uint32_t lane = replica.client_lane(client.id);
    world.transfer(world.client_node(), r, src,
                   replica.nics.adapter_for_lane(lane), packet->bytes,
                   [&replica, lane, packet]() mutable {
                     replica.deliver(lane, std::move(packet));
                   });
  }
  return cost;
}

void ClientFleet::receive_reply(ClientId client_id, RequestId rid,
                                std::size_t bytes) {
  SimClient* client = &clients[client_id - kClientIdBase];
  threads[client->machine][client->thread]->post(
      [this, client, rid, bytes]() -> double {
        return on_reply(*client, rid, bytes);
      });
}

double ClientFleet::on_reply(SimClient& client, RequestId rid,
                             std::size_t bytes) {
  double cost =
      costs.parse_ns(bytes) + costs.mac_ns(bytes) + costs.client_reply_ns;
  auto it = client.outstanding.find(rid);
  if (it == client.outstanding.end()) {
    ++stray_replies;
    return cost;
  }
  Op& op = it->second;
  ++op.replies_seen;
  if (!op.done && op.replies_seen >= cfg.protocol.max_faulty + 1) {
    op.done = true;
    world.record_completion();
    if (world.measuring) {
      ++world.completed_ops;
      world.latency_us.record((world.events.now() - op.issued_at) / 1000);
    }
    cost += issue(client);  // closed loop
  }
  if (op.replies_seen >= expected_replies()) client.outstanding.erase(it);
  return cost;
}

// ---------------------------------------------------------------------------
// Recurring virtual-time timers

void arm_gap_checks(World& world, ReplicaSim* replica, SimTime period,
                    SimTime until) {
  world.events.schedule_in(period, [&world, replica, period, until] {
    // Pillar-side gap polls (§4.3.1): every logic unit checks its own
    // stall timer against the shared execution frontier.
    for (auto& unit_ptr : replica->logic) {
      LogicUnit* unit = unit_ptr.get();
      unit->thread.post([unit]() -> double { return unit->gap_check(); });
    }
    if (world.events.now() < until)
      arm_gap_checks(world, replica, period, until);
  });
}

/// Periodic core ticks: drive the retransmission timers that recover
/// proposals a momentarily-lagging replica dropped as outside its
/// watermark window (same mechanism the threaded runtime runs).
void arm_ticks(World& world, ReplicaSim* replica, SimTime period,
               SimTime until) {
  world.events.schedule_in(period, [&world, replica, period, until] {
    for (auto& unit_ptr : replica->logic) {
      LogicUnit* unit = unit_ptr.get();
      unit->thread.post([unit]() -> double { return unit->tick(); });
    }
    if (world.events.now() < until)
      arm_ticks(world, replica, period, until);
  });
}

}  // namespace

// ---------------------------------------------------------------------------

SimResult run_simulation(const SimConfig& config) {
  World world(config);
  for (ReplicaId r = 0; r < config.protocol.num_replicas; ++r)
    world.replicas.push_back(std::make_unique<ReplicaSim>(world, r));
  world.fleet = std::make_unique<ClientFleet>(world);

  SimTime end = config.warmup + config.measure;
  for (auto& replica : world.replicas) {
    // Pillar-side stall polls every 100 us: the threaded runtime's
    // pillars check the frontier each loop iteration (microseconds), so
    // the poll period models reaction latency, not work — each no-stall
    // poll costs ~50 ns of pillar time.
    arm_gap_checks(world, replica.get(), 100'000 /*100 us*/, end);
    if (config.protocol.retransmit_interval_us != 0)
      arm_ticks(world, replica.get(),
                config.protocol.retransmit_interval_us * 500 /*half, in ns*/,
                end);
  }

  // Fault timeline (includes the legacy pause triple via the compat shim).
  for (const SimConfig::FaultEvent& ev : config.effective_faults()) {
    World* w = &world;
    std::uint32_t r = ev.replica;
    auto kind = ev.kind;
    world.events.schedule(ev.at, [w, r, kind] {
      using Kind = SimConfig::FaultEvent::Kind;
      switch (kind) {
        case Kind::kPause:
        case Kind::kCrash:
          w->net_down[r] = 1;
          break;
        case Kind::kResume:
          w->net_down[r] = 0;
          break;
        case Kind::kRecover:
          w->net_down[r] = 0;
          w->replicas[r]->crash_reset();
          break;
      }
    });
  }

  world.fleet->start();

  world.events.run_until(config.warmup);
  world.measuring = true;
  world.completed_ops = 0;
  world.latency_us.reset();
  world.replicas[0]->nics.tx_bytes_window();  // reset the window marker

  world.events.run_until(end);
  world.measuring = false;

  SimResult result;
  result.completed_ops = world.completed_ops;
  double seconds = static_cast<double>(config.measure) / 1e9;
  result.throughput_ops = static_cast<double>(world.completed_ops) / seconds;
  result.latency_mean_us = world.latency_us.mean();
  result.latency_p50_us = world.latency_us.percentile(0.5);
  result.latency_p99_us = world.latency_us.percentile(0.99);
  result.leader_tx_mbps =
      static_cast<double>(world.replicas[0]->nics.tx_bytes_window()) /
      (seconds * 1e6);
  for (auto& unit : world.replicas[0]->logic) {
    result.leader_core += unit->core->stats();
    result.instances += unit->core->stats().instances_delivered;
  }
  result.leader_cpu_utilization = world.replicas[0]->machine.utilization(end);
  result.follower_cpu_utilization =
      world.replicas[1]->machine.utilization(end);
  result.state_transfers = world.state_transfers;
  result.cluster_next_seq = world.replicas[0]->exec->next_seq;
  if (config.pause_replica < config.protocol.num_replicas)
    result.laggard_next_seq =
        world.replicas[config.pause_replica]->exec->next_seq;
  for (auto& replica : world.replicas) {
    result.replica_next_seq.push_back(replica->exec->next_seq);
    for (auto& unit : replica->logic) {
      result.adversary_equivocations +=
          unit->core->stats().adversary_equivocations;
      result.adversary_omissions += unit->core->stats().adversary_omissions;
    }
  }
  result.fork_detections = world.fork_detections;
  result.ops_timeline = std::move(world.ops_timeline);
  // Fixed timeline length for a given run length: pad trailing idle
  // buckets so bit-identical artifacts don't depend on when the last
  // operation completed.
  result.ops_timeline.resize(end / SimResult::kTimelineBucketNs, 0);
  const double elapsed_ns = static_cast<double>(end);
  for (const auto& t : world.replicas[0]->machine.threads())
    result.leader_stages.push_back(SimResult::StageLoad{
        t->name(), t->busy_ns() / elapsed_ns,
        static_cast<std::uint64_t>(t->backlog())});
  result.leader_reorder_peak = world.replicas[0]->exec->reorder_peak;

  if (std::getenv("COPBFT_SIM_DEBUG")) {
    double elapsed = static_cast<double>(end);
    for (ReplicaId r = 0; r < 2; ++r) {
      std::fprintf(stderr, "[sim] replica %u threads:", r);
      for (const auto& t : world.replicas[r]->machine.threads())
        std::fprintf(stderr, " %s=%.2f", t->name().c_str(),
                     t->busy_ns() / elapsed);
      std::fprintf(stderr, "\n");
      ExecSim& exec = *world.replicas[r]->exec;
      std::size_t pending = 0, open = 0;
      for (auto& unit : world.replicas[r]->logic) {
        pending += unit->core->pending_requests();
        open += unit->core->open_instances();
      }
      std::fprintf(
          stderr,
          "[sim] replica %u exec: executed=%llu next_seq=%llu reorder=%zu | "
          "cores: pending=%zu open=%zu\n",
          r, static_cast<unsigned long long>(exec.executed_requests),
          static_cast<unsigned long long>(exec.next_seq),
          exec.reorder.size(), pending, open);
      if (r == 0) {
        for (std::size_t u = 0; u < world.replicas[r]->logic.size(); ++u) {
          const auto& cs = world.replicas[r]->logic[u]->core->stats();
          std::fprintf(stderr,
                       "[sim]   unit %zu: prop=%llu del=%llu macs=%llu "
                       "reqmacs=%llu skip=%llu open=%zu pend=%zu backlog=%zu\n",
                       u, (unsigned long long)cs.proposals,
                       (unsigned long long)cs.instances_delivered,
                       (unsigned long long)cs.macs_verified,
                       (unsigned long long)cs.request_macs_verified,
                       (unsigned long long)cs.verifications_skipped,
                       world.replicas[r]->logic[u]->core->open_instances(),
                       world.replicas[r]->logic[u]->core->pending_requests(),
                       world.replicas[r]->logic[u]->thread.backlog());
        }
      }
    }
    std::uint64_t outstanding = 0;
    for (const auto& client : world.fleet->clients)
      outstanding += client.outstanding.size();
    std::fprintf(stderr,
                 "[sim] fleet: completed=%llu stray_replies=%llu "
                 "outstanding=%llu\n",
                 static_cast<unsigned long long>(world.completed_ops),
                 static_cast<unsigned long long>(world.fleet->stray_replies),
                 static_cast<unsigned long long>(outstanding));
  }
  return result;
}

}  // namespace copbft::sim
