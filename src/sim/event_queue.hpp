// Discrete-event engine: virtual time in nanoseconds, deterministic
// ordering (time, then insertion order).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace copbft::sim {

using SimTime = std::uint64_t;  ///< virtual nanoseconds

class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(SimTime at, Action action) {
    if (at < now_) at = now_;
    heap_.push(Event{at, next_id_++, std::move(action)});
  }

  void schedule_in(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  /// Runs one event; false when empty.
  bool step() {
    if (heap_.empty()) return false;
    // Moving out of a priority_queue top requires const_cast; the element
    // is popped immediately after, so this is safe.
    Event& top = const_cast<Event&>(heap_.top());
    now_ = top.at;
    Action action = std::move(top.action);
    heap_.pop();
    action();
    return true;
  }

  /// Runs events until `deadline` (inclusive) or exhaustion.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.top().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t id;
    Action action;

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : id > other.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0;
  std::uint64_t next_id_ = 0;
};

constexpr SimTime operator""_us(unsigned long long v) { return v * 1000; }
constexpr SimTime operator""_ms(unsigned long long v) { return v * 1'000'000; }
constexpr SimTime operator""_s(unsigned long long v) {
  return v * 1'000'000'000ULL;
}

}  // namespace copbft::sim
