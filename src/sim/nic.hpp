// Simulated network adapters.
//
// Each adapter direction is a serializing server with finite bandwidth
// (the paper's machines: four 1 GbE adapters, measured 118 MB/s per
// direction, §5 "The Setup"). A transfer occupies the sender's tx port
// for size/bandwidth, propagates, then occupies the receiver's rx port —
// so both outgoing fan-out at a leader and incoming aggregation at a
// follower can saturate.
//
// Lanes (pillar connections) are pinned to adapters lane % A, which is
// how COP's private connections exploit multiple adapters (§4.2.3) while
// single-connection baselines cannot.
#pragma once

#include <functional>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"

namespace copbft::sim {

/// One direction of one adapter: serializes byte streams at fixed rate.
class NicPort {
 public:
  NicPort(EventQueue& events, double bytes_per_ns)
      : events_(events), bytes_per_ns_(bytes_per_ns) {}

  /// Reserves the port for `bytes` starting no earlier than now; returns
  /// the completion time.
  SimTime transmit(std::size_t bytes) {
    SimTime start = std::max(events_.now(), free_at_);
    SimTime duration =
        static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_ns_);
    free_at_ = start + duration;
    bytes_total_ += bytes;
    return free_at_;
  }

  std::uint64_t bytes_total() const { return bytes_total_; }
  /// Mark for measurement windows: returns bytes since last call.
  std::uint64_t take_window_bytes() {
    std::uint64_t delta = bytes_total_ - window_mark_;
    window_mark_ = bytes_total_;
    return delta;
  }

 private:
  EventQueue& events_;
  double bytes_per_ns_;
  SimTime free_at_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t window_mark_ = 0;
};

struct Adapter {
  Adapter(EventQueue& events, double bytes_per_ns)
      : tx(events, bytes_per_ns), rx(events, bytes_per_ns) {}

  NicPort tx;
  NicPort rx;
};

/// The adapters of one machine.
class NicSet {
 public:
  NicSet(EventQueue& events, const CostModel& costs, std::uint32_t adapters) {
    adapters_.reserve(adapters);
    for (std::uint32_t a = 0; a < adapters; ++a)
      adapters_.push_back(
          std::make_unique<Adapter>(events, costs.nic_bytes_per_ns));
  }

  Adapter& adapter_for_lane(std::uint32_t lane) {
    return *adapters_[lane % adapters_.size()];
  }
  Adapter& adapter(std::uint32_t index) { return *adapters_[index]; }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(adapters_.size());
  }

  std::uint64_t tx_bytes_window() {
    std::uint64_t total = 0;
    for (auto& a : adapters_) total += a->tx.take_window_bytes();
    return total;
  }

 private:
  std::vector<std::unique_ptr<Adapter>> adapters_;
};

/// Transfers `bytes` from `src` (tx port) to `dst` (rx port) and invokes
/// `deliver` when the last byte has been received.
inline void network_transfer(EventQueue& events, const CostModel& costs,
                             Adapter& src, Adapter& dst, std::size_t bytes,
                             std::function<void()> deliver) {
  SimTime sent = src.tx.transmit(bytes);
  SimTime arrival = sent + costs.propagation_ns;
  events.schedule(arrival, [&events, &dst, bytes,
                            deliver = std::move(deliver)]() mutable {
    SimTime received = dst.rx.transmit(bytes);
    events.schedule(received, std::move(deliver));
  });
}

}  // namespace copbft::sim
