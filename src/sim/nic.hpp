// Simulated network adapters.
//
// Each adapter direction is a serializing server with finite bandwidth
// (the paper's machines: four 1 GbE adapters, measured 118 MB/s per
// direction, §5 "The Setup"). A transfer occupies the sender's tx port
// for size/bandwidth, propagates, then occupies the receiver's rx port —
// so both outgoing fan-out at a leader and incoming aggregation at a
// follower can saturate.
//
// Lanes (pillar connections) are pinned to adapters lane % A, which is
// how COP's private connections exploit multiple adapters (§4.2.3) while
// single-connection baselines cannot.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"

namespace copbft::sim {

/// One direction of one adapter: serializes byte streams at fixed rate.
class NicPort {
 public:
  NicPort(EventQueue& events, double bytes_per_ns)
      : events_(events), bytes_per_ns_(bytes_per_ns) {}

  /// Reserves the port for `bytes` starting no earlier than now; returns
  /// the completion time.
  SimTime transmit(std::size_t bytes) {
    SimTime start = std::max(events_.now(), free_at_);
    SimTime duration =
        static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_ns_);
    free_at_ = start + duration;
    bytes_total_ += bytes;
    return free_at_;
  }

  std::uint64_t bytes_total() const { return bytes_total_; }
  /// Mark for measurement windows: returns bytes since last call.
  std::uint64_t take_window_bytes() {
    std::uint64_t delta = bytes_total_ - window_mark_;
    window_mark_ = bytes_total_;
    return delta;
  }

 private:
  EventQueue& events_;
  double bytes_per_ns_;
  SimTime free_at_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t window_mark_ = 0;
};

struct Adapter {
  Adapter(EventQueue& events, double bytes_per_ns)
      : tx(events, bytes_per_ns), rx(events, bytes_per_ns) {}

  NicPort tx;
  NicPort rx;
};

/// The adapters of one machine.
class NicSet {
 public:
  NicSet(EventQueue& events, const CostModel& costs, std::uint32_t adapters) {
    adapters_.reserve(adapters);
    for (std::uint32_t a = 0; a < adapters; ++a)
      adapters_.push_back(
          std::make_unique<Adapter>(events, costs.nic_bytes_per_ns));
  }

  Adapter& adapter_for_lane(std::uint32_t lane) {
    return *adapters_[lane % adapters_.size()];
  }
  Adapter& adapter(std::uint32_t index) { return *adapters_[index]; }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(adapters_.size());
  }

  std::uint64_t tx_bytes_window() {
    std::uint64_t total = 0;
    for (auto& a : adapters_) total += a->tx.take_window_bytes();
    return total;
  }

 private:
  std::vector<std::unique_ptr<Adapter>> adapters_;
};

/// Transfers `bytes` from `src` (tx port) to `dst` (rx port) with an
/// explicit one-way propagation delay and invokes `deliver` when the last
/// byte has been received.
inline void network_transfer(EventQueue& events, SimTime propagation_ns,
                             Adapter& src, Adapter& dst, std::size_t bytes,
                             std::function<void()> deliver) {
  SimTime sent = src.tx.transmit(bytes);
  SimTime arrival = sent + propagation_ns;
  events.schedule(arrival, [&events, &dst, bytes,
                            deliver = std::move(deliver)]() mutable {
    SimTime received = dst.rx.transmit(bytes);
    events.schedule(received, std::move(deliver));
  });
}

/// Uniform-latency transfer (the LAN of the paper's testbed): propagation
/// comes from the cost model's single global constant.
inline void network_transfer(EventQueue& events, const CostModel& costs,
                             Adapter& src, Adapter& dst, std::size_t bytes,
                             std::function<void()> deliver) {
  network_transfer(events, costs.propagation_ns, src, dst, bytes,
                   std::move(deliver));
}

// --------------------------------------------------------------------------
// WAN link model
//
// Generalizes the single global propagation_ns to a per-(src, dst) one-way
// latency matrix with deterministic seeded jitter and transient partitions.
// Node ids are arbitrary — the simulation maps replica ids and a sentinel
// client node onto them. Jitter draws come from one seeded generator; the
// event queue's total order makes the draw sequence (and therefore whole
// runs) reproducible for a fixed spec + seed.

/// One-way latency override for a directed pair (applied symmetrically by
/// callers that want full-duplex links — add both directions).
struct LinkSpec {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  SimTime latency_ns = 0;
};

/// Transient partition: traffic between set `a` and set `b` (both ways) is
/// dropped while now ∈ [from_ns, until_ns).
struct PartitionSpec {
  SimTime from_ns = 0;
  SimTime until_ns = 0;
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
};

class LinkModel {
 public:
  LinkModel(SimTime default_latency_ns, SimTime jitter_ns, std::uint64_t seed)
      : default_latency_ns_(default_latency_ns),
        jitter_ns_(jitter_ns),
        rng_(seed) {}

  void set_link(std::uint32_t src, std::uint32_t dst, SimTime latency_ns) {
    links_[link_key(src, dst)] = latency_ns;
  }
  void add_partition(PartitionSpec p) { partitions_.push_back(std::move(p)); }

  /// True while a partition separates src from dst at `now`.
  bool blocked(std::uint32_t src, std::uint32_t dst, SimTime now) const {
    for (const PartitionSpec& p : partitions_) {
      if (now < p.from_ns || now >= p.until_ns) continue;
      bool src_a = contains(p.a, src), src_b = contains(p.b, src);
      bool dst_a = contains(p.a, dst), dst_b = contains(p.b, dst);
      if ((src_a && dst_b) || (src_b && dst_a)) return true;
    }
    return false;
  }

  /// One-way propagation for this transfer: base matrix entry (or the
  /// default) plus a fresh jitter draw. Mutates the generator — call once
  /// per transfer.
  SimTime latency(std::uint32_t src, std::uint32_t dst) {
    auto it = links_.find(link_key(src, dst));
    SimTime base = it == links_.end() ? default_latency_ns_ : it->second;
    if (jitter_ns_ == 0) return base;
    return base + rng_.below(jitter_ns_ + 1);
  }

 private:
  static std::uint64_t link_key(std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  static bool contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
    for (std::uint32_t e : v)
      if (e == x) return true;
    return false;
  }

  SimTime default_latency_ns_;
  SimTime jitter_ns_;
  Rng rng_;
  // COPLINT(allow:det-unordered-member: latency overrides read by keyed lookup per delivery; never iterated)
  std::unordered_map<std::uint64_t, SimTime> links_;
  std::vector<PartitionSpec> partitions_;
};

}  // namespace copbft::sim
