// Declarative adversarial-scenario engine over the deterministic simulator.
//
// A ScenarioSpec names a complete robustness campaign: seed, workload
// shape, fault schedule (crash/recover/pause churn), Byzantine adversary
// behaviour (protocol::AdversaryConfig inside the protocol config) and WAN
// topology (SimConfig::WanConfig). run_scenario() executes it on the
// simulator with the COP_INVARIANT checker armed as a counting oracle and
// derives the safety/liveness verdicts CI gates on:
//   * fork_detections == 0      — no two correct replicas executed a
//                                 sequence number with different contents;
//   * invariant_firings == 0    — no partition/order/drift invariant fired;
//   * post-fault liveness       — committed operations after the last
//                                 injected fault cleared;
//   * recoveries complete       — every faulted replica's execution
//                                 frontier caught back up to the cluster.
// scenario_json() renders a deterministic BENCH_scenario_<name>.json: the
// same spec + seed produces bit-identical bytes (asserted by a test).
#pragma once

#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace copbft::sim {

struct ScenarioSpec {
  std::string name;         ///< artifact suffix: BENCH_scenario_<name>.json
  std::string description;  ///< one line, rendered into the artifact
  /// Fault axes exercised ("byzantine", "churn", "wan"); documentation
  /// and artifact metadata, not behaviour.
  std::vector<std::string> axes;
  SimConfig config;
};

struct ScenarioResult {
  SimResult sim;
  /// COP_INVARIANT firings observed during the run (oracle, must be 0).
  std::uint64_t invariant_firings = 0;
  /// Virtual time the last time-bounded fault cleared (0 = none clears;
  /// unbounded faults are covered by the whole-run throughput check).
  SimTime last_fault_clear_ns = 0;
  /// Completed client operations in timeline buckets starting at or after
  /// last_fault_clear_ns — the graceful-degradation liveness signal.
  std::uint64_t post_fault_completed_ops = 0;
  /// Every fault-affected correct replica's final execution frontier is
  /// within 2 * window of the cluster frontier.
  bool recoveries_complete = true;

  bool safe() const { return sim.fork_detections == 0 && invariant_firings == 0; }
};

/// Virtual time at which the last bounded fault of `spec` clears
/// (kResume/kRecover events, partition ends, adversary/stall windows).
SimTime last_fault_clear_ns(const ScenarioSpec& spec);

/// Runs the scenario; installs a counting invariant handler for the
/// duration of the run and restores the previous one after.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Deterministic JSON artifact ("copbft-scenario-v1" schema); see
/// docs/scenarios.md for the field reference.
std::string scenario_json(const ScenarioSpec& spec, const ScenarioResult& r);

/// The committed fault campaigns: Byzantine equivocation/omission/lane
/// stall, crash-recover and pause churn, WAN geo-replication and
/// partition. Each emits one BENCH artifact via bench/scenarios.
std::vector<ScenarioSpec> builtin_scenarios();

}  // namespace copbft::sim
