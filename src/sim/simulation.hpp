// Cluster simulator: runs the COP / TOP / BFT-SMaRt replica architectures
// over simulated multi-core machines and GbE adapters in virtual time.
//
// This is the reproduction vehicle for the paper's evaluation (§5): the
// host running this repository has a single CPU core, so multi-core
// scaling is reproduced by simulation. Protocol behaviour is NOT modelled
// — each simulated logic unit drives a real protocol::PbftCore (the same
// class the threaded runtime uses); only CPU time and network bytes are
// accounted through sim::CostModel instead of being burned for real.
//
// Setup mirrors §5 "The Setup": 4 replica machines (configurable cores,
// 2 SMT contexts each, four 1 GbE adapters), 5 client machines, closed-
// loop clients with bounded asynchronous windows, checkpoints every 1000
// instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "core/runtime_config.hpp"
#include "protocol/config.hpp"
#include "protocol/pbft_core.hpp"
#include "sim/cost_model.hpp"
#include "sim/nic.hpp"

namespace copbft::sim {

enum class SimArch {
  kCop,        ///< consensus-oriented parallelization (paper §4)
  kTop,        ///< task-oriented pipeline, multi-instance, in-order verify
  kSmart,      ///< BFT-SMaRt-like: single-instance, out-of-order verify
  kSmartStar,  ///< BFT-SMaRt* : one connection per adapter (paper §5)
};

const char* arch_name(SimArch arch);

/// Application model executed by the simulated execution stage. Service
/// *state* is irrelevant for performance; cost and reply size matter.
enum class SimService {
  kNull,          ///< microbenchmark service (§5.1/§5.2)
  kCoordination,  ///< ZooKeeper-like coordination service (§5.3)
};

struct SimConfig {
  SimArch arch = SimArch::kCop;
  SimService service = SimService::kNull;
  protocol::ProtocolConfig protocol;

  // ---- hardware (per machine) ----
  std::uint32_t cores = 12;
  std::uint32_t adapters = 4;
  std::uint32_t client_machines = 5;
  /// Client machines keep their full core count when `cores` is swept.
  std::uint32_t client_cores = 12;

  /// COP pillars; 0 = auto (two per core, the paper's single-core setup
  /// used two pillars on two hardware threads).
  std::uint32_t num_pillars = 0;
  /// TOP/SMaRt auxiliary thread-pool size; 0 = auto.
  std::uint32_t pool_threads = 0;
  /// COP execution worker pool (conflict-aware parallel execution). Only
  /// meaningful for services that shard (kNull; the coordination service
  /// classifies everything global and stays sequential). 0 = auto policy
  /// (see exec_pool()); UINT32_MAX = off (sequential execution stage).
  std::uint32_t exec_workers = 0;

  // ---- workload ----
  std::uint32_t clients = 800;
  std::uint32_t client_window = 8;
  std::size_t request_payload = 0;
  std::size_t reply_payload = 0;
  /// Coordination service only (§5.3):
  double read_ratio = 0.0;
  std::size_t coord_data_size = 128;
  std::size_t coord_path_size = 12;

  core::ReplyMode reply_mode = core::ReplyMode::kAll;

  // ---- measurement ----
  SimTime warmup = 300 * 1'000'000ULL;    // 300 ms
  SimTime measure = 1'000 * 1'000'000ULL; // 1 s
  std::uint64_t seed = 42;

  // ---- fault injection ----
  /// Legacy single-fault triple, kept as a compatibility shim: when
  /// pause_replica is set it is translated into a kPause/kResume pair on
  /// the `faults` timeline below. UINT32_MAX disables it.
  std::uint32_t pause_replica = UINT32_MAX;
  SimTime pause_at = 0;
  SimTime resume_at = 0;

  /// Generalized fault schedule: a timeline of per-replica events.
  ///   kPause   — cut the replica's network (it neither sends nor receives;
  ///              its cores keep spinning on stale state).
  ///   kResume  — restore the network. The cluster meanwhile truncated its
  ///              logs past the laggard's window, so rejoining goes through
  ///              the checkpoint-based state-transfer path under load.
  ///   kCrash   — network cut *plus* full loss of volatile state.
  ///   kRecover — restart with fresh protocol cores and an empty execution
  ///              frontier; first peer contact reveals the gap and triggers
  ///              state transfer.
  struct FaultEvent {
    enum class Kind { kPause, kResume, kCrash, kRecover };
    SimTime at = 0;
    std::uint32_t replica = 0;
    Kind kind = Kind::kPause;
  };
  std::vector<FaultEvent> faults;

  /// Delay every frame leaving `replica` on pillar lane `lane` by an extra
  /// `delay_ns` while now ∈ [from, until) (until = 0 → forever): a slow or
  /// throttled pillar connection stalling one COP lane.
  struct LaneStall {
    std::uint32_t replica = 0;
    std::uint32_t lane = 0;
    SimTime delay_ns = 0;
    SimTime from = 0;
    SimTime until = 0;
  };
  std::vector<LaneStall> lane_stalls;

  /// WAN topology: per-(src, dst) one-way latencies with seeded jitter and
  /// transient partitions (sim/nic.hpp LinkModel). Disabled by default —
  /// the uniform LAN constant of the cost model applies.
  struct WanConfig {
    bool enabled = false;
    /// Replica-to-replica default when no link override matches.
    SimTime default_latency_ns = 110'000;
    /// Uniform jitter [0, jitter_ns] added per transfer, seeded draw.
    SimTime jitter_ns = 0;
    /// One-way overrides, applied in both directions of each listed pair.
    std::vector<LinkSpec> links;
    /// Transient partitions between replica sets.
    std::vector<PartitionSpec> partitions;
    /// Latency between client machines and every replica.
    SimTime client_latency_ns = 110'000;
  };
  WanConfig wan;

  CostModel costs;

  /// The fault timeline with the legacy pause triple folded in.
  std::vector<FaultEvent> effective_faults() const {
    std::vector<FaultEvent> all = faults;
    if (pause_replica != UINT32_MAX) {
      all.push_back({pause_at, pause_replica, FaultEvent::Kind::kPause});
      all.push_back({resume_at, pause_replica, FaultEvent::Kind::kResume});
    }
    return all;
  }

  /// Resolved pillar count for this configuration.
  std::uint32_t pillars() const {
    if (arch != SimArch::kCop) return 1;
    return num_pillars != 0 ? num_pillars : 2 * cores;
  }
  /// Resolved execution-pool size. Workers only help a service whose
  /// requests classify onto shards (kNull; the coordination service is
  /// all-global and stays sequential). The auto policy follows the
  /// measured regimes (docs/performance.md "What it buys"): once the
  /// service cost dominates the per-job dispatch+retire overhead the
  /// sequential stage saturates and the pool must spread the work (4
  /// workers). Below that bar the pool is overhead management: batched
  /// runs retire hundreds of requests per burst, so in-order retirement
  /// waits for the worker anyway and sequential wins — pool off; in
  /// unbatched runs one worker hides the service call behind the stage's
  /// own dispatch/retire bookkeeping without adding oversubscription.
  std::uint32_t exec_pool() const {
    if (arch != SimArch::kCop || service == SimService::kCoordination)
      return 0;
    if (exec_workers == UINT32_MAX) return 0;
    if (exec_workers != 0) return exec_workers;
    const double per_job = costs.exec_dispatch_ns + costs.exec_retire_ns;
    if (costs.exec_base_ns > 4.0 * per_job) return 4;
    return protocol.batching ? 0 : 1;
  }
  std::uint32_t pool() const {
    if (pool_threads != 0) return pool_threads;
    switch (arch) {
      case SimArch::kTop:
        return 4;  // the pipeline's additional authentication threads
      case SimArch::kSmart:
        return 5;  // the original's fixed worker pool
      default:
        return std::max(2u, cores);  // BFT-SMaRt*: workers scale with cores
    }
  }
};

struct SimResult {
  /// Completed client operations per second (stable f+1 reply quorums).
  double throughput_ops = 0;
  /// Client-observed request->stable-result latency.
  double latency_mean_us = 0;
  std::uint64_t latency_p50_us = 0;
  std::uint64_t latency_p99_us = 0;
  /// Leader (replica 0) egress during the measurement window, MB/s.
  double leader_tx_mbps = 0;
  /// Aggregated protocol-core statistics of replica 0.
  protocol::CoreStats leader_core;
  std::uint64_t completed_ops = 0;
  double leader_cpu_utilization = 0;
  double follower_cpu_utilization = 0;
  std::uint64_t instances = 0;
  /// Fault injection (pause_replica set): completed state transfers, and
  /// the execution frontiers of the laggard and of replica 0 at the end.
  std::uint64_t state_transfers = 0;
  std::uint64_t laggard_next_seq = 0;
  std::uint64_t cluster_next_seq = 0;

  /// Execution frontier (next_seq) of every replica at the end of the run;
  /// scenario liveness/recovery checks read these.
  std::vector<std::uint64_t> replica_next_seq;
  /// Cross-replica execution fork oracle: number of sequence numbers two
  /// correct replicas executed with different batch contents. Must be 0 —
  /// any other value is a safety violation.
  std::uint64_t fork_detections = 0;
  /// Injected misbehaviour actually exercised (sum over the adversary's
  /// cores; zero on fault-free runs).
  std::uint64_t adversary_equivocations = 0;
  std::uint64_t adversary_omissions = 0;
  /// Completed client operations per 10 ms bucket over the whole run
  /// (warmup included, bucket 0 = virtual time 0). Scenario posts-fault
  /// liveness checks and recovery-time estimates read this timeline.
  std::vector<std::uint64_t> ops_timeline;
  static constexpr SimTime kTimelineBucketNs = 10 * 1'000'000ULL;

  /// Per-stage load of the leader machine's simulated threads: fraction of
  /// the run each stage was busy and its queued jobs at the end (the
  /// per-stage series the BENCH json exposes alongside the headline
  /// numbers).
  struct StageLoad {
    std::string name;
    double busy_fraction = 0;
    std::uint64_t backlog = 0;
  };
  std::vector<StageLoad> leader_stages;
  /// Peak depth of the leader's reorder buffer (execution-stage series).
  std::uint64_t leader_reorder_peak = 0;
};

SimResult run_simulation(const SimConfig& config);

}  // namespace copbft::sim
