#include "sim/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "common/invariant.hpp"

namespace copbft::sim {
namespace {

// Counting oracle for COP_INVARIANT firings during a scenario run. The
// handler is a plain function pointer, so the counter is file-static; the
// simulator is single-threaded but the threaded runtime's tests share the
// process, hence atomic.
std::atomic<std::uint64_t> g_invariant_firings{0};

void count_invariant(const InvariantViolation&) {
  g_invariant_firings.fetch_add(1, std::memory_order_relaxed);
}

// ---- deterministic JSON helpers (same conventions as BenchJsonWriter) ---

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  if (buf[0] == 'i' || buf[0] == 'n' || buf[1] == 'i') {  // inf/nan
    out += "null";
    return;
  }
  out += buf;
}

void field(std::string& out, const char* key, const std::string& value) {
  append_escaped(out, key);
  out += ':';
  append_escaped(out, value);
}
void field(std::string& out, const char* key, std::uint64_t value) {
  append_escaped(out, key);
  out += ':';
  append_number(out, value);
}
void field(std::string& out, const char* key, double value) {
  append_escaped(out, key);
  out += ':';
  append_number(out, value);
}
void field(std::string& out, const char* key, bool value) {
  append_escaped(out, key);
  out += ':';
  out += value ? "true" : "false";
}

}  // namespace

SimTime last_fault_clear_ns(const ScenarioSpec& spec) {
  SimTime clear = 0;
  for (const SimConfig::FaultEvent& ev : spec.config.effective_faults()) {
    using Kind = SimConfig::FaultEvent::Kind;
    if (ev.kind == Kind::kResume || ev.kind == Kind::kRecover)
      clear = std::max(clear, ev.at);
  }
  for (const PartitionSpec& p : spec.config.wan.partitions)
    clear = std::max(clear, p.until_ns);
  for (const SimConfig::LaneStall& s : spec.config.lane_stalls)
    if (s.until != 0) clear = std::max(clear, s.until);
  const protocol::AdversaryConfig& adv = spec.config.protocol.adversary;
  if (adv.replica != protocol::AdversaryConfig::kNoAdversary &&
      adv.until_us != 0)
    clear = std::max(clear, adv.until_us * 1'000);
  return clear;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  std::uint64_t before = g_invariant_firings.load(std::memory_order_relaxed);
  InvariantHandler previous = set_invariant_handler(&count_invariant);

  ScenarioResult result;
  result.sim = run_simulation(spec.config);

  set_invariant_handler(previous);
  result.invariant_firings =
      g_invariant_firings.load(std::memory_order_relaxed) - before;

  // Post-fault liveness: completed operations in timeline buckets that
  // start at or after the moment the last bounded fault cleared. With no
  // bounded fault this is the whole run.
  result.last_fault_clear_ns = last_fault_clear_ns(spec);
  for (std::size_t i = 0; i < result.sim.ops_timeline.size(); ++i)
    if (i * SimResult::kTimelineBucketNs >= result.last_fault_clear_ns)
      result.post_fault_completed_ops += result.sim.ops_timeline[i];

  // Recovery: every fault-affected correct replica's execution frontier
  // must sit within 2 * window of the cluster frontier at the end.
  std::set<std::uint32_t> affected;
  for (const SimConfig::FaultEvent& ev : spec.config.effective_faults())
    affected.insert(ev.replica);
  for (const PartitionSpec& p : spec.config.wan.partitions) {
    for (std::uint32_t r : p.a) affected.insert(r);
    for (std::uint32_t r : p.b) affected.insert(r);
  }
  for (const SimConfig::LaneStall& s : spec.config.lane_stalls)
    affected.insert(s.replica);
  std::uint64_t cluster_frontier = 0;
  for (std::uint64_t f : result.sim.replica_next_seq)
    cluster_frontier = std::max(cluster_frontier, f);
  for (std::uint32_t r : affected) {
    if (r == spec.config.protocol.adversary.replica) continue;
    if (r >= result.sim.replica_next_seq.size()) continue;
    if (result.sim.replica_next_seq[r] + 2 * spec.config.protocol.window <
        cluster_frontier)
      result.recoveries_complete = false;
  }
  return result;
}

std::string scenario_json(const ScenarioSpec& spec, const ScenarioResult& r) {
  const SimConfig& cfg = spec.config;
  std::string out = "{\n  ";
  field(out, "schema", std::string("copbft-scenario-v1"));
  out += ",\n  ";
  field(out, "name", spec.name);
  out += ",\n  ";
  field(out, "description", spec.description);
  out += ",\n  \"axes\":[";
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    if (i) out += ',';
    append_escaped(out, spec.axes[i]);
  }
  out += "],\n  \"config\":{";
  field(out, "arch", std::string(arch_name(cfg.arch)));
  out += ',';
  field(out, "seed", cfg.seed);
  out += ',';
  field(out, "cores", static_cast<std::uint64_t>(cfg.cores));
  out += ',';
  field(out, "pillars", static_cast<std::uint64_t>(cfg.pillars()));
  out += ',';
  field(out, "clients", static_cast<std::uint64_t>(cfg.clients));
  out += ',';
  field(out, "client_window", static_cast<std::uint64_t>(cfg.client_window));
  out += ',';
  field(out, "checkpoint_interval", cfg.protocol.checkpoint_interval);
  out += ',';
  field(out, "window", cfg.protocol.window);
  out += ',';
  field(out, "warmup_ns", static_cast<std::uint64_t>(cfg.warmup));
  out += ',';
  field(out, "measure_ns", static_cast<std::uint64_t>(cfg.measure));
  out += ',';
  field(out, "fault_events",
        static_cast<std::uint64_t>(cfg.effective_faults().size()));
  out += ',';
  field(out, "lane_stalls", static_cast<std::uint64_t>(cfg.lane_stalls.size()));
  out += ',';
  field(out, "wan", cfg.wan.enabled);
  out += ',';
  field(out, "partitions",
        static_cast<std::uint64_t>(cfg.wan.partitions.size()));
  out += ',';
  field(out, "adversary_replica",
        static_cast<std::uint64_t>(cfg.protocol.adversary.replica));
  out += ',';
  field(out, "adversary_equivocate", cfg.protocol.adversary.equivocate);
  out += ',';
  field(out, "adversary_omit_targets",
        static_cast<std::uint64_t>(cfg.protocol.adversary.omit_votes_to.size()));
  out += "},\n  \"results\":{";
  field(out, "throughput_ops", r.sim.throughput_ops);
  out += ',';
  field(out, "completed_ops", r.sim.completed_ops);
  out += ',';
  field(out, "latency_mean_us", r.sim.latency_mean_us);
  out += ',';
  field(out, "latency_p50_us", r.sim.latency_p50_us);
  out += ',';
  field(out, "latency_p99_us", r.sim.latency_p99_us);
  out += ',';
  field(out, "instances", r.sim.instances);
  out += ',';
  field(out, "state_transfers", r.sim.state_transfers);
  out += ',';
  field(out, "fork_detections", r.sim.fork_detections);
  out += ',';
  field(out, "invariant_firings", r.invariant_firings);
  out += ',';
  field(out, "adversary_equivocations", r.sim.adversary_equivocations);
  out += ',';
  field(out, "adversary_omissions", r.sim.adversary_omissions);
  out += ',';
  field(out, "last_fault_clear_ns", static_cast<std::uint64_t>(r.last_fault_clear_ns));
  out += ',';
  field(out, "post_fault_completed_ops", r.post_fault_completed_ops);
  out += ',';
  field(out, "recoveries_complete", r.recoveries_complete);
  out += ",\"replica_next_seq\":[";
  for (std::size_t i = 0; i < r.sim.replica_next_seq.size(); ++i) {
    if (i) out += ',';
    append_number(out, r.sim.replica_next_seq[i]);
  }
  out += "],\"ops_timeline_10ms\":[";
  for (std::size_t i = 0; i < r.sim.ops_timeline.size(); ++i) {
    if (i) out += ',';
    append_number(out, r.sim.ops_timeline[i]);
  }
  out += "]}\n}\n";
  return out;
}

// --------------------------------------------------------------------------
// Built-in fault campaigns. All are sized to finish in a few wall-clock
// seconds each so CI can run the full set per PR; every spec keeps the
// default seed so runs are reproducible bit for bit.

namespace {

SimConfig scenario_base() {
  SimConfig cfg;
  cfg.arch = SimArch::kCop;
  cfg.cores = 2;
  cfg.clients = 80;
  cfg.client_window = 4;
  cfg.warmup = 100 * 1'000'000ULL;   // 100 ms
  cfg.measure = 400 * 1'000'000ULL;  // 400 ms
  cfg.protocol.checkpoint_interval = 100;
  cfg.protocol.window = 400;
  cfg.protocol.max_active_proposals = 4;
  cfg.protocol.view_change_timeout_us = 0;
  cfg.protocol.retransmit_interval_us = 20'000;  // 20 ms
  return cfg;
}

}  // namespace

std::vector<ScenarioSpec> builtin_scenarios() {
  std::vector<ScenarioSpec> specs;

  {
    // Byzantine leader: replica 0 (the view-0 leader of every slice) sends
    // conflicting pre-prepares to disjoint peer halves for its first
    // 150 ms. Followers cannot assemble a commit quorum for either
    // variant; the view-change timeout moves the group to view 1, whose
    // leader re-proposes from the surviving prepared proofs. Safety must
    // hold throughout (no fork), and throughput must return once the
    // equivocation window closes.
    ScenarioSpec s;
    s.name = "byz_equivocate_leader";
    s.description =
        "leader equivocates conflicting pre-prepares for 150ms; view change "
        "restores liveness, fork oracle stays silent";
    s.axes = {"byzantine"};
    s.config = scenario_base();
    s.config.protocol.view_change_timeout_us = 100'000;  // 100 ms
    s.config.protocol.adversary.replica = 0;
    s.config.protocol.adversary.equivocate = true;
    s.config.protocol.adversary.until_us = 150'000;
    specs.push_back(std::move(s));
  }

  {
    // Selective omission: follower replica 1 suppresses every own
    // PREPARE/COMMIT towards replicas 2 and 3 for the whole run. Quorums
    // of 2f (prepares) / 2f+1 (commits) remain reachable without those
    // votes, so the cluster must keep full liveness.
    ScenarioSpec s;
    s.name = "byz_omit_votes";
    s.description =
        "follower omits all its votes to two peers for the whole run; "
        "quorums survive and throughput stays up";
    s.axes = {"byzantine"};
    s.config = scenario_base();
    s.config.protocol.adversary.replica = 1;
    s.config.protocol.adversary.omit_votes_to = {2, 3};
    specs.push_back(std::move(s));
  }

  {
    // One stalled pillar lane: every frame replica 2 sends on pillar
    // lane 1 is delayed by 3 ms during [100 ms, 300 ms). The slice of the
    // stalled lane commits late, exercising the reorder ring and drift
    // bounds, but sibling pillars keep the cluster moving.
    ScenarioSpec s;
    s.name = "byz_stall_pillar";
    s.description =
        "replica 2's pillar lane 1 delayed 3ms for 200ms; drift bounds and "
        "reorder ring absorb the skew";
    s.axes = {"byzantine"};
    s.config = scenario_base();
    s.config.lane_stalls.push_back(
        {/*replica=*/2, /*lane=*/1, /*delay_ns=*/3'000'000,
         /*from=*/100 * 1'000'000ULL, /*until=*/300 * 1'000'000ULL});
    specs.push_back(std::move(s));
  }

  {
    // Crash + recover under load: replica 3 loses all volatile state at
    // 150 ms and restarts at 250 ms. The cluster's checkpoints advance
    // past its window meanwhile, so rejoining must go through the
    // checkpoint-based state transfer while traffic keeps flowing.
    ScenarioSpec s;
    s.name = "churn_crash_recover";
    s.description =
        "replica 3 crashes at 150ms, restarts with empty state at 250ms; "
        "checkpoint state transfer catches it back up under load";
    s.axes = {"churn"};
    s.config = scenario_base();
    using Kind = SimConfig::FaultEvent::Kind;
    s.config.faults.push_back({150 * 1'000'000ULL, 3, Kind::kCrash});
    s.config.faults.push_back({250 * 1'000'000ULL, 3, Kind::kRecover});
    specs.push_back(std::move(s));
  }

  {
    // Pause/resume churn loop: replica 2 drops off and rejoins three
    // times. Each gap is short enough that retransmission (or, if the
    // window slid, a state transfer) re-integrates it.
    ScenarioSpec s;
    s.name = "churn_flap";
    s.description =
        "replica 2 flaps off/on three times; retransmission and window "
        "slides re-integrate it each time";
    s.axes = {"churn"};
    s.config = scenario_base();
    using Kind = SimConfig::FaultEvent::Kind;
    for (SimTime start :
         {100 * 1'000'000ULL, 180 * 1'000'000ULL, 260 * 1'000'000ULL}) {
      s.config.faults.push_back({start, 2, Kind::kPause});
      s.config.faults.push_back({start + 30 * 1'000'000ULL, 2, Kind::kResume});
    }
    specs.push_back(std::move(s));
  }

  {
    // Geo-replication: two regions ({0,1} and {2,3}) with 300 us
    // intra-region and 40 ms inter-region one-way latency plus up to 3 ms
    // of jitter. Quorums always span regions, so commit latency carries
    // the WAN round trips; throughput degrades but must stay nonzero and
    // deterministic.
    ScenarioSpec s;
    s.name = "wan_georep";
    s.description =
        "two regions, 40ms inter-region latency with 3ms jitter; quorums "
        "span the WAN and commit latency absorbs the round trips";
    s.axes = {"wan"};
    s.config = scenario_base();
    s.config.wan.enabled = true;
    s.config.wan.default_latency_ns = 40 * 1'000'000ULL;
    s.config.wan.jitter_ns = 3 * 1'000'000ULL;
    s.config.wan.links = {{0, 1, 300'000}, {2, 3, 300'000}};
    s.config.wan.client_latency_ns = 5 * 1'000'000ULL;
    specs.push_back(std::move(s));
  }

  {
    // Transient partition: replica 3 is cut off from the other three
    // during [150 ms, 300 ms) while clients keep submitting. The majority
    // side retains 2f+1 and keeps committing; the isolated replica
    // re-integrates after the partition heals.
    ScenarioSpec s;
    s.name = "wan_partition";
    s.description =
        "replica 3 partitioned from the majority for 150ms on a mild WAN; "
        "the 2f+1 side keeps committing and the loner re-integrates";
    s.axes = {"wan", "churn"};
    s.config = scenario_base();
    s.config.wan.enabled = true;
    s.config.wan.default_latency_ns = 2 * 1'000'000ULL;
    s.config.wan.jitter_ns = 500'000;
    s.config.wan.client_latency_ns = 2 * 1'000'000ULL;
    s.config.wan.partitions.push_back(
        {/*from_ns=*/150 * 1'000'000ULL, /*until_ns=*/300 * 1'000'000ULL,
         /*a=*/{3},
         /*b=*/{0, 1, 2}});
    specs.push_back(std::move(s));
  }

  return specs;
}

}  // namespace copbft::sim
