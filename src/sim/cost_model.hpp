// CPU/network cost model of the cluster simulator.
//
// All constants are virtual nanoseconds of CPU work on one core of the
// simulated machines (2x Intel Xeon E5-2430v2, 2.5 GHz — the paper's
// testbed, §5 "The Setup") for the paper's Java prototypes. They are
// anchored on two kinds of evidence, documented in EXPERIMENTS.md:
//   * microbenchmarks of this repository's own SHA-256/HMAC and
//     serialization code (bench/micro_crypto, bench/micro_queue), scaled
//     for the Java-on-2013-Xeon environment of the paper, and
//   * the paper's single-core anchor points (BFT-SMaRt* 84k ops/s,
//     COP 190k ops/s batched on one core).
// The *shape* of every reproduced figure comes from the architecture
// (which thread does what, what saturates), not from per-curve tuning:
// all architectures share one cost model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"

namespace copbft::sim {

struct CostModel {
  // ---- cryptography ----
  /// HMAC-SHA256 over a small message (key schedule + 2 compressions).
  double mac_base_ns = 1300.0;
  double mac_per_byte_ns = 3.2;
  /// SHA-256 content digest.
  double digest_base_ns = 550.0;
  double digest_per_byte_ns = 3.2;

  // ---- wire handling ----
  double parse_base_ns = 400.0;
  double parse_per_byte_ns = 0.35;
  double serialize_base_ns = 400.0;
  double serialize_per_byte_ns = 0.35;

  // ---- protocol / threading ----
  /// Protocol-logic bookkeeping per consumed message.
  double logic_per_message_ns = 420.0;
  /// Enqueue side of handing an item to another thread (queue node,
  /// fences, wakeup) — the synchronization overhead the paper blames
  /// pipelines for (§3.1). The receiving side pays dequeue_ns.
  double handoff_ns = 1450.0;
  double dequeue_ns = 1450.0;
  /// Context-switch penalty charged per dispatched task while more
  /// software threads are runnable than hardware contexts exist — the
  /// "scheduling overhead" of thread-rich pipelines (paper §5.1).
  double oversub_switch_ns = 600.0;
  /// Kernel/socket cost per message handed to a NIC.
  double send_base_ns = 650.0;
  double send_per_byte_ns = 0.20;
  /// Per-request client-handling/reply-path inefficiency of the original
  /// BFT-SMaRt (the paper removed it for BFT-SMaRt*, §5 "The Subjects").
  double legacy_client_ns = 22'000.0;

  // ---- execution stage ----
  // Pre-execution offload (§4.3.1): commit admission runs on the pillar
  // that delivered the instance — it publishes straight into its slice of
  // the reorder ring (pillar_admit_ns, charged to the pillar) and wakes
  // the stage only when it published the execution frontier (one
  // dequeue_ns on the stage per wake, not per commit). The stage itself
  // pays only the in-order take + service invocation below.
  double exec_base_ns = 180.0;    ///< per ordered request, null service
  double pillar_admit_ns = 170.0; ///< lock-free ring publish, on the pillar
  double exec_order_ns = 60.0;    ///< ring take per executed instance
  /// Building + routing one ReplyTask to its originating pillar — the
  /// only per-reply work left in the stage after the §4.3.2 offload.
  double reply_task_ns = 90.0;
  double reply_build_ns = 280.0;
  // Parallel execution (exec_workers > 0): the stage swaps the service
  // invocation (exec_base_ns) for an SPSC dispatch plus an in-order
  // retire; the worker pays the service cost plus its ring consume/
  // publish overhead; one park/wake handshake per drained burst. Anchored
  // on bench/micro_queue's SPSC figures scaled like the rest.
  double exec_dispatch_ns = 70.0;  ///< publish job + slot bookkeeping
  double exec_retire_ns = 45.0;    ///< take result + cache/emission fill
  double exec_worker_ns = 60.0;    ///< worker-side ring overhead per job
  double exec_wake_ns = 400.0;     ///< park/wake handshake per burst

  // ---- application ----
  /// Coordination service: tree lookup + version bump per operation.
  double coord_op_ns = 900.0;

  // ---- clients ----
  double client_issue_ns = 900.0;   ///< build request (digest, bookkeeping)
  double client_reply_ns = 450.0;   ///< per received reply (match + verify share)

  // ---- network ----
  /// 1 GbE adapter, measured 118 MB/s per direction (paper §5).
  double nic_bytes_per_ns = 0.118;
  /// One-way propagation incl. TCP/Java stack latency. This is the uniform
  /// LAN of the paper's testbed; WAN scenarios override it per (src, dst)
  /// pair via sim::LinkModel (nic.hpp) instead of this single constant.
  SimTime propagation_ns = 110'000;

  // ---- SMT ----
  /// Relative speed of a hardware thread whose core sibling is busy.
  double smt_speed = 0.62;

  double mac_ns(std::size_t bytes) const {
    return mac_base_ns + mac_per_byte_ns * static_cast<double>(bytes);
  }
  double digest_ns(std::size_t bytes) const {
    return digest_base_ns + digest_per_byte_ns * static_cast<double>(bytes);
  }
  double parse_ns(std::size_t bytes) const {
    return parse_base_ns + parse_per_byte_ns * static_cast<double>(bytes);
  }
  double serialize_ns(std::size_t bytes) const {
    return serialize_base_ns +
           serialize_per_byte_ns * static_cast<double>(bytes);
  }
  double send_ns(std::size_t bytes) const {
    return send_base_ns + send_per_byte_ns * static_cast<double>(bytes);
  }
  SimTime wire_ns(std::size_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) /
                                nic_bytes_per_ns);
  }
};

}  // namespace copbft::sim
