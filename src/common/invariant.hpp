// Runtime checker for COP-specific protocol invariants.
//
// COP_INVARIANT(cond, fmt, ...) asserts properties the paper's correctness
// argument rests on (sequence-space partitioning c(p,i) = p + i*NP, the
// hole-free total order, the checkpoint drift bound of §3.4/§4.2.2) at the
// seams between threads and stages. On violation it reports file, line,
// the failed expression and a printf-formatted message, then aborts —
// unless a handler was installed (tests use this to capture the firing
// instead of dying).
//
// Compile-time gating: sites compile to nothing when COP_INVARIANTS_ENABLED
// is 0. The build defines it via the COP_ENABLE_INVARIANTS CMake option
// (default ON; turn OFF for maximum-performance release binaries). Without
// a build-system definition it follows NDEBUG: on in Debug, off in Release.
#pragma once

#include <cstdint>

#ifndef COP_INVARIANTS_ENABLED
#ifdef NDEBUG
#define COP_INVARIANTS_ENABLED 0
#else
#define COP_INVARIANTS_ENABLED 1
#endif
#endif

namespace copbft {

/// Everything known about a violated invariant.
struct InvariantViolation {
  const char* file = nullptr;
  int line = 0;
  const char* expression = nullptr;  ///< the failed condition, verbatim
  char message[256] = {};            ///< formatted context
};

/// Called when an invariant fails. Returning (instead of aborting) lets
/// tests observe the firing; production code must treat the replica as
/// compromised afterwards.
using InvariantHandler = void (*)(const InvariantViolation&);

/// Installs `handler` process-wide and returns the previous one; nullptr
/// restores the default abort-with-context behaviour. Thread-safe:
/// invariants fire on pillar/execution/transport threads.
InvariantHandler set_invariant_handler(InvariantHandler handler);

/// Reports a violation to the installed handler, or prints it to stderr
/// and aborts when none is installed. Never called directly; use
/// COP_INVARIANT.
void invariant_failed(const char* file, int line, const char* expression,
                      const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace copbft

/// Asserts a COP protocol invariant. `cond` must be side-effect free: it is
/// not evaluated when invariants are compiled out.
#define COP_INVARIANT(cond, ...)                                        \
  do {                                                                  \
    if (COP_INVARIANTS_ENABLED && !(cond))                              \
      ::copbft::invariant_failed(__FILE__, __LINE__, #cond, __VA_ARGS__); \
  } while (0)
