// Thread helpers: named joining threads.
#pragma once

#include <pthread.h>

#include <string>
#include <thread>
#include <utility>

namespace copbft {

/// Sets the current thread's name (visible in /proc, debuggers, perf).
inline void set_current_thread_name(const std::string& name) {
  // Linux limits names to 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
}

/// std::jthread that names itself before running the body.
template <typename Fn>
std::jthread named_thread(std::string name, Fn&& fn) {
  return std::jthread(
      [name = std::move(name), fn = std::forward<Fn>(fn)]() mutable {
        set_current_thread_name(name);
        fn();
      });
}

}  // namespace copbft
