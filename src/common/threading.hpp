// Thread helpers: named joining threads and annotated lock types.
//
// Mutex/MutexLock/CvLock wrap the standard primitives with clang
// thread-safety attributes (see common/thread_annotations.hpp). libstdc++'s
// std::mutex carries no capability annotations, so the analysis can only
// check lock discipline when code locks through these wrappers.
#pragma once

#include <pthread.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/thread_annotations.hpp"

namespace copbft {

/// Annotated std::mutex. Use COP_GUARDED_BY(mutex_) on the data it
/// protects and lock it through MutexLock or CvLock.
class COP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COP_ACQUIRE() { mutex_.lock(); }
  void unlock() COP_RELEASE() { mutex_.unlock(); }
  bool try_lock() COP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The underlying mutex, for interop that the analysis cannot follow.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock held for a full scope (std::lock_guard equivalent).
class COP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) COP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() COP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock for condition-variable waits: exposes the std::unique_lock
/// that std::condition_variable requires and supports early unlock (the
/// unlock-before-notify pattern). A wait releases and reacquires the mutex
/// internally; from the analysis' perspective the capability is held
/// throughout, which matches what the waiting code may assume.
class COP_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(Mutex& mutex) COP_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~CvLock() COP_RELEASE() {}

  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  void unlock() COP_RELEASE() { lock_.unlock(); }

  /// For std::condition_variable::wait*(...) only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/CvLock. Waiting goes through the
/// CvLock so call sites never touch the unannotated native handles; from
/// the thread-safety analysis' perspective the capability stays held
/// across a wait, which matches what the waiting code may assume.
class Cv {
 public:
  Cv() = default;
  Cv(const Cv&) = delete;
  Cv& operator=(const Cv&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(CvLock& lock) { cv_.wait(lock.native()); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(CvLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.native(), dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      CvLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.native(), tp);
  }

 private:
  std::condition_variable cv_;
};

/// Sets the current thread's name (visible in /proc, debuggers, perf).
inline void set_current_thread_name(const std::string& name) {
  // Linux limits names to 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
}

/// std::jthread that names itself before running the body.
template <typename Fn>
std::jthread named_thread(std::string name, Fn&& fn) {
  return std::jthread(
      [name = std::move(name), fn = std::forward<Fn>(fn)]() mutable {
        set_current_thread_name(name);
        fn();
      });
}

}  // namespace copbft
