// Minimal leveled logger. Single fprintf per record keeps lines atomic.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace copbft {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; records below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style sink. Prefer the COP_LOG_* macros, which skip argument
/// evaluation when the level is disabled.
void log_record(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

}  // namespace copbft

#define COP_LOG_AT(level, ...)                                      \
  do {                                                              \
    if (level >= ::copbft::log_level())                             \
      ::copbft::log_record(level, __FILE__, __LINE__, __VA_ARGS__); \
  } while (0)

#define COP_LOG_DEBUG(...) COP_LOG_AT(::copbft::LogLevel::kDebug, __VA_ARGS__)
#define COP_LOG_INFO(...) COP_LOG_AT(::copbft::LogLevel::kInfo, __VA_ARGS__)
#define COP_LOG_WARN(...) COP_LOG_AT(::copbft::LogLevel::kWarn, __VA_ARGS__)
#define COP_LOG_ERROR(...) COP_LOG_AT(::copbft::LogLevel::kError, __VA_ARGS__)
