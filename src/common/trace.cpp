#include "common/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/time.hpp"

namespace copbft::trace {

const char* point_name(Point p) {
  switch (p) {
    case Point::kClientSend:
      return "client_send";
    case Point::kClientRetransmit:
      return "client_retransmit";
    case Point::kPillarIngress:
      return "pillar_ingress";
    case Point::kPrePrepare:
      return "pre_prepare";
    case Point::kPrepare:
      return "prepare";
    case Point::kCommit:
      return "commit";
    case Point::kReorderEnter:
      return "reorder_enter";
    case Point::kExecute:
      return "execute";
    case Point::kReplyEgress:
      return "reply_egress";
    case Point::kStableResult:
      return "stable_result";
  }
  return "unknown";
}

TraceLog& TraceLog::instance() {
  static TraceLog* log = new TraceLog();  // never destroyed
  return *log;
}

void TraceLog::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  {
    MutexLock lock(mutex_);
    capacity_ = capacity;
    ring_.clear();
    ring_.reserve(capacity);
    next_ = 0;
    wrapped_ = false;
  }
  // Release ordering is unnecessary: record() re-checks state under mutex_.
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::disable() { enabled_.store(false, std::memory_order_relaxed); }

void TraceLog::record(const Event& event) {
  Event stamped = event;
  if (stamped.ts_us == 0) stamped.ts_us = now_us();
  MutexLock lock(mutex_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[next_] = stamped;
    wrapped_ = true;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<Event> TraceLog::snapshot() const {
  MutexLock lock(mutex_);
  if (!wrapped_) return ring_;
  std::vector<Event> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::string TraceLog::snapshot_json() const {
  std::vector<Event> events = snapshot();
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"ts_us\":%" PRIu64
                  ",\"point\":\"%s\",\"node\":%u,\"pillar\":%u,\"seq\":%" PRIu64
                  ",\"view\":%" PRIu64 ",\"client\":%" PRIu64
                  ",\"request\":%" PRIu64 "}",
                  e.ts_us, point_name(e.point), e.node, e.pillar, e.seq, e.view,
                  e.client, e.request);
    out += buf;
  }
  out += ']';
  return out;
}

}  // namespace copbft::trace
