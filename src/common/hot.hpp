// Hot-path marker.
//
// COP_HOT tags the functions on the request fast path: pillar ingest,
// execution-stage drain, the reorder ring, and outbound reply sealing.
// It has two consumers:
//   * the compiler: expands to [[gnu::hot]] so gcc/clang optimize and
//     lay out marked functions accordingly;
//   * tools/coplint: inside a COP_HOT function body the hot-path hygiene
//     rules apply — no std::map/std::list, no mutex acquisition, no
//     sleeps/condition-variable waits, no <iostream> (see
//     docs/static_analysis.md).
// Marking a function is a claim that it runs per-request at full load;
// coplint then keeps that claim honest as the code evolves.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define COP_HOT __attribute__((hot))
#else
#define COP_HOT
#endif
