// Latency histogram with logarithmic-ish bucketing (HdrHistogram style).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace copbft {

/// Records non-negative integer samples (e.g. latency in microseconds) and
/// reports count/mean/percentiles. Buckets grow geometrically so memory is
/// bounded while relative error stays below ~3%.
class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void record(std::uint64_t value) {
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
    min_ = std::min(min_, value);
    ++buckets_[bucket_index(value)];
  }

  void merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    for (std::size_t i = 0; i < kNumBuckets; ++i)
      buckets_[i] += other.buckets_[i];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0,1]; returns the *highest* value contained
  /// in the bucket holding the q-th sample (HdrHistogram convention),
  /// clamped to the observed maximum. Reporting the bucket's lower edge
  /// instead would systematically under-state tail percentiles by up to
  /// the ~3% bucket width; the upper edge guarantees
  /// percentile(q) >= the exact q-th sample.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(q * (count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) return std::min(bucket_upper(i), max_);
    }
    return max_;
  }

  void reset() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~0ULL;
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

  // The bucketing is public so wait-free metric variants (see
  // common/metrics.hpp) can share it and assemble snapshots via
  // from_parts().

  // 64 exponent groups x 32 sub-buckets: ~3% relative resolution up to 2^63.
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kSubBuckets = 1 << kSubBits;
  static constexpr std::size_t kNumBuckets = 64 * kSubBuckets;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    int msb = 63 - __builtin_clzll(v);
    std::size_t group = static_cast<std::size_t>(msb) - kSubBits + 1;
    std::size_t sub = (v >> (msb - static_cast<int>(kSubBits))) & (kSubBuckets - 1);
    return group * kSubBuckets + sub;
  }

  /// Lowest value mapping to bucket `index`.
  static std::uint64_t bucket_value(std::size_t index) {
    std::size_t group = index / kSubBuckets;
    std::size_t sub = index % kSubBuckets;
    if (group == 0) return sub;
    int shift = static_cast<int>(group) - 1;
    return (kSubBuckets + sub) << shift;
  }

  /// Highest value mapping to bucket `index`.
  static std::uint64_t bucket_upper(std::size_t index) {
    std::size_t group = index / kSubBuckets;
    std::size_t sub = index % kSubBuckets;
    if (group == 0) return sub;
    int shift = static_cast<int>(group) - 1;
    return (((kSubBuckets + sub + 1) << shift)) - 1;
  }

  /// Assembles a histogram from externally accumulated state; `buckets`
  /// must hold kNumBuckets counts in bucket_index() order.
  static Histogram from_parts(std::uint64_t count, std::uint64_t sum,
                              std::uint64_t min, std::uint64_t max,
                              const std::uint64_t* buckets) {
    Histogram h;
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = count ? min : ~0ULL;
    h.max_ = max;
    h.buckets_.assign(buckets, buckets + kNumBuckets);
    return h;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace copbft
