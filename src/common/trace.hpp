// Request-lifecycle tracing: reconstructs the path of a single request
// through the replicated system —
//
//   client send -> pillar ingress -> pre-prepare -> prepare -> commit
//     -> reorder buffer -> execution -> reply egress
//
// Every event is stamped with (node, pillar, seq, view, client, request),
// so filtering the log by (client, request) or by seq yields the full
// story of one request or one consensus instance: which pillar ordered it,
// when each protocol phase completed, and how long it waited in the
// reorder buffer (the per-stage visibility that FnF-BFT/Marandi et al.
// motivate for parallel-leader designs).
//
// Off by default: the only cost on a disabled hot path is one relaxed
// atomic load per trace point. When enabled, events go into a bounded ring
// under a mutex — tracing is a diagnostic tool, not a steady-state
// production path, and the mutex keeps concurrent recording TSan-clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/threading.hpp"

namespace copbft::trace {

enum class Point : std::uint8_t {
  kClientSend = 0,    ///< client sealed and transmitted the request
  kClientRetransmit,  ///< client re-fired a pending request
  kPillarIngress,     ///< frame entered a pillar's queue-side handler
  kPrePrepare,        ///< pillar accepted the pre-prepare for seq
  kPrepare,           ///< prepare certificate complete
  kCommit,            ///< commit certificate complete (instance delivered)
  kReorderEnter,      ///< committed batch admitted to the reorder buffer
  kExecute,           ///< batch left the reorder buffer and executed
  kReplyEgress,       ///< reply sealed and handed to the transport
  kStableResult,      ///< client matched f+1 replies (request is stable)
};

const char* point_name(Point p);

struct Event {
  std::uint64_t ts_us = 0;
  Point point = Point::kClientSend;
  /// Replica id, or the client id for client-side points.
  std::uint32_t node = 0;
  /// Pillar index for replica-side points (0 for single-pillar hosts).
  std::uint32_t pillar = 0;
  std::uint64_t seq = 0;   ///< consensus sequence number (0 = not assigned)
  std::uint64_t view = 0;
  std::uint64_t client = 0;   ///< requesting client id (0 = n/a, e.g. no-op)
  std::uint64_t request = 0;  ///< client-local request id
};

class TraceLog {
 public:
  static TraceLog& instance();

  /// Enables recording into a fresh ring of `capacity` events (older
  /// events are overwritten once full).
  void enable(std::size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(const Event& event);

  /// Events in arrival order (oldest first).
  std::vector<Event> snapshot() const;
  /// The snapshot rendered as a JSON array of event objects.
  std::string snapshot_json() const;

 private:
  TraceLog() = default;

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<Event> ring_ COP_GUARDED_BY(mutex_);
  std::size_t capacity_ COP_GUARDED_BY(mutex_) = 0;
  std::size_t next_ COP_GUARDED_BY(mutex_) = 0;
  bool wrapped_ COP_GUARDED_BY(mutex_) = false;
};

/// Trace-point helper: one relaxed load when tracing is off.
inline void point(Point p, std::uint32_t node, std::uint32_t pillar,
                  std::uint64_t seq, std::uint64_t view, std::uint64_t client,
                  std::uint64_t request) {
  TraceLog& log = TraceLog::instance();
  if (!log.enabled()) return;
  Event e;
  e.point = p;
  e.node = node;
  e.pillar = pillar;
  e.seq = seq;
  e.view = view;
  e.client = client;
  e.request = request;
  log.record(e);
}

}  // namespace copbft::trace
