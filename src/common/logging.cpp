#include "common/logging.hpp"

#include <atomic>
#include <cstring>

namespace copbft {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_record(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  char message[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof message, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s:%d: %s\n", level_name(level),
               basename_of(file), line, message);
}

}  // namespace copbft
