#include "common/invariant.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace copbft {
namespace {

std::atomic<InvariantHandler> g_handler{nullptr};

}  // namespace

InvariantHandler set_invariant_handler(InvariantHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void invariant_failed(const char* file, int line, const char* expression,
                      const char* fmt, ...) {
  InvariantViolation v;
  v.file = file;
  v.line = line;
  v.expression = expression;
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(v.message, sizeof v.message, fmt, args);
  va_end(args);

  if (InvariantHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(v);
    return;
  }
  std::fprintf(stderr, "COP invariant violated at %s:%d: %s\n  %s\n", file,
               line, expression, v.message);
  std::abort();
}

}  // namespace copbft
