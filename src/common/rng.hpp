// Deterministic pseudo-random number generation (xoshiro256**).
//
// Used everywhere randomness is needed in tests, workload generators, and
// the simulator so that runs are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace copbft {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna; fast, high-quality, deterministic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace copbft
