// Bounded blocking queues used for inter-thread message passing.
//
// COP deliberately keeps cross-thread hand-offs rare (pillar -> execution
// stage -> pillar); TOP hands every message across several stages. Both are
// built on this queue so the schemes are compared on the same plumbing,
// mirroring the paper's same-code-base methodology.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "common/metrics.hpp"
#include "common/threading.hpp"

namespace copbft {

/// Multi-producer multi-consumer bounded FIFO with close semantics.
///
/// push() blocks while full; pop() blocks while empty. close() wakes all
/// waiters: subsequent push() calls fail, pop() drains remaining elements
/// and then returns nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Opt-in instrumentation: `depth` tracks the queue length (its
  /// watermark shows peak backlog), `blocked_pushes` counts pushes that
  /// found the queue full and had to wait — the backpressure signal.
  /// Updates happen under the queue mutex the operation holds anyway.
  void instrument(metrics::Gauge& depth, metrics::Counter& blocked_pushes) {
    MutexLock lock(mutex_);
    depth_gauge_ = &depth;
    blocked_pushes_ = &blocked_pushes;
  }

  /// Blocking push; returns false iff the queue was closed.
  bool push(T value) {
    CvLock lock(mutex_);
    if (!closed_ && items_.size() >= capacity_ && blocked_pushes_)
      blocked_pushes_->add();
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(value));
    publish_depth();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        // Count full-queue rejections like push counts full-queue waits
        // (closed is shutdown, not backpressure): the try_push callers
        // are exactly the ones whose fallback path this counter exists
        // to explain.
        if (!closed_ && blocked_pushes_) blocked_pushes_->add();
        return false;
      }
      items_.push_back(std::move(value));
      publish_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that leaves `value` untouched on failure, so the
  /// caller can fall back to handling it locally (e.g. the execution
  /// stage sending a reply inline when a pillar's queue is saturated).
  /// `count_blocked=false` suppresses the blocked-push counter: transport
  /// admission probes a full queue as a matter of course (kBusy means
  /// "requeue at ingress", not "a stage thread stalled") and must not
  /// masquerade as pillar-side backpressure in the metrics.
  bool try_push_ref(T& value, bool count_blocked = true) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        if (count_blocked && !closed_ && blocked_pushes_) blocked_pushes_->add();
        return false;
      }
      items_.push_back(std::move(value));
      publish_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt iff closed and drained.
  std::optional<T> pop() {
    CvLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    publish_depth();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Pop with timeout; nullopt on timeout or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    CvLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (not_empty_.wait_until(lock, deadline) ==
          std::cv_status::timeout)
        break;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    publish_depth();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    CvLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    publish_depth();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Pops everything currently queued (blocking until at least one element
  /// or close). Reduces wake-ups for batch-style consumers.
  std::deque<T> pop_all() {
    CvLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    std::deque<T> out;
    out.swap(items_);
    publish_depth();
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  void publish_depth() COP_REQUIRES(mutex_) {
    if (depth_gauge_)
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  Cv not_empty_;
  Cv not_full_;
  std::deque<T> items_ COP_GUARDED_BY(mutex_);
  bool closed_ COP_GUARDED_BY(mutex_) = false;
  metrics::Gauge* depth_gauge_ COP_GUARDED_BY(mutex_) = nullptr;
  metrics::Counter* blocked_pushes_ COP_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace copbft
