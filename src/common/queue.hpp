// Bounded blocking queues used for inter-thread message passing.
//
// COP deliberately keeps cross-thread hand-offs rare (pillar -> execution
// stage -> pillar); TOP hands every message across several stages. Both are
// built on this queue so the schemes are compared on the same plumbing,
// mirroring the paper's same-code-base methodology.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace copbft {

/// Multi-producer multi-consumer bounded FIFO with close semantics.
///
/// push() blocks while full; pop() blocks while empty. close() wakes all
/// waiters: subsequent push() calls fail, pop() drains remaining elements
/// and then returns nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false iff the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt iff closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Pop with timeout; nullopt on timeout or on closed-and-drained.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Pops everything currently queued (blocking until at least one element
  /// or close). Reduces wake-ups for batch-style consumers.
  std::deque<T> pop_all() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::deque<T> out;
    out.swap(items_);
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace copbft
