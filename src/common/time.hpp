// Monotonic time helper.
#pragma once

#include <chrono>
#include <cstdint>

namespace copbft {

/// Microseconds from an arbitrary monotonic epoch.
inline std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace copbft
