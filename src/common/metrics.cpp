#include "common/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/time.hpp"

namespace copbft::metrics {

#if COP_METRICS_ENABLED

namespace detail {

std::size_t this_thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

Histogram HistogramMetric::snapshot() const {
  // Relaxed loads: the snapshot is a monitoring view, not a linearization
  // point; counts recorded concurrently may or may not be included.
  std::uint64_t buckets[Histogram::kNumBuckets];
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i)
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return Histogram::from_parts(count_.load(std::memory_order_relaxed),
                               sum_.load(std::memory_order_relaxed),
                               min_.load(std::memory_order_relaxed),
                               max_.load(std::memory_order_relaxed), buckets);
}

ScopedTimer::ScopedTimer(HistogramMetric& h) : hist_(h), start_us_(now_us()) {}

ScopedTimer::~ScopedTimer() { hist_.record(now_us() - start_us_); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  // Any process that registers a metric honors COPBFT_METRICS_DUMP without
  // per-host wiring. Runs after the registry's own initialization completed,
  // so the dumper thread can safely call global() at its first interval.
  static bool dumper = (MetricsDumper::maybe_start_from_env(), true);
  (void)dumper;
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  MutexLock lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"value\":";
    append_i64(out, g->value());
    out += ",\"max\":";
    append_i64(out, g->max());
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hm] : histograms_) {
    if (!first) out += ',';
    first = false;
    Histogram h = hm->snapshot();
    append_escaped(out, name);
    out += ":{\"count\":";
    append_u64(out, h.count());
    out += ",\"mean\":";
    append_double(out, h.mean());
    out += ",\"min\":";
    append_u64(out, h.min());
    out += ",\"max\":";
    append_u64(out, h.max());
    out += ",\"p50\":";
    append_u64(out, h.percentile(0.5));
    out += ",\"p90\":";
    append_u64(out, h.percentile(0.9));
    out += ",\"p99\":";
    append_u64(out, h.percentile(0.99));
    out += ",\"p999\":";
    append_u64(out, h.percentile(0.999));
    out += '}';
  }
  out += "}}";
  return out;
}

#else  // !COP_METRICS_ENABLED

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  static bool dumper = (MetricsDumper::maybe_start_from_env(), true);
  (void)dumper;
  return *registry;
}

#endif  // COP_METRICS_ENABLED

// ---------------------------------------------------------------------------
// MetricsDumper (built in both modes; with metrics compiled out it writes
// the empty document, making the build difference observable, not silent).

MetricsDumper::MetricsDumper(std::string path, std::uint64_t interval_ms)
    : path_(std::move(path)), interval_ms_(interval_ms) {
  thread_ = named_thread("metrics-dump", [this] { run(); });
}

MetricsDumper::~MetricsDumper() { stop(); }

void MetricsDumper::stop() {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsDumper::run() {
  const auto interval = std::chrono::milliseconds(interval_ms_);
  bool done = false;
  while (!done) {
    {
      CvLock lock(mutex_);
      if (!stopping_) cv_.wait_for(lock, interval);
      done = stopping_;
    }
    // Written even on the stop turn: short-lived processes get one
    // complete final snapshot.
    std::string json = MetricsRegistry::global().snapshot_json();
    if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
}

void MetricsDumper::maybe_start_from_env() {
  static MetricsDumper* dumper = []() -> MetricsDumper* {
    const char* path = std::getenv("COPBFT_METRICS_DUMP");
    if (!path || !*path) return nullptr;
    std::uint64_t ms = 1000;
    if (const char* env = std::getenv("COPBFT_METRICS_DUMP_MS"))
      ms = static_cast<std::uint64_t>(std::atoll(env));
    if (ms == 0) ms = 1000;
    return new MetricsDumper(path, ms);  // leaked: lives for the process
  }();
  (void)dumper;
}

}  // namespace copbft::metrics
