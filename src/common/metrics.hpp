// Low-overhead metrics registry: counters, gauges and histogram-backed
// timers for the runtime's hot paths (pillars, execution stage, transports,
// clients), aggregated only on scrape.
//
// Design (the paper's evaluation is entirely empirical, so instrumentation
// must not perturb what it measures):
//   * Counter  — sharded cache-line-padded atomics indexed by a per-thread
//     slot; increments are a single relaxed fetch_add on a shard that is,
//     in the steady state, owned by one thread. Aggregation sums shards.
//   * Gauge    — one atomic value plus a monotonic high-watermark.
//   * HistogramMetric — the same geometric bucketing as common/histogram.hpp
//     but with atomic buckets, so record() is wait-free and a scrape can
//     run concurrently with recording threads (each bucket is merely a
//     relaxed counter; the snapshot is a consistent-enough view for
//     monitoring, never for correctness decisions).
//   * MetricsRegistry — name -> metric map; registration is cold (mutex),
//     handles are stable for the registry's lifetime, snapshot_json()
//     renders everything with sorted, stable keys.
//
// Compile-time gating: when COP_METRICS_ENABLED is 0 every operation is an
// inline no-op and snapshot_json() returns an empty document, so benchmark
// builds can prove the instrumentation costs nothing (CMake option
// COP_ENABLE_METRICS, default ON).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef COP_METRICS_ENABLED
#define COP_METRICS_ENABLED 1
#endif

#include "common/histogram.hpp"
#include "common/threading.hpp"

#include <map>
#include <memory>

namespace copbft::metrics {

#if COP_METRICS_ENABLED

namespace detail {
/// Slot used to spread threads over counter shards. Assigned once per
/// thread, round-robin, so steady-state increments never contend.
std::size_t this_thread_slot();
}  // namespace detail

/// Monotonic event counter. Wait-free add(); value() sums the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    shard(detail::this_thread_slot()).fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kShards; ++i)
      sum += shards_[i].v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::atomic<std::uint64_t>& shard(std::size_t slot) {
    return shards_[slot % kShards].v;
  }
  Shard shards_[kShards];
};

/// Instantaneous value (queue depth, reorder-buffer size, drift) plus the
/// highest value ever set — saturation shows up in the watermark even when
/// a scrape misses the spike.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raise_watermark(v);
  }
  void add(std::int64_t d) {
    raise_watermark(value_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_watermark(std::int64_t v) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Wait-free histogram for latency/size samples: atomic buckets with the
/// bucketing of common/histogram.hpp. snapshot() materializes a plain
/// Histogram for percentile queries.
class HistogramMetric {
 public:
  void record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    lower_min(value);
    raise_max(value);
    buckets_[Histogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  Histogram snapshot() const;

 private:
  void lower_min(std::uint64_t v) {
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void raise_max(std::uint64_t v) {
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[Histogram::kNumBuckets] = {};
};

/// RAII timer recording elapsed microseconds into a HistogramMetric.
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HistogramMetric& hist_;
  std::uint64_t start_us_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by the built-in instrumentation.
  static MetricsRegistry& global();

  /// Returns the metric registered under `name`, creating it on first use.
  /// References stay valid for the registry's lifetime. Mixing kinds under
  /// one name is a programming error (the first registration wins and the
  /// mismatching call aborts via the invariant path in debug builds).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name);

  /// One JSON document with sorted, stable keys:
  /// {"counters":{...},"gauges":{name:{"value":v,"max":m}},
  ///  "histograms":{name:{"count":..,"mean":..,"min":..,"max":..,
  ///                      "p50":..,"p90":..,"p99":..,"p999":..}}}
  std::string snapshot_json() const;

 private:
  mutable Mutex mutex_;
  // node-stable containers: handles returned to hot paths must not move.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      COP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ COP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      COP_GUARDED_BY(mutex_);
};

#else  // !COP_METRICS_ENABLED — every operation compiles to nothing.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  std::int64_t value() const { return 0; }
  std::int64_t max() const { return 0; }
};

class HistogramMetric {
 public:
  void record(std::uint64_t) {}
  Histogram snapshot() const { return Histogram(); }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric&) {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  HistogramMetric& histogram(const std::string&) { return histogram_; }
  std::string snapshot_json() const { return "{}"; }

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric histogram_;
};

#endif  // COP_METRICS_ENABLED

/// Background thread dumping MetricsRegistry::global().snapshot_json() to
/// a file every `interval_ms`. Started explicitly by hosts, or process-wide
/// from the environment: COPBFT_METRICS_DUMP=<path> (interval from
/// COPBFT_METRICS_DUMP_MS, default 1000). A final snapshot is written on
/// stop so short runs still leave a complete document behind.
class MetricsDumper {
 public:
  MetricsDumper(std::string path, std::uint64_t interval_ms);
  ~MetricsDumper();
  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  void stop();

  /// Starts the process-wide dumper once iff COPBFT_METRICS_DUMP is set.
  static void maybe_start_from_env();

 private:
  void run();

  const std::string path_;
  const std::uint64_t interval_ms_;
  Mutex mutex_;
  Cv cv_;
  bool stopping_ COP_GUARDED_BY(mutex_) = false;
  std::jthread thread_;
};

}  // namespace copbft::metrics
