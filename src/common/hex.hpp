// Hex encoding/decoding for digests and test vectors.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace copbft {

/// Lower-case hex encoding of `data`.
std::string to_hex(ByteSpan data);

/// Decodes a hex string; returns nullopt on odd length or invalid digits.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace copbft
