// Clang thread-safety annotation macros.
//
// These expand to clang's capability analysis attributes when compiling
// with clang (where -Wthread-safety turns lock-discipline violations into
// compile errors) and to nothing elsewhere, so gcc builds are unaffected.
// Conventions are documented in docs/correctness.md; the annotated lock
// types that carry these attributes live in common/threading.hpp.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef COP_THREAD_ANNOTATION
#define COP_THREAD_ANNOTATION(x)  // not clang: no-op
#endif

/// Marks a type as a capability (a lock). `x` names the capability kind in
/// diagnostics, e.g. COP_CAPABILITY("mutex").
#define COP_CAPABILITY(x) COP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define COP_SCOPED_CAPABILITY COP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define COP_GUARDED_BY(x) COP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define COP_PT_GUARDED_BY(x) COP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define COP_REQUIRES(...) \
  COP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define COP_REQUIRES_SHARED(...) \
  COP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the listed capabilities.
#define COP_ACQUIRE(...) \
  COP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define COP_ACQUIRE_SHARED(...) \
  COP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define COP_RELEASE(...) \
  COP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define COP_RELEASE_SHARED(...) \
  COP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define COP_TRY_ACQUIRE(...) \
  COP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the listed capabilities (deadlock
/// prevention for non-reentrant locks).
#define COP_EXCLUDES(...) COP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the calling thread already holds `x` in a way the
/// analysis cannot see (e.g. handed over through a queue).
#define COP_ASSERT_CAPABILITY(x) \
  COP_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define COP_RETURN_CAPABILITY(x) COP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline cannot be expressed.
#define COP_NO_THREAD_SAFETY_ANALYSIS \
  COP_THREAD_ANNOTATION(no_thread_safety_analysis)
