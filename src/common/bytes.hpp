// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace copbft {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends the raw characters of `src` to `dst`.
inline void append(Bytes& dst, std::string_view src) {
  const auto* p = reinterpret_cast<const Byte*>(src.data());
  dst.insert(dst.end(), p, p + src.size());
}

/// Builds a byte vector from a string literal / view.
inline Bytes to_bytes(std::string_view s) {
  Bytes out;
  append(out, s);
  return out;
}

/// Interprets a byte range as text (for diagnostics only).
inline std::string to_string(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

inline bool equal(ByteSpan a, ByteSpan b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace copbft
