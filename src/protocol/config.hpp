// Static configuration of the replication group and protocol parameters.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "protocol/adversary.hpp"
#include "protocol/types.hpp"

namespace copbft::protocol {

struct ProtocolConfig {
  /// Number of replicas N (>= 3f + 1).
  std::uint32_t num_replicas = 4;
  /// Tolerated Byzantine faults f.
  std::uint32_t max_faulty = 1;

  /// A checkpoint is taken every this many sequence numbers (paper: 1000).
  SeqNum checkpoint_interval = 1000;
  /// Watermark window: instances may run in (stable, stable + window].
  /// Also bounds how far pillars may drift apart (paper §4.2.2).
  SeqNum window = 2000;

  /// Request batching (paper evaluates both settings).
  bool batching = true;
  /// Maximum requests per consensus instance when batching.
  std::uint32_t max_batch = 200;

  /// Maximum own proposals in flight (proposed, not yet committed).
  /// 0 = bounded only by the watermark window (multi-instance logic, as in
  /// COP/TOP); 1 = single-instance logic (the BFT-SMaRt baseline, which
  /// can only scale via batching, paper §3.2).
  std::uint32_t max_active_proposals = 0;

  LeaderScheme leader_scheme = LeaderScheme::kFixed;
  /// Number of pillars NP (1 for TOP/SMaRt); needed by the rotating
  /// leader scheme so rotation and partitioning stay coordinated.
  std::uint32_t num_pillars = 1;

  /// Follower suspicion timeout before initiating a view change, in
  /// microseconds of host time (real or simulated).
  std::uint64_t view_change_timeout_us = 2'000'000;

  /// Stalled instances retransmit this replica's protocol messages (and
  /// fetch missed proposals) after this long without progress; liveness
  /// under message loss. 0 disables retransmission.
  std::uint64_t retransmit_interval_us = 200'000;

  /// Byzantine behaviour injection for fault campaigns (scenario engine,
  /// adversarial tests). Inert by default; only the replica named in it
  /// acts on it. See adversary.hpp.
  AdversaryConfig adversary;

  std::uint32_t quorum() const { return 2 * max_faulty + 1; }
  std::uint32_t weak_quorum() const { return max_faulty + 1; }

  void validate() const {
    if (num_replicas < 3 * max_faulty + 1)
      throw std::invalid_argument("need N >= 3f + 1 replicas");
    if (checkpoint_interval == 0 || window < checkpoint_interval)
      throw std::invalid_argument("window must cover >= 1 checkpoint interval");
    if (max_batch == 0) throw std::invalid_argument("max_batch must be > 0");
    if (num_pillars == 0) throw std::invalid_argument("need >= 1 pillar");
  }

  /// Leader replica for instance `seq` in `view` (paper §4.3.2).
  ReplicaId leader_for(ViewId view, SeqNum seq) const {
    switch (leader_scheme) {
      case LeaderScheme::kFixed:
        return static_cast<ReplicaId>(view % num_replicas);
      case LeaderScheme::kRotating:
        return static_cast<ReplicaId>((seq / num_pillars + view) %
                                      num_replicas);
    }
    return 0;
  }
};

}  // namespace copbft::protocol
