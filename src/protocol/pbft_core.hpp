// Sans-IO PBFT protocol core.
//
// One PbftCore instance drives the consensus protocol for one *slice* of
// the sequence-number space (offset + stride). A classic replica uses the
// trivial slice {0,1}; a COP pillar p of NP uses {p, NP}, which realizes
// the paper's partitioned, multiplied protocol logic (§4.2.1) without any
// change to the protocol itself.
//
// The core is single-threaded by construction: the host serializes all
// calls. It performs *in-order* verification — messages are verified via
// the MessageVerifier only at the moment the protocol needs them, so
// redundant messages (votes beyond quorum, duplicates, stale views) are
// never verified (§3.2). Hosts with out-of-order verification pre-verify
// and set IncomingMessage::pre_verified.
//
// All outputs are Effects (see effects.hpp); outgoing messages carry no
// authenticator — the host attaches it (in place, or in auth threads).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "protocol/config.hpp"
#include "protocol/effects.hpp"
#include "protocol/verifier.hpp"

namespace copbft::protocol {

/// Counters exposed for tests, ablations and the simulator's cost model.
struct CoreStats {
  std::uint64_t proposals = 0;
  std::uint64_t noop_proposals = 0;
  std::uint64_t requests_proposed = 0;
  std::uint64_t instances_delivered = 0;
  std::uint64_t requests_delivered = 0;
  /// Replica-message authenticators actually verified.
  std::uint64_t macs_verified = 0;
  /// Replica messages consumed without verification because the protocol
  /// did not need them (the in-order efficiency win) ...
  std::uint64_t verifications_skipped = 0;
  /// ... or because the host verified them out-of-order already.
  std::uint64_t pre_verified = 0;
  /// Client-request authenticators verified / skipped via the
  /// verified-request cache.
  std::uint64_t request_macs_verified = 0;
  std::uint64_t request_verifications_skipped = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t invalid_dropped = 0;
  /// Messages held because they arrived at most one checkpoint interval
  /// above our watermark window (peer's stable checkpoint led ours);
  /// replayed when the window slides instead of being dropped.
  std::uint64_t over_window_deferred = 0;
  /// Over-window messages dropped because the holding pen was full.
  std::uint64_t over_window_dropped = 0;
  std::uint64_t view_changes_started = 0;
  std::uint64_t view_changes_completed = 0;
  std::uint64_t checkpoints_stable = 0;
  /// StateTransferNeeded effects emitted (rate-limited laggard detection).
  std::uint64_t state_transfer_hints = 0;
  /// Injected misbehaviour (nonzero only on a configured adversary):
  /// conflicting pre-prepares sent / own votes suppressed.
  std::uint64_t adversary_equivocations = 0;
  std::uint64_t adversary_omissions = 0;

  CoreStats& operator+=(const CoreStats& other) {
    proposals += other.proposals;
    noop_proposals += other.noop_proposals;
    requests_proposed += other.requests_proposed;
    instances_delivered += other.instances_delivered;
    requests_delivered += other.requests_delivered;
    macs_verified += other.macs_verified;
    verifications_skipped += other.verifications_skipped;
    pre_verified += other.pre_verified;
    request_macs_verified += other.request_macs_verified;
    request_verifications_skipped += other.request_verifications_skipped;
    duplicates_dropped += other.duplicates_dropped;
    invalid_dropped += other.invalid_dropped;
    view_changes_started += other.view_changes_started;
    view_changes_completed += other.view_changes_completed;
    checkpoints_stable += other.checkpoints_stable;
    state_transfer_hints += other.state_transfer_hints;
    adversary_equivocations += other.adversary_equivocations;
    adversary_omissions += other.adversary_omissions;
    return *this;
  }
};

class PbftCore {
 public:
  PbftCore(ProtocolConfig config, ReplicaId self, SeqSlice slice,
           MessageVerifier& verifier,
           const crypto::CryptoProvider& crypto);

  // ---- inputs (host serializes all calls) ------------------------------

  /// Client request from the host's client management. `verified` = the
  /// host already checked the client MAC; otherwise the core verifies
  /// in place.
  void on_request(Request req, std::uint64_t now_us, bool verified = false);

  /// Protocol message from a peer replica.
  void on_message(IncomingMessage im, std::uint64_t now_us);

  /// Execution stage reached checkpoint sequence `seq` with state digest
  /// `digest` and this core owns the checkpoint agreement (paper §4.2.2).
  void start_checkpoint(SeqNum seq, const crypto::Digest& digest,
                        std::uint64_t now_us);

  /// Stability reached by a sibling pillar's checkpoint agreement;
  /// truncates the log and slides the window without re-agreeing.
  void note_checkpoint_stable(SeqNum seq, const crypto::Digest& digest);

  /// Execution stage is starved waiting for sequence numbers of this slice
  /// up to `seq`; propose pending requests and fill the rest with no-op
  /// instances if this replica currently leads them (paper §4.2.1).
  /// `frontier` is the execution stage's next needed sequence number (0 =
  /// unknown): if it sits at or below this core's stable checkpoint, the
  /// needed certificates were already truncated cluster-wide and only a
  /// state transfer can recover — a StateTransferNeeded effect is emitted.
  void fill_gap_upto(SeqNum seq, std::uint64_t now_us, SeqNum frontier = 0);

  /// After a checkpoint install slid the window: (re-)fetch the proposals
  /// for this slice's still-open in-window sequence numbers up to `upto`
  /// so the tail above the restored checkpoint can be ordered.
  void fetch_missing_upto(SeqNum upto, std::uint64_t now_us);

  /// Drives timeouts (view change suspicion). Hosts call this at a coarse
  /// period; `now_us` is host time (real or simulated).
  void tick(std::uint64_t now_us);

  // ---- outputs ----------------------------------------------------------

  std::vector<Effect>& effects() { return effects_; }
  std::vector<Effect> take_effects() {
    std::vector<Effect> out;
    out.swap(effects_);
    return out;
  }

  // ---- introspection ----------------------------------------------------

  ViewId view() const { return view_; }
  bool in_view_change() const { return view_changing_; }
  SeqNum stable_seq() const { return stable_seq_; }
  /// Next sequence number this core would propose.
  SeqNum next_proposal_seq() const { return slice_.at(next_index_); }
  std::size_t pending_requests() const { return pending_.size(); }
  std::size_t open_instances() const { return instances_.size(); }
  const CoreStats& stats() const { return stats_; }
  const ProtocolConfig& config() const { return config_; }
  ReplicaId self() const { return self_; }
  const SeqSlice& slice() const { return slice_; }

 private:
  struct Instance {
    SeqNum seq = 0;
    ViewId view = 0;        ///< View the accepted pre-prepare belongs to.
    ReplicaId proposer = 0; ///< Whose pre-prepare authority; excluded from
                            ///< the prepare quorum.
    bool have_pre_prepare = false;
    crypto::Digest digest;
    std::shared_ptr<const std::vector<Request>> requests;
    std::set<ReplicaId> prepares;
    std::set<ReplicaId> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
    bool delivered = false;
    /// Last time this instance made progress (for retransmission).
    std::uint64_t last_activity_us = 0;
    /// Votes that arrived before the pre-prepare; verified lazily once the
    /// digest is known.
    std::vector<IncomingMessage> deferred;
  };

  struct CheckpointState {
    std::map<ReplicaId, crypto::Digest> votes;  ///< verified votes
    std::vector<IncomingMessage> deferred;      ///< not yet needed/verified
    bool have_own = false;
    bool stable = false;
    std::uint64_t last_activity_us = 0;
  };

  // message handlers
  void handle_pre_prepare(IncomingMessage im);
  void handle_vote(IncomingMessage im);  // Prepare / Commit
  void handle_checkpoint(IncomingMessage im);
  void handle_view_change(IncomingMessage im);
  void handle_new_view(IncomingMessage im);
  void handle_fetch(IncomingMessage im);

  /// Re-emits this replica's messages for instances/checkpoints that made
  /// no progress for retransmit_interval_us (liveness under loss).
  void retransmit_stalled();

  // normal-case machinery
  bool accept_pre_prepare(const PrePrepare& pp, ReplicaId proposer,
                          bool nested_pre_verified);
  void count_vote(Instance& inst, MsgType type, ReplicaId from,
                  const crypto::Digest& digest);
  void process_deferred(Instance& inst);
  void evaluate(Instance& inst);
  void deliver(Instance& inst);
  Instance& instance_at(SeqNum seq);

  // proposing
  void advance_next_index();
  void maybe_propose();
  void propose_batch(std::vector<Request> batch);
  std::vector<Request> collect_batch(std::uint32_t limit);
  std::size_t own_active_proposals() const;

  // checkpoints
  void evaluate_checkpoint(SeqNum seq, CheckpointState& state);
  void make_stable(SeqNum seq, const crypto::Digest& digest, bool emit);

  // view change
  void initiate_view_change(ViewId target);
  void evaluate_view_change(ViewId target);
  void broadcast_new_view(ViewId target);
  void apply_new_view(const NewView& nv);
  void rebuild_ordered_keys();
  ReplicaId coordinator_of(ViewId view) const {
    return static_cast<ReplicaId>(view % config_.num_replicas);
  }

  // verification helpers (count stats; in-order policy lives here)
  bool verify_now(const IncomingMessage& im, crypto::KeyNodeId sender);
  bool verify_request_now(const Request& req);

  bool in_window(SeqNum seq) const {
    return seq > stable_seq_ && seq <= stable_seq_ + config_.window;
  }
  /// An instance one checkpoint interval (at most) above the window: the
  /// sender's stable checkpoint legitimately leads ours by one round, so
  /// the message is deferred until our window slides, not dropped.
  bool just_over_window(SeqNum seq) const {
    return seq > stable_seq_ + config_.window &&
           seq <= stable_seq_ + config_.window + config_.checkpoint_interval;
  }
  /// Parks an over-window message for replay in make_stable. Returns
  /// false (and counts a drop) when the pen is full.
  bool defer_over_window(IncomingMessage im);
  /// Emits a rate-limited StateTransferNeeded for evidence at `observed`.
  void hint_state_transfer(SeqNum observed);
  void note_progress() { last_progress_us_ = now_us_; }
  bool has_outstanding_work() const;

  /// Funnel for all outgoing effects. On a configured adversary this is
  /// where selective vote omission happens (adversary.hpp); everywhere
  /// else it is a plain push_back.
  void emit(Effect e);
  /// True when this core's replica is the configured adversary and the
  /// fault window is open right now.
  bool adversary_active() const {
    return config_.adversary.applies_to(self_, now_us_);
  }
  /// Equivocation hook: broadcast the real pre-prepare to one half of the
  /// peers and a conflicting well-formed no-op pre-prepare to the other.
  void equivocate_pre_prepare(PrePrepare real);

  const ProtocolConfig config_;
  const ReplicaId self_;
  const SeqSlice slice_;
  MessageVerifier& verifier_;
  const crypto::CryptoProvider& crypto_;

  ViewId view_ = 0;
  bool view_changing_ = false;
  ViewId target_view_ = 0;
  std::map<ViewId, std::map<ReplicaId, ViewChange>> vc_msgs_;
  std::set<ViewId> new_view_sent_;

  SeqNum stable_seq_ = 0;  ///< genesis: everything <= 0 is stable
  crypto::Digest stable_digest_;
  SeqNum next_index_ = 0;  ///< local instance counter i; seq = slice.at(i)

  std::map<SeqNum, Instance> instances_;
  std::map<SeqNum, CheckpointState> checkpoints_;

  std::deque<Request> pending_;
  /// Over-window holding pen (just_over_window): replayed on window
  /// slide, cleared on view change. Bounded by kMaxOverWindowDeferred.
  std::vector<IncomingMessage> over_window_pen_;
  // COPLINT(allow:det-unordered-member: lookup-only dedup set; never iterated — proposal order comes from pending_, a deque)
  std::unordered_set<std::uint64_t> pending_keys_;
  /// Requests already assigned to an instance (pre-prepare seen); prevents
  /// re-proposing. Cleared per instance at checkpoint GC.
  // COPLINT(allow:det-unordered-member: lookup-only membership set (contains/insert/erase); never iterated)
  std::unordered_set<std::uint64_t> ordered_keys_;
  /// Requests whose client MAC this replica has already checked (direct
  /// receipt); lets followers skip re-verifying them inside proposals.
  // COPLINT(allow:det-unordered-member: lookup-only membership set (contains/insert/erase); never iterated)
  std::unordered_set<std::uint64_t> verified_keys_;

  std::uint64_t now_us_ = 0;
  std::uint64_t last_progress_us_ = 0;
  std::uint64_t last_transfer_hint_us_ = 0;

  std::vector<Effect> effects_;
  CoreStats stats_;
};

}  // namespace copbft::protocol
