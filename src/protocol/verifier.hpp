// Message verification seam between the protocol core and its host.
//
// The core performs *in-order* verification: it asks the verifier only when
// a message is actually needed to make progress (paper §3.2). Hosts that
// implement *out-of-order* verification (the BFT-SMaRt baseline) verify
// before on_message() and mark the message pre-verified, in which case the
// core never calls back.
#pragma once

#include "crypto/provider.hpp"
#include "protocol/messages.hpp"

namespace copbft::protocol {

/// A message as handed to the core by its host.
struct IncomingMessage {
  Message msg;
  /// Full encoded frame when available (runtime); may be empty when the
  /// host works with parsed messages only (tests, simulator).
  Bytes raw;
  /// Length of the authenticated prefix of `raw`.
  std::size_t body_size = 0;
  /// Set by out-of-order hosts: authenticator already checked.
  bool pre_verified = false;
};

class MessageVerifier {
 public:
  virtual ~MessageVerifier() = default;

  /// Checks the top-level authenticator of `im` against `claimed_sender`.
  virtual bool verify(const IncomingMessage& im,
                      crypto::KeyNodeId claimed_sender) = 0;

  /// Checks a client request's authenticator (possibly nested inside a
  /// proposal, where no raw frame for the request exists).
  virtual bool verify_request(const Request& req) = 0;
};

/// Verifier over a CryptoProvider; re-encodes the authenticated part when
/// no raw frame is available.
class CryptoVerifier : public MessageVerifier {
 public:
  /// `self` is the node id MAC entries are addressed to.
  CryptoVerifier(const crypto::CryptoProvider& crypto, crypto::KeyNodeId self)
      : crypto_(crypto), self_(self) {}

  bool verify(const IncomingMessage& im,
              crypto::KeyNodeId claimed_sender) override {
    if (claimed_sender == kUnknownNode) return false;
    const auto& auth = authenticator_of(im.msg);
    if (!im.raw.empty()) {
      ByteSpan body{im.raw.data(), im.body_size};
      return auth.verify(crypto_, claimed_sender, self_, body);
    }
    Bytes body = encode_message(im.msg);
    body.resize(authenticated_size(im.msg));
    return auth.verify(crypto_, claimed_sender, self_, body);
  }

  bool verify_request(const Request& req) override {
    Bytes body = request_authenticated_bytes(req);
    return req.auth.verify(crypto_, client_node(req.client), self_, body);
  }

 private:
  const crypto::CryptoProvider& crypto_;
  crypto::KeyNodeId self_;
};

/// Accepts everything; for tests and for simulator configurations where
/// verification cost is accounted separately.
class AcceptAllVerifier : public MessageVerifier {
 public:
  bool verify(const IncomingMessage&, crypto::KeyNodeId) override {
    return true;
  }
  bool verify_request(const Request&) override { return true; }
};

}  // namespace copbft::protocol
