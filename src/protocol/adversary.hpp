// Byzantine adversary configuration for fault-campaign scenarios.
//
// A single replica of the group can be configured to misbehave in
// controlled, protocol-aware ways. The hooks live inside PbftCore — the
// one place every host (COP pillar, TOP/SMaRt logic stage, the simulator)
// funnels its protocol traffic through — so the same adversary drives both
// the deterministic scenario engine (sim/scenario.hpp) and threaded
// cluster tests. Correct replicas never read this struct; the adversary
// model is "one compromised replica runs modified software", not "the
// network rewrites messages".
//
// Supported behaviours (paper-adjacent attacks on parallelized consensus;
// cf. FnF-BFT's Byzantine-leader analysis):
//   * equivocation — as proposer, send conflicting pre-prepares for the
//     same (view, seq) to disjoint peer sets: the real batch to one half,
//     a well-formed no-op batch to the other. Both variants carry
//     internally consistent digests, so followers accept them and the
//     conflict surfaces only at the vote/commit layer.
//   * selective omission — drop own PREPARE/COMMIT votes addressed to a
//     chosen set of peers (beyond the benign kOmitOne reply policy).
//
// Both behaviours can be time-bounded so campaigns can measure recovery
// after the fault clears.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/types.hpp"

namespace copbft::protocol {

struct AdversaryConfig {
  static constexpr ReplicaId kNoAdversary = UINT32_MAX;

  /// The compromised replica; kNoAdversary disables every behaviour.
  ReplicaId replica = kNoAdversary;

  /// Equivocate own proposals (conflicting pre-prepares, disjoint halves).
  bool equivocate = false;

  /// Omit own Prepare/Commit votes to these peers.
  std::vector<ReplicaId> omit_votes_to;

  /// Active interval in host/virtual microseconds; until_us = 0 means
  /// "for the whole run".
  std::uint64_t from_us = 0;
  std::uint64_t until_us = 0;

  bool applies_to(ReplicaId self, std::uint64_t now_us) const {
    return replica == self && now_us >= from_us &&
           (until_us == 0 || now_us < until_us);
  }

  bool omits_to(ReplicaId peer) const {
    for (ReplicaId r : omit_votes_to)
      if (r == peer) return true;
    return false;
  }
};

}  // namespace copbft::protocol
