#include "protocol/pbft_core.hpp"

#include <algorithm>
#include <cassert>

#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "common/trace.hpp"

namespace copbft::protocol {
namespace {

/// Lifecycle trace helper: the pillar index is the slice offset.
void trace_instance(trace::Point point, ReplicaId self, const SeqSlice& slice,
                    SeqNum seq, ViewId view) {
  trace::point(point, self, static_cast<std::uint32_t>(slice.offset), seq,
               view, /*client=*/0, /*request=*/0);
}

}  // namespace

PbftCore::PbftCore(ProtocolConfig config, ReplicaId self, SeqSlice slice,
                   MessageVerifier& verifier,
                   const crypto::CryptoProvider& crypto)
    : config_(config),
      self_(self),
      slice_(slice),
      verifier_(verifier),
      crypto_(crypto) {
  config_.validate();
  // Sequence number 0 is the genesis marker; real instances start at 1.
  // A slice's first proposable member is its smallest member > 0.
  next_index_ = (slice_.offset == 0) ? 1 : 0;
}

// --------------------------------------------------------------------------
// verification helpers

bool PbftCore::verify_now(const IncomingMessage& im,
                          crypto::KeyNodeId sender) {
  if (im.pre_verified) {
    ++stats_.pre_verified;
    return true;
  }
  ++stats_.macs_verified;
  return verifier_.verify(im, sender);
}

bool PbftCore::verify_request_now(const Request& req) {
  if (verified_keys_.contains(req.key())) {
    ++stats_.request_verifications_skipped;
    return true;
  }
  ++stats_.request_macs_verified;
  if (!verifier_.verify_request(req)) return false;
  verified_keys_.insert(req.key());
  return true;
}

// --------------------------------------------------------------------------
// effect funnel / adversary hooks
//
// Every outgoing effect passes through emit(). For a correct replica that
// is a plain push_back; on the configured adversary it is where selective
// vote omission happens: own PREPAREs/COMMITs addressed to (or broadcast
// towards) the omitted peers are silently dropped. Omission is restricted
// to votes — proposals, checkpoints and view-change traffic still flow, so
// the attack targets exactly the quorum formation the COP slices rely on.

void PbftCore::emit(Effect e) {
  if (adversary_active() && !config_.adversary.omit_votes_to.empty()) {
    const AdversaryConfig& adv = config_.adversary;
    auto is_vote = [](const Message& msg) {
      MsgType t = type_of(msg);
      return t == MsgType::kPrepare || t == MsgType::kCommit;
    };
    if (auto* send = std::get_if<SendTo>(&e)) {
      if (is_vote(send->msg) && adv.omits_to(send->to)) {
        ++stats_.adversary_omissions;
        return;
      }
    } else if (auto* bcast = std::get_if<Broadcast>(&e)) {
      if (is_vote(bcast->msg)) {
        // Fan the broadcast out ourselves so individual recipients can be
        // skipped; hosts treat Broadcast as "send to every other replica".
        for (ReplicaId r = 0; r < config_.num_replicas; ++r) {
          if (r == self_) continue;
          if (adv.omits_to(r)) {
            ++stats_.adversary_omissions;
            continue;
          }
          effects_.push_back(SendTo{r, bcast->msg});
        }
        return;
      }
    }
  }
  effects_.push_back(std::move(e));
}

void PbftCore::equivocate_pre_prepare(PrePrepare real) {
  // Conflicting, well-formed proposal for the same (view, seq): a no-op
  // batch whose digest followers can re-derive, so both variants pass
  // accept_pre_prepare and the conflict only surfaces in the vote phase.
  PrePrepare decoy;
  decoy.view = real.view;
  decoy.seq = real.seq;
  decoy.requests = {};
  decoy.digest = batch_digest(crypto_, decoy.requests);

  ++stats_.adversary_equivocations;
  // Disjoint halves: low peer ids get the real batch, high ids the decoy.
  std::vector<ReplicaId> peers;
  for (ReplicaId r = 0; r < config_.num_replicas; ++r)
    if (r != self_) peers.push_back(r);
  std::size_t split = peers.size() / 2;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const PrePrepare& variant = (i < split) ? real : decoy;
    emit(SendTo{peers[i], variant});
  }
}

// --------------------------------------------------------------------------
// inputs

void PbftCore::on_request(Request req, std::uint64_t now_us, bool verified) {
  now_us_ = now_us;
  std::uint64_t key = req.key();
  if (pending_keys_.contains(key) || ordered_keys_.contains(key)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (verified) {
    verified_keys_.insert(key);
  } else if (!verify_request_now(req)) {
    ++stats_.invalid_dropped;
    return;
  }
  // Arrival starts the progress timer if we were idle.
  if (!has_outstanding_work()) note_progress();
  pending_keys_.insert(key);
  pending_.push_back(std::move(req));
  maybe_propose();
}

void PbftCore::on_message(IncomingMessage im, std::uint64_t now_us) {
  now_us_ = now_us;
  switch (type_of(im.msg)) {
    case MsgType::kPrePrepare:
      handle_pre_prepare(std::move(im));
      break;
    case MsgType::kPrepare:
    case MsgType::kCommit:
      handle_vote(std::move(im));
      break;
    case MsgType::kCheckpoint:
      handle_checkpoint(std::move(im));
      break;
    case MsgType::kViewChange:
      handle_view_change(std::move(im));
      break;
    case MsgType::kNewView:
      handle_new_view(std::move(im));
      break;
    case MsgType::kFetch:
      handle_fetch(std::move(im));
      break;
    default:
      // Requests enter via on_request; replies never reach a core.
      ++stats_.invalid_dropped;
      break;
  }
}

// --------------------------------------------------------------------------
// normal case: pre-prepare

void PbftCore::handle_pre_prepare(IncomingMessage im) {
  const PrePrepare& pp = std::get<PrePrepare>(im.msg);
  if (view_changing_ || pp.view != view_ || !slice_.contains(pp.seq) ||
      !in_window(pp.seq)) {
    if (!view_changing_ && pp.view == view_ && slice_.contains(pp.seq) &&
        pp.seq > stable_seq_ + config_.window) {
      // One interval over the window means the proposer's stable
      // checkpoint leads ours by a round that is already in flight:
      // park the proposal for replay once our window slides (dropping
      // it would stall the instance until retransmission). Further out
      // than that, we are stranded.
      if (just_over_window(pp.seq) && defer_over_window(std::move(im)))
        return;
      hint_state_transfer(pp.seq);
    }
    ++stats_.verifications_skipped;
    return;
  }
  ReplicaId proposer = config_.leader_for(pp.view, pp.seq);
  if (proposer == self_) {
    // Someone echoing our own proposal (or forging); never needed.
    ++stats_.verifications_skipped;
    return;
  }
  Instance& inst = instance_at(pp.seq);
  if (inst.have_pre_prepare) {
    // Already have a proposal for this (view, seq); a conflicting one can
    // only come from a faulty leader and a matching one is redundant.
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(proposer))) {
    ++stats_.invalid_dropped;
    return;
  }
  if (!accept_pre_prepare(pp, proposer, im.pre_verified)) {
    ++stats_.invalid_dropped;
    return;
  }

  // Follower: vote.
  Instance& accepted = instances_.at(pp.seq);
  if (!accepted.sent_prepare) {
    accepted.sent_prepare = true;
    Prepare prep{pp.view, pp.seq, accepted.digest, self_, {}};
    accepted.prepares.insert(self_);
    emit(Broadcast{prep});
  }
  process_deferred(accepted);
  evaluate(accepted);
  // Under leader rotation, accepting this slot may make the next slot —
  // ours — proposable.
  maybe_propose();
}

bool PbftCore::accept_pre_prepare(const PrePrepare& pp, ReplicaId proposer,
                                  bool nested_pre_verified) {
  // Content integrity: digest must cover the carried batch.
  if (batch_digest(crypto_, pp.requests) != pp.digest) return false;
  // Client authentication of every carried request (skipped for requests
  // this replica already verified on direct receipt, and for hosts that
  // verified the whole frame out of order).
  if (!nested_pre_verified) {
    for (const Request& req : pp.requests)
      if (!verify_request_now(req)) return false;
  }

  Instance& inst = instance_at(pp.seq);
  inst.view = pp.view;
  inst.proposer = proposer;
  inst.have_pre_prepare = true;
  inst.digest = pp.digest;
  inst.requests = std::make_shared<const std::vector<Request>>(pp.requests);
  inst.last_activity_us = now_us_;
  trace_instance(trace::Point::kPrePrepare, self_, slice_, pp.seq, pp.view);

  // These requests now have a place in the total order; drop our pending
  // copies and remember them as ordered.
  for (const Request& req : pp.requests) {
    ordered_keys_.insert(req.key());
    pending_keys_.erase(req.key());
  }
  if (!pending_.empty()) {
    std::erase_if(pending_, [&](const Request& r) {
      return ordered_keys_.contains(r.key());
    });
  }
  return true;
}

// --------------------------------------------------------------------------
// normal case: prepare / commit votes

namespace {

struct VoteView {
  MsgType type;
  ViewId view;
  SeqNum seq;
  crypto::Digest digest;
  ReplicaId replica;
};

VoteView vote_view(const Message& msg) {
  if (const auto* p = std::get_if<Prepare>(&msg))
    return {MsgType::kPrepare, p->view, p->seq, p->digest, p->replica};
  const auto& c = std::get<Commit>(msg);
  return {MsgType::kCommit, c.view, c.seq, c.digest, c.replica};
}

}  // namespace

void PbftCore::handle_vote(IncomingMessage im) {
  VoteView v = vote_view(im.msg);
  if (view_changing_ || v.view != view_ || !slice_.contains(v.seq) ||
      !in_window(v.seq) || v.replica == self_ ||
      v.replica >= config_.num_replicas) {
    if (!view_changing_ && v.view == view_ && slice_.contains(v.seq) &&
        v.replica != self_ && v.replica < config_.num_replicas &&
        v.seq > stable_seq_ + config_.window) {
      // See handle_pre_prepare: one interval of skew is normal traffic.
      if (just_over_window(v.seq) && defer_over_window(std::move(im)))
        return;
      hint_state_transfer(v.seq);
    }
    ++stats_.verifications_skipped;
    return;
  }
  Instance& inst = instance_at(v.seq);
  if (inst.delivered) {
    // A vote for an instance we already completed signals a lagging peer
    // (e.g. it lost our commit): help it with a rate-limited re-send.
    if (config_.retransmit_interval_us != 0 && inst.sent_commit &&
        now_us_ >= inst.last_activity_us + config_.retransmit_interval_us) {
      inst.last_activity_us = now_us_;
      emit(SendTo{v.replica, Commit{inst.view, v.seq, inst.digest, self_, {}}});
    }
    ++stats_.verifications_skipped;
    return;
  }
  if (!inst.have_pre_prepare) {
    // Cannot judge relevance yet (digest unknown): defer, verify later and
    // only if still needed. Bounded: at most ~2 messages per peer.
    if (inst.deferred.size() < 4 * config_.num_replicas)
      inst.deferred.push_back(std::move(im));
    return;
  }
  if (v.digest != inst.digest) {
    ++stats_.invalid_dropped;
    return;
  }

  // In-order verification: count only if this vote can still contribute.
  bool needed = (v.type == MsgType::kPrepare)
                    ? (!inst.prepared && v.replica != inst.proposer &&
                       !inst.prepares.contains(v.replica))
                    : (!inst.committed && !inst.commits.contains(v.replica));
  if (!needed) {
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(v.replica))) {
    ++stats_.invalid_dropped;
    return;
  }
  count_vote(inst, v.type, v.replica, v.digest);
  evaluate(inst);
}

void PbftCore::count_vote(Instance& inst, MsgType type, ReplicaId from,
                          const crypto::Digest& digest) {
  if (digest != inst.digest) return;
  inst.last_activity_us = now_us_;
  if (type == MsgType::kPrepare) {
    if (from != inst.proposer) inst.prepares.insert(from);
  } else {
    inst.commits.insert(from);
  }
}

void PbftCore::process_deferred(Instance& inst) {
  std::vector<IncomingMessage> deferred;
  deferred.swap(inst.deferred);
  for (auto& im : deferred) {
    VoteView v = vote_view(im.msg);
    if (v.view != inst.view) {
      ++stats_.verifications_skipped;
      continue;
    }
    bool needed = (v.type == MsgType::kPrepare)
                      ? (!inst.prepared && v.replica != inst.proposer &&
                         !inst.prepares.contains(v.replica))
                      : (!inst.committed && !inst.commits.contains(v.replica));
    if (!needed || v.digest != inst.digest) {
      ++stats_.verifications_skipped;
      continue;
    }
    if (!verify_now(im, replica_node(v.replica))) {
      ++stats_.invalid_dropped;
      continue;
    }
    count_vote(inst, v.type, v.replica, v.digest);
    evaluate(inst);
  }
}

void PbftCore::evaluate(Instance& inst) {
  if (!inst.have_pre_prepare) return;
  const std::uint32_t two_f = 2 * config_.max_faulty;

  if (!inst.prepared && inst.prepares.size() >= two_f) {
    inst.prepared = true;
    trace_instance(trace::Point::kPrepare, self_, slice_, inst.seq, inst.view);
    if (!inst.sent_commit) {
      inst.sent_commit = true;
      Commit commit{inst.view, inst.seq, inst.digest, self_, {}};
      inst.commits.insert(self_);
      emit(Broadcast{commit});
    }
  }
  // A full 2f+1 commit certificate alone proves that f+1 correct replicas
  // prepared this exact batch, so delivery is safe even if this replica
  // never assembled its own prepare quorum — which is exactly the state a
  // recovering laggard is in: peers only re-send COMMITs for instances
  // they already delivered and garbage-collected their PREPAREs for.
  if (!inst.committed && inst.commits.size() >= config_.quorum()) {
    inst.committed = true;
    // Preserve the invariant "delivered => own COMMIT broadcast": a replica
    // that reaches the commit quorum before its prepare quorum must still
    // announce its commit, or peers that are one vote short of 2f+1 starve
    // once the prepares for this instance are checkpoint-truncated.
    if (!inst.sent_commit) {
      inst.sent_commit = true;
      Commit commit{inst.view, inst.seq, inst.digest, self_, {}};
      inst.commits.insert(self_);
      emit(Broadcast{commit});
    }
    deliver(inst);
  }
}

void PbftCore::deliver(Instance& inst) {
  if (inst.delivered) return;
  inst.delivered = true;
  trace_instance(trace::Point::kCommit, self_, slice_, inst.seq, inst.view);
  note_progress();
  ++stats_.instances_delivered;
  stats_.requests_delivered += inst.requests ? inst.requests->size() : 0;
  for (const Request& req : *inst.requests) verified_keys_.erase(req.key());
  emit(Deliver{inst.seq, inst.view, inst.requests});
  // A finished own proposal may free a slot under max_active_proposals.
  maybe_propose();
}

PbftCore::Instance& PbftCore::instance_at(SeqNum seq) {
  auto [it, inserted] = instances_.try_emplace(seq);
  if (inserted) {
    it->second.seq = seq;
    it->second.view = view_;
    it->second.proposer = config_.leader_for(view_, seq);
    it->second.last_activity_us = now_us_;
  }
  return it->second;
}

// --------------------------------------------------------------------------
// proposing

std::size_t PbftCore::own_active_proposals() const {
  std::size_t active = 0;
  for (const auto& [seq, inst] : instances_) {
    if (inst.have_pre_prepare && inst.proposer == self_ && !inst.delivered)
      ++active;
  }
  return active;
}

/// Advances the proposal index past every slot that already has an
/// accepted proposal (ours or, under rotation, a peer's). Never skips an
/// empty slot: jumping over one would leave a hole only its leader could
/// fill but whose index we would have abandoned.
void PbftCore::advance_next_index() {
  while (true) {
    auto it = instances_.find(slice_.at(next_index_));
    if (it == instances_.end() || !it->second.have_pre_prepare) return;
    ++next_index_;
  }
}

void PbftCore::maybe_propose() {
  if (view_changing_) return;
  while (!pending_.empty()) {
    advance_next_index();
    SeqNum seq = slice_.at(next_index_);
    if (config_.leader_for(view_, seq) != self_) return;
    if (!in_window(seq)) return;
    if (config_.max_active_proposals != 0 &&
        own_active_proposals() >= config_.max_active_proposals)
      return;
    std::uint32_t limit = config_.batching ? config_.max_batch : 1;
    std::vector<Request> batch = collect_batch(limit);
    if (batch.empty()) return;
    propose_batch(std::move(batch));
  }
}

std::vector<Request> PbftCore::collect_batch(std::uint32_t limit) {
  std::vector<Request> batch;
  while (batch.size() < limit && !pending_.empty()) {
    Request req = std::move(pending_.front());
    pending_.pop_front();
    pending_keys_.erase(req.key());
    if (ordered_keys_.contains(req.key())) {
      ++stats_.duplicates_dropped;
      continue;
    }
    batch.push_back(std::move(req));
  }
  return batch;
}

void PbftCore::propose_batch(std::vector<Request> batch) {
  SeqNum seq = slice_.at(next_index_);
  ++next_index_;
  ++stats_.proposals;
  if (batch.empty()) ++stats_.noop_proposals;
  stats_.requests_proposed += batch.size();

  PrePrepare pp;
  pp.view = view_;
  pp.seq = seq;
  pp.digest = batch_digest(crypto_, batch);
  pp.requests = std::move(batch);

  Instance& inst = instance_at(seq);
  inst.view = view_;
  inst.proposer = self_;
  inst.have_pre_prepare = true;
  inst.digest = pp.digest;
  inst.requests =
      std::make_shared<const std::vector<Request>>(pp.requests);
  for (const Request& req : *inst.requests) ordered_keys_.insert(req.key());
  trace_instance(trace::Point::kPrePrepare, self_, slice_, seq, view_);

  if (!pp.requests.empty() && adversary_active() && config_.adversary.equivocate)
    equivocate_pre_prepare(std::move(pp));
  else
    emit(Broadcast{std::move(pp)});
  process_deferred(inst);
  evaluate(inst);
}

void PbftCore::fill_gap_upto(SeqNum seq, std::uint64_t now_us,
                             SeqNum frontier) {
  now_us_ = now_us;
  if (view_changing_) return;
  // The execution stage still needs `frontier`, but everything at or below
  // our stable checkpoint was truncated cluster-wide (stability requires
  // 2f+1 votes, so every correct peer GC'd it too). No retransmission or
  // gap fill can produce those batches again — only a state transfer.
  if (frontier != 0 && frontier <= stable_seq_) {
    hint_state_transfer(stable_seq_);
    return;
  }
  SeqNum target = std::min(seq, stable_seq_ + config_.window);
  while (true) {
    advance_next_index();
    SeqNum next = slice_.at(next_index_);
    if (next > target) return;
    if (config_.leader_for(view_, next) != self_) {
      // Not ours to fill, and we must not jump over it: the leading
      // replica's execution stage observes the same gap and fills it.
      return;
    }
    std::vector<Request> batch =
        collect_batch(config_.batching ? config_.max_batch : 1);
    propose_batch(std::move(batch));  // empty batch => no-op instance
  }
}

void PbftCore::fetch_missing_upto(SeqNum upto, std::uint64_t now_us) {
  now_us_ = now_us;
  if (view_changing_) return;
  SeqNum target = std::min(upto, stable_seq_ + config_.window);
  for (SeqNum seq = slice_.next_at_or_after(stable_seq_ + 1); seq <= target;
       seq += slice_.stride) {
    Instance& inst = instance_at(seq);
    if (inst.have_pre_prepare) continue;
    if (inst.proposer == self_) continue;  // ours to propose, not to fetch
    inst.last_activity_us = now_us_;
    emit(SendTo{inst.proposer, Fetch{view_, seq, self_, {}}});
  }
}

bool PbftCore::defer_over_window(IncomingMessage im) {
  // One checkpoint interval of replica-message traffic at most: each
  // instance carries one pre-prepare plus two votes per peer.
  const std::size_t cap = static_cast<std::size_t>(
      config_.checkpoint_interval * (1 + 2 * (config_.num_replicas - 1)));
  if (over_window_pen_.size() >= cap) {
    ++stats_.over_window_dropped;
    return false;
  }
  ++stats_.over_window_deferred;
  over_window_pen_.push_back(std::move(im));
  return true;
}

void PbftCore::hint_state_transfer(SeqNum observed) {
  const std::uint64_t interval = config_.retransmit_interval_us != 0
                                     ? config_.retransmit_interval_us
                                     : 200'000;
  if (last_transfer_hint_us_ != 0 &&
      now_us_ < last_transfer_hint_us_ + interval)
    return;
  last_transfer_hint_us_ = now_us_;
  ++stats_.state_transfer_hints;
  emit(StateTransferNeeded{observed});
}

// --------------------------------------------------------------------------
// checkpoints

void PbftCore::start_checkpoint(SeqNum seq, const crypto::Digest& digest,
                                std::uint64_t now_us) {
  now_us_ = now_us;
  // Paper §4.2.2: hosts agree checkpoints only at interval boundaries; a
  // misaligned sequence number means the execution stage and the protocol
  // core disagree about where the windows are.
  COP_INVARIANT(seq != 0 && seq % config_.checkpoint_interval == 0,
                "checkpoint requested at seq %llu, not a multiple of the "
                "checkpoint interval %llu",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(config_.checkpoint_interval));
  if (seq <= stable_seq_) return;
  CheckpointState& state = checkpoints_[seq];
  if (state.have_own) return;
  state.have_own = true;
  state.last_activity_us = now_us_;
  state.votes[self_] = digest;
  emit(Broadcast{CheckpointMsg{seq, digest, self_, {}}});
  evaluate_checkpoint(seq, state);
}

void PbftCore::handle_checkpoint(IncomingMessage im) {
  const CheckpointMsg& cp = std::get<CheckpointMsg>(im.msg);
  if (cp.seq <= stable_seq_ || cp.replica == self_ ||
      cp.replica >= config_.num_replicas) {
    ++stats_.verifications_skipped;
    return;
  }
  // A checkpoint vote past our whole window means the voter's execution —
  // and, by the vote, the cluster's — outran everything we can still
  // order. Keep processing (votes may make us stable directly), but flag
  // the laggardness. Rate-limiting keeps this cheap.
  if (cp.seq > stable_seq_ + config_.window) hint_state_transfer(cp.seq);
  CheckpointState& state = checkpoints_[cp.seq];
  if (state.stable || state.votes.contains(cp.replica)) {
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(cp.replica))) {
    ++stats_.invalid_dropped;
    return;
  }
  state.votes[cp.replica] = cp.digest;
  state.last_activity_us = now_us_;
  evaluate_checkpoint(cp.seq, state);
}

void PbftCore::evaluate_checkpoint(SeqNum seq, CheckpointState& state) {
  if (state.stable) return;
  // Count matching digests; stability needs 2f+1 equal votes.
  std::map<crypto::Digest, std::uint32_t> tally;
  for (const auto& [replica, digest] : state.votes) ++tally[digest];
  for (const auto& [digest, count] : tally) {
    if (count >= config_.quorum()) {
      state.stable = true;
      ++stats_.checkpoints_stable;
      std::vector<ReplicaId> voters;
      voters.reserve(state.votes.size());
      for (const auto& [replica, d] : state.votes)
        if (d == digest) voters.push_back(replica);
      emit(CheckpointStable{seq, digest, std::move(voters)});
      make_stable(seq, digest, false);
      return;
    }
  }
}

void PbftCore::make_stable(SeqNum seq, const crypto::Digest& digest,
                           bool /*emit_effect*/) {
  if (seq <= stable_seq_) return;
  stable_seq_ = seq;
  stable_digest_ = digest;
  note_progress();

  // Garbage-collect everything at or below the stable point.
  for (auto it = instances_.begin();
       it != instances_.end() && it->first <= seq;) {
    if (it->second.requests)
      for (const Request& req : *it->second.requests)
        ordered_keys_.erase(req.key());
    it = instances_.erase(it);
  }
  for (auto it = checkpoints_.begin();
       it != checkpoints_.end() && it->first <= seq;)
    it = checkpoints_.erase(it);

  // Skip over sequence numbers that became stale while we were behind.
  SeqNum first_free = slice_.next_at_or_after(seq + 1);
  SeqNum min_index = (first_free - slice_.offset) / slice_.stride;
  next_index_ = std::max(next_index_, min_index);

  maybe_propose();  // the window slid forward

  // The slide may have brought parked over-window messages into range:
  // replay them through the normal dispatch. Anything still out of range
  // (or stale) parks again or drops in its handler.
  if (!over_window_pen_.empty()) {
    std::vector<IncomingMessage> replay;
    replay.swap(over_window_pen_);
    for (IncomingMessage& m : replay) on_message(std::move(m), now_us_);
  }
}

void PbftCore::note_checkpoint_stable(SeqNum seq,
                                      const crypto::Digest& digest) {
  // Stability notices originate from a sibling pillar's agreed checkpoint,
  // so they inherit the same interval alignment (paper §4.2.2).
  COP_INVARIANT(seq != 0 && seq % config_.checkpoint_interval == 0,
                "stability notice for seq %llu, not a multiple of the "
                "checkpoint interval %llu",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(config_.checkpoint_interval));
  make_stable(seq, digest, false);
}

// --------------------------------------------------------------------------
// view change

bool PbftCore::has_outstanding_work() const {
  if (!pending_.empty()) return true;
  for (const auto& [seq, inst] : instances_)
    if (inst.have_pre_prepare && !inst.delivered) return true;
  return false;
}

void PbftCore::tick(std::uint64_t now_us) {
  now_us_ = now_us;
  if (config_.retransmit_interval_us != 0 && !view_changing_)
    retransmit_stalled();
  if (config_.view_change_timeout_us == 0) return;  // disabled
  if (!has_outstanding_work()) {
    note_progress();
    return;
  }
  if (now_us_ >= last_progress_us_ + config_.view_change_timeout_us) {
    ViewId target = view_changing_ ? target_view_ + 1 : view_ + 1;
    initiate_view_change(target);
  }
}

void PbftCore::retransmit_stalled() {
  const std::uint64_t interval = config_.retransmit_interval_us;
  for (auto& [seq, inst] : instances_) {
    if (inst.delivered || !in_window(seq)) continue;
    if (now_us_ < inst.last_activity_us + interval) continue;
    inst.last_activity_us = now_us_;
    if (inst.have_pre_prepare) {
      if (inst.proposer == self_ && inst.requests) {
        PrePrepare pp;
        pp.view = inst.view;
        pp.seq = seq;
        pp.digest = inst.digest;
        pp.requests = *inst.requests;
        emit(Broadcast{std::move(pp)});
      }
      if (inst.sent_prepare)
        emit(Broadcast{Prepare{inst.view, seq, inst.digest, self_, {}}});
      if (inst.sent_commit)
        emit(Broadcast{Commit{inst.view, seq, inst.digest, self_, {}}});
    } else if (inst.proposer != self_) {
      // The proposal never arrived (whether or not votes did — after a
      // checkpoint install there may be none): ask its proposer.
      emit(SendTo{inst.proposer, Fetch{view_, seq, self_, {}}});
    }
  }
  for (auto& [seq, state] : checkpoints_) {
    if (state.stable || !state.have_own) continue;
    if (now_us_ < state.last_activity_us + interval) continue;
    state.last_activity_us = now_us_;
    emit(Broadcast{CheckpointMsg{seq, state.votes.at(self_), self_, {}}});
  }
}

void PbftCore::handle_fetch(IncomingMessage im) {
  const Fetch& fetch = std::get<Fetch>(im.msg);
  if (fetch.replica == self_ || fetch.replica >= config_.num_replicas ||
      !slice_.contains(fetch.seq)) {
    ++stats_.verifications_skipped;
    return;
  }
  auto it = instances_.find(fetch.seq);
  if (it == instances_.end() || !it->second.have_pre_prepare ||
      it->second.proposer != self_ || !it->second.requests) {
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(fetch.replica))) {
    ++stats_.invalid_dropped;
    return;
  }
  PrePrepare pp;
  pp.view = it->second.view;
  pp.seq = fetch.seq;
  pp.digest = it->second.digest;
  pp.requests = *it->second.requests;
  emit(SendTo{fetch.replica, std::move(pp)});
}

void PbftCore::initiate_view_change(ViewId target) {
  if (target <= view_) return;
  if (view_changing_ && target <= target_view_) return;
  view_changing_ = true;
  target_view_ = target;
  note_progress();
  ++stats_.view_changes_started;

  ViewChange vc;
  vc.new_view = target;
  vc.stable_seq = stable_seq_;
  vc.stable_digest = stable_digest_;
  vc.replica = self_;
  for (const auto& [seq, inst] : instances_) {
    if (!inst.prepared) continue;
    PreparedProof proof;
    proof.view = inst.view;
    proof.seq = seq;
    proof.digest = inst.digest;
    proof.requests = *inst.requests;
    vc.prepared.push_back(std::move(proof));
  }
  vc_msgs_[target][self_] = vc;
  emit(Broadcast{std::move(vc)});
  evaluate_view_change(target);
}

void PbftCore::handle_view_change(IncomingMessage im) {
  const ViewChange& vc = std::get<ViewChange>(im.msg);
  if (vc.new_view <= view_ || vc.replica == self_ ||
      vc.replica >= config_.num_replicas) {
    ++stats_.verifications_skipped;
    return;
  }
  auto& votes = vc_msgs_[vc.new_view];
  if (votes.contains(vc.replica)) {
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(vc.replica))) {
    ++stats_.invalid_dropped;
    return;
  }
  votes[vc.replica] = vc;

  // Liveness: join a view change supported by >= f+1 others even without a
  // local timeout (at least one of them is correct).
  if (!view_changing_ || target_view_ < vc.new_view) {
    if (votes.size() >= config_.weak_quorum())
      initiate_view_change(vc.new_view);
  }
  evaluate_view_change(vc.new_view);
}

void PbftCore::evaluate_view_change(ViewId target) {
  if (coordinator_of(target) != self_) return;
  if (new_view_sent_.contains(target)) return;
  auto it = vc_msgs_.find(target);
  if (it == vc_msgs_.end() || it->second.size() < config_.quorum()) return;
  new_view_sent_.insert(target);
  broadcast_new_view(target);
}

void PbftCore::broadcast_new_view(ViewId target) {
  const auto& votes = vc_msgs_.at(target);

  // The new starting point is the highest stable checkpoint any quorum
  // member reported; everything prepared above it is re-proposed, gaps in
  // this slice become no-ops.
  SeqNum base = stable_seq_;
  std::map<SeqNum, const PreparedProof*> best;
  for (const auto& [replica, vc] : votes) {
    base = std::max(base, vc.stable_seq);
    for (const auto& proof : vc.prepared) {
      auto [bit, inserted] = best.try_emplace(proof.seq, &proof);
      if (!inserted && proof.view > bit->second->view) bit->second = &proof;
    }
  }
  SeqNum top = base;
  for (const auto& [seq, proof] : best) top = std::max(top, seq);

  NewView nv;
  nv.view = target;
  nv.replica = self_;
  for (SeqNum seq = slice_.next_at_or_after(base + 1); seq <= top;
       seq += slice_.stride) {
    PrePrepare pp;
    pp.view = target;
    pp.seq = seq;
    auto bit = best.find(seq);
    if (bit != best.end()) {
      pp.requests = bit->second->requests;
      pp.digest = bit->second->digest;
    } else {
      pp.digest = batch_digest(crypto_, {});
    }
    nv.pre_prepares.push_back(std::move(pp));
  }
  emit(Broadcast{nv});
  apply_new_view(nv);
}

void PbftCore::handle_new_view(IncomingMessage im) {
  const NewView& nv = std::get<NewView>(im.msg);
  if (nv.view <= view_ || nv.replica != coordinator_of(nv.view)) {
    ++stats_.verifications_skipped;
    return;
  }
  if (!verify_now(im, replica_node(nv.replica))) {
    ++stats_.invalid_dropped;
    return;
  }
  apply_new_view(nv);
}

void PbftCore::apply_new_view(const NewView& nv) {
  view_ = nv.view;
  target_view_ = nv.view;
  view_changing_ = false;
  note_progress();
  ++stats_.view_changes_completed;
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(nv.view));
  over_window_pen_.clear();  // stale-view messages; peers will retransmit
  emit(ViewChanged{view_});

  const ReplicaId coordinator = nv.replica;
  SeqNum top = stable_seq_;

  for (const PrePrepare& pp : nv.pre_prepares) {
    top = std::max(top, pp.seq);
    if (pp.seq <= stable_seq_ || !slice_.contains(pp.seq)) continue;
    Instance& inst = instance_at(pp.seq);
    if (inst.delivered) {
      // Already executed here. PBFT safety guarantees any re-proposal
      // carries the same batch; just refresh the view bookkeeping.
      inst.view = nv.view;
      continue;
    }
    // (Re-)initialize the instance under the new view's authority.
    inst.view = nv.view;
    inst.proposer = coordinator;
    inst.have_pre_prepare = true;
    inst.digest = pp.digest;
    inst.requests = std::make_shared<const std::vector<Request>>(pp.requests);
    inst.prepares.clear();
    inst.commits.clear();
    inst.prepared = false;
    inst.committed = false;
    inst.sent_prepare = false;
    inst.sent_commit = false;
    inst.deferred.clear();

    for (const Request& req : pp.requests) {
      ordered_keys_.insert(req.key());
      pending_keys_.erase(req.key());
    }
    if (coordinator != self_) {
      inst.sent_prepare = true;
      inst.prepares.insert(self_);
      emit(Broadcast{Prepare{nv.view, pp.seq, inst.digest, self_, {}}});
    }
    evaluate(inst);
  }

  // Instances above the new-view horizon that were in flight in the old
  // view are void; their requests go back through the normal path (client
  // retransmission covers any we did not keep).
  for (auto it = instances_.begin(); it != instances_.end();) {
    Instance& inst = it->second;
    if (inst.seq > top && inst.view < nv.view && !inst.delivered) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
  rebuild_ordered_keys();

  if (!pending_.empty()) {
    std::erase_if(pending_, [&](const Request& r) {
      bool dup = ordered_keys_.contains(r.key());
      if (dup) pending_keys_.erase(r.key());
      return dup;
    });
  }

  SeqNum first_free = slice_.next_at_or_after(top + 1);
  next_index_ = std::max(next_index_, (first_free - slice_.offset) / slice_.stride);
  maybe_propose();
}

void PbftCore::rebuild_ordered_keys() {
  ordered_keys_.clear();
  for (const auto& [seq, inst] : instances_) {
    if (!inst.requests) continue;
    for (const Request& req : *inst.requests) ordered_keys_.insert(req.key());
  }
}

}  // namespace copbft::protocol
