// Vocabulary types of the replication protocol.
#pragma once

#include <cstdint>

#include "crypto/key_store.hpp"

namespace copbft::protocol {

using ReplicaId = std::uint32_t;
using ClientId = std::uint32_t;
using SeqNum = std::uint64_t;
using ViewId = std::uint64_t;
/// Per-client monotonically increasing request identifier.
using RequestId = std::uint64_t;

/// Replicas occupy node ids [0, kClientIdBase); clients start at
/// kClientIdBase. Both live in the same key/identity namespace.
constexpr crypto::KeyNodeId kClientIdBase = 1000;

/// Sentinel for "sender not derivable from the message alone".
constexpr crypto::KeyNodeId kUnknownNode = ~crypto::KeyNodeId{0};

inline crypto::KeyNodeId replica_node(ReplicaId r) { return r; }
inline crypto::KeyNodeId client_node(ClientId c) { return c; }
inline bool is_client_node(crypto::KeyNodeId n) { return n >= kClientIdBase; }

/// Unique 64-bit key for a (client, request-id) pair. Request ids are
/// bounded by the clients' windows in practice; 40 bits of id space is
/// plenty for any run while keeping the key a single word.
inline std::uint64_t request_key(ClientId client, RequestId id) {
  return (std::uint64_t{client} << 40) | (id & ((1ULL << 40) - 1));
}

/// How leadership is assigned to consensus instances (paper §4.3.2).
enum class LeaderScheme : std::uint8_t {
  /// Classic PBFT: the view determines one leader for every instance.
  kFixed,
  /// Block-wise rotation compatible with pillar partitioning:
  /// l(c) = (c / NP + view) mod N.
  kRotating,
};

/// A partition of the sequence-number space: seq numbers congruent to
/// `offset` modulo `stride`. A COP pillar owns one slice; TOP/SMaRt
/// replicas own the trivial slice {0, 1}.
struct SeqSlice {
  SeqNum offset = 0;
  SeqNum stride = 1;

  bool contains(SeqNum seq) const { return seq % stride == offset; }

  /// i-th sequence number of the slice: c(p, i) = p + i * NP.
  SeqNum at(SeqNum i) const { return offset + i * stride; }

  /// Smallest slice member >= seq.
  SeqNum next_at_or_after(SeqNum seq) const {
    if (seq <= offset) return offset;
    SeqNum delta = seq - offset;
    SeqNum i = (delta + stride - 1) / stride;
    return offset + i * stride;
  }
};

}  // namespace copbft::protocol
